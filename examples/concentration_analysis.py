"""Section 3.2: concentration bounds on termination time.

Concentration analysis asks for rapidly-decreasing bounds on
``Pr[T > n]`` — the probability a program is still running after ``n``
steps.  The reduction (Section 3.2) adds a step counter ``t`` and asserts
``t <= n``; the violation probability is then exactly ``Pr[T > n]``.

This example sweeps the threshold for the asymmetric random walk of
Figure 2 and prints the resulting concentration curve, comparing the
complete algorithm against the RSM + Azuma baseline of [CFNH18].

Run:  python examples/concentration_analysis.py
"""

import math

from repro.core import (
    cfnh18_concentration_bound,
    exp_lin_syn,
    synthesize_bounded_rsm,
)
from repro.programs import get_benchmark


def main() -> None:
    print(f"{'n':>6} {'Pr[T > n] (sec 5.2)':>22} {'RSM+Azuma baseline':>20}")
    previous = 0.0
    for n in (300, 400, 500, 600, 700):
        instance = get_benchmark("Rdwalk", n=n)
        cert = exp_lin_syn(instance.pts, instance.invariants)
        rsm = synthesize_bounded_rsm(instance.pts, instance.invariants)
        baseline_ln = cfnh18_concentration_bound(rsm, float(n))
        print(f"{n:>6} {cert.bound_str:>22} {math.exp(baseline_ln):>20.3e}")
        # the curve must decrease and beat the baseline everywhere
        assert cert.log_bound < previous
        assert cert.log_bound <= baseline_ln + 1e-9
        previous = cert.log_bound

    # the Section 3.2 worked example: n = 500 gives roughly exp(-27.18)
    instance = get_benchmark("Rdwalk", n=500)
    cert = exp_lin_syn(instance.pts, instance.invariants)
    print(
        f"\nn=500 synthesized exponent: "
        f"{cert.state_function.render(instance.pts.init_location)}"
    )
    print(f"paper's Section 3.2 reports a ~ -0.351, b ~ 0.124, c ~ -27.18")


if __name__ == "__main__":
    main()
