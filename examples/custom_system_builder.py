"""Building a PTS programmatically, with continuous sampling variables.

The surface language is convenient, but library users embedding the
analysis in a larger tool can construct transition systems directly with
:class:`repro.pts.PTSBuilder`.  This example models a sensor-fusion loop
whose drift is a *continuous* uniform disturbance — exercising the
closed-form MGF path of Section 5.2 ("Generality": any distribution with a
closed-form E[exp(gamma r)] works; uniform is the paper's own example).

Run:  python examples/custom_system_builder.py
"""

from repro.core import exp_lin_syn, generate_interval_invariants
from repro.polyhedra import var
from repro.pts import FAIL, TERM, PTSBuilder, UniformDistribution, simulate


def build_sensor_loop():
    """A filter integrates 200 noisy measurements; the accumulated error
    ``e`` drifts by Uniform[-0.6, 0.4] per step (mean drift -0.1).  The
    run fails if the error ever ends above 30."""
    b = PTSBuilder(["e", "k"], init={"e": 0, "k": 0}, name="sensor-fusion")
    noise = b.sampling("noise", UniformDistribution("-0.6", "0.4"))
    b.transition(
        "loop",
        guard=[b.le(var("k"), 199)],
        forks=[("loop", 1, {"e": var("e") + noise, "k": var("k") + 1})],
    )
    b.goto("loop", FAIL, guard=[b.ge(var("k"), 200), b.ge(var("e"), 30)])
    b.goto("loop", TERM, guard=[b.ge(var("k"), 200), b.le(var("e"), 30)])
    return b.build(init_location="loop")


def main() -> None:
    pts = build_sensor_loop()
    print(pts.pretty())

    invariants = generate_interval_invariants(pts)
    cert = exp_lin_syn(pts, invariants)
    print(f"\nupper bound on Pr[|error| ends >= 30]: {cert.bound_str}")
    print(f"template: {cert.state_function.render('loop')}")
    cert.verify()

    sim = simulate(pts, episodes=20_000, seed=1)
    lo, hi = sim.violation_interval()
    print(f"simulated rate: {sim.violation_rate:.2e} (99.9% CI [{lo:.2e}, {hi:.2e}])")
    assert cert.bound >= lo
    print("bound dominates the simulation interval — soundness confirmed")


if __name__ == "__main__":
    main()
