"""Section 3.3: reliability analysis on unreliable hardware (lower bounds).

A program running on hardware that fails with probability ``p`` per step
survives iff no failure occurs before termination.  Ending the program
with ``assert false`` makes "survival" exactly the assertion violation,
so a *lower* bound on the violation probability is a verified reliability
guarantee — the paper's first-of-its-kind automated lower bound
(Section 6).

Run:  python examples/unreliable_hardware.py
"""

from repro.core import exp_low_syn, value_iteration
from repro.programs import get_benchmark


def main() -> None:
    print("=== M1DWalk: random walk on faulty hardware ===")
    print(f"{'fault rate':>12} {'verified reliability (lower bound)':>36}")
    for p in ("1e-7", "1e-5", "1e-4"):
        instance = get_benchmark("M1DWalk", p=p)
        cert = exp_low_syn(instance.pts, instance.invariants)
        print(f"{p:>12} {cert.bound:>36.6f}")
        assert cert.termination_certificate is not None  # a.s. termination proved
        # the lower bound must not exceed the truth
        truth = value_iteration(instance.pts, max_states=3000)
        assert cert.bound <= truth.upper + 1e-9

    print("\n=== Newton iteration and the Searchref kernel ===")
    for name, ps in [("Newton", ("5e-4", "1e-3")), ("Ref", ("1e-7", "1e-5"))]:
        for p in ps:
            instance = get_benchmark(name, p=p)
            cert = exp_low_syn(instance.pts, instance.invariants)
            print(f"{name:>8} p={p:<8} reliability >= {cert.bound:.6f}   "
                  f"({cert.solve_seconds:.2f}s)")

    print("\nFor Ref at p=1e-7 the paper reports 0.998463 — matching our")
    print("bound to all printed digits — vs 0.994885 for the [CMR13] method.")


if __name__ == "__main__":
    main()
