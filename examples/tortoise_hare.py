"""Section 3.1: the tortoise-hare race, reproduced end to end.

The tortoise starts with a 40-unit edge and advances one unit per round;
the hare jumps two units with probability 1/2 and rests otherwise.  The
assertion ``x >= 100`` states that the tortoise wins; we bound the
probability that the *hare* wins with all three of the paper's algorithms
and compare against the exact answer.

Run:  python examples/tortoise_hare.py
"""

import math

from repro.core import (
    azuma_baseline,
    exp_lin_syn,
    hoeffding_synthesis,
    value_iteration,
)
from repro.programs import get_benchmark


def main() -> None:
    for x0 in (35, 40, 45):
        instance = get_benchmark("Race", x0=x0, y0=0)
        print(f"=== Race with a {x0}-unit head start ===")

        complete = exp_lin_syn(instance.pts, instance.invariants)
        hoeffding = hoeffding_synthesis(instance.pts, instance.invariants)
        azuma = azuma_baseline(instance.pts, instance.invariants)
        truth = value_iteration(instance.pts)

        print(f"  exact Pr[hare wins]        = {truth.lower:.3e}")
        print(f"  Section 5.2 (complete)     = {complete.bound_str}")
        print(f"  Section 5.1 (Hoeffding)    = {hoeffding.bound_str}")
        print(f"  [CNZ17] baseline (Azuma)   = {azuma.bound_str}")
        print(f"  synthesized exponent       : {complete.state_function.render(instance.pts.init_location)}")

        # Remark 2's ordering must hold on every instance
        assert complete.log_bound <= hoeffding.log_bound + 1e-9
        assert hoeffding.log_bound <= azuma.log_bound + 1e-9
        assert complete.bound >= truth.lower
        if x0 == 40:
            # the paper's headline number for this example: 1.524e-7
            assert abs(complete.log_bound - math.log(1.524e-7)) < 0.05
            print(f"  (paper reports 1.52e-7 — ours: {complete.bound:.3e})")
        print()


if __name__ == "__main__":
    main()
