"""Quickstart: bound an assertion violation probability in four steps.

1. write a probabilistic program in the surface language,
2. compile it to a probabilistic transition system (PTS),
3. synthesize a verified exponential upper bound (the paper's complete
   Section 5.2 algorithm), and
4. cross-check against Monte-Carlo simulation and exact value iteration.

Run:  python examples/quickstart.py
"""

from repro.lang import compile_source
from repro.core import exp_lin_syn, value_iteration
from repro.pts import simulate

SOURCE = """
# A gambler starts with 10 chips and plays a fair game, winning one chip
# with probability 1/2 and losing two with probability 1/2; the casino
# kicks winners out at 100 chips.  How likely is the gambler to get rich?
x := 10
while x >= 0:
    assert x <= 99            # "getting rich" is the assertion violation
    switch:
        prob(0.5): x := x + 1
        prob(0.5): x := x - 2
"""


def main() -> None:
    compiled = compile_source(SOURCE, name="gambler")
    pts = compiled.pts
    print("=== compiled PTS ===")
    print(pts.pretty())

    print("\n=== Section 5.2: sound and complete exponential upper bound ===")
    certificate = exp_lin_syn(pts)  # invariants are generated automatically
    print(f"upper bound on Pr[violation]: {certificate.bound_str}")
    print(f"synthesized template        : {certificate.render_template()}")
    print(f"solve time                  : {certificate.solve_seconds:.2f}s")
    certificate.verify()  # independent re-check; raises on failure
    print("certificate re-verified against the PTS semantics")

    print("\n=== ground truth ===")
    truth = value_iteration(pts, max_states=50_000)
    print(f"exact vpf bracket via value iteration: [{truth.lower:.3e}, {truth.upper:.3e}]")
    assert certificate.bound >= truth.lower, "an upper bound must dominate the truth"

    sim = simulate(pts, episodes=20_000, seed=0)
    print(f"simulated violation rate ({sim.episodes} episodes): {sim.violation_rate:.3e}")
    lo, hi = sim.violation_interval()
    print(f"99.9% confidence interval: [{lo:.3e}, {hi:.3e}]")
    assert certificate.bound >= lo, "bound must dominate the simulation interval"
    print("\nall checks passed — the bound is sound and informative")


if __name__ == "__main__":
    main()
