"""The double description method (Motzkin et al., Fukuda–Prodon variant).

This is the library's substitute for PPL: it converts a polyhedron from
H-representation ``{v : M v <= d}`` to V-representation

    ``P = conv(points) + cone(rays) + span(lines)``

which is exactly what Proposition 1 of the paper needs — the polytope ``Q``
is ``conv(points)`` and the recession cone ``C = {v : M v <= 0}`` is
``cone(rays) + span(lines)``.

The computation is exact over ``fractions.Fraction``:

1. homogenize ``P`` into the cone ``{(v, t) : M v - d t <= 0, -t <= 0}``;
2. run incremental double description with explicit lineality handling and
   the combinatorial adjacency test;
3. dehomogenize: rays with ``t > 0`` become points ``v/t``, rays with
   ``t = 0`` become recession-cone rays, and lines stay lines (their ``t``
   component is forced to 0 by ``-t <= 0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.errors import ModelError
from repro.polyhedra.constraints import Polyhedron
from repro.utils.numbers import normalize_row

__all__ = ["GeneratorSet", "cone_generators", "polyhedron_generators"]

Vector = Tuple[Fraction, ...]


@dataclass
class GeneratorSet:
    """V-representation of a polyhedron over an ordered variable tuple."""

    variables: Tuple[str, ...]
    points: List[Vector] = field(default_factory=list)
    rays: List[Vector] = field(default_factory=list)
    lines: List[Vector] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True iff the polyhedron has no points at all."""
        return not self.points

    @property
    def is_polytope(self) -> bool:
        """True iff the polyhedron is bounded (no rays or lines)."""
        return not self.rays and not self.lines

    def point_valuations(self) -> List[Dict[str, Fraction]]:
        """The generator points as variable valuations."""
        return [dict(zip(self.variables, p)) for p in self.points]

    def __repr__(self) -> str:
        return (
            f"GeneratorSet(vars={self.variables}, {len(self.points)} points, "
            f"{len(self.rays)} rays, {len(self.lines)} lines)"
        )


def _dot(a: Sequence[Fraction], b: Sequence[Fraction]) -> Fraction:
    return sum((x * y for x, y in zip(a, b)), Fraction(0))


def _scale_sub(
    vec: Sequence[Fraction], pivot: Sequence[Fraction], factor: Fraction
) -> Vector:
    """``vec - factor * pivot`` componentwise."""
    return tuple(v - factor * p for v, p in zip(vec, pivot))


def cone_generators(
    rows: Sequence[Sequence[Fraction]], dim: int
) -> Tuple[List[Vector], List[Tuple[Vector, FrozenSet[int]]]]:
    """Generators of the cone ``{x in R^dim : row · x <= 0 for each row}``.

    Returns ``(lines, rays)`` where each ray carries its *zero set* — the
    indices of input rows it satisfies with equality — as needed by the
    combinatorial adjacency test.  The cone equals
    ``span(lines) + cone(ray vectors)``.
    """
    # Lineality starts as the full space; rays start empty.
    lines: List[Vector] = [
        tuple(Fraction(1) if i == j else Fraction(0) for j in range(dim))
        for i in range(dim)
    ]
    rays: List[Tuple[Vector, FrozenSet[int]]] = []

    for idx, raw_row in enumerate(rows):
        row = tuple(Fraction(x) for x in raw_row)
        if len(row) != dim:
            raise ModelError(f"constraint row {idx} has length {len(row)}, expected {dim}")

        # --- lineality pivot: some line is not orthogonal to the new row ----
        pivot_pos = next((k for k, l in enumerate(lines) if _dot(row, l) != 0), None)
        if pivot_pos is not None:
            pivot = lines.pop(pivot_pos)
            val0 = _dot(row, pivot)
            if val0 < 0:
                pivot = tuple(-x for x in pivot)
                val0 = -val0
            lines = [
                _scale_sub(l, pivot, _dot(row, l) / val0) for l in lines
            ]
            adjusted: List[Tuple[Vector, FrozenSet[int]]] = []
            for vec, zero_set in rays:
                vec2 = _scale_sub(vec, pivot, _dot(row, vec) / val0)
                adjusted.append((tuple(normalize_row(vec2)), zero_set | {idx}))
            # the (negated) pivot becomes a ray strictly inside the halfspace
            neg_pivot = tuple(normalize_row(tuple(-x for x in pivot)))
            adjusted.append((neg_pivot, frozenset(range(idx))))
            rays = _dedupe(adjusted)
            continue

        # --- ordinary DD step: partition rays by the sign of row · ray -------
        pos: List[Tuple[Vector, FrozenSet[int], Fraction]] = []
        neg: List[Tuple[Vector, FrozenSet[int], Fraction]] = []
        zero: List[Tuple[Vector, FrozenSet[int]]] = []
        for vec, zero_set in rays:
            val = _dot(row, vec)
            if val > 0:
                pos.append((vec, zero_set, val))
            elif val < 0:
                neg.append((vec, zero_set, val))
            else:
                zero.append((vec, zero_set | {idx}))

        if not pos:
            rays = _dedupe([(v, zs) for (v, zs, _) in neg] + zero)
            continue

        current = rays  # adjacency is tested against the pre-update ray list
        new_rays: List[Tuple[Vector, FrozenSet[int]]] = []
        new_rays.extend((v, zs) for (v, zs, _) in neg)
        new_rays.extend(zero)
        for pvec, pzs, pval in pos:
            for nvec, nzs, nval in neg:
                common = pzs & nzs
                if not _adjacent(pvec, nvec, common, current):
                    continue
                combo = tuple(
                    pval * nv - nval * pv for pv, nv in zip(pvec, nvec)
                )
                combo = tuple(normalize_row(combo))
                if all(x == 0 for x in combo):
                    continue
                new_rays.append((combo, common | {idx}))
        rays = _dedupe(new_rays)

    return lines, rays


def _adjacent(
    vec_a: Vector,
    vec_b: Vector,
    common: FrozenSet[int],
    rays: List[Tuple[Vector, FrozenSet[int]]],
) -> bool:
    """Combinatorial adjacency: no third extreme ray's zero set contains
    ``common`` (Fukuda–Prodon, Proposition 7)."""
    for vec, zero_set in rays:
        if vec == vec_a or vec == vec_b:
            continue
        if common <= zero_set:
            return False
    return True


def _dedupe(
    rays: List[Tuple[Vector, FrozenSet[int]]]
) -> List[Tuple[Vector, FrozenSet[int]]]:
    seen: Dict[Vector, FrozenSet[int]] = {}
    for vec, zero_set in rays:
        if vec in seen:
            seen[vec] = seen[vec] | zero_set
        else:
            seen[vec] = zero_set
    return list(seen.items())


def polyhedron_generators(poly: Polyhedron) -> GeneratorSet:
    """V-representation of ``poly`` via homogenization + double description."""
    m_rows, d = poly.matrix_form()
    n = len(poly.variables)
    hom_rows: List[List[Fraction]] = []
    for row, rhs in zip(m_rows, d):
        hom_rows.append(list(row) + [-rhs])
    hom_rows.append([Fraction(0)] * n + [Fraction(-1)])  # -t <= 0

    lines, rays = cone_generators(hom_rows, n + 1)

    result = GeneratorSet(variables=poly.variables)
    for line in lines:
        if line[-1] != 0:
            # -t <= 0 forbids lines with a t component; if one appears the
            # lineality elimination has gone wrong.
            raise ModelError("internal error: homogenization line with t != 0")
        body = tuple(normalize_row(line[:-1]))
        if any(x != 0 for x in body):
            result.lines.append(body)
    for vec, _ in rays:
        t = vec[-1]
        body = vec[:-1]
        if t > 0:
            result.points.append(tuple(x / t for x in body))
        elif t == 0:
            ray = tuple(normalize_row(body))
            if any(x != 0 for x in ray):
                result.rays.append(ray)
        else:  # pragma: no cover - excluded by the -t <= 0 row
            raise ModelError("internal error: homogenization ray with t < 0")
    result.points = _unique_vectors(result.points)
    result.rays = _unique_vectors(result.rays)
    result.lines = _unique_vectors(result.lines)
    return result


def _unique_vectors(vectors: List[Vector]) -> List[Vector]:
    seen = set()
    out: List[Vector] = []
    for v in vectors:
        if v not in seen:
            seen.add(v)
            out.append(v)
    return out
