"""Minkowski decomposition of polyhedra (Theorem 5.3 of the paper).

Every polyhedron ``P = {v : M v <= d}`` decomposes as ``P = Q + C`` with
``Q`` a polytope and ``C = {v : M v <= 0}`` the recession cone.  The
decomposition drives the paper's quantifier-elimination step
(Proposition 1): the pre fixed-point constraint over all of ``P`` reduces to

* (D1) a *cone condition* — each exponent slope ``alpha_j`` is non-increasing
  along ``C`` — handled by Farkas' lemma, and
* (D2) finitely many convex inequalities at the generator points of ``Q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

from repro.polyhedra.constraints import Polyhedron
from repro.polyhedra.dd import GeneratorSet, polyhedron_generators

__all__ = ["MinkowskiDecomposition", "decompose"]


@dataclass
class MinkowskiDecomposition:
    """``P = conv(polytope_points) + C`` with ``C`` the recession cone.

    ``cone`` is kept in H-representation (that is what the Farkas encoding of
    condition (D1) consumes); ``generators`` additionally records the cone's
    rays and lines for verification purposes.
    """

    polyhedron: Polyhedron
    polytope_points: List[Dict[str, Fraction]]
    cone: Polyhedron
    generators: GeneratorSet

    @property
    def is_empty(self) -> bool:
        """True iff the original polyhedron is empty."""
        return not self.polytope_points

    @property
    def cone_is_trivial(self) -> bool:
        """True iff the recession cone is ``{0}`` (P is a polytope)."""
        return not self.generators.rays and not self.generators.lines

    def verify(self, tol: Fraction = Fraction(0)) -> bool:
        """Sanity-check the decomposition: every generator point lies in P
        and every ray/line direction lies in the recession cone."""
        for point in self.polytope_points:
            if not self.polyhedron.contains(point, tol):
                return False
        cone = self.cone
        for ray in self.generators.rays:
            if not cone.contains(dict(zip(self.generators.variables, ray)), tol):
                return False
        for line in self.generators.lines:
            val = dict(zip(self.generators.variables, line))
            neg = {k: -v for k, v in val.items()}
            if not (cone.contains(val, tol) and cone.contains(neg, tol)):
                return False
        return True


def decompose(poly: Polyhedron) -> MinkowskiDecomposition:
    """Compute ``P = Q + C`` exactly via the double description method."""
    generators = polyhedron_generators(poly)
    return MinkowskiDecomposition(
        polyhedron=poly,
        polytope_points=generators.point_valuations(),
        cone=poly.recession_cone(),
        generators=generators,
    )
