"""Farkas' lemma encodings (Lemma 2 of the paper).

Given a nonempty polyhedron ``P = {v : A v <= b}`` with *constant* data and a
target inequality ``c(theta) . v <= d(theta)`` whose coefficients are affine
in unknown template coefficients ``theta``, Farkas' lemma states::

    P  subseteq  {v : c.v <= d}   iff   exists y >= 0 with yT A = c, yT b <= d.

The encoder introduces fresh multiplier unknowns ``y_i`` and emits *linear*
constraints over ``theta ∪ y`` — exactly Step 3 of HoeffdingSynthesis and
Step 5 of ExpLowSyn.  The homogeneous variant (``b = 0, d = 0``) serves the
cone condition (D1) of Proposition 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, Iterator, List, Sequence

from repro.errors import ModelError
from repro.polyhedra.constraints import Polyhedron
from repro.polyhedra.linexpr import LinExpr

__all__ = ["TemplateConstraint", "FarkasEncoder"]


@dataclass
class TemplateConstraint:
    """A linear constraint over unknown coefficients: ``expr (rel) 0``."""

    expr: LinExpr
    relation: str  # "<=" or "=="
    label: str = ""

    def __post_init__(self) -> None:
        if self.relation not in ("<=", "=="):
            raise ModelError(f"unsupported relation {self.relation!r}")

    def holds(self, assignment: Dict[str, float], tol: float = 1e-7) -> bool:
        """Check the constraint at a float assignment (missing unknowns = 0)."""
        value = float(self.expr.const)
        for name, coeff in self.expr.coeffs.items():
            value += float(coeff) * assignment.get(name, 0.0)
        if self.relation == "<=":
            return value <= tol
        return abs(value) <= tol

    def __str__(self) -> str:
        return f"{self.expr} {self.relation} 0" + (f"  [{self.label}]" if self.label else "")


class FarkasEncoder:
    """Produces Farkas-multiplier constraint systems with fresh names.

    One encoder instance is shared per synthesis run so multiplier names
    never collide.  Multiplier unknowns are named ``_y{k}`` and recorded in
    :attr:`multipliers` with their (implicit) bound ``y >= 0``.
    """

    def __init__(self, prefix: str = "_y") -> None:
        self._prefix = prefix
        self._counter: Iterator[int] = count()
        self.multipliers: List[str] = []

    def _fresh(self) -> str:
        name = f"{self._prefix}{next(self._counter)}"
        self.multipliers.append(name)
        return name

    def encode_implication(
        self,
        poly: Polyhedron,
        target_coeffs: Dict[str, LinExpr],
        target_rhs: LinExpr,
        label: str = "",
    ) -> List[TemplateConstraint]:
        """Encode ``forall v in poly: sum(target_coeffs[v] * v) <= target_rhs``.

        ``target_coeffs`` maps each polyhedron variable to an affine
        expression over the unknowns (missing variables mean coefficient 0);
        ``target_rhs`` is likewise affine in the unknowns.  The caller must
        ensure ``poly`` is nonempty — Farkas' lemma is stated for nonempty
        polyhedra, and an empty premise makes the implication vacuous (the
        caller should simply drop it).
        """
        unknown_vars = set(target_coeffs) - set(poly.variables)
        if unknown_vars:
            raise ModelError(
                f"target mentions variables {sorted(unknown_vars)} missing "
                f"from the polyhedron {poly.variables}"
            )
        m_rows, d = poly.matrix_form()
        ys = [self._fresh() for _ in m_rows]
        constraints: List[TemplateConstraint] = []
        # yT A = c  (one equality per program variable)
        for col, v in enumerate(poly.variables):
            lhs = LinExpr({y: m_rows[i][col] for i, y in enumerate(ys)})
            c_v = target_coeffs.get(v, LinExpr.constant(0))
            constraints.append(
                TemplateConstraint(lhs - c_v, "==", label=f"{label}:coef[{v}]")
            )
        # yT b <= d
        lhs = LinExpr({y: d[i] for i, y in enumerate(ys)})
        constraints.append(TemplateConstraint(lhs - target_rhs, "<=", label=f"{label}:rhs"))
        # y >= 0
        for y in ys:
            constraints.append(
                TemplateConstraint(LinExpr({y: -1}), "<=", label=f"{label}:sign[{y}]")
            )
        return constraints

    def encode_cone_condition(
        self,
        cone: Polyhedron,
        direction_coeffs: Dict[str, LinExpr],
        label: str = "",
    ) -> List[TemplateConstraint]:
        """Encode ``forall v: M v <= 0  =>  direction . v <= 0`` (condition D1).

        This is the homogeneous Farkas variant: ``direction`` lies in the
        cone dual to ``C`` iff ``exists y >= 0: yT M = direction``.
        """
        hom = cone.recession_cone()  # drops any constant terms defensively
        return self.encode_implication(
            hom, direction_coeffs, LinExpr.constant(0), label=label
        )

    @staticmethod
    def verify_multipliers(
        poly: Polyhedron,
        constraints: Sequence[TemplateConstraint],
        assignment: Dict[str, float],
        tol: float = 1e-6,
    ) -> bool:
        """Re-check an assignment against an encoded block (certificate use)."""
        return all(c.holds(assignment, tol) for c in constraints)
