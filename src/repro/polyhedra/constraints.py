"""Affine inequalities and polyhedra in H-representation.

A :class:`AffineIneq` is an exact constraint ``expr <= 0``; a
:class:`Polyhedron` is a finite conjunction of such constraints over a fixed
variable tuple, i.e. ``{v : M v <= d}``.  Queries that need optimization
(emptiness, implication, boundedness) go through the LP layer.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.polyhedra.linexpr import LinExpr
from repro.utils.numbers import Number, as_fraction

__all__ = ["AffineIneq", "Polyhedron"]


class AffineIneq:
    """The constraint ``expr <= 0`` for an affine ``expr``.

    Convenience constructors :meth:`le`, :meth:`ge`, :meth:`eq_pair` build
    constraints from two expressions.
    """

    __slots__ = ("expr",)

    def __init__(self, expr: LinExpr):
        self.expr = expr

    @staticmethod
    def le(lhs, rhs) -> "AffineIneq":
        """The constraint ``lhs <= rhs``."""
        return AffineIneq(LinExpr.coerce(lhs) - LinExpr.coerce(rhs))

    @staticmethod
    def ge(lhs, rhs) -> "AffineIneq":
        """The constraint ``lhs >= rhs``."""
        return AffineIneq(LinExpr.coerce(rhs) - LinExpr.coerce(lhs))

    @staticmethod
    def eq_pair(lhs, rhs) -> Tuple["AffineIneq", "AffineIneq"]:
        """The pair of constraints encoding ``lhs == rhs``."""
        return AffineIneq.le(lhs, rhs), AffineIneq.ge(lhs, rhs)

    def holds(self, valuation: Mapping[str, Number], tol: Fraction = Fraction(0)) -> bool:
        """True iff the constraint is satisfied at ``valuation`` (within ``tol``)."""
        return self.expr.evaluate(valuation) <= tol

    def holds_float(self, valuation: Mapping[str, float], tol: float = 1e-9) -> bool:
        """Float-valued satisfaction check (for simulation hot paths)."""
        return self.expr.evaluate_float(valuation) <= tol

    def negate_strict(self, integer_gap: Fraction = Fraction(0)) -> "AffineIneq":
        """The closed complement ``expr >= gap`` of ``expr <= 0``.

        Over the reals the true complement is strict (``expr > 0``); on
        integer-valued programs with integral coefficients the complement is
        ``expr >= 1``.  ``integer_gap`` supplies that tightening (0 keeps the
        measure-zero overlap convention documented in the compiler).
        """
        return AffineIneq(LinExpr.constant(integer_gap) - self.expr)

    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineIneq):
            return NotImplemented
        return self.expr == other.expr

    def __hash__(self) -> int:
        return hash(("AffineIneq", self.expr))

    def __repr__(self) -> str:
        return f"AffineIneq({self.expr} <= 0)"

    def __str__(self) -> str:
        return f"{self.expr} <= 0"


class Polyhedron:
    """A conjunction of affine inequalities over an ordered variable tuple.

    The variable tuple fixes the column order of the matrix form ``M v <= d``
    used by the double description method and the Farkas encodings; it may
    include variables that appear in no constraint (free coordinates).
    """

    def __init__(self, variables: Sequence[str], inequalities: Iterable[AffineIneq] = ()):
        self.variables: Tuple[str, ...] = tuple(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ModelError(f"duplicate variables in polyhedron: {self.variables}")
        self.inequalities: List[AffineIneq] = []
        seen = set()
        for ineq in inequalities:
            if ineq.expr.is_constant and ineq.expr.const <= 0:
                continue  # trivially true (e.g. a guard folded to 0 <= 0)
            if ineq not in seen:  # drop exact duplicates (guard composition)
                seen.add(ineq)
                self.inequalities.append(ineq)
        known = set(self.variables)
        for ineq in self.inequalities:
            extra = set(ineq.variables()) - known
            if extra:
                raise ModelError(
                    f"constraint {ineq} mentions variables {sorted(extra)} "
                    f"outside the polyhedron dimension {self.variables}"
                )
        # memo slots for the LP-backed predicates; instances are immutable by
        # convention and synthesis asks the same polytope repeatedly (one
        # Handelman block per condition over the same premise)
        self._empty_memo: Optional[bool] = None
        self._bounded_memo: Optional[bool] = None

    # -- constructors -------------------------------------------------------------
    @staticmethod
    def universe(variables: Sequence[str]) -> "Polyhedron":
        """The whole space R^n (no constraints)."""
        return Polyhedron(variables, [])

    @staticmethod
    def from_box(bounds: Mapping[str, Tuple[Optional[Number], Optional[Number]]]) -> "Polyhedron":
        """A box ``{lo_i <= x_i <= hi_i}``; ``None`` bounds are omitted."""
        names = sorted(bounds)
        ineqs: List[AffineIneq] = []
        for name in names:
            lo, hi = bounds[name]
            if lo is not None:
                ineqs.append(AffineIneq.ge(LinExpr.variable(name), as_fraction(lo)))
            if hi is not None:
                ineqs.append(AffineIneq.le(LinExpr.variable(name), as_fraction(hi)))
        return Polyhedron(names, ineqs)

    # -- structural operations ------------------------------------------------------
    def with_variables(self, variables: Sequence[str]) -> "Polyhedron":
        """Re-embed into the (super)space spanned by ``variables``."""
        missing = set(v for ineq in self.inequalities for v in ineq.variables()) - set(variables)
        if missing:
            raise ModelError(f"cannot drop constrained variables {sorted(missing)}")
        return Polyhedron(variables, self.inequalities)

    def intersect(self, other: "Polyhedron") -> "Polyhedron":
        """Conjunction; the variable tuple is the ordered union."""
        names = list(self.variables)
        for v in other.variables:
            if v not in names:
                names.append(v)
        return Polyhedron(names, list(self.inequalities) + list(other.inequalities))

    def and_ineqs(self, ineqs: Iterable[AffineIneq]) -> "Polyhedron":
        """Conjunction with extra inequalities over the same variables."""
        return Polyhedron(self.variables, list(self.inequalities) + list(ineqs))

    def recession_cone(self) -> "Polyhedron":
        """The cone ``{v : M v <= 0}`` (constants dropped)."""
        cone_ineqs = [
            AffineIneq(ineq.expr - ineq.expr.const) for ineq in self.inequalities
        ]
        return Polyhedron(self.variables, cone_ineqs)

    def matrix_form(self) -> Tuple[List[List[Fraction]], List[Fraction]]:
        """``(M, d)`` with the polyhedron equal to ``{v : M v <= d}``."""
        m_rows: List[List[Fraction]] = []
        d: List[Fraction] = []
        for ineq in self.inequalities:
            m_rows.append([ineq.expr.coeff(v) for v in self.variables])
            d.append(-ineq.expr.const)
        return m_rows, d

    # -- pointwise queries -----------------------------------------------------------
    def contains(self, valuation: Mapping[str, Number], tol: Fraction = Fraction(0)) -> bool:
        """Exact membership test."""
        return all(ineq.holds(valuation, tol) for ineq in self.inequalities)

    def contains_float(self, valuation: Mapping[str, float], tol: float = 1e-7) -> bool:
        """Float membership test."""
        return all(ineq.holds_float(valuation, tol) for ineq in self.inequalities)

    # -- LP-backed queries --------------------------------------------------------------
    def _lp_data(self):
        m, d = self.matrix_form()
        a_ub = [[float(x) for x in row] for row in m]
        b_ub = [float(x) for x in d]
        return a_ub, b_ub

    def is_empty(self) -> bool:
        """True iff the polyhedron has no points (LP feasibility, memoized)."""
        from repro.numeric.lp import solve_lp

        if not self.inequalities:
            return False
        if self._empty_memo is None:
            a_ub, b_ub = self._lp_data()
            n = len(self.variables)
            result = solve_lp([0.0] * n, a_ub, b_ub)
            self._empty_memo = result.status == "infeasible"
        return self._empty_memo

    def maximize(self, objective: LinExpr) -> Tuple[str, Optional[float]]:
        """``(status, value)`` for ``max objective`` over the polyhedron.

        ``status`` is "optimal", "unbounded" or "infeasible" (value ``None``
        unless optimal).
        """
        from repro.numeric.lp import solve_lp

        a_ub, b_ub = self._lp_data()
        c = [-float(objective.coeff(v)) for v in self.variables]
        result = solve_lp(c, a_ub, b_ub)
        if result.status == "optimal":
            return "optimal", -result.objective + float(objective.const)
        return result.status, None

    def implies(self, ineq: AffineIneq, tol: float = 1e-8) -> bool:
        """True iff every point of the polyhedron satisfies ``ineq``.

        Decided by maximizing ``ineq.expr``; an empty polyhedron implies
        everything.
        """
        status, value = self.maximize(ineq.expr)
        if status == "infeasible":
            return True
        if status == "unbounded":
            return False
        return value <= tol

    def is_bounded(self) -> bool:
        """True iff the polyhedron is a polytope (or empty); memoized."""
        if self._bounded_memo is None:
            self._bounded_memo = self._compute_bounded()
        return self._bounded_memo

    def _compute_bounded(self) -> bool:
        if self.is_empty():
            return True
        for v in self.variables:
            for sign in (1, -1):
                status, _ = self.maximize(LinExpr({v: sign}))
                if status == "unbounded":
                    return False
        return True

    def chebyshev_like_point(self) -> Optional[Dict[str, float]]:
        """Some float point of the polyhedron, or ``None`` when empty.

        Used to seed samplers and numeric verification; not necessarily an
        interior point.
        """
        from repro.numeric.lp import solve_lp

        a_ub, b_ub = self._lp_data()
        n = len(self.variables)
        result = solve_lp([0.0] * n, a_ub, b_ub)
        if result.status != "optimal":
            return None
        return {v: float(result.x[i]) for i, v in enumerate(self.variables)}

    # -- dunder ------------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.inequalities)

    def __repr__(self) -> str:
        body = " and ".join(str(i) for i in self.inequalities) or "true"
        return f"Polyhedron[{', '.join(self.variables)} | {body}]"
