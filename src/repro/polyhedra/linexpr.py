"""Exact affine expressions over named variables.

:class:`LinExpr` is the workhorse shared by guards, affine updates, invariant
inequalities and — crucially — *template constraints over unknown
coefficients*: the Farkas and canonicalization steps of the paper manipulate
affine expressions whose "variables" are the unknown template coefficients
``a_l``, ``b_l``.  One exact representation serves both roles.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.utils.numbers import Number, as_fraction

__all__ = ["LinExpr", "var", "const"]


class LinExpr:
    """An affine expression ``sum(coeff_i * x_i) + constant`` with exact
    rational coefficients.

    Instances are immutable and support ``+``, ``-``, multiplication and
    division by rational scalars, substitution, and evaluation.
    """

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(self, coeffs: Mapping[str, Number] = (), constant: Number = 0):
        clean: Dict[str, Fraction] = {}
        items = coeffs.items() if isinstance(coeffs, Mapping) else coeffs
        for name, value in items:
            f = as_fraction(value)
            if f != 0:
                clean[name] = f
        object.__setattr__(self, "_coeffs", clean)
        object.__setattr__(self, "_const", as_fraction(constant))
        object.__setattr__(self, "_hash", None)

    # -- construction helpers -------------------------------------------------
    @staticmethod
    def variable(name: str) -> "LinExpr":
        """The expression consisting of the single variable ``name``.

        Instances are immutable, so repeated requests for the same name are
        served from an intern table — synthesis assembles millions of
        single-variable expressions (template coefficients, Farkas
        multipliers) and the cache removes that allocation churn.
        """
        cached = _VAR_INTERN.get(name)
        if cached is None:
            cached = LinExpr({name: 1})
            _VAR_INTERN[name] = cached
        return cached

    @staticmethod
    def constant(value: Number) -> "LinExpr":
        """The constant expression ``value`` (small integers are interned)."""
        if type(value) is int and -16 <= value <= 16:
            cached = _CONST_INTERN.get(value)
            if cached is None:
                cached = LinExpr({}, value)
                _CONST_INTERN[value] = cached
            return cached
        return LinExpr({}, value)

    @staticmethod
    def coerce(value: Union["LinExpr", Number]) -> "LinExpr":
        """Interpret ``value`` as a :class:`LinExpr` (numbers become constants)."""
        if isinstance(value, LinExpr):
            return value
        return LinExpr.constant(value)

    # -- inspection ------------------------------------------------------------
    @property
    def coeffs(self) -> Dict[str, Fraction]:
        """A copy of the coefficient mapping (zero coefficients omitted)."""
        return dict(self._coeffs)

    @property
    def const(self) -> Fraction:
        """The constant term."""
        return self._const

    def coeff(self, name: str) -> Fraction:
        """Coefficient of ``name`` (0 if absent)."""
        return self._coeffs.get(name, Fraction(0))

    def iter_coeffs(self):
        """Read-only view of ``(name, coeff)`` pairs without copying.

        The hot constraint-assembly paths iterate coefficients millions of
        times; :attr:`coeffs` copies the dict on every access, this doesn't.
        """
        return self._coeffs.items()

    def variables(self) -> Tuple[str, ...]:
        """Sorted tuple of variables with nonzero coefficient."""
        return tuple(sorted(self._coeffs))

    @property
    def is_constant(self) -> bool:
        """True iff the expression has no variable part."""
        return not self._coeffs

    @property
    def is_zero(self) -> bool:
        """True iff the expression is identically 0."""
        return not self._coeffs and self._const == 0

    # -- arithmetic -------------------------------------------------------------
    def __add__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        other = LinExpr.coerce(other)
        coeffs = dict(self._coeffs)
        for name, value in other._coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + value
        return LinExpr(coeffs, self._const + other._const)

    def __radd__(self, other: Number) -> "LinExpr":
        return self.__add__(other)

    def __neg__(self) -> "LinExpr":
        return LinExpr({k: -v for k, v in self._coeffs.items()}, -self._const)

    def __sub__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        return self.__add__(-LinExpr.coerce(other))

    def __rsub__(self, other: Number) -> "LinExpr":
        return (-self).__add__(other)

    def __mul__(self, scalar: Number) -> "LinExpr":
        f = as_fraction(scalar)
        return LinExpr({k: v * f for k, v in self._coeffs.items()}, self._const * f)

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self.__mul__(scalar)

    def __truediv__(self, scalar: Number) -> "LinExpr":
        f = as_fraction(scalar)
        if f == 0:
            raise ZeroDivisionError("division of LinExpr by zero")
        return self.__mul__(Fraction(1) / f)

    # -- semantics ---------------------------------------------------------------
    def evaluate(self, valuation: Mapping[str, Number]) -> Fraction:
        """Exact value of the expression under ``valuation``.

        Raises ``KeyError`` if a needed variable is missing.
        """
        total = self._const
        for name, coeff in self._coeffs.items():
            total += coeff * as_fraction(valuation[name])
        return total

    def evaluate_float(self, valuation: Mapping[str, float]) -> float:
        """Float value of the expression (fast path for simulation)."""
        total = float(self._const)
        for name, coeff in self._coeffs.items():
            total += float(coeff) * float(valuation[name])
        return total

    def substitute(self, mapping: Mapping[str, Union["LinExpr", Number]]) -> "LinExpr":
        """Replace each variable in ``mapping`` by the given expression.

        Variables absent from ``mapping`` are left intact.  Substitution of
        affine expressions into an affine expression stays affine.
        """
        result = LinExpr.constant(self._const)
        for name, coeff in self._coeffs.items():
            if name in mapping:
                result = result + LinExpr.coerce(mapping[name]) * coeff
            else:
                result = result + LinExpr({name: coeff})
        return result

    def restrict(self, names: Iterable[str]) -> "LinExpr":
        """The sub-expression over ``names`` only, with zero constant."""
        keep = set(names)
        return LinExpr({k: v for k, v in self._coeffs.items() if k in keep})

    # -- comparisons (structural) --------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        if self._hash is None:
            items = tuple(sorted(self._coeffs.items()))
            object.__setattr__(self, "_hash", hash((items, self._const)))
        return self._hash

    def __repr__(self) -> str:
        return f"LinExpr({self})"

    def __str__(self) -> str:
        parts = []
        for name in sorted(self._coeffs):
            coeff = self._coeffs[name]
            if coeff == 1:
                term = name
            elif coeff == -1:
                term = f"-{name}"
            else:
                term = f"{coeff}*{name}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self._const != 0 or not parts:
            c = self._const
            if parts:
                parts.append(f"+ {c}" if c > 0 else f"- {-c}")
            else:
                parts.append(str(c))
        return " ".join(parts)


#: intern tables for the two highest-churn constructors (see above)
_VAR_INTERN: Dict[str, LinExpr] = {}
_CONST_INTERN: Dict[int, LinExpr] = {}


def var(name: str) -> LinExpr:
    """Shorthand for :meth:`LinExpr.variable`."""
    return LinExpr.variable(name)


def const(value: Number) -> LinExpr:
    """Shorthand for :meth:`LinExpr.constant`."""
    return LinExpr.constant(value)
