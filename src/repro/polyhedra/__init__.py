"""Exact polyhedra substrate: H/V representations, Farkas, Minkowski.

This subpackage replaces the Parma Polyhedra Library used by the paper's
prototype.  Everything is computed over exact rationals.
"""

from repro.polyhedra.linexpr import LinExpr, var, const
from repro.polyhedra.constraints import AffineIneq, Polyhedron
from repro.polyhedra.dd import GeneratorSet, cone_generators, polyhedron_generators
from repro.polyhedra.minkowski import MinkowskiDecomposition, decompose
from repro.polyhedra.farkas import FarkasEncoder, TemplateConstraint

__all__ = [
    "LinExpr",
    "var",
    "const",
    "AffineIneq",
    "Polyhedron",
    "GeneratorSet",
    "cone_generators",
    "polyhedron_generators",
    "MinkowskiDecomposition",
    "decompose",
    "FarkasEncoder",
    "TemplateConstraint",
]
