"""The unit of work of the analysis engine.

An :class:`AnalysisTask` names a program (:class:`ProgramSpec`), an
algorithm (a key of :data:`repro.engine.engine.ALGORITHMS`) and its
parameters.  Tasks are immutable, hashable and picklable — the same object
travels to process-pool workers — and carry a deterministic
:attr:`~AnalysisTask.cache_key` so results can be stored and replayed from
an on-disk :class:`~repro.engine.cache.ResultCache`.

Results come back as :class:`CertificateResult`: a slim, picklable summary
of a synthesis run (bound, timings, rendered templates, the solved state
table for warm starts) rather than the full certificate object, which drags
the whole PTS/invariant substrate across process boundaries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "ProgramSpec",
    "AnalysisTask",
    "CertificateResult",
    "state_table_of",
    "result_from_certificate",
]


def _params_tuple(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical (sorted, hashable) form of a parameter mapping."""
    return tuple(sorted(params.items()))


#: per-process compiled-program memo (spec -> (pts, invariants)); bounded so
#: a long table sweep cannot pin every state space in memory at once
_RESOLVE_MEMO: Dict["ProgramSpec", Tuple[Any, Any]] = {}
_RESOLVE_MEMO_CAP = 64  # > the 36 specs of a full `runner all` sweep

#: salt folded into every cache key; bump whenever a synthesis algorithm's
#: *output* changes (bug fix, tightened encoding), so stale on-disk results
#: from older code read as misses instead of replaying wrong bounds.
#: v2: the fixpoint engine fingerprint joined the payload (int64 frontier
#: exploration + blocked Gauss-Seidel schedules) — results from the two
#: exploration paths are bit-identical by construction, but artifacts
#: produced by different fixpoint engine versions must never alias.
#: v3: scaled-lattice (fixed-point int64) admission — ``explore="auto"``
#: semantics changed (fractional PTSs now take the frontier engine), so
#: artifacts written under the v2 admission rules must read as misses.
#: v4: solve-then-certify value iteration — certified oracle adoptions end
#: the run at oracle precision (brackets may differ from pure sweeping in
#: the last ulps) and the tiny-model heuristic changed ``explore="auto"``
#: engine selection, so v3 artifacts must read as misses.
#: v5: run certificates — ``CertificateResult`` grew ``run_certificate``
#: and the cache stores certificates as ``*.cert.json`` sidecar blobs
#: reattached on read; v4 pickles lack the field and have no sidecar, so
#: they must read as misses.
CACHE_KEY_VERSION = 5


def _fixpoint_fingerprint() -> str:
    """Version stamp of the exploration/sweep machinery (lazy import: the
    fixpoint module drags scipy in, which light CLI paths don't need)."""
    from repro.core.fixpoint import FIXPOINT_FINGERPRINT

    return FIXPOINT_FINGERPRINT


@dataclass(frozen=True)
class ProgramSpec:
    """Where a task's PTS comes from: a registered benchmark or source text.

    Resolution happens inside the executing worker (a spec is a few strings;
    a compiled PTS is not worth pickling), so the same spec resolves to the
    same PTS/invariants in every process — the compiler, the benchmark
    factories and interval-invariant generation are all deterministic.
    """

    kind: str  # "benchmark" | "source"
    name: str
    params: Tuple[Tuple[str, Any], ...] = ()
    source: str = ""
    integer_mode: bool = True
    #: "auto" generates interval invariants on resolve; "none" skips them.
    #: Algorithms that never read invariants (value-iteration brackets —
    #: the fuzz farm runs thousands of those) opt out: interval-invariant
    #: generation costs orders of magnitude more than the iteration.
    invariants: str = "auto"

    @staticmethod
    def benchmark(name: str, **params) -> "ProgramSpec":
        return ProgramSpec(kind="benchmark", name=name, params=_params_tuple(params))

    @staticmethod
    def from_source(
        source: str,
        name: str = "program",
        integer_mode: bool = True,
        invariants: str = "auto",
    ) -> "ProgramSpec":
        return ProgramSpec(
            kind="source",
            name=name,
            source=source,
            integer_mode=integer_mode,
            invariants=invariants,
        )

    def resolve(self):
        """Compile/instantiate to ``(pts, invariants)``.

        Memoized per process (bounded FIFO): the task triple of one table
        row shares a spec, and compiling a 3-variable walk plus its interval
        invariants costs seconds — the memo restores the
        one-instance-per-row sharing the pre-engine harness had.  Sharing is
        safe because no synthesis algorithm mutates the PTS or the
        invariant map (polyhedra only memoize their own queries).
        """
        cached = _RESOLVE_MEMO.get(self)
        if cached is not None:
            return cached
        if self.kind == "benchmark":
            from repro.programs import get_benchmark

            inst = get_benchmark(self.name, **dict(self.params))
            resolved = inst.pts, inst.invariants
        else:
            from repro.lang import compile_source

            result = compile_source(
                self.source, integer_mode=self.integer_mode, name=self.name
            )
            if self.invariants == "none":
                resolved = result.pts, result.invariants
            else:
                from repro.core.invariants import generate_interval_invariants

                invariants = generate_interval_invariants(result.pts)
                if result.invariants:
                    invariants = invariants.merged_with(result.invariants)
                resolved = result.pts, invariants
        while len(_RESOLVE_MEMO) >= _RESOLVE_MEMO_CAP:
            _RESOLVE_MEMO.pop(next(iter(_RESOLVE_MEMO)))
        _RESOLVE_MEMO[self] = resolved
        return resolved

    def canonical(self) -> Dict[str, Any]:
        data = {
            "kind": self.kind,
            "name": self.name,
            "params": [[k, repr(v)] for k, v in self.params],
            "source": self.source,
            "integer_mode": self.integer_mode,
        }
        # only stamped when non-default, so every pre-existing cache key
        # (and sidecar certificate) stays bit-identical
        if self.invariants != "auto":
            data["invariants"] = self.invariants
        return data


@dataclass(frozen=True)
class AnalysisTask:
    """One schedulable analysis: program x algorithm x parameters.

    ``depends_on`` names other tasks (by ``task_id``) whose results must be
    available before this one runs; the engine hands them to the synthesizer
    (e.g. ExpLinSyn warm-starts from a Hoeffding certificate's state table).
    ``cacheable=False`` opts fine-grained subtasks (eps-probe LPs) out of
    the on-disk cache — their enclosing synthesis caches as a whole.

    ``timeout`` is a per-task wall-clock deadline in seconds (``None``
    defers to the engine's default, ``0`` disables).  It is *execution
    policy*, not content: two tasks differing only in ``timeout`` mean the
    same computation, so it is deliberately excluded from ``cache_key``.
    """

    algorithm: str
    program: ProgramSpec
    params: Tuple[Tuple[str, Any], ...] = ()
    task_id: str = ""
    depends_on: Tuple[str, ...] = ()
    cacheable: bool = True
    timeout: Optional[float] = None

    def __post_init__(self):
        if not self.task_id:
            object.__setattr__(self, "task_id", self.cache_key[:16])

    @staticmethod
    def make(
        algorithm: str,
        program: ProgramSpec,
        params: Optional[Mapping[str, Any]] = None,
        task_id: str = "",
        depends_on: Tuple[str, ...] = (),
        cacheable: bool = True,
        timeout: Optional[float] = None,
    ) -> "AnalysisTask":
        return AnalysisTask(
            algorithm=algorithm,
            program=program,
            params=_params_tuple(params or {}),
            task_id=task_id,
            # dedupe, order-preserving: the engine's ready-set counts one
            # outstanding slot per distinct dependency
            depends_on=tuple(dict.fromkeys(depends_on)),
            cacheable=cacheable,
            timeout=timeout,
        )

    def param(self, name: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == name:
                return v
        return default

    @property
    def cache_key(self) -> str:
        """Deterministic content hash of (algorithm, program, params).

        Dependencies are deliberately excluded: two task graphs wiring the
        same synthesis differently still mean the same computation.  Tasks
        whose *result* depends on upstream payloads (warm starts) must fold
        a fingerprint of that payload into ``params`` — the table harness
        does — or set ``cacheable=False``.
        """
        payload = {
            "v": CACHE_KEY_VERSION,
            "fixpoint": _fixpoint_fingerprint(),
            "algorithm": self.algorithm,
            "program": self.program.canonical(),
            "params": [[k, repr(v)] for k, v in self.params],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CertificateResult:
    """Uniform, picklable outcome of one analysis task.

    ``state_table`` holds the solved exponents per location
    (``loc -> (coeffs, const)``) — enough to rebuild an
    :class:`~repro.core.templates.ExpStateFunction` for warm starts and for
    the symbolic appendix tables without shipping certificate objects
    between processes.  ``details`` carries per-algorithm extras (RepRSM
    ``eps``/``beta``, LP evaluation counts, the bound ``M`` of Section 6).
    """

    algorithm: str
    status: str  # "ok" | "error"
    log_bound: Optional[float] = None
    seconds: float = 0.0
    solver_info: str = ""
    error: str = ""
    error_type: str = ""
    state_table: Optional[Dict[str, Tuple[Dict[str, float], float]]] = None
    template_renders: Dict[str, str] = field(default_factory=dict)
    details: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    #: producers set this False when the result was computed under degraded
    #: inputs (e.g. a requested warm start whose producer failed) — storing
    #: it would poison the cache for runs where the inputs are healthy
    cache_ok: bool = True
    #: the run certificate payload (``RunCertificate.as_dict()``) for
    #: synthesizers that emit one — the cache strips it into a sidecar
    #: blob on write and reattaches it on read, so the pickled entry
    #: itself stays certificate-free
    run_certificate: Optional[Dict[str, Any]] = None
    task_key: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_cached(self) -> "CertificateResult":
        return replace(self, cached=True)

    @staticmethod
    def failure(task: "AnalysisTask", exc: BaseException, seconds: float = 0.0):
        return CertificateResult(
            algorithm=task.algorithm,
            status="error",
            seconds=seconds,
            error=str(exc),
            error_type=type(exc).__name__,
            task_key=task.cache_key,
        )


def state_table_of(state_function) -> Dict[str, Tuple[Dict[str, float], float]]:
    """Flatten an ``ExpStateFunction`` into the picklable warm-start form."""
    return {
        loc: (dict(state_function.coeffs[loc]), float(state_function.consts[loc]))
        for loc in state_function.coeffs
    }


def result_from_certificate(
    algorithm: str,
    certificate,
    seconds: Optional[float] = None,
    details: Optional[Mapping[str, Any]] = None,
) -> CertificateResult:
    """Summarize any of the certificate classes (they share the base API)."""
    return CertificateResult(
        algorithm=algorithm,
        status="ok",
        log_bound=certificate.log_bound,
        seconds=certificate.solve_seconds if seconds is None else seconds,
        solver_info=certificate.solver_info,
        state_table=state_table_of(certificate.state_function),
        template_renders=certificate.render_template(),
        details=dict(details or {}),
    )
