"""The :class:`AnalysisEngine`: execute task DAGs through a scheduler.

The engine owns four orthogonal concerns that every entry point used to
re-implement ad hoc:

* **dispatch** — :data:`ALGORITHMS` maps a task's ``algorithm`` string to a
  ``synthesize(task, deps, engine) -> CertificateResult`` function, resolved
  lazily by dotted path so worker processes import only what they run and
  the engine package stays import-cycle-free;
* **scheduling** — :meth:`AnalysisEngine.run` is *completion-driven*: a
  ready-set keyed on outstanding dependency counts submits each task the
  moment its last dependency resolves, and results are consumed as they
  complete, so a slow task delays only its own descendants — independent
  chains pipeline straight through.  Results are a pure function of each
  task, so scheduler choice and completion order never change the output;
* **caching** — before a ready task is submitted it is looked up in the
  optional on-disk :class:`~repro.engine.cache.ResultCache` by its content
  hash; fresh ``ok`` results are stored back, and a cache hit resolves its
  dependents immediately without touching the pool;
* **fault tolerance** — every wait is bounded (per-task wall-clock
  deadlines, :data:`DEFAULT_TASK_TIMEOUT` by default, enforced by a
  watchdog in the dispatch loop), *infrastructure* failures are retried
  with exponential backoff + deterministic jitter
  (:class:`RetryPolicy`), a broken process pool is rebuilt in place with
  only the in-flight tasks requeued (capped by ``max_pool_rebuilds``),
  and when a backend cannot be healed the engine degrades down a
  caller-supplied chain (worker service → fresh local pool → serial),
  recording everything in a :class:`DegradationReport`.

Failure taxonomy (the load-bearing distinction, pinned by the chaos suite
in ``tests/test_faults.py`` via :mod:`repro.engine.faults`):

* a task whose algorithm *raises* becomes a ``status="error"`` result —
  synthesis failures are deterministic data, retrying them re-buys the
  same exception, and tables record them per row;
* a worker *process* dying mid-task (segfault, OOM kill), a worker-service
  socket loss, or a deadline expiry is an **infrastructure** failure
  (:class:`~repro.errors.TaskError` / ``BrokenProcessPool`` /
  :class:`~repro.errors.TaskTimeoutError`): the computation itself is
  innocent, so the engine retries it — and because tasks are pure
  functions cache-keyed by content hash, a retried run is bit-identical
  to a first-try run.  Only when retries, pool rebuilds and the
  degradation chain are all exhausted does the failure propagate.

In-process synthesizers can themselves emit subtasks via
:meth:`AnalysisEngine.submit_subtasks` (futures) or
:meth:`AnalysisEngine.map_subtasks` (deadline-bounded barrier) — that is
how the Ser ternary search solves the independent eps-probe LPs of one
bracket step concurrently.  A ``KeyboardInterrupt`` during dispatch
cancels everything still queued and shuts the pool down before
propagating.
"""

from __future__ import annotations

import hashlib
import importlib
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import EngineError, TaskError, TaskTimeoutError
from repro.engine.cache import ResultCache
from repro.engine.faults import task_boundary
from repro.engine.scheduler import SerialScheduler, make_scheduler
from repro.engine.task import AnalysisTask, CertificateResult

__all__ = [
    "ALGORITHMS",
    "AnalysisEngine",
    "DEFAULT_TASK_TIMEOUT",
    "DegradationEvent",
    "DegradationReport",
    "RetryPolicy",
    "engine_scope",
    "execute_task",
]

#: algorithm name -> "module:function" implementing the synthesize protocol
ALGORITHMS: Dict[str, str] = {
    "hoeffding": "repro.core.hoeffding:synthesize",
    "azuma": "repro.core.hoeffding:synthesize",
    "hoeffding_probe": "repro.core.hoeffding:synthesize_probe",
    "explinsyn": "repro.core.explinsyn:synthesize",
    "explowsyn": "repro.core.explowsyn:synthesize",
    "polynomial_lower": "repro.core.polynomial_lower:synthesize",
    "table1_baseline": "repro.experiments.table1:synthesize_baseline",
    "exact": "repro.core.runcert:synthesize_exact",
}

#: engine-level default wall-clock deadline per task (seconds).  Generous —
#: the slowest legitimate synthesis is minutes, not an hour — but finite,
#: so no scheduler wait is unbounded unless the caller explicitly passes
#: ``task_timeout=0`` to opt out.
DEFAULT_TASK_TIMEOUT = 3600.0

_RESOLVED = {}


def _resolve(algorithm: str):
    fn = _RESOLVED.get(algorithm)
    if fn is None:
        try:
            target = ALGORITHMS[algorithm]
        except KeyError:
            raise EngineError(
                f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
            )
        module_name, func_name = target.split(":")
        fn = getattr(importlib.import_module(module_name), func_name)
        _RESOLVED[algorithm] = fn
    return fn


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for *infrastructure* failures.

    ``retries`` is the number of re-attempts after the first try (so a
    task runs at most ``retries + 1`` times per backend).  Backoff grows
    by ``backoff_factor`` per attempt, capped at ``max_delay``, with a
    deterministic jitter derived from ``sha256(task_key, attempt)`` —
    retried runs stay reproducible, but a burst of tasks retrying after
    one pool break does not stampede in lockstep.
    """

    retries: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    max_delay: float = 2.0

    def delay(self, key: str, attempt: int) -> float:
        base = self.backoff * self.backoff_factor ** max(0, attempt - 1)
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).hexdigest()
        unit = int(digest[:8], 16) / 0xFFFFFFFF
        return min(self.max_delay, base * (1.0 + self.jitter * unit))


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded deviation from the happy path."""

    kind: str  # "retry" | "pool-rebuild" | "backend-switch"
    backend: str  # scheduler kind; "old -> new" for backend switches
    detail: str
    task_id: str = ""


@dataclass
class DegradationReport:
    """Structured record of retries, pool rebuilds and backend switches.

    Accumulated across every ``run``/``run_inline`` of one engine; the CLI
    prints :meth:`render` after a run so degraded executions are visible,
    not silent.  An empty report is the happy path.
    """

    events: List[DegradationEvent] = field(default_factory=list)

    def note(self, kind: str, backend: str, detail: str, task_id: str = "") -> None:
        self.events.append(DegradationEvent(kind, backend, detail, task_id))

    @property
    def degraded(self) -> bool:
        return bool(self.events)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def render(self) -> List[str]:
        lines = []
        for e in self.events:
            if e.kind == "retry":
                lines.append(f"retried task {e.task_id!r} on {e.backend}: {e.detail}")
            elif e.kind == "pool-rebuild":
                lines.append(f"rebuilt {e.backend} pool: {e.detail}")
            elif e.kind == "backend-switch":
                lines.append(f"degraded backend {e.backend}: {e.detail}")
            else:  # pragma: no cover - future kinds render generically
                lines.append(f"{e.kind} [{e.backend}]: {e.detail}")
        return lines

    def __bool__(self) -> bool:
        return self.degraded


def execute_task(
    task: AnalysisTask,
    deps: Optional[Mapping[str, CertificateResult]] = None,
    engine: Optional["AnalysisEngine"] = None,
) -> CertificateResult:
    """Run one task; *synthesis* failures become ``status="error"`` results.

    Infrastructure failures (:class:`TaskError`, ``BrokenProcessPool`` —
    e.g. a probe worker pool breaking under an in-process synthesis) still
    propagate: they are retryable, and recording one as a row error would
    misreport the experiment.
    """
    try:
        fn = _resolve(task.algorithm)
        result = fn(task, deps=dict(deps or {}), engine=engine)
    except (TaskError, BrokenProcessPool):
        raise
    except Exception as exc:  # failures are data: tables record them per row
        return CertificateResult.failure(task, exc)
    result.task_key = task.cache_key
    return result


def _pool_execute(payload) -> CertificateResult:
    """Top-level worker entry (picklable); runs without an engine, so any
    subtask emission inside the synthesizer degrades to serial.  The
    payload carries the retry layer's attempt index so fault injection
    (:mod:`repro.engine.faults`) stays deterministic across processes."""
    task, deps, attempt = payload
    task_boundary(task.task_id, attempt)
    return execute_task(task, deps=deps, engine=None)


@contextmanager
def engine_scope(engine=None, jobs: int = 1, cache: Optional[ResultCache] = None):
    """Yield ``engine`` untouched, or a fresh one (built from ``jobs`` and
    ``cache``) that is closed on exit — the shared lifecycle of every
    harness entry point that accepts an optional caller-owned engine."""
    if engine is not None:
        yield engine
        return
    owned = AnalysisEngine.with_jobs(jobs, cache)
    try:
        yield owned
    finally:
        owned.close()


def _validate_graph(tasks: Sequence[AnalysisTask]):
    """Reject duplicate ids, unknown dependencies and cycles up front, so a
    malformed graph fails before any work is scheduled; returns the
    ``(indegree, children)`` maps for the run loop to consume."""
    ids = [t.task_id for t in tasks]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise EngineError(f"duplicate task ids: {dupes}")
    known = set(ids)
    for t in tasks:
        missing = [d for d in t.depends_on if d not in known]
        if missing:
            raise EngineError(f"task {t.task_id!r} depends on unknown {missing}")
    indegree = {t.task_id: len(set(t.depends_on)) for t in tasks}
    children: Dict[str, List[str]] = {t.task_id: [] for t in tasks}
    for t in tasks:
        for d in set(t.depends_on):
            children[d].append(t.task_id)
    # Kahn's algorithm on a scratch copy: cheap, and leaves the real run
    # loop free to assume acyclicity
    scratch = dict(indegree)
    queue = deque(i for i in ids if scratch[i] == 0)
    seen = 0
    while queue:
        seen += 1
        for child in children[queue.popleft()]:
            scratch[child] -= 1
            if scratch[child] == 0:
                queue.append(child)
    if seen != len(tasks):
        stuck = sorted(i for i in ids if scratch[i] > 0)
        raise EngineError(f"dependency cycle among {stuck}")
    return indegree, children


def _final_error(task: AnalysisTask, attempts_used: int, exc: BaseException) -> TaskError:
    """Wrap an exhausted infrastructure failure, preserving timeout-ness."""
    cls = TaskTimeoutError if isinstance(exc, TaskTimeoutError) else TaskError
    return cls(
        f"task {task.task_id!r} ({task.algorithm}) failed after "
        f"{attempts_used} attempt(s): {exc}"
    )


class AnalysisEngine:
    """Executes :class:`AnalysisTask` DAGs; see the module docstring.

    ``task_timeout`` is the engine-default per-task deadline in seconds
    (``None`` → :data:`DEFAULT_TASK_TIMEOUT`, ``0`` or negative →
    unbounded; an individual :attr:`AnalysisTask.timeout` overrides it).
    ``fallbacks`` is an ordered sequence of zero-argument scheduler
    factories forming the graceful-degradation chain; ``max_pool_rebuilds``
    caps in-place self-healing per backend before the chain advances.
    """

    def __init__(
        self,
        scheduler=None,
        cache: Optional[ResultCache] = None,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        task_timeout: Optional[float] = None,
        fallbacks: Sequence = (),
        max_pool_rebuilds: int = 3,
    ):
        self.scheduler = scheduler if scheduler is not None else SerialScheduler()
        self.cache = cache
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        if task_timeout is None:
            self.task_timeout: Optional[float] = DEFAULT_TASK_TIMEOUT
        elif task_timeout <= 0:
            self.task_timeout = None
        else:
            self.task_timeout = float(task_timeout)
        self._fallbacks = list(fallbacks)
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self._pool_rebuilds = 0
        self._report = DegradationReport()
        #: attempt index of the inline task currently executing, threaded
        #: into subtask payloads so fault rules keyed on attempts see the
        #: enclosing synthesis's retry count
        self._inline_attempt = 0

    @staticmethod
    def with_jobs(
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        task_timeout: Optional[float] = None,
    ) -> "AnalysisEngine":
        scheduler = make_scheduler(jobs)
        # every pooled engine can at least fall back to serial: a run that
        # would have died with the pool now finishes on one core
        fallbacks = [] if isinstance(scheduler, SerialScheduler) else [SerialScheduler]
        return AnalysisEngine(
            scheduler=scheduler,
            cache=cache,
            retry_policy=retry_policy,
            task_timeout=task_timeout,
            fallbacks=fallbacks,
        )

    # -- fault-tolerance plumbing --------------------------------------------------
    @property
    def degradation(self) -> DegradationReport:
        return self._report

    def _backend_name(self) -> str:
        return getattr(self.scheduler, "kind", type(self.scheduler).__name__)

    def _crash_domain(self) -> str:
        return getattr(self.scheduler, "crash_domain", "isolated")

    def _effective_timeout(self, task: AnalysisTask) -> Optional[float]:
        limit = task.timeout if task.timeout is not None else self.task_timeout
        return float(limit) if limit and limit > 0 else None

    def _deadline_for(self, task: AnalysisTask) -> Optional[float]:
        limit = self._effective_timeout(task)
        return time.monotonic() + limit if limit is not None else None

    def _switch_backend(self, reason: str) -> bool:
        """Advance the degradation chain; True when a replacement is live."""
        while self._fallbacks:
            factory = self._fallbacks.pop(0)
            try:
                replacement = factory()
            except Exception as exc:
                self._report.note(
                    "backend-switch",
                    self._backend_name(),
                    f"fallback construction failed ({exc}); trying the next tier",
                )
                continue
            old = self._backend_name()
            try:
                getattr(self.scheduler, "terminate", self.scheduler.close)()
            except Exception:
                pass  # the old backend is being abandoned precisely because it is sick
            self.scheduler = replacement
            self._pool_rebuilds = 0  # fresh backend, fresh healing budget
            self._report.note(
                "backend-switch",
                f"{old} -> {self._backend_name()}",
                reason,
            )
            return True
        return False

    def _heal_pool(self, exc: BaseException) -> None:
        """A shared-fate backend broke (or ate a deadline): rebuild it in
        place while budget remains, else advance the degradation chain;
        raises when every road is exhausted."""
        self._pool_rebuilds += 1
        if self._pool_rebuilds <= self.max_pool_rebuilds:
            try:
                self.scheduler.rebuild()
            except Exception as rebuild_exc:
                if not self._switch_backend(
                    f"rebuild failed ({rebuild_exc}) after: {exc}"
                ):
                    raise TaskError(
                        f"worker pool could not be rebuilt: {rebuild_exc}"
                    ) from exc
            else:
                self._report.note(
                    "pool-rebuild",
                    self._backend_name(),
                    f"rebuild {self._pool_rebuilds}/{self.max_pool_rebuilds} "
                    f"after: {exc}",
                )
            return
        if not self._switch_backend(
            f"pool rebuild budget ({self.max_pool_rebuilds}) exhausted after: {exc}"
        ):
            raise TaskError(
                f"worker pool kept breaking; rebuild budget "
                f"({self.max_pool_rebuilds}) exhausted: {exc}"
            ) from exc

    # -- DAG execution -------------------------------------------------------------
    def run(self, tasks: Sequence[AnalysisTask]) -> Dict[str, CertificateResult]:
        """Execute a task DAG with completion-driven dispatch; returns
        ``task_id -> result``.

        The ready-set is seeded with the zero-dependency tasks in input
        order and every completion decrements its dependents' outstanding
        counts, submitting each the instant it hits zero.  With a serial
        scheduler, submission executes inline, so execution order is the
        stable topological order of the input list — and because every
        task is a pure function of (task, deps), pooled completion order,
        retries and backend switches cannot change any result either.

        The completion wait is bounded by the nearest in-flight deadline
        (the watchdog): an expired task is abandoned, its worker reclaimed
        (pool rebuild for shared-fate backends), and the task retried
        under :attr:`retry_policy` like any other infrastructure failure.
        """
        tasks = list(tasks)
        indegree, children = _validate_graph(tasks)
        by_id = {t.task_id: t for t in tasks}
        results: Dict[str, CertificateResult] = {}
        ready = deque(t for t in tasks if indegree[t.task_id] == 0)
        inflight: Dict["object", AnalysisTask] = {}  # future -> task
        submit_seq: Dict["object", int] = {}  # future -> submission index
        deadlines: Dict["object", Optional[float]] = {}  # future -> monotonic ts
        attempts: Dict[str, int] = {}  # task_id -> infrastructure failures so far
        seq = 0

        def settle(task: AnalysisTask, result: CertificateResult) -> None:
            results[task.task_id] = result
            self._store(task, result)
            for child in children[task.task_id]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(by_id[child])

        def abandon_inflight() -> List[AnalysisTask]:
            """Cancel every in-flight future; tasks back in submit order."""
            order = sorted(inflight, key=submit_seq.get)
            requeued = [inflight[f] for f in order]
            for f in order:
                f.cancel()
            inflight.clear()
            submit_seq.clear()
            deadlines.clear()
            return requeued

        def recover(task: AnalysisTask, exc: BaseException, pool_fault: bool) -> None:
            """One infrastructure failure of ``task``: heal the backend,
            requeue (faulter last, innocents first, in submit order), or
            raise when retries, rebuilds and fallbacks are all spent."""
            used = attempts.get(task.task_id, 0) + 1
            attempts[task.task_id] = used
            innocents: List[AnalysisTask] = []
            if pool_fault:
                # shared fate: every in-flight future died with the pool;
                # requeue them all, but only the faulter pays an attempt
                innocents = abandon_inflight()
                self._heal_pool(exc)  # may switch backend or raise
            if used > self.retry_policy.retries:
                if self._switch_backend(
                    f"task {task.task_id!r} failed {used}x: {exc}"
                ):
                    attempts[task.task_id] = 0
                else:
                    for f in inflight:
                        f.cancel()
                    raise _final_error(task, used, exc) from exc
            else:
                self._report.note("retry", self._backend_name(), str(exc), task.task_id)
                time.sleep(self.retry_policy.delay(task.cache_key, used))
            ready.extend(innocents)
            ready.append(task)

        def expire_overdue() -> None:
            now = time.monotonic()
            overdue = [
                f
                for f in list(inflight)
                if deadlines.get(f) is not None and now >= deadlines[f] and not f.done()
            ]
            if not overdue:
                return
            future = min(overdue, key=submit_seq.get)
            task = inflight.pop(future)
            submit_seq.pop(future)
            deadlines.pop(future)
            future.cancel()  # running pool futures ignore this; the rebuild reclaims them
            limit = self._effective_timeout(task)
            recover(
                task,
                TaskTimeoutError(
                    f"task {task.task_id!r} ({task.algorithm}) exceeded its "
                    f"{limit:g}s deadline"
                ),
                # a hung pool worker still occupies a shared slot: reclaim
                # it the only way a process pool allows — rebuild
                pool_fault=self._crash_domain() == "pool",
            )

        try:
            while ready or inflight:
                while ready:
                    task = ready.popleft()
                    cached = self._lookup(task)
                    if cached is not None:
                        settle(task, cached)  # may extend `ready`
                        continue
                    deps = {d: results[d] for d in task.depends_on}
                    attempt = attempts.get(task.task_id, 0)
                    width = len(ready) + 1
                    if attempt > 0:
                        # a retried task must keep pool isolation: the
                        # width-1 inline degrade would run it in the engine
                        # process, and this task just killed a worker or
                        # overran its deadline
                        width = max(width, 2)
                    try:
                        future = self.scheduler.submit(
                            _pool_execute,
                            (task, deps, attempt),
                            width_hint=width,
                        )
                    except BrokenProcessPool as exc:
                        # the pool can break synchronously too (a worker was
                        # killed while we were submitting a burst)
                        recover(
                            task,
                            TaskError(
                                f"worker process died while submitting task "
                                f"{task.task_id!r} ({task.algorithm}): {exc!r}"
                            ),
                            pool_fault=True,
                        )
                        continue
                    except TaskError as exc:  # service-side submit failure
                        recover(task, exc, pool_fault=False)
                        continue
                    inflight[future] = task
                    submit_seq[future] = seq
                    deadlines[future] = self._deadline_for(task)
                    seq += 1
                if not inflight:
                    break
                done, _ = wait(
                    list(inflight),
                    timeout=self._wait_timeout(deadlines.values()),
                    return_when=FIRST_COMPLETED,
                )
                # settle in submission order — not required for correctness
                # (results are pure), but it keeps side effects like cache
                # stores reproducible run to run
                for future in sorted(done, key=submit_seq.get):
                    if future not in inflight:
                        break  # a pool-fault recovery flushed the in-flight set
                    task = inflight.pop(future)
                    submit_seq.pop(future)
                    deadlines.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as exc:
                        recover(
                            task,
                            TaskError(
                                f"worker process died while running task "
                                f"{task.task_id!r} ({task.algorithm}): {exc!r}"
                            ),
                            pool_fault=True,
                        )
                        continue
                    except TaskError as exc:  # transient: socket loss, injection
                        recover(task, exc, pool_fault=False)
                        continue
                    settle(task, outcome)
                expire_overdue()
        except KeyboardInterrupt:
            # Ctrl-C mid-dispatch: drop everything still queued and take the
            # pool down with us — forcefully, because a graceful close would
            # join whatever multi-minute solves are mid-flight and make the
            # interrupt appear to hang
            for future in inflight:
                future.cancel()
            getattr(self.scheduler, "terminate", self.scheduler.close)()
            raise
        except BaseException:
            for future in inflight:
                future.cancel()
            raise
        return results

    @staticmethod
    def _wait_timeout(deadline_values) -> Optional[float]:
        """Bounded completion wait: time to the nearest in-flight deadline
        (plus a hair, so the woken loop sees the deadline as passed), or
        ``None`` only when every deadline was explicitly disabled."""
        finite = [d for d in deadline_values if d is not None]
        if not finite:
            return None
        return max(0.0, min(finite) - time.monotonic()) + 0.01

    def map(self, tasks: Sequence[AnalysisTask]) -> List[CertificateResult]:
        """Dependency-free convenience: results in input order."""
        results = self.run(tasks)
        return [results[t.task_id] for t in tasks]

    def run_inline(
        self,
        task: AnalysisTask,
        deps: Optional[Mapping[str, CertificateResult]] = None,
    ) -> CertificateResult:
        """Execute one task in the calling process, passing the engine down
        so the synthesizer may fan subtasks out (eps-probe LPs).

        The same retry/self-healing semantics as :meth:`run` apply: an
        infrastructure failure inside the synthesis (a probe pool
        breaking, an injected transient, a subtask deadline) rebuilds the
        pool if needed and re-runs the synthesis — which is safe and
        bit-identical because synthesizers are pure functions of
        ``(task, deps)``.  Deadlines cannot preempt the inline computation
        itself (it runs on the calling thread); they bound its subtask
        waits instead.
        """
        cached = self._lookup(task)
        if cached is not None:
            return cached
        attempt = 0
        while True:
            try:
                self._inline_attempt = attempt
                task_boundary(task.task_id, attempt)
                result = execute_task(task, deps=deps, engine=self)
                break
            except (BrokenProcessPool, TaskError) as exc:
                attempt += 1
                pool_fault = isinstance(exc, (BrokenProcessPool, TaskTimeoutError)) or isinstance(
                    getattr(exc, "__cause__", None), BrokenProcessPool
                )
                if pool_fault and self._crash_domain() == "pool":
                    self._heal_pool(exc)  # may switch backend or raise
                if attempt > self.retry_policy.retries:
                    if self._switch_backend(
                        f"task {task.task_id!r} failed {attempt}x: {exc}"
                    ):
                        attempt = 0
                        continue
                    raise _final_error(task, attempt, exc) from exc
                self._report.note("retry", self._backend_name(), str(exc), task.task_id)
                time.sleep(self.retry_policy.delay(task.cache_key, attempt))
            finally:
                self._inline_attempt = 0
        self._store(task, result)
        return result

    def submit_subtasks(self, tasks: Sequence[AnalysisTask]) -> List["object"]:
        """Stream fine-grained subtasks through the scheduler as futures —
        no cache lookups, no DAG bookkeeping (subtasks are leaves).  The
        caller collects each future's result as it needs it, so probe
        rounds share the executor with whatever else is in flight instead
        of barriering it.  Callers should bound their waits with
        :meth:`subtask_timeout` (see ``repro.core.hoeffding``); the
        barrier convenience :meth:`map_subtasks` already does."""
        tasks = list(tasks)
        return [
            self.scheduler.submit(
                _pool_execute, (t, {}, self._inline_attempt), width_hint=len(tasks)
            )
            for t in tasks
        ]

    def subtask_timeout(self, task: AnalysisTask) -> Optional[float]:
        """The wall-clock budget a caller should allow a subtask future."""
        return self._effective_timeout(task)

    def map_subtasks(self, tasks: Sequence[AnalysisTask]) -> List[CertificateResult]:
        """Barrier convenience over :meth:`submit_subtasks`, with every
        wait bounded by the subtask's deadline."""
        tasks = list(tasks)
        out = []
        for task, future in zip(tasks, self.submit_subtasks(tasks)):
            limit = self._effective_timeout(task)
            try:
                out.append(future.result(timeout=limit))
            except FuturesTimeout as exc:
                future.cancel()
                raise TaskTimeoutError(
                    f"subtask {task.task_id!r} ({task.algorithm}) exceeded its "
                    f"{limit:g}s deadline"
                ) from exc
        return out

    @property
    def parallel(self) -> bool:
        return getattr(self.scheduler, "workers", 1) > 1

    # -- cache plumbing ------------------------------------------------------------
    def _lookup(self, task: AnalysisTask) -> Optional[CertificateResult]:
        if self.cache is None or not task.cacheable:
            return None
        hit = self.cache.get(task.cache_key)
        return hit.as_cached() if hit is not None else None

    def _store(self, task: AnalysisTask, result: CertificateResult) -> None:
        if (
            self.cache is not None
            and task.cacheable
            and not result.cached  # a replayed hit must not count as a store
            and result.ok
            and result.cache_ok
        ):
            self.cache.put(task.cache_key, result)

    def close(self) -> None:
        self.scheduler.close()
        if self.cache is not None:
            self.cache.gc_if_configured()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self) -> str:
        return f"AnalysisEngine(scheduler={self.scheduler!r}, cache={self.cache!r})"
