"""The :class:`AnalysisEngine`: execute task DAGs through a scheduler.

The engine owns three orthogonal concerns that every entry point used to
re-implement ad hoc:

* **dispatch** — :data:`ALGORITHMS` maps a task's ``algorithm`` string to a
  ``synthesize(task, deps, engine) -> CertificateResult`` function, resolved
  lazily by dotted path so worker processes import only what they run and
  the engine package stays import-cycle-free;
* **scheduling** — :meth:`AnalysisEngine.run` is *completion-driven*: a
  ready-set keyed on outstanding dependency counts submits each task the
  moment its last dependency resolves, and results are consumed as they
  complete, so a slow task delays only its own descendants — independent
  chains pipeline straight through (the old implementation barriered the
  DAG into waves, letting one slow Hoeffding task stall every downstream
  row).  Results are a pure function of each task, so scheduler choice and
  completion order never change the output;
* **caching** — before a ready task is submitted it is looked up in the
  optional on-disk :class:`~repro.engine.cache.ResultCache` by its content
  hash; fresh ``ok`` results are stored back, and a cache hit resolves its
  dependents immediately without touching the pool.

In-process synthesizers can themselves emit subtasks via
:meth:`AnalysisEngine.submit_subtasks` (futures) or
:meth:`AnalysisEngine.map_subtasks` (barrier) — that is how the Ser ternary
search solves the independent eps-probe LPs of one bracket step
concurrently.

Infrastructure failures are kept distinct from synthesis failures: a task
whose algorithm raises becomes a ``status="error"`` result (failures are
data — tables record them per row), but a worker *process* dying mid-task
(segfault, OOM kill) raises :class:`~repro.errors.TaskError` — silently
recording an infrastructure casualty as a row error would misreport the
experiment.  A ``KeyboardInterrupt`` during dispatch cancels everything
still queued and shuts the pool down before propagating.
"""

from __future__ import annotations

import importlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import EngineError, TaskError
from repro.engine.cache import ResultCache
from repro.engine.scheduler import SerialScheduler, make_scheduler
from repro.engine.task import AnalysisTask, CertificateResult

__all__ = ["ALGORITHMS", "AnalysisEngine", "engine_scope", "execute_task"]

#: algorithm name -> "module:function" implementing the synthesize protocol
ALGORITHMS: Dict[str, str] = {
    "hoeffding": "repro.core.hoeffding:synthesize",
    "azuma": "repro.core.hoeffding:synthesize",
    "hoeffding_probe": "repro.core.hoeffding:synthesize_probe",
    "explinsyn": "repro.core.explinsyn:synthesize",
    "explowsyn": "repro.core.explowsyn:synthesize",
    "polynomial_lower": "repro.core.polynomial_lower:synthesize",
    "table1_baseline": "repro.experiments.table1:synthesize_baseline",
}

_RESOLVED = {}


def _resolve(algorithm: str):
    fn = _RESOLVED.get(algorithm)
    if fn is None:
        try:
            target = ALGORITHMS[algorithm]
        except KeyError:
            raise EngineError(
                f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
            )
        module_name, func_name = target.split(":")
        fn = getattr(importlib.import_module(module_name), func_name)
        _RESOLVED[algorithm] = fn
    return fn


def execute_task(
    task: AnalysisTask,
    deps: Optional[Mapping[str, CertificateResult]] = None,
    engine: Optional["AnalysisEngine"] = None,
) -> CertificateResult:
    """Run one task; *synthesis* failures become ``status="error"`` results.

    Infrastructure failures (:class:`TaskError`, e.g. a probe worker pool
    breaking under an in-process synthesis) still propagate — recording
    one as a row error would misreport the experiment.
    """
    try:
        fn = _resolve(task.algorithm)
        result = fn(task, deps=dict(deps or {}), engine=engine)
    except TaskError:
        raise
    except Exception as exc:  # failures are data: tables record them per row
        return CertificateResult.failure(task, exc)
    result.task_key = task.cache_key
    return result


def _pool_execute(payload) -> CertificateResult:
    """Top-level worker entry (picklable); runs without an engine, so any
    subtask emission inside the synthesizer degrades to serial."""
    task, deps = payload
    return execute_task(task, deps=deps, engine=None)


@contextmanager
def engine_scope(engine=None, jobs: int = 1, cache: Optional[ResultCache] = None):
    """Yield ``engine`` untouched, or a fresh one (built from ``jobs`` and
    ``cache``) that is closed on exit — the shared lifecycle of every
    harness entry point that accepts an optional caller-owned engine."""
    if engine is not None:
        yield engine
        return
    owned = AnalysisEngine.with_jobs(jobs, cache)
    try:
        yield owned
    finally:
        owned.close()


def _validate_graph(tasks: Sequence[AnalysisTask]):
    """Reject duplicate ids, unknown dependencies and cycles up front, so a
    malformed graph fails before any work is scheduled; returns the
    ``(indegree, children)`` maps for the run loop to consume."""
    ids = [t.task_id for t in tasks]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise EngineError(f"duplicate task ids: {dupes}")
    known = set(ids)
    for t in tasks:
        missing = [d for d in t.depends_on if d not in known]
        if missing:
            raise EngineError(f"task {t.task_id!r} depends on unknown {missing}")
    indegree = {t.task_id: len(set(t.depends_on)) for t in tasks}
    children: Dict[str, List[str]] = {t.task_id: [] for t in tasks}
    for t in tasks:
        for d in set(t.depends_on):
            children[d].append(t.task_id)
    # Kahn's algorithm on a scratch copy: cheap, and leaves the real run
    # loop free to assume acyclicity
    scratch = dict(indegree)
    queue = deque(i for i in ids if scratch[i] == 0)
    seen = 0
    while queue:
        seen += 1
        for child in children[queue.popleft()]:
            scratch[child] -= 1
            if scratch[child] == 0:
                queue.append(child)
    if seen != len(tasks):
        stuck = sorted(i for i in ids if scratch[i] > 0)
        raise EngineError(f"dependency cycle among {stuck}")
    return indegree, children


class AnalysisEngine:
    """Executes :class:`AnalysisTask` DAGs; see the module docstring."""

    def __init__(self, scheduler=None, cache: Optional[ResultCache] = None):
        self.scheduler = scheduler if scheduler is not None else SerialScheduler()
        self.cache = cache

    @staticmethod
    def with_jobs(jobs: int = 1, cache: Optional[ResultCache] = None) -> "AnalysisEngine":
        return AnalysisEngine(scheduler=make_scheduler(jobs), cache=cache)

    # -- DAG execution -------------------------------------------------------------
    def run(self, tasks: Sequence[AnalysisTask]) -> Dict[str, CertificateResult]:
        """Execute a task DAG with completion-driven dispatch; returns
        ``task_id -> result``.

        The ready-set is seeded with the zero-dependency tasks in input
        order and every completion decrements its dependents' outstanding
        counts, submitting each the instant it hits zero.  With a serial
        scheduler, submission executes inline, so execution order is the
        stable topological order of the input list — and because every
        task is a pure function of (task, deps), pooled completion order
        cannot change any result either.
        """
        tasks = list(tasks)
        indegree, children = _validate_graph(tasks)
        by_id = {t.task_id: t for t in tasks}
        results: Dict[str, CertificateResult] = {}
        ready = deque(t for t in tasks if indegree[t.task_id] == 0)
        inflight: Dict["object", AnalysisTask] = {}  # future -> task
        submit_seq: Dict["object", int] = {}  # future -> submission index
        seq = 0

        def settle(task: AnalysisTask, result: CertificateResult) -> None:
            results[task.task_id] = result
            self._store(task, result)
            for child in children[task.task_id]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(by_id[child])

        try:
            while ready or inflight:
                while ready:
                    task = ready.popleft()
                    cached = self._lookup(task)
                    if cached is not None:
                        settle(task, cached)  # may extend `ready`
                        continue
                    deps = {d: results[d] for d in task.depends_on}
                    try:
                        future = self.scheduler.submit(
                            _pool_execute, (task, deps), width_hint=len(ready) + 1
                        )
                    except BrokenProcessPool as exc:
                        # the pool can break synchronously too (a worker was
                        # killed while we were submitting a burst)
                        raise TaskError(
                            f"worker process died while submitting task "
                            f"{task.task_id!r} ({task.algorithm}); results so "
                            f"far are intact but the pool is gone"
                        ) from exc
                    inflight[future] = task
                    submit_seq[future] = seq
                    seq += 1
                if not inflight:
                    break
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                # settle in submission order — not required for correctness
                # (results are pure), but it keeps side effects like cache
                # stores reproducible run to run
                for future in sorted(done, key=submit_seq.get):
                    task = inflight.pop(future)
                    submit_seq.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as exc:
                        raise TaskError(
                            f"worker process died while running task "
                            f"{task.task_id!r} ({task.algorithm}); results so "
                            f"far are intact but the pool is gone"
                        ) from exc
                    settle(task, outcome)
        except KeyboardInterrupt:
            # Ctrl-C mid-dispatch: drop everything still queued and take the
            # pool down with us — forcefully, because a graceful close would
            # join whatever multi-minute solves are mid-flight and make the
            # interrupt appear to hang
            for future in inflight:
                future.cancel()
            getattr(self.scheduler, "terminate", self.scheduler.close)()
            raise
        except BaseException:
            for future in inflight:
                future.cancel()
            raise
        return results

    def map(self, tasks: Sequence[AnalysisTask]) -> List[CertificateResult]:
        """Dependency-free convenience: results in input order."""
        results = self.run(tasks)
        return [results[t.task_id] for t in tasks]

    def run_inline(
        self,
        task: AnalysisTask,
        deps: Optional[Mapping[str, CertificateResult]] = None,
    ) -> CertificateResult:
        """Execute one task in the calling process, passing the engine down
        so the synthesizer may fan subtasks out (eps-probe LPs)."""
        cached = self._lookup(task)
        if cached is not None:
            return cached
        result = execute_task(task, deps=deps, engine=self)
        self._store(task, result)
        return result

    def submit_subtasks(self, tasks: Sequence[AnalysisTask]) -> List["object"]:
        """Stream fine-grained subtasks through the scheduler as futures —
        no cache lookups, no DAG bookkeeping (subtasks are leaves).  The
        caller collects each future's result as it needs it, so probe
        rounds share the executor with whatever else is in flight instead
        of barriering it."""
        tasks = list(tasks)
        return [
            self.scheduler.submit(_pool_execute, (t, {}), width_hint=len(tasks))
            for t in tasks
        ]

    def map_subtasks(self, tasks: Sequence[AnalysisTask]) -> List[CertificateResult]:
        """Barrier convenience over :meth:`submit_subtasks`."""
        return [future.result() for future in self.submit_subtasks(tasks)]

    @property
    def parallel(self) -> bool:
        return getattr(self.scheduler, "workers", 1) > 1

    # -- cache plumbing ------------------------------------------------------------
    def _lookup(self, task: AnalysisTask) -> Optional[CertificateResult]:
        if self.cache is None or not task.cacheable:
            return None
        hit = self.cache.get(task.cache_key)
        return hit.as_cached() if hit is not None else None

    def _store(self, task: AnalysisTask, result: CertificateResult) -> None:
        if (
            self.cache is not None
            and task.cacheable
            and not result.cached  # a replayed hit must not count as a store
            and result.ok
            and result.cache_ok
        ):
            self.cache.put(task.cache_key, result)

    def close(self) -> None:
        self.scheduler.close()
        if self.cache is not None:
            self.cache.gc_if_configured()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self) -> str:
        return f"AnalysisEngine(scheduler={self.scheduler!r}, cache={self.cache!r})"
