"""The :class:`AnalysisEngine`: execute task DAGs through a scheduler.

The engine owns three orthogonal concerns that every entry point used to
re-implement ad hoc:

* **dispatch** — :data:`ALGORITHMS` maps a task's ``algorithm`` string to a
  ``synthesize(task, deps, engine) -> CertificateResult`` function, resolved
  lazily by dotted path so worker processes import only what they run and
  the engine package stays import-cycle-free;
* **scheduling** — :meth:`AnalysisEngine.run` topologically sorts the DAG
  into waves of ready tasks and fans each wave through the pluggable
  scheduler (results come back in submission order, so the output is
  scheduler-independent);
* **caching** — before a wave is scheduled, each cacheable task is looked up
  in the optional on-disk :class:`~repro.engine.cache.ResultCache` by its
  content hash; fresh ``ok`` results are stored back.

In-process synthesizers can themselves emit subtasks via
:meth:`AnalysisEngine.map_subtasks` — that is how the Ser ternary search
solves the independent eps-probe LPs of one bracket step concurrently.
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import EngineError
from repro.engine.cache import ResultCache
from repro.engine.scheduler import SerialScheduler, make_scheduler
from repro.engine.task import AnalysisTask, CertificateResult

__all__ = ["ALGORITHMS", "AnalysisEngine", "engine_scope", "execute_task"]

#: algorithm name -> "module:function" implementing the synthesize protocol
ALGORITHMS: Dict[str, str] = {
    "hoeffding": "repro.core.hoeffding:synthesize",
    "azuma": "repro.core.hoeffding:synthesize",
    "hoeffding_probe": "repro.core.hoeffding:synthesize_probe",
    "explinsyn": "repro.core.explinsyn:synthesize",
    "explowsyn": "repro.core.explowsyn:synthesize",
    "polynomial_lower": "repro.core.polynomial_lower:synthesize",
    "table1_baseline": "repro.experiments.table1:synthesize_baseline",
}

_RESOLVED = {}


def _resolve(algorithm: str):
    fn = _RESOLVED.get(algorithm)
    if fn is None:
        try:
            target = ALGORITHMS[algorithm]
        except KeyError:
            raise EngineError(
                f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
            )
        module_name, func_name = target.split(":")
        fn = getattr(importlib.import_module(module_name), func_name)
        _RESOLVED[algorithm] = fn
    return fn


def execute_task(
    task: AnalysisTask,
    deps: Optional[Mapping[str, CertificateResult]] = None,
    engine: Optional["AnalysisEngine"] = None,
) -> CertificateResult:
    """Run one task; never raises — failures become ``status="error"``."""
    try:
        fn = _resolve(task.algorithm)
        result = fn(task, deps=dict(deps or {}), engine=engine)
    except Exception as exc:  # failures are data: tables record them per row
        return CertificateResult.failure(task, exc)
    result.task_key = task.cache_key
    return result


def _pool_execute(payload) -> CertificateResult:
    """Top-level worker entry (picklable); runs without an engine, so any
    subtask emission inside the synthesizer degrades to serial."""
    task, deps = payload
    return execute_task(task, deps=deps, engine=None)


@contextmanager
def engine_scope(engine=None, jobs: int = 1, cache: Optional[ResultCache] = None):
    """Yield ``engine`` untouched, or a fresh one (built from ``jobs`` and
    ``cache``) that is closed on exit — the shared lifecycle of every
    harness entry point that accepts an optional caller-owned engine."""
    if engine is not None:
        yield engine
        return
    owned = AnalysisEngine.with_jobs(jobs, cache)
    try:
        yield owned
    finally:
        owned.close()


class AnalysisEngine:
    """Executes :class:`AnalysisTask` DAGs; see the module docstring."""

    def __init__(self, scheduler=None, cache: Optional[ResultCache] = None):
        self.scheduler = scheduler if scheduler is not None else SerialScheduler()
        self.cache = cache

    @staticmethod
    def with_jobs(jobs: int = 1, cache: Optional[ResultCache] = None) -> "AnalysisEngine":
        return AnalysisEngine(scheduler=make_scheduler(jobs), cache=cache)

    # -- DAG execution -------------------------------------------------------------
    def run(self, tasks: Sequence[AnalysisTask]) -> Dict[str, CertificateResult]:
        """Execute a task DAG; returns ``task_id -> result``.

        Tasks whose dependencies are all resolved form a wave; waves are
        scheduled in input order, so with a serial scheduler execution order
        is exactly the (stable) topological order of the input list.
        """
        tasks = list(tasks)
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise EngineError(f"duplicate task ids: {dupes}")
        known = set(ids)
        for t in tasks:
            missing = [d for d in t.depends_on if d not in known]
            if missing:
                raise EngineError(f"task {t.task_id!r} depends on unknown {missing}")
        results: Dict[str, CertificateResult] = {}
        pending = list(tasks)
        while pending:
            ready = [t for t in pending if all(d in results for d in t.depends_on)]
            if not ready:
                raise EngineError(
                    f"dependency cycle among {[t.task_id for t in pending]}"
                )
            pending = [t for t in pending if t not in ready]
            to_run: List[AnalysisTask] = []
            for t in ready:
                cached = self._lookup(t)
                if cached is not None:
                    results[t.task_id] = cached
                else:
                    to_run.append(t)
            payloads = [
                (t, {d: results[d] for d in t.depends_on}) for t in to_run
            ]
            outs = self.scheduler.map(_pool_execute, payloads)
            for t, out in zip(to_run, outs):
                results[t.task_id] = out
                self._store(t, out)
        return results

    def map(self, tasks: Sequence[AnalysisTask]) -> List[CertificateResult]:
        """Dependency-free convenience: results in input order."""
        results = self.run(tasks)
        return [results[t.task_id] for t in tasks]

    def run_inline(
        self,
        task: AnalysisTask,
        deps: Optional[Mapping[str, CertificateResult]] = None,
    ) -> CertificateResult:
        """Execute one task in the calling process, passing the engine down
        so the synthesizer may fan subtasks out (eps-probe LPs)."""
        cached = self._lookup(task)
        if cached is not None:
            return cached
        result = execute_task(task, deps=deps, engine=self)
        self._store(task, result)
        return result

    def map_subtasks(self, tasks: Sequence[AnalysisTask]) -> List[CertificateResult]:
        """Fan fine-grained subtasks straight through the scheduler —
        no cache lookups, no DAG bookkeeping (subtasks are leaves)."""
        return self.scheduler.map(_pool_execute, [(t, {}) for t in tasks])

    @property
    def parallel(self) -> bool:
        return getattr(self.scheduler, "workers", 1) > 1

    # -- cache plumbing ------------------------------------------------------------
    def _lookup(self, task: AnalysisTask) -> Optional[CertificateResult]:
        if self.cache is None or not task.cacheable:
            return None
        hit = self.cache.get(task.cache_key)
        return hit.as_cached() if hit is not None else None

    def _store(self, task: AnalysisTask, result: CertificateResult) -> None:
        if (
            self.cache is not None
            and task.cacheable
            and result.ok
            and result.cache_ok
        ):
            self.cache.put(task.cache_key, result)

    def close(self) -> None:
        self.scheduler.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self) -> str:
        return f"AnalysisEngine(scheduler={self.scheduler!r}, cache={self.cache!r})"
