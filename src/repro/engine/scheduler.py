"""Pluggable execution backends for the analysis engine.

A scheduler is anything with ``submit(fn, item) -> Future`` (the engine's
completion-driven dispatch), an order-preserving ``map(fn, items)`` for
barrier-style subtask rounds, and ``close()``.  Three implementations ship:

* :class:`SerialScheduler` — in-process, zero overhead, the reference
  behavior every parallel backend must reproduce bit-for-bit;
* :class:`ProcessPoolScheduler` — a lazily created process pool owned by
  one engine run, capped at ``jobs`` but forking workers on demand (so
  ``--jobs 0`` on a 3-row table forks 3 workers, not one per CPU, while a
  later wide burst still reaches full parallelism);
* :class:`PersistentPoolScheduler` — the same executor kept warm in a
  process-global registry, so back-to-back engine runs inside one process
  skip pool startup.  ``close()`` deliberately leaves the pool alive;
  :func:`shutdown_persistent_pools` (registered ``atexit``) tears it down.

``jobs`` semantics live in exactly one place, :func:`resolve_jobs`:
``0`` means one worker per CPU and negative values are rejected — every
pool-backed scheduler resolves through it.

Both pool schedulers run on :class:`concurrent.futures.ProcessPoolExecutor`
rather than ``multiprocessing.Pool``: when a worker process dies mid-task
(segfault, OOM kill, ``os._exit``) the executor breaks loudly with
``BrokenProcessPool`` instead of hanging the caller, and the engine turns
that into a :class:`~repro.errors.TaskError`.

Determinism: every backend resolves futures with the value of a pure
function of its task, so scheduler choice never changes a certificate —
only wall-clock time.  ``tests/test_engine.py`` pins this down.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Protocol, Sequence, TypeVar, runtime_checkable

__all__ = [
    "Scheduler",
    "SerialScheduler",
    "ProcessPoolScheduler",
    "PersistentPoolScheduler",
    "make_scheduler",
    "resolve_jobs",
    "shutdown_persistent_pools",
]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int) -> int:
    """The single home of ``--jobs`` clamping: ``0`` resolves to one worker
    per CPU, positive values pass through, negative values are rejected.

    Every scheduler (and the worker service) normalizes through this
    function, so the CLI contract cannot drift between backends.
    """
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs if jobs > 0 else (os.cpu_count() or 1)


@runtime_checkable
class Scheduler(Protocol):
    """Completion-capable parallel backend over picklable work items.

    Fault-tolerance contract (see ``docs/ARCHITECTURE.md`` "Failure
    semantics"): ``kind`` names the backend in degradation reports;
    ``crash_domain`` is ``"pool"`` when one dying worker poisons every
    in-flight future (shared-fate process pools — the engine then rebuilds
    and requeues everything) or ``"isolated"`` when failures are per-task
    (serial, the worker service); ``rebuild()`` discards broken execution
    state so the next ``submit`` starts healthy, raising
    :class:`~repro.errors.TaskError` when the backend cannot be healed.
    """

    workers: int
    kind: str
    crash_domain: str

    def submit(self, fn: Callable[[T], R], item: T, width_hint: int = 1) -> "Future[R]": ...

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]: ...

    def rebuild(self) -> None: ...

    def close(self) -> None: ...


def _completed_future(fn, item) -> Future:
    """Run ``fn(item)`` now; hand the outcome back as a resolved future (the
    serial/degraded path of ``submit``)."""
    future: Future = Future()
    try:
        future.set_result(fn(item))
    except KeyboardInterrupt:
        # propagate immediately: parking Ctrl-C on the future would let the
        # dispatch loop inline-execute every remaining ready task first
        raise
    except BaseException as exc:
        future.set_exception(exc)
    return future


class SerialScheduler:
    """Run every task in the calling process, in order."""

    workers = 1
    kind = "serial"
    crash_domain = "isolated"

    def submit(self, fn, item, width_hint: int = 1) -> Future:
        return _completed_future(fn, item)

    def map(self, fn, items):
        return [fn(item) for item in items]

    def rebuild(self) -> None:
        pass  # no execution state to heal

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self) -> str:
        return "SerialScheduler()"


class _PoolSchedulerBase:
    """Shared machinery of the process-backed schedulers: jobs resolution,
    demand-clamped lazy executor creation, futures-based submit and an
    order-preserving map.  Subclasses own executor acquisition/release."""

    kind = "pool"
    #: one dead worker breaks the whole executor: every in-flight future of
    #: this scheduler shares its fate, so the engine requeues all of them
    #: after a rebuild
    crash_domain = "pool"

    def __init__(self, jobs: int = 0):
        self.jobs = resolve_jobs(jobs)
        #: futures submitted but not yet done — the width-1 inline degrade
        #: needs it (updated under _count_lock by done callbacks)
        self._outstanding = 0
        self._count_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self.jobs

    @property
    def resolved_workers(self) -> int:
        """Worker processes forked so far (0 until first use).

        Under the fork start method (Linux) the executor forks its full
        ``max_workers`` eagerly — dynamic spawning is disabled for fork —
        which is why pools are still sized ``min(jobs, observed demand)``
        rather than ``jobs`` outright."""
        executor = self._live_executor()
        return len(getattr(executor, "_processes", None) or ()) if executor else 0

    # -- executor lifecycle (subclass responsibility) ---------------------------
    def _acquire(self, width: int) -> ProcessPoolExecutor:
        raise NotImplementedError

    def _live_executor(self) -> Optional[ProcessPoolExecutor]:
        raise NotImplementedError

    @staticmethod
    def _inline_only() -> bool:
        # inside a daemonic pool worker no children can be forked: degrade
        return multiprocessing.current_process().daemon

    def _on_done(self, _future) -> None:
        with self._count_lock:
            self._outstanding -= 1

    # -- scheduling -------------------------------------------------------------
    def submit(self, fn, item, width_hint: int = 1) -> Future:
        if self._inline_only():
            return _completed_future(fn, item)
        if width_hint <= 1 and self._live_executor() is None:
            with self._count_lock:
                idle = self._outstanding == 0
            if idle:
                # a lone ready task with no pool yet: forking one buys zero
                # parallelism (the old map() width-1 degrade, preserved for
                # single-task runs and purely linear chains)
                return _completed_future(fn, item)
        executor = self._acquire(max(1, width_hint))
        with self._count_lock:
            self._outstanding += 1
        future = executor.submit(fn, item)
        future.add_done_callback(self._on_done)
        return future

    def map(self, fn, items):
        items = list(items)
        if not items:
            return []
        if len(items) == 1 or self._inline_only():
            # nothing to fan out / already inside a worker: stay in-process
            return [fn(item) for item in items]
        return [f.result() for f in [self.submit(fn, item, len(items)) for item in items]]

    def close(self) -> None:
        raise NotImplementedError

    def terminate(self) -> None:
        """Forceful teardown (interrupt paths): do not wait for running
        tasks.  Default falls back to the graceful close."""
        self.close()

    def rebuild(self) -> None:
        """Self-healing hook: kill whatever executor state exists (broken
        pools cannot be reused; hung workers must be reclaimed) and let the
        next ``submit`` lazily fork a fresh pool."""
        self.terminate()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ProcessPoolScheduler(_PoolSchedulerBase):
    """A per-run process pool, torn down by ``close()``.

    The executor is created lazily, sized ``min(jobs, observed demand)`` —
    under fork (Linux) ``ProcessPoolExecutor`` forks its full width
    eagerly, so sizing to ``jobs`` outright would fork idle processes for
    small task sets (ROADMAP: the 3-row tables).  When wider demand
    arrives, the pool regrows by *handover*: the old executor keeps
    draining its in-flight futures in the background while a wider one
    takes new submissions, so regrowth never blocks the dispatch loop
    behind a running task.
    """

    def __init__(self, jobs: int = 0):
        super().__init__(jobs)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._pool_width = 0
        self._draining: List[ProcessPoolExecutor] = []

    def _live_executor(self) -> Optional[ProcessPoolExecutor]:
        return self._executor

    def _acquire(self, width: int) -> ProcessPoolExecutor:
        want = max(1, min(self.jobs, width))
        if self._executor is not None and self._pool_width < want:
            # non-blocking handover: let the narrow pool finish what it is
            # running (its futures are still held by the caller) and put
            # fresh work on a wider one
            self._executor.shutdown(wait=False)
            self._draining.append(self._executor)
            self._executor = None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=want)
            self._pool_width = want
        return self._executor

    def close(self) -> None:
        for executor in self._draining:
            executor.shutdown(wait=True)
        self._draining.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
            self._pool_width = 0

    def terminate(self) -> None:
        # kill the workers outright: close() would join running tasks,
        # making Ctrl-C appear to hang for however long a solve takes
        for executor in self._draining + ([self._executor] if self._executor else []):
            for process in list(getattr(executor, "_processes", {}).values()):
                process.terminate()
            executor.shutdown(wait=False, cancel_futures=True)
        self._draining.clear()
        self._executor = None
        self._pool_width = 0

    def __repr__(self) -> str:
        return f"ProcessPoolScheduler(jobs={self.jobs})"


#: resolved worker count -> warm executor shared by PersistentPoolScheduler
#: instances (and therefore by successive engine runs in this process)
_PERSISTENT_EXECUTORS: Dict[int, ProcessPoolExecutor] = {}


class PersistentPoolScheduler(_PoolSchedulerBase):
    """A warm pool that outlives the engine run.

    Executors live in a process-global registry keyed by worker count, so
    back-to-back runs (``repro analyze`` in a long-lived process, a loop of
    table sweeps) reuse the same workers instead of re-forking.  Because the
    pool is meant to serve *future* runs too, it is sized to ``jobs``
    outright rather than clamped to the first batch.  ``close()`` is a
    no-op by design; call :func:`shutdown_persistent_pools` to reclaim the
    processes (also registered ``atexit``).
    """

    kind = "persistent-pool"

    def _live_executor(self) -> Optional[ProcessPoolExecutor]:
        return _PERSISTENT_EXECUTORS.get(self.jobs)

    def _acquire(self, width: int) -> ProcessPoolExecutor:
        executor = _PERSISTENT_EXECUTORS.get(self.jobs)
        # a worker crash breaks an executor permanently; replace it so the
        # next run heals instead of failing forever (_broken is stable
        # CPython plumbing; assume healthy if it ever goes away)
        if executor is not None and getattr(executor, "_broken", False):
            executor.shutdown(wait=False, cancel_futures=True)
            executor = None
        if executor is None:
            executor = ProcessPoolExecutor(max_workers=self.jobs)
            _PERSISTENT_EXECUTORS[self.jobs] = executor
        return executor

    def close(self) -> None:  # keep the pool warm for the next run
        pass

    def terminate(self) -> None:
        # an interrupt forfeits the warm pool: kill it and let the next
        # run build a fresh one
        executor = _PERSISTENT_EXECUTORS.pop(self.jobs, None)
        if executor is not None:
            for process in list(getattr(executor, "_processes", {}).values()):
                process.terminate()
            executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:
        return f"PersistentPoolScheduler(jobs={self.jobs})"


def shutdown_persistent_pools(wait: bool = True) -> int:
    """Tear down every warm executor; returns how many were shut down."""
    count = 0
    while _PERSISTENT_EXECUTORS:
        _, executor = _PERSISTENT_EXECUTORS.popitem()
        executor.shutdown(wait=wait, cancel_futures=True)
        count += 1
    return count


atexit.register(shutdown_persistent_pools, wait=False)


def make_scheduler(jobs: int = 1, persistent: bool = False, workers_dir=None):
    """``jobs == 1`` or negative: serial; ``jobs == 0``: a per-CPU pool;
    ``jobs > 1``: a pool of that size.  ``persistent=True`` selects the
    warm shared pool; ``workers_dir`` routes tasks to the daemonized
    worker service listening there (see :mod:`repro.engine.workers`).
    """
    if workers_dir is not None:
        from repro.engine.workers import ServiceScheduler

        return ServiceScheduler(workers_dir)
    if jobs == 1 or jobs < 0:
        return SerialScheduler()
    if persistent:
        return PersistentPoolScheduler(jobs=jobs)
    return ProcessPoolScheduler(jobs=jobs)
