"""Pluggable execution backends for the analysis engine.

A scheduler is anything with ``map(fn, items) -> list`` (order-preserving)
and ``close()``.  Two implementations ship:

* :class:`SerialScheduler` — in-process, zero overhead, the reference
  behavior every parallel backend must reproduce bit-for-bit;
* :class:`ProcessPoolScheduler` — a lazily created ``multiprocessing`` pool.
  The pool is sized on first use to ``min(jobs, runnable tasks)`` (so
  ``--jobs 0`` on a 3-row table forks 3 workers, not one per CPU) and grows
  up to ``jobs`` if a later, wider batch arrives.

Determinism: both backends return results in submission order, and every
task executor is a pure function of its task, so scheduler choice never
changes a certificate — only wall-clock time.  ``tests/test_engine.py``
pins this down.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Protocol, Sequence, TypeVar, runtime_checkable

__all__ = ["Scheduler", "SerialScheduler", "ProcessPoolScheduler", "make_scheduler"]

T = TypeVar("T")
R = TypeVar("R")


@runtime_checkable
class Scheduler(Protocol):
    """Order-preserving parallel map over picklable work items."""

    workers: int

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]: ...

    def close(self) -> None: ...


class SerialScheduler:
    """Run every task in the calling process, in order."""

    workers = 1

    def map(self, fn, items):
        return [fn(item) for item in items]

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self) -> str:
        return "SerialScheduler()"


class ProcessPoolScheduler:
    """Fan batches out over a persistent ``multiprocessing.Pool``.

    ``jobs=0`` means "one worker per CPU", but the pool is never larger
    than the widest batch seen so far — spawning idle processes for small
    task sets wastes fork+import time (ROADMAP: the 3-row tables).
    """

    def __init__(self, jobs: int = 0):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
        self._pool: Optional[multiprocessing.pool.Pool] = None
        #: size of the live pool (0 until first use) — exposed for tests and
        #: the runner's diagnostics
        self.resolved_workers = 0

    @property
    def workers(self) -> int:
        return self.jobs

    def _ensure_pool(self, batch_size: int):
        want = max(1, min(self.jobs, batch_size))
        if self._pool is not None and self.resolved_workers < min(self.jobs, batch_size):
            # a wider batch arrived: regrow (rare — first batch dominates)
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=want)
            self.resolved_workers = want
        return self._pool

    def map(self, fn, items):
        items = list(items)
        if not items:
            return []
        if len(items) == 1 or multiprocessing.current_process().daemon:
            # nothing to fan out / already inside a pool worker (daemonic
            # processes cannot fork children): degrade to serial
            return [fn(item) for item in items]
        pool = self._ensure_pool(len(items))
        return pool.map(fn, items)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self.resolved_workers = 0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self) -> str:
        return f"ProcessPoolScheduler(jobs={self.jobs})"


def make_scheduler(jobs: int = 1):
    """``jobs == 1`` or negative: serial; ``jobs == 0``: a per-CPU pool;
    ``jobs > 1``: a pool of that size."""
    if jobs == 1 or jobs < 0:
        return SerialScheduler()
    return ProcessPoolScheduler(jobs=jobs)
