"""Unified analysis engine: task graphs + pluggable schedulers.

Every synthesis the repository performs — a Table 1 row, a lower-bound
certificate, a single eps-probe LP inside the Ser ternary search — is
expressed as an :class:`AnalysisTask` (program + algorithm + parameters,
with a deterministic cache key).  The :class:`AnalysisEngine` executes DAGs
of such tasks through a pluggable :class:`Scheduler` (serial or process
pool) with an optional on-disk :class:`ResultCache`, so parallelism and
caching compose uniformly across all synthesis families and experiment
tables instead of being re-plumbed per entry point.

Layer contract (see ``docs/ARCHITECTURE.md``): the engine sits on top of
``repro.core`` and orchestrates it; algorithms are looked up in
:data:`ALGORITHMS` and must be pure functions of ``(task, deps)`` so that
scheduler choice can change wall-clock time but never a certificate —
serial vs pooled bit-identity is pinned by ``tests/test_engine.py``.
Cache keys are content-derived (sha256 over algorithm, program spec,
params, :data:`~repro.engine.task.CACHE_KEY_VERSION` and the fixpoint
engine fingerprint), so distinct entry points share hits and stale
artifacts from older engine versions read as misses.

Execution is fault-tolerant: per-task wall-clock deadlines, a bounded
:class:`RetryPolicy` for infrastructure failures, in-place pool
self-healing and a graceful-degradation chain, all recorded in a
:class:`DegradationReport` — and all exercised deterministically by the
:mod:`repro.engine.faults` injection harness (``REPRO_FAULTS``).
"""

from repro.engine.task import (
    AnalysisTask,
    CertificateResult,
    ProgramSpec,
    result_from_certificate,
    state_table_of,
)
from repro.engine.scheduler import (
    PersistentPoolScheduler,
    ProcessPoolScheduler,
    Scheduler,
    SerialScheduler,
    make_scheduler,
    resolve_jobs,
    shutdown_persistent_pools,
)
from repro.engine.cache import ResultCache
from repro.engine.engine import (
    ALGORITHMS,
    DEFAULT_TASK_TIMEOUT,
    AnalysisEngine,
    DegradationEvent,
    DegradationReport,
    RetryPolicy,
    engine_scope,
    execute_task,
)
from repro.engine.faults import FaultPlan, FaultRule, InjectedFault

__all__ = [
    "AnalysisTask",
    "CertificateResult",
    "ProgramSpec",
    "state_table_of",
    "result_from_certificate",
    "Scheduler",
    "SerialScheduler",
    "ProcessPoolScheduler",
    "PersistentPoolScheduler",
    "make_scheduler",
    "resolve_jobs",
    "shutdown_persistent_pools",
    "ResultCache",
    "ALGORITHMS",
    "AnalysisEngine",
    "DEFAULT_TASK_TIMEOUT",
    "DegradationEvent",
    "DegradationReport",
    "RetryPolicy",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "engine_scope",
    "execute_task",
]
