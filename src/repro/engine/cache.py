"""On-disk result cache keyed by task content hash, with size-based GC.

One pickle file per :class:`~repro.engine.task.CertificateResult`, named by
the task's ``cache_key`` (a sha256 of algorithm + program + parameters), so
a cache hit is a single ``open()`` and unpickle.  Writes go through a
temporary file + ``os.replace`` so concurrent workers or an interrupted run
never leave a torn entry; a corrupt/unreadable entry is treated as a miss
and overwritten on the next store.

Eviction is least-recently-used by file mtime under a configurable byte
budget (``max_bytes`` or the ``REPRO_CACHE_MAX_BYTES`` environment
variable; ``0`` means unbounded): hits re-touch their entry, so hot results
survive and cold ones age out oldest-first.  Two invariants:

* GC **never evicts an entry written by the current process's run** — a
  sweep that both fills and collects the cache must not cannibalize its own
  results mid-flight;
* GC only ever deletes ``*.pkl`` entries and their ``*.cert.json``
  certificate sidecars in the cache directory (plus its own orphaned
  ``*.tmp`` spill files), never anything else.

Run certificates ride as **sidecar blobs**: ``put`` strips a result's
``run_certificate`` payload into ``{key}.cert.json`` next to the pickle
(pickle lands first, so a crash can orphan a missing sidecar but never a
dangling one) and ``get`` reattaches it.  Sidecars share their entry's
LRU fate — eviction removes both files, and GC sweeps any sidecar whose
pickle is gone, so no orphaned blobs accumulate.

``repro cache stats`` and ``repro cache gc`` expose the same machinery
from the command line.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.engine.task import CertificateResult

__all__ = ["CacheStats", "GCReport", "ResultCache", "DEFAULT_CACHE_DIR", "parse_size"]

DEFAULT_CACHE_DIR = ".repro_cache"

#: byte budget taken from the environment when the constructor gets none;
#: unset/empty/0 means "never evict" (the pre-GC behavior)
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}

#: age before an orphaned ``*.tmp`` spill (a writer that died between
#: mkstemp and os.replace) is assumed dead and swept
_TMP_ORPHAN_SECONDS = 3600.0


def parse_size(text: str) -> int:
    """``"500"``/``"64k"``/``"128M"``/``"2g"`` -> bytes (suffixes are
    case-insensitive, powers of 1024)."""
    cleaned = str(text).strip().lower()
    if not cleaned:
        raise ValueError("empty size")
    factor = 1
    if cleaned[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = float(cleaned)
    except ValueError:
        raise ValueError(f"unparsable size {text!r} (use e.g. 500, 64k, 128M, 2g)")
    if value < 0:
        raise ValueError(f"size must be >= 0, got {text!r}")
    return int(value * factor)


@dataclass
class CacheStats:
    """Snapshot of the on-disk state (``repro cache stats``)."""

    directory: str
    entries: int
    total_bytes: int
    max_bytes: int
    oldest_age_seconds: float
    #: entries carrying a ``*.cert.json`` run-certificate sidecar
    certificates: int = 0
    #: sidecars whose pickle entry is gone (healed by the next gc)
    orphan_certificates: int = 0


@dataclass
class GCReport:
    """Outcome of one eviction sweep (``repro cache gc``)."""

    evicted: int
    freed_bytes: int
    kept: int
    kept_bytes: int
    protected: int  # entries spared because this run wrote them


class ResultCache:
    """Directory of pickled :class:`CertificateResult` entries."""

    def __init__(self, directory=DEFAULT_CACHE_DIR, max_bytes: Optional[int] = None):
        self.directory = Path(directory)
        if max_bytes is None:
            raw = os.environ.get(MAX_BYTES_ENV) or "0"
            try:
                max_bytes = parse_size(raw)
            except ValueError as exc:
                # a typo'd env var must fail as a clean CLI error, not a
                # traceback out of every command that touches a cache
                raise ReproError(f"${MAX_BYTES_ENV}: {exc}") from None
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: keys stored by this process — GC's do-not-evict set
        self._session_keys = set()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def blob_path(self, key: str) -> Path:
        """Where ``key``'s run-certificate sidecar lives (may not exist)."""
        return self.directory / f"{key}.cert.json"

    def get(self, key: str) -> Optional[CertificateResult]:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except Exception:
            # any unreadable entry is a miss: torn writes, a pickle from an
            # older code version whose classes moved (ImportError /
            # AttributeError), permission problems — the next store heals it
            self.misses += 1
            return None
        if not isinstance(result, CertificateResult):
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # LRU touch: a hit is a use
        except OSError:
            pass
        blob = self.get_blob(key)
        if blob is not None:
            try:
                result = replace(result, run_certificate=json.loads(blob))
            except ValueError:
                pass  # torn/corrupt sidecar: serve the entry without it
        return result

    def put(self, key: str, result: CertificateResult) -> None:
        certificate = result.run_certificate
        if certificate is not None:
            result = replace(result, run_certificate=None)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # sidecar second: a crash here leaves an entry without its
        # certificate (served as such), never a dangling sidecar
        if certificate is not None:
            self.put_blob(
                key,
                json.dumps(certificate, sort_keys=True, indent=2) + "\n",
            )
        self.stores += 1
        self._session_keys.add(key)

    # -- certificate sidecar blobs -------------------------------------------------
    def put_blob(self, key: str, text: str) -> None:
        """Atomically write ``key``'s sidecar blob (tmp + ``os.replace``)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, self.blob_path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_blob(self, key: str) -> Optional[str]:
        """Read ``key``'s sidecar blob, ``None`` when absent/unreadable."""
        try:
            with open(self.blob_path(key), "r", encoding="utf-8") as fh:
                return fh.read()
        except OSError:
            return None

    # -- garbage collection --------------------------------------------------------
    def _entries(self):
        """``(mtime, size, key, path)`` for every entry, oldest first.

        ``size`` includes the certificate sidecar when one exists — the
        entry and its sidecar live and die together, so the byte budget
        must account for both.
        """
        entries = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = self.directory / name
            try:
                stat = path.stat()
            except OSError:  # raced with another process's eviction
                continue
            key = name[: -len(".pkl")]
            size = stat.st_size
            try:
                size += self.blob_path(key).stat().st_size
            except OSError:
                pass
            entries.append((stat.st_mtime, size, key, path))
        entries.sort(key=lambda e: (e[0], e[2]))
        return entries

    def stats(self) -> CacheStats:
        entries = self._entries()
        now = time.time()
        keys = {key for _, _, key, _ in entries}
        certificates = orphans = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".cert.json"):
                continue
            if name[: -len(".cert.json")] in keys:
                certificates += 1
            else:
                orphans += 1
        return CacheStats(
            directory=str(self.directory),
            entries=len(entries),
            total_bytes=sum(size for _, size, _, _ in entries),
            max_bytes=self.max_bytes,
            oldest_age_seconds=max(0.0, now - entries[0][0]) if entries else 0.0,
            certificates=certificates,
            orphan_certificates=orphans,
        )

    def gc(self, max_bytes: Optional[int] = None) -> GCReport:
        """Evict oldest-first until the directory fits the byte budget.

        Entries written by this run are never evicted (they would be, by
        construction, the *newest*, but clock skew or a bulk import must
        not be able to break that promise).  ``max_bytes=0`` — or an
        unconfigured cache — evicts nothing.
        """
        budget = self.max_bytes if max_bytes is None else int(max_bytes)
        self._sweep_orphan_tmps()
        self._sweep_orphan_blobs()
        entries = self._entries()
        total = sum(size for _, size, _, _ in entries)
        evicted = freed = protected = 0
        if budget > 0:
            for _, size, key, path in entries:
                if total <= budget:
                    break
                if key in self._session_keys:
                    protected += 1
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue
                # co-evict the certificate sidecar: its entry is gone, so
                # leaving it would orphan the blob (size already counted)
                try:
                    os.unlink(self.blob_path(key))
                except OSError:
                    pass
                evicted += 1
                freed += size
                total -= size
        self.evictions += evicted
        return GCReport(
            evicted=evicted,
            freed_bytes=freed,
            kept=len(entries) - evicted,
            kept_bytes=total,
            protected=protected,
        )

    def gc_if_configured(self) -> Optional[GCReport]:
        """The engine's close hook: collect only when a budget is set."""
        if self.max_bytes > 0:
            return self.gc()
        return None

    def _sweep_orphan_blobs(self) -> None:
        """Delete ``*.cert.json`` sidecars whose pickle entry is gone
        (an eviction raced by another process, or a crash between entry
        delete and sidecar delete).  Session-written keys are spared: a
        writer may be between the sidecar write and our listing."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if not name.endswith(".cert.json"):
                continue
            key = name[: -len(".cert.json")]
            if key in self._session_keys:
                continue
            if (self.directory / f"{key}.pkl").exists():
                continue
            try:
                os.unlink(self.directory / name)
            except OSError:
                continue

    def _sweep_orphan_tmps(self) -> None:
        cutoff = time.time() - _TMP_ORPHAN_SECONDS
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if not name.endswith(".tmp"):
                continue
            path = self.directory / name
            try:
                if path.stat().st_mtime < cutoff:
                    os.unlink(path)
            except OSError:
                continue

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores}, "
            f"evictions={self.evictions})"
        )
