"""On-disk result cache keyed by task content hash.

One pickle file per :class:`~repro.engine.task.CertificateResult`, named by
the task's ``cache_key`` (a sha256 of algorithm + program + parameters), so
a cache hit is a single ``open()`` and unpickle.  Writes go through a
temporary file + ``os.replace`` so concurrent workers or an interrupted run
never leave a torn entry; a corrupt/unreadable entry is treated as a miss
and overwritten on the next store.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from repro.engine.task import CertificateResult

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro_cache"


class ResultCache:
    """Directory of pickled :class:`CertificateResult` entries."""

    def __init__(self, directory=DEFAULT_CACHE_DIR):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[CertificateResult]:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except Exception:
            # any unreadable entry is a miss: torn writes, a pickle from an
            # older code version whose classes moved (ImportError /
            # AttributeError), permission problems — the next store heals it
            self.misses += 1
            return None
        if not isinstance(result, CertificateResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: CertificateResult) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
