"""A persistent worker service: warm processes shared across CLI invocations.

:class:`PersistentPoolScheduler` keeps a pool warm *within* one process;
this module keeps one warm *between* processes.  ``repro workers start``
daemonizes a small service that owns a ``ProcessPoolExecutor`` and listens
on a Unix-domain socket (``multiprocessing.connection``, so payloads are
ordinary pickles); every later CLI invocation that passes ``--workers``
routes its engine tasks through :class:`ServiceScheduler` instead of
forking a fresh pool — back-to-back table sweeps stop paying pool startup
and per-worker import time.

The service is deliberately small and self-limiting:

* one request per connection-thread at a time; the client opens one
  connection per in-flight task, so concurrency is bounded by the engine's
  ready-set width;
* an **idle timeout** (default 300 s) shuts the daemon down after a quiet
  period, so a forgotten ``workers start`` cannot squat on the machine;
* state lives in one directory (socket, pidfile, metadata, log) with mode
  ``0700`` — the socket is reachable only by the owning user, which is the
  whole authentication story, exactly like ssh-agent's.

Protocol (client -> server): ``("ping",)`` -> status dict;
``("run", fn, item)`` -> ``("ok", result)`` | ``("error", repr)``;
``("stop",)`` -> ``("ok", "stopping")`` and the service exits.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing.connection import Client, Listener
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import TaskError
from repro.engine.scheduler import resolve_jobs

__all__ = [
    "DEFAULT_WORKERS_DIR",
    "DEFAULT_IDLE_TIMEOUT",
    "ServiceScheduler",
    "WorkerService",
    "service_status",
    "start_service",
    "stop_service",
]

DEFAULT_WORKERS_DIR = ".repro_workers"
DEFAULT_IDLE_TIMEOUT = 300.0

_SOCKET = "service.sock"
_PIDFILE = "service.pid"
_META = "service.json"
_LOG = "service.log"


def _paths(directory) -> Dict[str, Path]:
    base = Path(directory)
    return {
        "dir": base,
        "socket": base / _SOCKET,
        "pid": base / _PIDFILE,
        "meta": base / _META,
        "log": base / _LOG,
    }


class WorkerService:
    """The daemon side: a warm executor behind a Unix socket."""

    def __init__(
        self,
        directory=DEFAULT_WORKERS_DIR,
        jobs: int = 0,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    ):
        self.paths = _paths(directory)
        self.jobs = resolve_jobs(jobs)
        self.idle_timeout = float(idle_timeout)
        self.started = time.time()
        self.tasks_served = 0
        self._inflight = 0
        self._lock = threading.Lock()
        self._last_activity = time.monotonic()
        self._stop = threading.Event()
        self._listener: Optional[Listener] = None
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- lifecycle --------------------------------------------------------------
    def serve(self) -> int:
        """Run the accept loop until stopped or idle-timed-out (foreground)."""
        base = self.paths["dir"]
        base.mkdir(parents=True, exist_ok=True)
        os.chmod(base, 0o700)
        socket_path = self.paths["socket"]
        if socket_path.exists():
            # a live service must not be hijacked (two racing `workers
            # start` both get past the client-side liveness check); only a
            # stale socket from a dead service is swept
            if _request(base, ("ping",)) is not None:
                raise TaskError(
                    f"a worker service is already listening in {str(base)!r}"
                )
            socket_path.unlink()
        self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        self._listener = Listener(str(socket_path), family="AF_UNIX")
        self.paths["pid"].write_text(f"{os.getpid()}\n")
        self.paths["meta"].write_text(
            json.dumps(
                {
                    "pid": os.getpid(),
                    "jobs": self.jobs,
                    "idle_timeout": self.idle_timeout,
                    "started": self.started,
                }
            )
            + "\n"
        )
        try:  # SIGTERM (repro workers stop's fallback) exits cleanly too
            signal.signal(signal.SIGTERM, lambda *_: self._request_stop())
        except ValueError:  # not the main thread (embedded/foreground use)
            pass
        watchdog = threading.Thread(target=self._watchdog, daemon=True)
        watchdog.start()
        try:
            while True:
                try:
                    conn = self._listener.accept()
                except OSError:  # listener torn down
                    break
                if self._stop.is_set():
                    try:
                        conn.close()
                    except OSError:
                        pass
                    break
                threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                ).start()
        finally:
            self.shutdown()
        return 0

    def _request_stop(self) -> None:
        """Flag shutdown and wake the accept loop.

        Closing the listening socket from another thread does NOT unblock
        an ``accept()`` already parked in the kernel (this is how early
        versions leaked daemons), so we wake it with a throwaway
        self-connection instead and let the loop observe ``_stop``.
        """
        self._stop.set()
        try:
            with Client(str(self.paths["socket"]), family="AF_UNIX"):
                pass
        except OSError:
            pass

    def shutdown(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        # only reap state files this process owns — a daemon that lost a
        # start race must not delete the winner's socket on its way out
        if _read_pid(self.paths) in (os.getpid(), None):
            for name in ("socket", "pid", "meta"):
                try:
                    self.paths[name].unlink()
                except OSError:
                    pass

    def _watchdog(self) -> None:
        if self.idle_timeout <= 0:
            return  # never time out — no point polling
        while not self._stop.wait(min(1.0, max(0.05, self.idle_timeout / 10))):
            with self._lock:
                busy = self._inflight > 0
            if not busy and time.monotonic() - self._last_activity > self.idle_timeout:
                self._request_stop()
                return

    def _touch(self) -> None:
        # only task traffic counts as activity: a status ping must not keep
        # an otherwise idle daemon alive forever
        self._last_activity = time.monotonic()

    # -- request handling -------------------------------------------------------
    def _serve_connection(self, conn) -> None:
        try:
            while not self._stop.is_set():
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    return
                except Exception:
                    # an unpicklable request (client/daemon version skew is
                    # the usual cause): report it instead of dying silently
                    traceback.print_exc()
                    self._send_safe(conn, ("error", "daemon could not unpickle "
                                           "the request (client/daemon version "
                                           "skew? restart the service)"))
                    return
                kind = message[0]
                if kind == "ping":
                    self._send_safe(conn, self._status())
                elif kind == "stop":
                    self._send_safe(conn, ("ok", "stopping"))
                    self._request_stop()
                    return
                elif kind == "run":
                    self._touch()
                    self._send_safe(conn, self._run(message[1], message[2]))
                    self._touch()
                else:
                    self._send_safe(conn, ("error", f"unknown request {kind!r}"))
        except Exception:  # keep the daemon alive; log for service.log
            traceback.print_exc()
        finally:
            try:
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _send_safe(conn, payload) -> None:
        """Reply, degrading an unpicklable payload to a picklable error."""
        try:
            conn.send(payload)
        except (OSError, EOFError):
            pass  # client went away; nothing to tell it
        except Exception:
            traceback.print_exc()
            try:
                conn.send(("error", "daemon could not pickle the reply"))
            except Exception:
                pass

    def _run(self, fn, item):
        with self._lock:
            self._inflight += 1
        executor = self._executor  # snapshot: shutdown() may null it mid-race
        try:
            if executor is None or self._stop.is_set():
                return ("error", "service is stopping; resubmit after restart")
            future = executor.submit(fn, item)
            return ("ok", future.result())
        except BrokenProcessPool as exc:
            # the pool is unrecoverable: report, then die so the next
            # `workers start` begins from a healthy state
            self._request_stop()
            return ("broken", repr(exc))
        except Exception as exc:
            return ("error", repr(exc))
        finally:
            with self._lock:
                self._inflight -= 1
                self.tasks_served += 1

    def _status(self) -> Dict[str, Any]:
        with self._lock:
            inflight = self._inflight
        return {
            "pid": os.getpid(),
            "jobs": self.jobs,
            "idle_timeout": self.idle_timeout,
            "uptime_seconds": time.time() - self.started,
            "tasks_served": self.tasks_served,
            "inflight": inflight,
        }


# -- client side ------------------------------------------------------------------


def _request(directory, message, timeout: float = 5.0):
    """One round-trip to the service; ``None`` when nothing is listening."""
    socket_path = _paths(directory)["socket"]
    if not socket_path.exists():
        return None
    try:
        with Client(str(socket_path), family="AF_UNIX") as conn:
            conn.send(message)
            if not conn.poll(timeout):
                return None
            return conn.recv()
    except (OSError, EOFError):
        return None


def service_status(directory=DEFAULT_WORKERS_DIR) -> Optional[Dict[str, Any]]:
    """Status dict of the service at ``directory``, or ``None`` if down."""
    status = _request(directory, ("ping",))
    return status if isinstance(status, dict) else None


def stop_service(directory=DEFAULT_WORKERS_DIR, wait_seconds: float = 5.0) -> bool:
    """Ask the service to exit; returns True when it was running."""
    paths = _paths(directory)
    reply = _request(directory, ("stop",))
    deadline = time.monotonic() + wait_seconds
    while paths["socket"].exists() and time.monotonic() < deadline:
        time.sleep(0.05)
    # belt and braces: a wedged service gets a signal, stale files get swept
    pid = _read_pid(paths)
    if pid is not None and paths["socket"].exists():
        try:
            os.kill(pid, signal.SIGTERM)
        except (OSError, ProcessLookupError):
            pass
    for name in ("socket", "pid", "meta"):
        try:
            paths[name].unlink()
        except OSError:
            pass
    return reply is not None


def _read_pid(paths) -> Optional[int]:
    try:
        return int(paths["pid"].read_text().strip())
    except (OSError, ValueError):
        return None


def start_service(
    directory=DEFAULT_WORKERS_DIR,
    jobs: int = 0,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    foreground: bool = False,
    wait_seconds: float = 10.0,
) -> Dict[str, Any]:
    """Start the service; returns the running service's status dict.

    Starting twice is a no-op that returns the live service's status.  The
    daemon is a *fresh interpreter* (a detached ``python -m repro workers
    start --foreground`` in its own session), not a fork of the caller —
    forking a long-lived server out of an arbitrary multi-threaded parent
    (pytest, a notebook) inherits lock state no daemon should carry.
    """
    import subprocess
    import sys

    existing = service_status(directory)
    if existing is not None:
        # idempotent, but the caller asked for a configuration the live
        # service may not have — flag it so the CLI can say so
        existing["already_running"] = True
        return existing
    if foreground:
        WorkerService(directory, jobs=jobs, idle_timeout=idle_timeout).serve()
        return {"pid": os.getpid(), "jobs": resolve_jobs(jobs), "exited": True}
    paths = _paths(directory)
    paths["dir"].mkdir(parents=True, exist_ok=True)
    os.chmod(paths["dir"], 0o700)
    package_root = str(Path(__file__).resolve().parents[2])  # .../src
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    command = [
        sys.executable,
        "-m",
        "repro",
        "workers",
        "start",
        "--foreground",
        "--dir",
        str(directory),
        "--jobs",
        str(jobs),
        "--idle-timeout",
        str(idle_timeout),
    ]
    with open(paths["log"], "ab") as log:
        subprocess.Popen(
            command,
            stdout=log,
            stderr=log,
            stdin=subprocess.DEVNULL,
            start_new_session=True,  # detach: survives the caller, owns no tty
            env=env,
        )
    deadline = time.monotonic() + wait_seconds
    while time.monotonic() < deadline:
        status = service_status(directory)
        if status is not None:
            return status
        time.sleep(0.05)
    raise TaskError(
        f"worker service did not come up within {wait_seconds:.0f}s "
        f"(see {paths['log']})"
    )


class ServiceScheduler:
    """Scheduler backed by the daemonized worker service.

    Each submitted task rides its own connection on a small client thread,
    so in-flight tasks stream through the daemon's executor exactly like
    local futures — the engine's completion loop cannot tell the
    difference.  ``close()`` leaves the daemon warm for the next CLI
    invocation; that is the point.
    """

    def __init__(self, directory=DEFAULT_WORKERS_DIR):
        self.directory = directory
        status = service_status(directory)
        if status is None:
            raise TaskError(
                f"no worker service is listening in {str(directory)!r}; "
                f"start one with `repro workers start`"
            )
        self.workers = int(status["jobs"])

    def _roundtrip(self, fn, item, future: Future) -> None:
        try:
            reply = _request(self.directory, ("run", fn, item), timeout=None)
        except BaseException as exc:
            # never let this thread die with the future pending — the
            # engine's completion wait() has no timeout and would hang
            if future.set_running_or_notify_cancel():
                future.set_exception(exc)
            return
        if not future.set_running_or_notify_cancel():
            return
        if reply is None:
            future.set_exception(
                TaskError(
                    f"worker service in {str(self.directory)!r} went away "
                    f"mid-task"
                )
            )
        elif reply[0] == "ok":
            future.set_result(reply[1])
        elif reply[0] == "broken":
            future.set_exception(
                TaskError(f"worker service pool broke mid-task: {reply[1]}")
            )
        else:
            future.set_exception(TaskError(f"worker service error: {reply[1]}"))

    def submit(self, fn, item, width_hint: int = 1) -> Future:
        future: Future = Future()
        threading.Thread(
            target=self._roundtrip, args=(fn, item, future), daemon=True
        ).start()
        return future

    def map(self, fn, items) -> List:
        return [f.result() for f in [self.submit(fn, item) for item in items]]

    def close(self) -> None:  # the daemon outlives us by design
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self) -> str:
        return f"ServiceScheduler({str(self.directory)!r}, workers={self.workers})"
