"""A persistent worker service: warm processes shared across CLI invocations.

:class:`PersistentPoolScheduler` keeps a pool warm *within* one process;
this module keeps one warm *between* processes.  ``repro workers start``
daemonizes a small service that owns a ``ProcessPoolExecutor`` and listens
on a Unix-domain socket (``multiprocessing.connection``, so payloads are
ordinary pickles); every later CLI invocation that passes ``--workers``
routes its engine tasks through :class:`ServiceScheduler` instead of
forking a fresh pool — back-to-back table sweeps stop paying pool startup
and per-worker import time.

The service is deliberately small and self-limiting:

* one request per connection-thread at a time; the client opens one
  connection per in-flight task, so concurrency is bounded by the engine's
  ready-set width;
* an **idle timeout** (default 300 s) shuts the daemon down after a quiet
  period, so a forgotten ``workers start`` cannot squat on the machine;
* state lives in one directory (socket, pidfile, metadata, heartbeat, log)
  with mode ``0700`` — the socket is reachable only by the owning user,
  which is the whole authentication story, exactly like ssh-agent's.

Fault tolerance (see ``docs/ARCHITECTURE.md`` "Failure semantics"):

* the daemon writes a **heartbeat file** every :data:`HEARTBEAT_INTERVAL`
  seconds (JSON: timestamp, pid, in-flight count, rebuild count, last
  degradation).  Clients waiting on a task poll pid liveness and heartbeat
  age instead of blocking forever on ``recv`` — a daemon that is SIGKILLed
  mid-task surfaces as a retryable :class:`~repro.errors.TaskError` within
  a poll interval, and a wedged daemon (pid alive, heartbeat stale) within
  a few heartbeat intervals;
* the daemon **self-heals** its pool: a ``BrokenProcessPool`` swaps in a
  fresh executor (capped by ``max_pool_rebuilds``) and tells the affected
  clients to resubmit, instead of committing suicide on the first broken
  worker.  Only an exhausted rebuild budget takes the service down;
* ``repro workers start`` **sweeps stale state** (socket/pid/meta left by
  a crashed daemon) before starting, so a crash never wedges the next
  start;
* :func:`service_health` classifies the directory as ``up`` / ``down`` /
  ``wedged`` / ``stale`` for ``repro workers status``.

Protocol (client -> server): ``("ping",)`` -> status dict;
``("run", fn, item)`` -> ``("ok", result)`` | ``("error", repr)`` |
``("broken", repr)``; ``("stop",)`` -> ``("ok", "stopping")`` and the
service exits.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing.connection import Connection, Listener
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import TaskError
from repro.engine import faults
from repro.engine.scheduler import resolve_jobs

__all__ = [
    "DEFAULT_WORKERS_DIR",
    "DEFAULT_IDLE_TIMEOUT",
    "HEARTBEAT_INTERVAL",
    "ServiceScheduler",
    "WorkerService",
    "read_heartbeat",
    "service_health",
    "service_status",
    "start_service",
    "stop_service",
    "sweep_stale_service",
]

DEFAULT_WORKERS_DIR = ".repro_workers"
DEFAULT_IDLE_TIMEOUT = 300.0

#: how often the daemon's watchdog thread refreshes the heartbeat file
HEARTBEAT_INTERVAL = 1.0
#: a heartbeat older than this many intervals means the daemon is wedged
STALE_HEARTBEAT_FACTOR = 3.0
#: how often a client waiting on a task re-checks daemon liveness
_POLL_INTERVAL = 0.25
#: pool rebuilds the daemon will attempt before giving up and exiting
DEFAULT_MAX_POOL_REBUILDS = 3

_SOCKET = "service.sock"
_PIDFILE = "service.pid"
_META = "service.json"
_HEARTBEAT = "service.heartbeat"
_LOG = "service.log"


def _paths(directory) -> Dict[str, Path]:
    base = Path(directory)
    return {
        "dir": base,
        "socket": base / _SOCKET,
        "pid": base / _PIDFILE,
        "meta": base / _META,
        "heartbeat": base / _HEARTBEAT,
        "log": base / _LOG,
    }


class WorkerService:
    """The daemon side: a warm executor behind a Unix socket."""

    def __init__(
        self,
        directory=DEFAULT_WORKERS_DIR,
        jobs: int = 0,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS,
    ):
        self.paths = _paths(directory)
        self.jobs = resolve_jobs(jobs)
        self.idle_timeout = float(idle_timeout)
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self.started = time.time()
        self.tasks_served = 0
        self._inflight = 0
        self._pool_rebuilds = 0
        self._last_degradation = ""
        self._lock = threading.Lock()
        self._exec_lock = threading.Lock()  # serializes executor swaps
        self._last_activity = time.monotonic()
        self._stop = threading.Event()
        self._listener: Optional[Listener] = None
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- lifecycle --------------------------------------------------------------
    def serve(self) -> int:
        """Run the accept loop until stopped or idle-timed-out (foreground)."""
        base = self.paths["dir"]
        base.mkdir(parents=True, exist_ok=True)
        os.chmod(base, 0o700)
        socket_path = self.paths["socket"]
        if socket_path.exists():
            # a live service must not be hijacked (two racing `workers
            # start` both get past the client-side liveness check); only a
            # stale socket from a dead service is swept
            if _request(base, ("ping",)) is not None:
                raise TaskError(
                    f"a worker service is already listening in {str(base)!r}"
                )
            socket_path.unlink()
        self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        # a roomy backlog: a burst of engine clients plus a control ping
        # must never park a connect() in the kernel waiting for accept
        self._listener = Listener(str(socket_path), family="AF_UNIX", backlog=16)
        self.paths["pid"].write_text(f"{os.getpid()}\n")
        self.paths["meta"].write_text(
            json.dumps(
                {
                    "pid": os.getpid(),
                    # start_service daemonizes with start_new_session, so
                    # pgid == pid marks a daemon whose process group holds
                    # only it and its pool workers — what the stale-state
                    # sweeper may safely kill after a crash
                    "pgid": os.getpgid(0),
                    "jobs": self.jobs,
                    "idle_timeout": self.idle_timeout,
                    "started": self.started,
                }
            )
            + "\n"
        )
        # the first heartbeat lands before the first accept: a client must
        # never observe "socket up, no heartbeat yet"
        self._write_heartbeat()
        try:  # SIGTERM (repro workers stop's fallback) exits cleanly too
            signal.signal(signal.SIGTERM, lambda *_: self._request_stop())
        except ValueError:  # not the main thread (embedded/foreground use)
            pass
        watchdog = threading.Thread(target=self._watchdog, daemon=True)
        watchdog.start()
        try:
            while True:
                try:
                    conn = self._listener.accept()
                except OSError:  # listener torn down
                    break
                if self._stop.is_set():
                    try:
                        conn.close()
                    except OSError:
                        pass
                    break
                threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                ).start()
        finally:
            self.shutdown()
        return 0

    def _request_stop(self) -> None:
        """Flag shutdown and wake the accept loop.

        Closing the listening socket from another thread does NOT unblock
        an ``accept()`` already parked in the kernel (this is how early
        versions leaked daemons), so we wake it with a throwaway
        self-connection instead and let the loop observe ``_stop``.
        """
        self._stop.set()
        try:
            with _connect(self.paths["socket"], timeout=1.0):
                pass
        except OSError:
            pass

    def shutdown(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        # only reap state files this process owns — a daemon that lost a
        # start race must not delete the winner's socket on its way out
        if _read_pid(self.paths) in (os.getpid(), None):
            for name in ("socket", "pid", "meta", "heartbeat"):
                try:
                    self.paths[name].unlink()
                except OSError:
                    pass

    def _watchdog(self) -> None:
        """Heartbeat writer + idle-timeout enforcement, one thread."""
        tick = HEARTBEAT_INTERVAL
        if self.idle_timeout > 0:
            tick = min(tick, max(0.05, self.idle_timeout / 10))
        while not self._stop.wait(tick):
            self._write_heartbeat()
            if self.idle_timeout <= 0:
                continue  # never time out; only keep the heartbeat fresh
            with self._lock:
                busy = self._inflight > 0
            if not busy and time.monotonic() - self._last_activity > self.idle_timeout:
                self._request_stop()
                return

    def _write_heartbeat(self) -> None:
        """Atomically refresh the liveness file clients poll mid-task."""
        with self._lock:
            payload = {
                "time": time.time(),
                "pid": os.getpid(),
                "interval": HEARTBEAT_INTERVAL,
                "inflight": self._inflight,
                "tasks_served": self.tasks_served,
                "pool_rebuilds": self._pool_rebuilds,
                "last_degradation": self._last_degradation,
            }
        tmp = self.paths["heartbeat"].with_suffix(".tmp")
        try:
            tmp.write_text(json.dumps(payload) + "\n")
            os.replace(tmp, self.paths["heartbeat"])
        except OSError:  # disk hiccups must not kill the watchdog
            pass

    def _touch(self) -> None:
        # only task traffic counts as activity: a status ping must not keep
        # an otherwise idle daemon alive forever
        self._last_activity = time.monotonic()

    # -- request handling -------------------------------------------------------
    def _serve_connection(self, conn) -> None:
        try:
            while not self._stop.is_set():
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    return
                except Exception:
                    # an unpicklable request (client/daemon version skew is
                    # the usual cause): report it instead of dying silently
                    traceback.print_exc()
                    self._send_safe(conn, ("error", "daemon could not unpickle "
                                           "the request (client/daemon version "
                                           "skew? restart the service)"))
                    return
                kind = message[0]
                if kind == "ping":
                    self._send_safe(conn, self._status())
                elif kind == "stop":
                    self._send_safe(conn, ("ok", "stopping"))
                    self._request_stop()
                    return
                elif kind == "run":
                    self._touch()
                    reply = self._run(message[1], message[2])
                    self._touch()
                    if _drop_reply_injected(message[2]):
                        return  # chaos: result computed, reply never sent
                    self._send_safe(conn, reply)
                else:
                    self._send_safe(conn, ("error", f"unknown request {kind!r}"))
        except Exception:  # keep the daemon alive; log for service.log
            traceback.print_exc()
        finally:
            try:
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _send_safe(conn, payload) -> None:
        """Reply, degrading an unpicklable payload to a picklable error."""
        try:
            conn.send(payload)
        except (OSError, EOFError):
            pass  # client went away; nothing to tell it
        except Exception:
            traceback.print_exc()
            try:
                conn.send(("error", "daemon could not pickle the reply"))
            except Exception:
                pass

    def _run(self, fn, item):
        with self._lock:
            self._inflight += 1
        executor = self._executor  # snapshot: a swap may race mid-task
        try:
            if executor is None or self._stop.is_set():
                return ("error", "service is stopping; resubmit after restart")
            future = executor.submit(fn, item)
            return ("ok", future.result())
        except BrokenProcessPool as exc:
            return self._heal_pool(executor, exc)
        except Exception as exc:
            return ("error", repr(exc))
        finally:
            with self._lock:
                self._inflight -= 1
                self.tasks_served += 1

    def _heal_pool(self, broken, exc):
        """A worker died and took the shared pool with it: swap in a fresh
        executor (first thread to notice wins; the rest observe the swap)
        and tell the client to resubmit.  Only an exhausted rebuild budget
        still takes the daemon down — the pre-healing behavior."""
        with self._exec_lock:
            if self._executor is None or self._stop.is_set():
                return ("error", "service is stopping; resubmit after restart")
            if self._executor is broken:
                if self._pool_rebuilds >= self.max_pool_rebuilds:
                    with self._lock:
                        self._last_degradation = (
                            f"pool rebuild budget ({self.max_pool_rebuilds}) "
                            f"exhausted: {exc!r}"
                        )
                    self._write_heartbeat()
                    self._request_stop()
                    return ("broken", repr(exc))
                broken.shutdown(wait=False, cancel_futures=True)
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
                with self._lock:
                    self._pool_rebuilds += 1
                    self._last_degradation = (
                        f"worker pool rebuilt "
                        f"({self._pool_rebuilds}/{self.max_pool_rebuilds}) "
                        f"after: {exc!r}"
                    )
                self._write_heartbeat()
            with self._lock:
                rebuilds = self._pool_rebuilds
        return (
            "error",
            f"worker pool broke mid-task and was rebuilt "
            f"(rebuild #{rebuilds}); resubmit",
        )

    def _status(self) -> Dict[str, Any]:
        with self._lock:
            inflight = self._inflight
            rebuilds = self._pool_rebuilds
            degradation = self._last_degradation
        return {
            "pid": os.getpid(),
            "jobs": self.jobs,
            "idle_timeout": self.idle_timeout,
            "uptime_seconds": time.time() - self.started,
            "tasks_served": self.tasks_served,
            "inflight": inflight,
            "pool_rebuilds": rebuilds,
            "last_degradation": degradation,
        }


def _drop_reply_injected(item) -> bool:
    """Chaos hook: drop the reply for engine payloads a fault rule names.

    The attempt index rides in the payload (``(task, deps, attempt)``), so
    whether a reply is dropped is a pure function of the installed plan —
    the daemon keeps no injection state, and a retried attempt with a
    higher index sails through.  Non-engine payloads never match.
    """
    plan = faults.active_plan()
    if plan is None or not plan.rules:
        return False
    try:
        task, _deps, attempt = item
        key = task.task_id
        attempt = int(attempt)
    except (TypeError, ValueError, AttributeError):
        return False
    return plan.rule_for("service.drop_reply", key, attempt) is not None


# -- client side ------------------------------------------------------------------


def _connect(socket_path, timeout: float) -> Connection:
    """Connect to the service socket with a time bound.

    A plain ``Client()`` connect has no timeout, and a connect to a stale
    socket can *block in the kernel*, not fail: pool workers forked by a
    SIGKILLed daemon still hold an inherited copy of the listening socket
    fd, so connects succeed into an accept backlog nobody will ever
    drain — and once it fills, further connects hang forever, before any
    ``poll()`` bound applies.  A socket-level timeout turns that into an
    ``OSError`` callers already treat as "nothing is listening"."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout)
        sock.connect(str(socket_path))
        sock.setblocking(True)  # Connection expects a plain blocking fd
        return Connection(sock.detach())
    except BaseException:
        sock.close()
        raise


def _request(directory, message, timeout: float = 5.0):
    """One bounded round-trip to the service for *control* messages
    (ping/stop); ``None`` when nothing is listening or nothing answers."""
    socket_path = _paths(directory)["socket"]
    if not socket_path.exists():
        return None
    try:
        with _connect(socket_path, timeout) as conn:
            conn.send(message)
            if not conn.poll(timeout):
                return None
            return conn.recv()
    except (OSError, EOFError):
        return None


def _pid_alive(pid: Optional[int]) -> bool:
    if pid is None:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass  # EPERM and friends: something owns the pid — call it alive
    return True


def _liveness_error(paths) -> Optional[str]:
    """Why a client should stop waiting on the daemon, or ``None``.

    Death detection is the fast path: a missing pidfile or dead pid is
    conclusive.  A live pid with a stale heartbeat means the daemon is
    wedged (stopped, deadlocked) — conclusive too, after
    :data:`STALE_HEARTBEAT_FACTOR` missed beats.  A missing heartbeat with
    a live pid is indeterminate (startup race) and keeps the wait going.
    """
    pid = _read_pid(paths)
    if pid is None:
        return (
            f"worker service in {str(paths['dir'])!r} died mid-task "
            f"(pidfile gone)"
        )
    if not _pid_alive(pid):
        return f"worker service (pid {pid}) died mid-task"
    heartbeat = read_heartbeat(paths["dir"])
    if heartbeat is not None:
        interval = float(heartbeat.get("interval", HEARTBEAT_INTERVAL)) or HEARTBEAT_INTERVAL
        age = time.time() - float(heartbeat.get("time", 0.0))
        if age > STALE_HEARTBEAT_FACTOR * interval:
            return (
                f"worker service (pid {pid}) is wedged: heartbeat is "
                f"{age:.1f}s old (interval {interval:g}s)"
            )
    return None


def read_heartbeat(directory=DEFAULT_WORKERS_DIR) -> Optional[Dict[str, Any]]:
    """The daemon's last heartbeat payload, or ``None``."""
    try:
        return json.loads(_paths(directory)["heartbeat"].read_text())
    except (OSError, ValueError):
        return None


def service_status(directory=DEFAULT_WORKERS_DIR) -> Optional[Dict[str, Any]]:
    """Status dict of the service at ``directory``, or ``None`` if down."""
    status = _request(directory, ("ping",))
    return status if isinstance(status, dict) else None


def service_health(directory=DEFAULT_WORKERS_DIR) -> Dict[str, Any]:
    """Classify the service directory for ``repro workers status``.

    ``state`` is one of:

    * ``"up"`` — the daemon answered a ping; heartbeat fields attached;
    * ``"down"`` — no state files at all: nothing was ever started (or a
      clean stop reaped everything);
    * ``"wedged"`` — the pid is alive but the daemon is not answering
      (and/or its heartbeat is stale): it holds the socket but serves
      nothing.  ``repro workers status`` exits non-zero on this;
    * ``"stale"`` — state files remain but the pid is dead: a crashed
      daemon; the next ``repro workers start`` sweeps it.
    """
    paths = _paths(directory)
    status = _request(directory, ("ping",), timeout=2.0)
    if isinstance(status, dict):
        out = dict(status)
        out["state"] = "up"
        heartbeat = read_heartbeat(directory)
        if heartbeat is not None:
            out["heartbeat_age"] = max(0.0, time.time() - float(heartbeat.get("time", 0.0)))
            out.setdefault("pool_rebuilds", heartbeat.get("pool_rebuilds", 0))
            out.setdefault("last_degradation", heartbeat.get("last_degradation", ""))
        return out
    pid = _read_pid(paths)
    if pid is None and not paths["socket"].exists():
        return {"state": "down", "dir": str(directory)}
    if _pid_alive(pid):
        heartbeat = read_heartbeat(directory) or {}
        age = None
        if "time" in heartbeat:
            age = max(0.0, time.time() - float(heartbeat["time"]))
        return {
            "state": "wedged",
            "dir": str(directory),
            "pid": pid,
            "heartbeat_age": age,
            "last_degradation": heartbeat.get("last_degradation", ""),
        }
    return {"state": "stale", "dir": str(directory), "pid": pid}


def _kill_orphan_workers(paths, pid: Optional[int]) -> None:
    """SIGKILL what remains of a dead daemon's process group.

    Pool workers forked by the daemon survive its SIGKILL: they squat on
    their imports' memory and — worse — on an inherited copy of the
    listening socket fd, which keeps the stale socket accepting connects
    nobody will ever serve.  When ``start_service`` spawned the daemon it
    made it a session/group leader (``pgid == pid``, recorded in the meta
    file), so once that pid is dead the group holds exactly the orphans
    and killing it is precise.  A daemon run by hand in the caller's own
    group records a foreign pgid and is skipped.
    """
    if pid is None:
        return
    try:
        pgid = int(json.loads(paths["meta"].read_text())["pgid"])
    except (OSError, ValueError, TypeError, KeyError):
        return
    if pgid != pid:
        return
    try:
        os.killpg(pgid, signal.SIGKILL)
    except (OSError, ProcessLookupError):
        pass


def sweep_stale_service(directory=DEFAULT_WORKERS_DIR) -> bool:
    """Reap state files (and orphaned pool workers) left by a *crashed*
    daemon.

    Returns True when something was swept.  A live daemon (answers pings)
    and a wedged one (pid alive, not answering) are both left alone — the
    first needs no help and the second owns a real process that ``repro
    workers stop`` should signal; sweeping its socket out from under it
    would orphan it.
    """
    paths = _paths(directory)
    if not (paths["socket"].exists() or paths["pid"].exists()):
        return False
    if _request(directory, ("ping",)) is not None:
        return False
    pid = _read_pid(paths)
    if _pid_alive(pid):
        return False
    _kill_orphan_workers(paths, pid)
    swept = False
    for name in ("socket", "pid", "meta", "heartbeat"):
        try:
            paths[name].unlink()
            swept = True
        except OSError:
            pass
    return swept


def stop_service(directory=DEFAULT_WORKERS_DIR, wait_seconds: float = 5.0) -> bool:
    """Ask the service to exit; returns True when it was running."""
    paths = _paths(directory)
    reply = _request(directory, ("stop",))
    deadline = time.monotonic() + wait_seconds
    while paths["socket"].exists() and time.monotonic() < deadline:
        time.sleep(0.05)
    # belt and braces: a wedged service gets a signal, stale files get swept
    pid = _read_pid(paths)
    if pid is not None and paths["socket"].exists():
        try:
            os.kill(pid, signal.SIGTERM)
        except (OSError, ProcessLookupError):
            pass
    for name in ("socket", "pid", "meta", "heartbeat"):
        try:
            paths[name].unlink()
        except OSError:
            pass
    return reply is not None


def _read_pid(paths) -> Optional[int]:
    try:
        return int(paths["pid"].read_text().strip())
    except (OSError, ValueError):
        return None


def start_service(
    directory=DEFAULT_WORKERS_DIR,
    jobs: int = 0,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    foreground: bool = False,
    wait_seconds: float = 10.0,
) -> Dict[str, Any]:
    """Start the service; returns the running service's status dict.

    Starting twice is a no-op that returns the live service's status.
    Stale state from a crashed daemon is swept first (reported as
    ``"swept_stale"`` in the result), so a crash never wedges the next
    start.  The daemon is a *fresh interpreter* (a detached ``python -m
    repro workers start --foreground`` in its own session), not a fork of
    the caller — forking a long-lived server out of an arbitrary
    multi-threaded parent (pytest, a notebook) inherits lock state no
    daemon should carry.
    """
    import subprocess
    import sys

    existing = service_status(directory)
    if existing is not None:
        # idempotent, but the caller asked for a configuration the live
        # service may not have — flag it so the CLI can say so
        existing["already_running"] = True
        return existing
    swept = sweep_stale_service(directory)
    if foreground:
        WorkerService(directory, jobs=jobs, idle_timeout=idle_timeout).serve()
        return {"pid": os.getpid(), "jobs": resolve_jobs(jobs), "exited": True}
    paths = _paths(directory)
    paths["dir"].mkdir(parents=True, exist_ok=True)
    os.chmod(paths["dir"], 0o700)
    package_root = str(Path(__file__).resolve().parents[2])  # .../src
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    command = [
        sys.executable,
        "-m",
        "repro",
        "workers",
        "start",
        "--foreground",
        "--dir",
        str(directory),
        "--jobs",
        str(jobs),
        "--idle-timeout",
        str(idle_timeout),
    ]
    with open(paths["log"], "ab") as log:
        subprocess.Popen(
            command,
            stdout=log,
            stderr=log,
            stdin=subprocess.DEVNULL,
            start_new_session=True,  # detach: survives the caller, owns no tty
            env=env,
        )
    deadline = time.monotonic() + wait_seconds
    while time.monotonic() < deadline:
        status = service_status(directory)
        if status is not None:
            if swept:
                status["swept_stale"] = True
            return status
        time.sleep(0.05)
    raise TaskError(
        f"worker service did not come up within {wait_seconds:.0f}s "
        f"(see {paths['log']})"
    )


class ServiceScheduler:
    """Scheduler backed by the daemonized worker service.

    Each submitted task rides its own connection on a small client thread,
    so in-flight tasks stream through the daemon's executor exactly like
    local futures — the engine's completion loop cannot tell the
    difference.  ``close()`` leaves the daemon warm for the next CLI
    invocation; that is the point.

    A ``BrokenProcessPool`` inside the daemon is the *daemon's* problem
    (it self-heals); what clients see is at worst a retryable
    :class:`~repro.errors.TaskError`, hence ``crash_domain="isolated"`` —
    one task's failure says nothing about the other in-flight tasks.
    While waiting for a result, the client thread polls daemon liveness
    (pid + heartbeat age) every :data:`_POLL_INTERVAL` seconds instead of
    blocking forever, so a daemon killed mid-task fails the task within a
    poll tick rather than hanging the engine.
    """

    kind = "service"
    crash_domain = "isolated"

    def __init__(self, directory=DEFAULT_WORKERS_DIR):
        self.directory = directory
        status = service_status(directory)
        if status is None:
            raise TaskError(
                f"no worker service is listening in {str(directory)!r}; "
                f"start one with `repro workers start`"
            )
        self.workers = int(status["jobs"])

    def rebuild(self) -> None:
        """The daemon heals its own pool; a client-side rebuild is just a
        liveness re-check so the engine's healing path fails loudly when
        the daemon is truly gone."""
        if service_status(self.directory) is None:
            raise TaskError(
                f"worker service in {str(self.directory)!r} is gone; "
                f"restart it with `repro workers start`"
            )

    def _roundtrip(self, fn, item, future: Future) -> None:
        try:
            reply = self._bounded_request(("run", fn, item))
        except BaseException as exc:
            # never let this thread die with the future pending — the
            # engine's completion wait would outlast the daemon
            if future.set_running_or_notify_cancel():
                future.set_exception(exc)
            return
        if not future.set_running_or_notify_cancel():
            return
        if reply is None:
            future.set_exception(
                TaskError(
                    f"worker service in {str(self.directory)!r} went away "
                    f"mid-task"
                )
            )
        elif reply[0] == "ok":
            future.set_result(reply[1])
        elif reply[0] == "broken":
            future.set_exception(
                TaskError(f"worker service pool broke mid-task: {reply[1]}")
            )
        else:
            future.set_exception(TaskError(f"worker service error: {reply[1]}"))

    def _bounded_request(self, message):
        """A task round-trip whose wait is bounded by liveness polling.

        Returns the reply, ``None`` when the connection dropped (socket
        gone / EOF), or raises :class:`TaskError` when the daemon died or
        wedged mid-wait.  Task deadlines are the engine's job; this layer
        only guarantees the wait ends when the *daemon* does.
        """
        paths = _paths(self.directory)
        if not paths["socket"].exists():
            return None
        try:
            with _connect(paths["socket"], timeout=5.0) as conn:
                conn.send(message)
                while not conn.poll(_POLL_INTERVAL):
                    stalled = _liveness_error(paths)
                    if stalled is not None:
                        raise TaskError(stalled)
                return conn.recv()
        except (OSError, EOFError):
            return None

    def submit(self, fn, item, width_hint: int = 1) -> Future:
        future: Future = Future()
        threading.Thread(
            target=self._roundtrip, args=(fn, item, future), daemon=True
        ).start()
        return future

    def map(self, fn, items) -> List:
        return [f.result() for f in [self.submit(fn, item) for item in items]]

    def close(self) -> None:  # the daemon outlives us by design
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self) -> str:
        return f"ServiceScheduler({str(self.directory)!r}, workers={self.workers})"
