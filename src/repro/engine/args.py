"""Shared argparse wiring for entry points that own an ``AnalysisEngine``.

``repro analyze`` and the experiments runner accept the same engine
surface (``--jobs`` / ``--cache`` / ``--workers``); keeping the argument
definitions and the engine construction here means the two entry points
cannot drift — in particular the ``--workers``-overrides-``--jobs``
interaction lives in exactly one place.
"""

from __future__ import annotations

import sys

__all__ = ["add_engine_args", "engine_from_args"]


def add_engine_args(parser, jobs_help: str) -> None:
    """Add ``--jobs``/``--cache``/``--workers`` to ``parser``.

    ``jobs_help`` differs per entry point (the runner fans out table
    tasks, ``analyze`` fans out eps-probe LPs); the other two options are
    uniform.
    """
    from repro.engine.cache import DEFAULT_CACHE_DIR
    from repro.engine.workers import DEFAULT_WORKERS_DIR

    parser.add_argument("--jobs", type=int, default=1, metavar="N", help=jobs_help)
    parser.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE_DIR,
        default=None,
        metavar="DIR",
        help="replay identical tasks from an on-disk result cache "
        f"(default DIR: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--workers",
        nargs="?",
        const=DEFAULT_WORKERS_DIR,
        default=None,
        metavar="DIR",
        help="route engine tasks to the persistent worker service in DIR "
        f"(default: {DEFAULT_WORKERS_DIR}; start it with `repro workers "
        "start`) instead of forking a fresh pool",
    )


def engine_from_args(args):
    """Build the engine an entry point's parsed ``args`` describe."""
    from repro.engine import AnalysisEngine, ResultCache, make_scheduler

    cache = ResultCache(args.cache) if args.cache else None
    if args.workers is not None and args.jobs != 1:
        print(
            "note: --workers routes tasks to the service's pool; --jobs is "
            "ignored (size the pool with `repro workers start --jobs N`)",
            file=sys.stderr,
        )
    return AnalysisEngine(
        scheduler=make_scheduler(args.jobs, workers_dir=args.workers), cache=cache
    )
