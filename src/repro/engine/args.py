"""Shared argparse wiring for entry points that own an ``AnalysisEngine``.

``repro analyze`` and the experiments runner accept the same engine
surface (``--jobs`` / ``--cache`` / ``--workers`` / ``--task-timeout`` /
``--retries``); keeping the argument definitions and the engine
construction here means the two entry points cannot drift — in particular
the ``--workers``-overrides-``--jobs`` interaction and the
graceful-degradation chain (service → fresh local pool → serial) live in
exactly one place.
"""

from __future__ import annotations

import os
import sys

__all__ = ["add_engine_args", "engine_from_args"]

#: environment fallbacks for the fault-tolerance knobs, so CI and batch
#: scripts can tighten deadlines without threading flags through wrappers
ENV_TASK_TIMEOUT = "REPRO_TASK_TIMEOUT"
ENV_RETRIES = "REPRO_RETRIES"


def add_engine_args(parser, jobs_help: str) -> None:
    """Add the shared engine options to ``parser``.

    ``jobs_help`` differs per entry point (the runner fans out table
    tasks, ``analyze`` fans out eps-probe LPs); the other options are
    uniform.
    """
    from repro.engine.cache import DEFAULT_CACHE_DIR
    from repro.engine.workers import DEFAULT_WORKERS_DIR

    parser.add_argument("--jobs", type=int, default=1, metavar="N", help=jobs_help)
    parser.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE_DIR,
        default=None,
        metavar="DIR",
        help="replay identical tasks from an on-disk result cache "
        f"(default DIR: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--workers",
        nargs="?",
        const=DEFAULT_WORKERS_DIR,
        default=None,
        metavar="DIR",
        help="route engine tasks to the persistent worker service in DIR "
        f"(default: {DEFAULT_WORKERS_DIR}; start it with `repro workers "
        "start`) instead of forking a fresh pool",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per engine task; an expired task is "
        "retried like an infrastructure failure (default: env "
        f"{ENV_TASK_TIMEOUT} or 3600; 0 disables deadlines)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-attempts per task for infrastructure failures (dead "
        "worker, lost service socket, deadline) before degrading to a "
        f"fallback backend (default: env {ENV_RETRIES} or 2)",
    )


def _env_float(name: str):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        print(f"note: ignoring non-numeric {name}={raw!r}", file=sys.stderr)
        return None


def engine_from_args(args):
    """Build the engine an entry point's parsed ``args`` describe.

    Every non-serial backend gets a degradation chain: the worker service
    falls back to a fresh local pool and then to serial; a local pool
    falls back to serial.  A run that would previously have died with its
    backend now finishes (slower) and reports the degradation.
    """
    from repro.engine import AnalysisEngine, ResultCache, RetryPolicy, make_scheduler
    from repro.engine.scheduler import ProcessPoolScheduler, SerialScheduler

    cache = ResultCache(args.cache) if args.cache else None
    if args.workers is not None and args.jobs != 1:
        print(
            "note: --workers routes tasks to the service's pool; --jobs is "
            "ignored (size the pool with `repro workers start --jobs N`)",
            file=sys.stderr,
        )
    scheduler = make_scheduler(args.jobs, workers_dir=args.workers)
    if args.workers is not None:
        fallbacks = [lambda: ProcessPoolScheduler(jobs=0), SerialScheduler]
    elif isinstance(scheduler, SerialScheduler):
        fallbacks = []
    else:
        fallbacks = [SerialScheduler]

    task_timeout = args.task_timeout
    if task_timeout is None:
        task_timeout = _env_float(ENV_TASK_TIMEOUT)
    retries = args.retries
    if retries is None:
        env_retries = _env_float(ENV_RETRIES)
        retries = int(env_retries) if env_retries is not None else None
    retry_policy = RetryPolicy(retries=max(0, retries)) if retries is not None else None

    return AnalysisEngine(
        scheduler=scheduler,
        cache=cache,
        retry_policy=retry_policy,
        task_timeout=task_timeout,
        fallbacks=fallbacks,
    )
