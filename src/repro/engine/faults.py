"""Deterministic fault injection for the analysis engine.

The fault-tolerance layer (deadlines, retries, pool self-healing, the
degradation chain — see ``docs/ARCHITECTURE.md`` "Failure semantics") is
only trustworthy if every failure mode it promises to absorb is *provoked*
in tests, not hoped about.  This module is the provocation harness: a
seeded :class:`FaultPlan` — a list of :class:`FaultRule`\\ s — injected via
the ``REPRO_FAULTS`` environment variable, which forked pool workers and
the daemonized worker service inherit, so one plan drives faults across
every process of a run.

Injection sites (``FaultRule.site``):

``task.latency``
    sleep ``delay`` seconds at the task boundary before executing.
``task.transient``
    raise :class:`InjectedFault` (an infrastructure-class
    :class:`~repro.errors.TaskError`) at the task boundary — the shape of
    a dropped connection or a transient runtime error.
``worker.kill``
    ``os._exit(137)`` at the task boundary — the shape of a SIGKILL/OOM
    kill.  Fires **only inside multiprocessing child processes** (pool
    workers), never in the process that owns the plan, so a plan can
    never take down the test runner or the user's shell; in a serial run
    the site simply never fires.
``service.drop_reply``
    the worker-service daemon computes the result, then closes the
    connection without replying (checked by
    :class:`~repro.engine.workers.WorkerService`, which counts attempts
    per task key on its side of the wire).

Determinism is the whole design: a rule fires iff its ``match`` substring
occurs in the fault key (a ``task_id``; ``"*"`` matches everything) and
the *attempt index* is below ``times``.  Attempt indices come from the
engine's retry layer — they are part of the submitted payload — so which
attempts fail is a pure function of the plan, independent of process
identity, scheduling, or wall-clock.  A plan with ``times=1`` therefore
means exactly: "the first attempt fails, the retry succeeds", in every
backend.  ``seed`` perturbs injected latency only (never whether a rule
fires).

Usage::

    plan = FaultPlan([FaultRule("worker.kill", match="victim", times=1)])
    with plan.installed():           # sets REPRO_FAULTS for this process
        engine.run(tasks)            # ...and everything it forks

or from a shell: ``REPRO_FAULTS='{"rules":[{"site":"task.transient"}]}'``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import EngineError, TaskError

__all__ = [
    "ENV_VAR",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "task_boundary",
]

ENV_VAR = "REPRO_FAULTS"

FAULT_SITES = (
    "task.latency",
    "task.transient",
    "worker.kill",
    "service.drop_reply",
)


class InjectedFault(TaskError):
    """A transient infrastructure failure injected by a :class:`FaultPlan`.

    Subclasses :class:`~repro.errors.TaskError` deliberately: the retry
    layer must classify it exactly like a real dropped socket or dead
    worker, or the harness would be testing a code path production never
    takes."""


@dataclass(frozen=True)
class FaultRule:
    """One injection: fire ``site`` for keys containing ``match`` on
    attempts ``0 .. times-1``."""

    site: str
    match: str = "*"
    times: int = 1
    delay: float = 0.0

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise EngineError(
                f"unknown fault site {self.site!r}; known: {list(FAULT_SITES)}"
            )
        if self.times < 1:
            raise EngineError(f"fault rule times must be >= 1, got {self.times}")

    def applies(self, key: str, attempt: int) -> bool:
        return attempt < self.times and (self.match == "*" or self.match in key)


class FaultPlan:
    """A seeded, immutable set of :class:`FaultRule`\\ s."""

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0):
        self.rules: List[FaultRule] = list(rules)
        self.seed = int(seed)

    # -- (de)serialization ------------------------------------------------------
    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` JSON form; malformed specs are loud
        (a chaos harness that silently injects nothing proves nothing)."""
        try:
            payload = json.loads(spec)
        except ValueError as exc:
            raise EngineError(f"{ENV_VAR} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or not isinstance(payload.get("rules"), list):
            raise EngineError(
                f'{ENV_VAR} must be an object like {{"seed": 0, "rules": [...]}}'
            )
        rules = []
        for raw in payload["rules"]:
            if not isinstance(raw, dict) or "site" not in raw:
                raise EngineError(f"{ENV_VAR} rule missing 'site': {raw!r}")
            rules.append(
                FaultRule(
                    site=str(raw["site"]),
                    match=str(raw.get("match", "*")),
                    times=int(raw.get("times", 1)),
                    delay=float(raw.get("delay", 0.0)),
                )
            )
        return FaultPlan(rules, seed=int(payload.get("seed", 0)))

    def to_spec(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [
                    {
                        "site": r.site,
                        "match": r.match,
                        "times": r.times,
                        "delay": r.delay,
                    }
                    for r in self.rules
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    # -- decisions --------------------------------------------------------------
    def rule_for(self, site: str, key: str, attempt: int) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.site == site and rule.applies(key, attempt):
                return rule
        return None

    def jittered_delay(self, rule: FaultRule, key: str) -> float:
        """Deterministic per-key latency: ``delay`` scaled by up to +10%
        derived from ``sha256(seed, key)`` — seeded, but reproducible."""
        digest = hashlib.sha256(f"{self.seed}:{key}".encode("utf-8")).hexdigest()
        unit = int(digest[:8], 16) / 0xFFFFFFFF
        return rule.delay * (1.0 + 0.1 * unit)

    @contextmanager
    def installed(self):
        """Set ``REPRO_FAULTS`` for this process (and everything it spawns
        or forks) for the duration of the block."""
        previous = os.environ.get(ENV_VAR)
        os.environ[ENV_VAR] = self.to_spec()
        try:
            yield self
        finally:
            if previous is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = previous

    def __repr__(self) -> str:
        return f"FaultPlan(rules={self.rules!r}, seed={self.seed})"


#: parse cache keyed by the raw env string — task boundaries are hot
_PARSED: dict = {}


def active_plan() -> Optional[FaultPlan]:
    """The plan currently installed via ``REPRO_FAULTS``, or ``None``."""
    spec = os.environ.get(ENV_VAR, "")
    if not spec:
        return None
    plan = _PARSED.get(spec)
    if plan is None:
        plan = FaultPlan.parse(spec)
        _PARSED.clear()  # env flips atomically; keep exactly one entry
        _PARSED[spec] = plan
    return plan


def _in_worker_process() -> bool:
    # a multiprocessing child (pool worker) — the only place worker.kill
    # may fire; the plan's owner and the service daemon itself are safe
    return multiprocessing.parent_process() is not None


def task_boundary(key: str, attempt: int) -> None:
    """The per-task injection point, called by the engine's execution
    wrappers with the task id and the retry layer's attempt index.

    Order matters and is fixed: latency first (a slow task is still a
    task), then the kill (nothing after an OOM kill runs), then the
    transient exception."""
    plan = active_plan()
    if plan is None:
        return
    rule = plan.rule_for("task.latency", key, attempt)
    if rule is not None and rule.delay > 0:
        time.sleep(plan.jittered_delay(rule, key))
    if plan.rule_for("worker.kill", key, attempt) is not None and _in_worker_process():
        os._exit(137)  # simulate SIGKILL: no unwinding, no cleanup
    if plan.rule_for("task.transient", key, attempt) is not None:
        raise InjectedFault(
            f"injected transient fault at task {key!r} (attempt {attempt})"
        )
