"""Solve-then-certify oracles for the value-iteration bracket passes.

The fixpoint engine (:mod:`repro.core.fixpoint`) computes a rigorous
bracket ``lower <= vpf <= upper`` by monotone sweeps of the affine
transformer ``T(x) = A x + b`` — increasing from the lattice bottom
(``lfp``), decreasing from the top (``gfp``).  Slow-mixing chains need
tens of thousands of sweeps to pass a 1e-12 tolerance, which made value
iteration the last super-second phase of every bench workload.

This module removes that cost without weakening the bracket, following
the translation-validation posture of the exploration engines: *don't
trust the fast path — check its answer*.  An **oracle** (sparse direct
solve, SOR, Anderson acceleration) produces a candidate ``x*`` by any
means whatsoever; a constant number of monotone **certification sweeps**
then decides whether the candidate may be adopted:

* **Upper side (unconditional).**  ``A >= 0`` makes ``T`` monotone, so by
  Knaster–Tarski any pre-fixpoint — ``T(u) <= u`` componentwise — satisfies
  ``u >= lfp(T)``.  With the upper pass's offset ``b_upper`` (which folds
  in the truncation pessimization), ``lfp(A, b_upper)`` already dominates
  the true violation probability, hence any verified pre-fixpoint is a
  sound upper output.  Verification is one sweep.

* **Lower side (needs a contraction witness).**  A post-fixpoint
  ``T(l) >= l`` only bounds ``l <= gfp`` in general; to conclude
  ``l <= lfp`` the fixed point must be unique, i.e. ``rho(A) < 1``.  That
  is certified by a **witness vector** ``w`` with ``w - A w >= 1/2``
  componentwise, ``w`` finite: then the weighted operator norm satisfies
  ``||A||_w <= max_i (w_i - 1/2) / w_i < 1``, so ``I - A`` is invertible
  with ``(I - A)^{-1} = sum A^k >= 0``, and ``T(l) >= l`` gives
  ``lfp - l = (I - A)^{-1} (T(l) - l) >= 0``.  The natural witness is the
  expected-visits vector solving ``(I - A) w = 1`` (exact residual ``1``,
  so the ``1/2`` margin tolerates enormous oracle error); every oracle
  simply carries ``ones`` as a third right-hand-side column, and the
  witness check is one more sweep.

Candidates are *nudged along the witness before verification*: since
``(I - A) w = 1`` (up to oracle error), shifting a candidate by
``eps * w`` converts its residual into uniform margin —
``T(x +- eps*w) - (x +- eps*w) = residual -+ eps * (w - A w)`` — where a
*constant* shift would be annihilated on interior rows whose transition
mass sums to exactly 1.  A short ladder of residual-scaled ``eps`` values
is tried (each trial is one two-column sweep) until the componentwise
check passes or the ladder is exhausted; the verified trial is then maxed
(lower) / minned (upper) with the current — always valid — iterate, which
can only tighten and stays sound because both operands bound the fixed
point from the same side.  A candidate that never verifies — wrong,
non-bracketing, NaN/inf — is simply discarded and the engine falls back
to sweeping from its current (unchanged, still valid) iterate, so a
broken oracle can cost time but never soundness.

All checks run in IEEE double arithmetic, the same rigor standard as the
sweeps themselves (the slack ladder keeps candidates strictly inside the
verified region, so a one-ulp matvec error cannot flip a decision that
had any margin).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "SOLVERS",
    "SLACK_CAP",
    "SLACK_MULTIPLES",
    "OracleFailure",
    "run_oracle",
    "contraction_witness_ok",
    "certify_bracket",
    "gs_blocks",
    "gs_sweep",
]

#: accepted values of the ``solver`` parameter of ``value_iteration``
SOLVERS = ("auto", "sweep", "direct", "sor", "anderson")

#: plain sweeps run before ``solver="auto"`` engages an oracle: fast-mixing
#: systems converge inside the warmup and never pay oracle setup, keeping
#: their results bit-identical to ``solver="sweep"``
WARMUP_SWEEPS = 32

#: witness-direction nudge ladder: multiples of the oracle residual tried
#: (in order) as the ``eps`` of the ``eps * w`` outward shift; the final
#: rung is additionally floored so the worst-case bracket inflation
#: ``eps * max(w)`` reaches ``_SLACK_CAP`` before giving up
SLACK_MULTIPLES = (2.0, 16.0, 256.0)

#: absolute bracket-inflation budget of the last ladder rung (also the
#: agreement tolerance the solver-parity gate checks oracles against).
#: ``SLACK_CAP`` is the public name recorded in run certificates; the
#: underscored alias is kept for the certifier's internal use.
SLACK_CAP = 1e-9
_SLACK_CAP = SLACK_CAP

#: required componentwise margin of ``w - A w`` for the contraction
#: witness; the exact residual of the expected-visits vector is 1, so a
#: candidate ``w`` may be off by half its magnitude and still certify
WITNESS_MARGIN = 0.5

#: dense systems at or below this order use ``numpy.linalg.solve``; larger
#: dense matrices are converted to CSR for the (near-fill-free under the
#: BFS ordering) SuperLU NATURAL factorization instead of paying the
#: O(n^3) dense solve
_DENSE_SOLVE_LIMIT = 512

#: iteration caps of the iterative oracles (they stop early at tolerance;
#: certification makes a non-converged candidate safe, just useless)
_SOR_SWEEP_CAP = 4096
_ANDERSON_CAP = 512
_ANDERSON_WINDOW = 8

#: a delta blowing past this aborts the over-relaxed SOR schedule (the
#: omega estimate is meaningless on strongly non-normal systems, e.g.
#: counter-carrying DAG-shaped walks); SOR then restarts at omega = 1 —
#: an exact Gauss-Seidel sweep, which always converges here
_SOR_DIVERGENCE_LIMIT = 1e6

#: power-iteration steps of the SOR spectral-radius estimate
_RHO_ESTIMATE_SWEEPS = 24

#: block size of the blocked Gauss-Seidel CSR schedule (mirrors the dense
#: cutoff of the fixpoint engine; one sparse triangular solve per block)
GS_BLOCK = 2048


class OracleFailure(Exception):
    """An oracle could not produce a candidate (singular system, memory,
    divergence).  Callers fall back to monotone sweeping."""


# ---------------------------------------------------------------------------
# blocked Gauss-Seidel sweep machinery (shared by the "gauss-seidel"
# schedule and the SOR oracle)
# ---------------------------------------------------------------------------


def gs_blocks(matrix, n: int) -> List[Tuple]:
    """Per-block data of the blocked Gauss-Seidel sweep: contiguous
    ``GS_BLOCK``-sized row blocks, each with its rows as CSR, its strict
    in-block lower triangle, and a SuperLU factorization of the
    unit-lower-triangular ``(I - L_kk)`` under the NATURAL ordering (the
    factorization of a triangular matrix is itself, so this is setup-free
    in exact arithmetic and ``lu.solve`` is an order of magnitude faster
    per sweep than ``spsolve_triangular``)."""
    from scipy.sparse import eye, tril
    from scipy.sparse.linalg import splu

    blocks = []
    for s in range(0, n, GS_BLOCK):
        e = min(n, s + GS_BLOCK)
        row_block = matrix[s:e, :].tocsr()
        strict_lower = tril(matrix[s:e, s:e], k=-1, format="csr")
        if strict_lower.nnz:
            solver = splu(
                (eye(e - s, format="csr") - strict_lower).tocsc(),
                permc_spec="NATURAL",
            )
            blocks.append((s, e, row_block, strict_lower, solver))
        else:
            blocks.append((s, e, row_block, None, None))
    return blocks


def gs_sweep(blocks, x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One blocked Gauss-Seidel sweep ``x -> x'`` (input left untouched).

    Earlier blocks are updated in place before later ones read them and
    the in-block strict-lower contribution is solved implicitly, so a full
    sweep uses the *latest* value for every already-visited state —
    exactly the reference engine's in-place schedule."""
    x_prev = x
    x = x.copy()
    for s, e, row_block, strict_lower, solver in blocks:
        rhs = row_block @ x + b[s:e]
        if strict_lower is not None:
            rhs -= strict_lower @ x_prev[s:e]
            x[s:e] = solver.solve(rhs)
        else:
            x[s:e] = rhs
    return x


# ---------------------------------------------------------------------------
# oracles: candidate producers (untrusted; certification follows)
# ---------------------------------------------------------------------------


def _oracle_direct(matrix, rhs: np.ndarray, n: int) -> np.ndarray:
    """Solve ``(I - A) x = rhs`` directly: LAPACK for small dense systems,
    SuperLU with the NATURAL column ordering otherwise — the BFS state
    order makes ``I - A`` nearly lower triangular, so natural-order LU
    fill stays around 2x the matrix nnz where COLAMD pays 8x."""
    from scipy.sparse import csr_matrix, identity
    from scipy.sparse.linalg import splu

    try:
        if isinstance(matrix, np.ndarray) and n <= _DENSE_SOLVE_LIMIT:
            return np.linalg.solve(np.eye(n) - matrix, rhs)
        sparse = csr_matrix(matrix) if isinstance(matrix, np.ndarray) else matrix
        lu = splu((identity(n, format="csr") - sparse).tocsc(), permc_spec="NATURAL")
        return lu.solve(rhs)
    except (np.linalg.LinAlgError, RuntimeError, MemoryError, ValueError) as exc:
        raise OracleFailure(f"direct solve failed: {exc}") from None


def _estimate_rho(matrix, n: int) -> float:
    """Power-iteration estimate of ``rho(A)`` on a positive vector (the
    iterates of ``A^k 1`` expose the slowest-mixing mode)."""
    v = np.ones(n)
    rho = 0.0
    for _ in range(_RHO_ESTIMATE_SWEEPS):
        nxt = matrix @ v
        top = float(nxt.max(initial=0.0))
        if top <= 0.0 or not np.isfinite(top):
            return 0.0
        rho = top / float(v.max(initial=1.0))
        v = nxt / top
    return min(max(rho, 0.0), 1.0 - 1e-12)


def _oracle_sor(
    matrix, rhs: np.ndarray, x0: np.ndarray, n: int, tol: float
) -> np.ndarray:
    """Successive over-relaxation with a spectral-radius-guided relaxation
    factor ``omega = 2 / (1 + sqrt(1 - rho_J^2))`` (the consistently-
    ordered optimum; any overshoot is caught by certification, not
    trusted).  One sweep solves ``(I - omega L) x' = ((1 - omega) I +
    omega (A - L)) x + omega rhs`` — the component-wise SOR schedule, with
    the strict-lower contribution implicit exactly as in the blocked
    Gauss-Seidel kernel."""
    def make_sweep(omega):
        if isinstance(matrix, np.ndarray):
            strict_lower = np.tril(matrix, k=-1)
            m_inv = np.linalg.inv(np.eye(n) - omega * strict_lower)
            op = m_inv @ (
                (1.0 - omega) * np.eye(n) + omega * (matrix - strict_lower)
            )
            off = m_inv @ (omega * rhs)
            return lambda v: op @ v + off
        from scipy.sparse import csr_matrix, identity, tril
        from scipy.sparse.linalg import splu

        strict_lower = tril(matrix, k=-1, format="csr")
        upper = csr_matrix(matrix - strict_lower)
        try:
            lu = splu(
                (identity(n, format="csr") - omega * strict_lower).tocsc(),
                permc_spec="NATURAL",
            )
        except (RuntimeError, MemoryError, ValueError) as exc:
            raise OracleFailure(f"SOR factorization failed: {exc}") from None
        return lambda v: lu.solve((1.0 - omega) * v + omega * (upper @ v + rhs))

    rho = _estimate_rho(matrix, n)
    omega = 2.0 / (1.0 + np.sqrt(max(0.0, 1.0 - rho * rho)))
    omega = float(np.clip(omega, 1.0, 1.9))
    sweep = make_sweep(omega)
    x = x0.copy()
    budget = _SOR_SWEEP_CAP
    while budget > 0:
        budget -= 1
        x_new = sweep(x)
        delta = float(np.abs(x_new - x).max()) if n else 0.0
        if not np.isfinite(delta) or delta > _SOR_DIVERGENCE_LIMIT:
            if omega == 1.0:
                raise OracleFailure("SOR diverged at omega = 1")
            # non-normal system: the over-relaxed schedule blew up, so
            # restart from scratch as exact (omega = 1) Gauss-Seidel
            omega = 1.0
            sweep = make_sweep(omega)
            x = x0.copy()
            continue
        x = x_new
        if delta <= tol:
            break
    return x


def _oracle_anderson(
    matrix, rhs: np.ndarray, x0: np.ndarray, n: int, tol: float
) -> np.ndarray:
    """Anderson acceleration (window ``m``) over the Jacobi sweep
    ``T(x) = A x + rhs``, run on the flattened multi-column iterate.  The
    least-squares mixing can overshoot the monotone lattice freely — the
    certification sweeps are what makes adopting the result sound."""
    cols = x0.shape[1]
    x = x0.reshape(-1).copy()

    def apply_t(v):
        return (matrix @ v.reshape(n, cols) + rhs).reshape(-1)

    xs: List[np.ndarray] = []
    fs: List[np.ndarray] = []
    best = x
    best_res = np.inf
    fx = apply_t(x)
    for _ in range(_ANDERSON_CAP):
        f = fx - x
        res = float(np.abs(f).max()) if n else 0.0
        if not np.isfinite(res):
            break
        if res < best_res:
            best, best_res = x, res
        if res <= tol:
            break
        xs.append(x)
        fs.append(f)
        if len(xs) > _ANDERSON_WINDOW:
            xs.pop(0)
            fs.pop(0)
        if len(xs) > 1:
            df = np.stack([fs[i + 1] - fs[i] for i in range(len(fs) - 1)], axis=1)
            dx = np.stack([xs[i + 1] - xs[i] for i in range(len(xs) - 1)], axis=1)
            gamma, *_ = np.linalg.lstsq(df, f, rcond=None)
            x = x + f - (dx + df) @ gamma
        else:
            x = fx
        fx = apply_t(x)
    if not np.isfinite(best_res):
        raise OracleFailure("Anderson acceleration produced no finite iterate")
    return best.reshape(n, cols)


def run_oracle(
    matrix, rhs: np.ndarray, x0: np.ndarray, oracle: str, n: int, tol: float
) -> np.ndarray:
    """Produce an (untrusted) candidate solution of ``(I - A) x = rhs``
    for every right-hand-side column.  Raises :class:`OracleFailure` when
    the oracle cannot deliver one at all."""
    if oracle == "direct":
        return _oracle_direct(matrix, rhs, n)
    if oracle == "sor":
        return _oracle_sor(matrix, rhs, x0, n, tol)
    if oracle == "anderson":
        return _oracle_anderson(matrix, rhs, x0, n, tol)
    raise ValueError(f"unknown oracle {oracle!r}")


# ---------------------------------------------------------------------------
# certification: the only trusted code path
# ---------------------------------------------------------------------------


def contraction_witness_ok(matrix, w: np.ndarray) -> bool:
    """True when ``w`` certifies ``rho(A) < 1`` (one sweep): ``w`` finite
    and ``w - A w >= 1/2`` componentwise — see the module docstring for
    the weighted-norm argument.  Implies ``w >= 1/2 > 0`` because
    ``A w`` cannot be negative once the margin check passes."""
    if not np.isfinite(w).all():
        return False
    return bool(((w - matrix @ w) >= WITNESS_MARGIN).all())


def certify_bracket(
    matrix,
    b: np.ndarray,
    x: np.ndarray,
    candidate: np.ndarray,
    witness: np.ndarray,
    residual: float,
    allow_lower: bool,
) -> Tuple[np.ndarray, bool, bool, int]:
    """Verify the oracle candidate and fold what certifies into the bracket.

    ``b`` and ``x`` are the two-column (lower-pass, upper-pass) offsets
    and the current — always valid — iterate; ``witness`` the candidate
    expected-visits vector (the nudge direction), ``residual`` the
    candidate's sup-norm fixed-point residual (the nudge scale).  Returns
    ``(x', lower_adopted, upper_adopted, sweeps_used)``; a column whose
    trials never verify keeps its current values, so a rejected candidate
    leaves the bracket unchanged.

    The lower column is only eligible with ``allow_lower`` (the
    contraction witness — without ``rho(A) < 1`` a post-fixpoint only
    bounds the *greatest* fixed point); the upper column's pre-fixpoint
    check is unconditionally sound.  Adoption takes ``max`` (lower) /
    ``min`` (upper) with the current iterate: both operands bound the
    fixed point from the same side, so the combination does too, and the
    bracket can only tighten.
    """
    x = x.copy()
    ok_lower = False
    ok_upper = False
    sweeps = 0
    finite_lower = bool(np.isfinite(candidate[:, 0]).all())
    finite_upper = bool(np.isfinite(candidate[:, 1]).all())
    want_lower = allow_lower and finite_lower
    want_upper = finite_upper
    if not (want_lower or want_upper):
        return x, ok_lower, ok_upper, sweeps
    if np.isfinite(witness).all() and bool((witness > 0.0).all()):
        nudge = witness
    else:
        nudge = np.ones(len(witness))
    w_max = float(nudge.max(initial=1.0))
    base = max(residual, 2.0**-52)
    ladder = [m * base for m in SLACK_MULTIPLES]
    ladder[-1] = max(ladder[-1], _SLACK_CAP / w_max)
    # strict-improvement floor/ceiling: sweep iterates can overshoot the
    # [0, 1] lattice by an ulp (the dense GS operator rounds), and a
    # garbage trial clipped to the lattice top would read as "improving"
    # on a 1 + ulp iterate — measure improvement against the clamped
    # iterate so vacuous all-zeros/all-ones trials are always rejections
    lower_floor = np.maximum(x[:, 0], 0.0)
    upper_ceil = np.minimum(x[:, 1], 1.0)
    for eps in ladder:
        trial = x.copy()
        if want_lower and not ok_lower:
            trial[:, 0] = np.clip(candidate[:, 0] - eps * nudge, 0.0, 1.0)
        if want_upper and not ok_upper:
            trial[:, 1] = np.clip(candidate[:, 1] + eps * nudge, 0.0, 1.0)
        swept = matrix @ trial + b
        sweeps += 1
        if (
            want_lower
            and not ok_lower
            and bool((swept[:, 0] >= trial[:, 0]).all())
            and bool((trial[:, 0] > lower_floor).any())
        ):
            # verified post-fixpoint + witness: trial <= lfp.  Adoption
            # additionally requires strict improvement somewhere — a
            # garbage candidate whose nudge clipped it to the lattice
            # bottom verifies vacuously but must read as a rejection
            x[:, 0] = np.maximum(x[:, 0], trial[:, 0])
            ok_lower = True
        if (
            want_upper
            and not ok_upper
            and bool((swept[:, 1] <= trial[:, 1]).all())
            and bool((trial[:, 1] < upper_ceil).any())
        ):
            # verified pre-fixpoint: trial >= lfp = vpf
            x[:, 1] = np.minimum(x[:, 1], trial[:, 1])
            ok_upper = True
        if ok_lower == want_lower and ok_upper == want_upper:
            break
    return x, ok_lower, ok_upper, sweeps
