"""Exponential state-function templates ``theta(l, v) = exp(a_l . v + b_l)``.

Every synthesis algorithm of the paper instantiates the same template shape
(Step 1 of Sections 5.1, 5.2 and 6): one unknown coefficient vector ``a_l``
and scalar ``b_l`` per location.  :class:`ExpTemplate` owns the unknown
*names* and their symbolic :class:`LinExpr` forms; :class:`ExpStateFunction`
is a solved instance that can be evaluated (in log space) and rendered like
the paper's appendix tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Tuple

from repro.errors import ModelError
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import PTS

__all__ = ["ExpTemplate", "ExpStateFunction"]

NEG_INF = float("-inf")


class ExpTemplate:
    """Unknown-coefficient bookkeeping for per-location affine exponents.

    ``include_sinks=True`` additionally creates template rows for the two
    sink locations — needed by RepRSM synthesis (Section 5.1), where ``eta``
    is defined on *all* states, but not by the fixed-point templates of
    Sections 5.2/6, where ``theta`` is pinned to 0/1 at the sinks.
    """

    def __init__(self, pts: PTS, include_sinks: bool = False):
        self.pts = pts
        self.variables: Tuple[str, ...] = pts.program_vars
        locations = list(pts.interior_locations)
        if include_sinks:
            locations += [pts.term_location, pts.fail_location]
        self.locations: Tuple[str, ...] = tuple(locations)

    # -- unknown naming -----------------------------------------------------------
    @staticmethod
    def a_name(location: str, variable: str) -> str:
        return f"a({location},{variable})"

    @staticmethod
    def b_name(location: str) -> str:
        return f"b({location})"

    def unknowns(self) -> List[str]:
        """All unknown coefficient names, location-major."""
        names: List[str] = []
        for loc in self.locations:
            names.extend(self.a_name(loc, v) for v in self.variables)
            names.append(self.b_name(loc))
        return names

    # -- symbolic access -----------------------------------------------------------
    def coeff(self, location: str, variable: str) -> LinExpr:
        """The unknown ``a_l[v]`` as a symbolic expression."""
        self._check(location)
        return LinExpr.variable(self.a_name(location, variable))

    def const(self, location: str) -> LinExpr:
        """The unknown ``b_l``."""
        self._check(location)
        return LinExpr.variable(self.b_name(location))

    def eta_at(self, location: str, valuation: Mapping[str, Fraction]) -> LinExpr:
        """``eta(l, valuation)`` as an affine expression over the unknowns."""
        self._check(location)
        expr = self.const(location)
        for v in self.variables:
            expr = expr + self.coeff(location, v) * valuation[v]
        return expr

    def eta_initial(self) -> LinExpr:
        """``eta(l_init, v_init)`` — the objective of all three algorithms."""
        return self.eta_at(self.pts.init_location, self.pts.init_valuation)

    def _check(self, location: str) -> None:
        if location not in self.locations:
            raise ModelError(f"no template row for location {location!r}")

    # -- instantiation ----------------------------------------------------------------
    def instantiate(self, assignment: Mapping[str, float]) -> "ExpStateFunction":
        """Bind the unknowns to solver values (missing unknowns default to 0)."""
        coeffs: Dict[str, Dict[str, float]] = {}
        consts: Dict[str, float] = {}
        for loc in self.locations:
            coeffs[loc] = {
                v: float(assignment.get(self.a_name(loc, v), 0.0)) for v in self.variables
            }
            consts[loc] = float(assignment.get(self.b_name(loc), 0.0))
        return ExpStateFunction(
            variables=self.variables,
            coeffs=coeffs,
            consts=consts,
            term_location=self.pts.term_location,
            fail_location=self.pts.fail_location,
        )


@dataclass
class ExpStateFunction:
    """A solved exponential state function.

    ``log_value`` returns ``log theta(l, v)``; at the sinks the fixed-point
    convention applies (``theta(l_term) = 0``, ``theta(l_fail) = 1``) unless
    the location has its own template row (the RepRSM case), in which case
    the exponent is evaluated like any other location.
    """

    variables: Tuple[str, ...]
    coeffs: Dict[str, Dict[str, float]]
    consts: Dict[str, float]
    term_location: str
    fail_location: str

    def exponent(self, location: str, valuation: Mapping[str, float]) -> float:
        """``eta(l, v) = a_l . v + b_l`` for a location with a template row."""
        row = self.coeffs[location]
        total = self.consts[location]
        for v in self.variables:
            total += row[v] * float(valuation[v])
        return total

    def log_value(self, location: str, valuation: Mapping[str, float]) -> float:
        """``log theta(l, v)`` with sink conventions for rows we do not own."""
        if location in self.coeffs:
            return self.exponent(location, valuation)
        if location == self.term_location:
            return NEG_INF  # theta = 0
        if location == self.fail_location:
            return 0.0  # theta = 1
        raise ModelError(f"no template row for location {location!r}")

    def value(self, location: str, valuation: Mapping[str, float]) -> float:
        """``theta(l, v)`` (may underflow to 0.0 for very negative exponents)."""
        lv = self.log_value(location, valuation)
        return 0.0 if lv == NEG_INF else math.exp(min(lv, 700.0))

    def render(self, location: str, digits: int = 3) -> str:
        """Human-readable ``exp(c1*x + ... + b)`` like the paper's Tables 3-5."""
        if location not in self.coeffs:
            if location == self.term_location:
                return "0"
            if location == self.fail_location:
                return "1"
            raise ModelError(f"no template row for location {location!r}")
        parts: List[str] = []
        for v in self.variables:
            c = self.coeffs[location][v]
            if abs(c) < 10 ** (-digits - 3):
                continue
            sign = "-" if c < 0 else ("+" if parts else "")
            parts.append(f"{sign} {abs(c):.{digits}g}*{v}".strip())
        b = self.consts[location]
        if abs(b) >= 10 ** (-digits - 3) or not parts:
            sign = "-" if b < 0 else ("+" if parts else "")
            parts.append(f"{sign} {abs(b):.{digits}g}".strip())
        return "exp(" + " ".join(parts) + ")"
