"""Core algorithms of the paper: bound synthesis, fixed points, baselines.

This is the algorithm layer (see ``docs/ARCHITECTURE.md``): one module
per synthesis family — §5.1 Hoeffding/RepRSM (:func:`hoeffding_synthesis`),
§5.2 ExpLinSyn (:func:`exp_lin_syn`), §6 ExpLowSyn (:func:`exp_low_syn`)
and polynomial lower bounds — plus invariant generation, termination
proofs, prior-work baselines, and the ground-truth fixpoint engine
(:func:`value_iteration` / :func:`exact_vpf`) with its int64
frontier-batch exploration fast path, pluggable sweep schedules, and
per-run translation-validation certificates
(:mod:`repro.core.runcert`: :func:`emit_run_certificate` /
:func:`verify_run_certificate`).

Layer contract: ``core`` consumes :class:`~repro.pts.PTS` objects and the
``repro.numeric`` solver adapters; it never imports from ``repro.engine``
or ``repro.experiments``.  Each synthesis family additionally exposes the
engine protocol ``synthesize(task, deps, engine) -> CertificateResult``
beside its direct API, which is how the analysis engine schedules it.
Changes to the fixpoint engine must keep the differential suites against
:mod:`repro.core.fixpoint_reference` green — the frozen reference is the
semantics; the vectorized engines are implementations of it.
"""

from repro.core.invariants import InvariantMap, generate_interval_invariants
from repro.core.zones import Zone, generate_zone_invariants
from repro.core.concentration import with_step_counter, concentration_bound
from repro.core.polynomial_lower import PolynomialLowerBound, polynomial_exp_low_syn
from repro.core.templates import ExpTemplate, ExpStateFunction
from repro.core.canonical import CanonicalTerm, CanonicalConstraint, canonicalize
from repro.core.certificates import (
    RepRSMData,
    UpperBoundCertificate,
    LowerBoundCertificate,
    log_ptf_transition,
    sample_psi_points,
)
from repro.core.explinsyn import exp_lin_syn
from repro.core.hoeffding import hoeffding_synthesis, azuma_baseline
from repro.core.explowsyn import exp_low_syn
from repro.core.termination import TerminationCertificate, prove_almost_sure_termination
from repro.core.fixpoint import (
    SparseFixpointModel,
    ValueIterationResult,
    build_sparse_model,
    exact_vpf,
    iterate_model,
    value_iteration,
)
from repro.core.runcert import (
    RunCertificate,
    VerificationReport,
    derive_admission,
    emit_run_certificate,
    verify_certificate_text,
    verify_run_certificate,
)
from repro.core.polynomial import (
    Polynomial,
    handelman_constraints,
    polynomial_hoeffding_synthesis,
)
from repro.core.baselines import (
    cs13_deviation_bound,
    BoundedRSM,
    synthesize_bounded_rsm,
    cfnh18_concentration_bound,
    cfnh18_best_bound,
)

__all__ = [
    "InvariantMap",
    "generate_interval_invariants",
    "Zone",
    "generate_zone_invariants",
    "with_step_counter",
    "concentration_bound",
    "PolynomialLowerBound",
    "polynomial_exp_low_syn",
    "ExpTemplate",
    "ExpStateFunction",
    "CanonicalTerm",
    "CanonicalConstraint",
    "canonicalize",
    "RepRSMData",
    "UpperBoundCertificate",
    "LowerBoundCertificate",
    "log_ptf_transition",
    "sample_psi_points",
    "exp_lin_syn",
    "hoeffding_synthesis",
    "azuma_baseline",
    "exp_low_syn",
    "TerminationCertificate",
    "prove_almost_sure_termination",
    "ValueIterationResult",
    "SparseFixpointModel",
    "build_sparse_model",
    "iterate_model",
    "value_iteration",
    "exact_vpf",
    "RunCertificate",
    "VerificationReport",
    "derive_admission",
    "emit_run_certificate",
    "verify_certificate_text",
    "verify_run_certificate",
    "cs13_deviation_bound",
    "BoundedRSM",
    "synthesize_bounded_rsm",
    "cfnh18_concentration_bound",
    "cfnh18_best_bound",
    "Polynomial",
    "handelman_constraints",
    "polynomial_hoeffding_synthesis",
]
