"""Core algorithms of the paper: bound synthesis, fixed points, baselines."""

from repro.core.invariants import InvariantMap, generate_interval_invariants
from repro.core.zones import Zone, generate_zone_invariants
from repro.core.concentration import with_step_counter, concentration_bound
from repro.core.polynomial_lower import PolynomialLowerBound, polynomial_exp_low_syn
from repro.core.templates import ExpTemplate, ExpStateFunction
from repro.core.canonical import CanonicalTerm, CanonicalConstraint, canonicalize
from repro.core.certificates import (
    RepRSMData,
    UpperBoundCertificate,
    LowerBoundCertificate,
    log_ptf_transition,
    sample_psi_points,
)
from repro.core.explinsyn import exp_lin_syn
from repro.core.hoeffding import hoeffding_synthesis, azuma_baseline
from repro.core.explowsyn import exp_low_syn
from repro.core.termination import TerminationCertificate, prove_almost_sure_termination
from repro.core.fixpoint import (
    SparseFixpointModel,
    ValueIterationResult,
    build_sparse_model,
    exact_vpf,
    value_iteration,
)
from repro.core.polynomial import (
    Polynomial,
    handelman_constraints,
    polynomial_hoeffding_synthesis,
)
from repro.core.baselines import (
    cs13_deviation_bound,
    BoundedRSM,
    synthesize_bounded_rsm,
    cfnh18_concentration_bound,
    cfnh18_best_bound,
)

__all__ = [
    "InvariantMap",
    "generate_interval_invariants",
    "Zone",
    "generate_zone_invariants",
    "with_step_counter",
    "concentration_bound",
    "PolynomialLowerBound",
    "polynomial_exp_low_syn",
    "ExpTemplate",
    "ExpStateFunction",
    "CanonicalTerm",
    "CanonicalConstraint",
    "canonicalize",
    "RepRSMData",
    "UpperBoundCertificate",
    "LowerBoundCertificate",
    "log_ptf_transition",
    "sample_psi_points",
    "exp_lin_syn",
    "hoeffding_synthesis",
    "azuma_baseline",
    "exp_low_syn",
    "TerminationCertificate",
    "prove_almost_sure_termination",
    "ValueIterationResult",
    "SparseFixpointModel",
    "build_sparse_model",
    "value_iteration",
    "exact_vpf",
    "cs13_deviation_bound",
    "BoundedRSM",
    "synthesize_bounded_rsm",
    "cfnh18_concentration_bound",
    "cfnh18_best_bound",
    "Polynomial",
    "handelman_constraints",
    "polynomial_hoeffding_synthesis",
]
