"""Polynomial-exponent extension (Remarks 3 and 5 of the paper).

The paper notes that HoeffdingSynthesis and ExpLowSyn extend from affine to
*polynomial* exponents via Positivstellensatz certificates and semidefinite
programming.  No SDP solver ships offline, so this module implements the
LP-based alternative: **Handelman's Positivstellensatz** — over a compact
polytope ``P = {v : h_1(v) >= 0, ..., h_m(v) >= 0}``, every polynomial
strictly positive on ``P`` is a nonnegative combination of products
``h_1^{a_1} ... h_m^{a_m}``.  Encoding a bounded-degree combination and
matching monomial coefficients yields *linear* constraints, so polynomial
RepRSM synthesis stays an LP (plus the same Ser search over ``eps``).

The trade against the paper's SDP route: Handelman needs compact premises
(we check boundedness and refuse otherwise) and a degree budget, but is
exact rational LP — no SDP numerics.
"""

from __future__ import annotations

import itertools
import time
from fractions import Fraction
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InfeasibleError, ModelError, SolverError, SynthesisError
from repro.numeric.lp import LinearProgram
from repro.numeric.ser import ternary_search
from repro.polyhedra.constraints import Polyhedron
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import PTS
from repro.utils.numbers import Number, as_fraction
from repro.core.certificates import UpperBoundCertificate
from repro.core.invariants import InvariantMap, generate_interval_invariants

__all__ = ["Polynomial", "handelman_constraints", "polynomial_hoeffding_synthesis"]

Monomial = Tuple[Tuple[str, int], ...]  # sorted ((var, power), ...)


@lru_cache(maxsize=65536)
def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    """Product of two monomials, memoized — Handelman basis construction and
    affine substitution multiply the same small monomial pairs over and over
    (and interning the result tuples deduplicates the term-dict keys)."""
    powers: Dict[str, int] = dict(a)
    for v, p in b:
        powers[v] = powers.get(v, 0) + p
    return tuple(sorted((v, p) for v, p in powers.items() if p > 0))


def _mono_degree(m: Monomial) -> int:
    return sum(p for _, p in m)


class Polynomial:
    """A multivariate polynomial with :class:`LinExpr` coefficients.

    Coefficients are affine expressions over *unknown template parameters*
    (plain rationals embed as constants), which is exactly what template
    synthesis needs: ``eta(l, v)`` is a polynomial in the program variables
    whose coefficients are the unknowns.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Mapping[Monomial, LinExpr] = ()):  # type: ignore[assignment]
        items = terms.items() if isinstance(terms, Mapping) else terms
        clean: Dict[Monomial, LinExpr] = {}
        for mono, coeff in items:
            coeff = LinExpr.coerce(coeff)
            if not coeff.is_zero:
                clean[mono] = coeff
        self.terms: Dict[Monomial, LinExpr] = clean

    # -- constructors -----------------------------------------------------------
    @staticmethod
    def constant(value) -> "Polynomial":
        return Polynomial({(): LinExpr.coerce(value)})

    @staticmethod
    def variable(name: str) -> "Polynomial":
        return Polynomial({((name, 1),): LinExpr.constant(1)})

    @staticmethod
    def from_linexpr(expr: LinExpr) -> "Polynomial":
        terms: Dict[Monomial, LinExpr] = {(): LinExpr.constant(expr.const)}
        for v, c in expr.coeffs.items():
            terms[((v, 1),)] = LinExpr.constant(c)
        return Polynomial(terms)

    # -- arithmetic --------------------------------------------------------------
    def __add__(self, other: "Polynomial") -> "Polynomial":
        terms = dict(self.terms)
        for mono, coeff in other.terms.items():
            terms[mono] = terms.get(mono, LinExpr.constant(0)) + coeff
        return Polynomial(terms)

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self.terms.items()})

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        out: Dict[Monomial, LinExpr] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                if not c1.is_constant and not c2.is_constant:
                    raise ModelError(
                        "product of two unknown-coefficient polynomials is "
                        "not affine in the unknowns"
                    )
                mono = _mono_mul(m1, m2)
                if c1.is_constant:
                    prod = c2 * c1.const
                else:
                    prod = c1 * c2.const
                out[mono] = out.get(mono, LinExpr.constant(0)) + prod
        return Polynomial(out)

    def scale(self, k) -> "Polynomial":
        k = as_fraction(k)
        return Polynomial({m: c * k for m, c in self.terms.items()})

    # -- queries -----------------------------------------------------------------
    def degree(self) -> int:
        return max((_mono_degree(m) for m in self.terms), default=0)

    def monomials(self) -> List[Monomial]:
        return sorted(self.terms, key=lambda m: (_mono_degree(m), m))

    def coefficient(self, mono: Monomial) -> LinExpr:
        return self.terms.get(mono, LinExpr.constant(0))

    def substitute_affine(self, mapping: Mapping[str, LinExpr]) -> "Polynomial":
        """Substitute program variables by *constant-coefficient* affine
        expressions (an affine update), staying polynomial."""
        result = Polynomial.constant(0)
        for mono, coeff in self.terms.items():
            term = Polynomial({(): coeff})
            for v, power in mono:
                base = (
                    Polynomial.from_linexpr(mapping[v])
                    if v in mapping
                    else Polynomial.variable(v)
                )
                for _ in range(power):
                    term = term * base
            result = result + term
        return result

    def at_point(self, point: Mapping[str, Number]) -> LinExpr:
        """The polynomial evaluated at an exact program-variable point,
        leaving the unknown-coefficient structure symbolic — the affine
        expression synthesis needs for initial-state constraints and
        objectives."""
        result = LinExpr.constant(0)
        for mono, coeff in self.terms.items():
            value = Fraction(1)
            for v, p in mono:
                value *= as_fraction(point[v]) ** p
            result = result + coeff * value
        return result

    def evaluate(self, valuation: Mapping[str, float], assignment: Mapping[str, float]) -> float:
        """Numeric value given program-variable and unknown assignments."""
        total = 0.0
        for mono, coeff in self.terms.items():
            c = float(coeff.const)
            for name, k in coeff.coeffs.items():
                c += float(k) * assignment.get(name, 0.0)
            m = 1.0
            for v, p in mono:
                m *= float(valuation[v]) ** p
            total += c * m
        return total

    def __repr__(self) -> str:
        parts = []
        for mono in self.monomials():
            mono_str = "*".join(
                (v if p == 1 else f"{v}^{p}") for v, p in mono
            ) or "1"
            parts.append(f"({self.terms[mono]})*{mono_str}")
        return " + ".join(parts) or "0"


def _products_up_to_degree(
    generators: Sequence[Polynomial], degree: int
) -> List[Polynomial]:
    """All products ``h_{i_1} * ... * h_{i_k}`` with ``k <= degree``.

    The generators are affine (degree 1), so a product of ``k`` of them has
    degree exactly ``k``; enumerating multisets of generator indices covers
    the full Handelman basis up to the degree budget.
    """
    products: List[Polynomial] = [Polynomial.constant(1)]
    for total in range(1, degree + 1):
        for combo in itertools.combinations_with_replacement(
            range(len(generators)), total
        ):
            p = Polynomial.constant(1)
            for i in combo:
                p = p * generators[i]
            products.append(p)
    return products


#: Handelman basis cache, keyed by the premise's defining inequalities and
#: the degree budget.  The same premise polytope appears in one block per
#: RepRSM condition (C3, C4lo, C4hi, ...) and again on every Ser probe, so
#: the basis — the expensive polynomial-product enumeration — is shared.
_HANDELMAN_BASIS_CACHE: Dict[Tuple, List[Polynomial]] = {}


def _handelman_basis(polytope: Polyhedron, degree: int) -> List[Polynomial]:
    key = (tuple(ineq.expr for ineq in polytope.inequalities), degree)
    products = _HANDELMAN_BASIS_CACHE.get(key)
    if products is None:
        generators = [
            Polynomial.from_linexpr(-ineq.expr) for ineq in polytope.inequalities
        ]
        products = _products_up_to_degree(generators, degree)
        _HANDELMAN_BASIS_CACHE[key] = products
    return products


def handelman_constraints(
    target: Polynomial,
    polytope: Polyhedron,
    lp: LinearProgram,
    degree: int,
    label: str,
) -> None:
    """Add LP rows forcing ``target(v) >= 0`` for all ``v`` in ``polytope``.

    Requires a *bounded* polytope (checked).  Encodes ``target`` as a
    nonnegative combination of products of the polytope's defining
    inequalities up to ``degree`` and matches monomial coefficients.
    """
    if not polytope.is_bounded():
        raise ModelError(
            "Handelman's Positivstellensatz needs a compact premise; "
            f"the polyhedron for {label!r} is unbounded"
        )
    # defining inequalities as polynomials h_i >= 0, basis shared via cache
    products = _handelman_basis(polytope, degree)
    combo = Polynomial.constant(0)
    for k, product in enumerate(products):
        lam = f"_h({label})[{k}]"
        lp.add_variable(lam, lower=0.0)
        combo = combo + product * Polynomial({(): LinExpr.variable(lam)})
    difference = target - combo
    lp.add_eq_many(
        (difference.coefficient(mono), f"{label}:mono{mono}")
        for mono in sorted(set(difference.monomials()))
    )


def _poly_template(
    pts: PTS, degree: int
) -> Tuple[Dict[str, Polynomial], List[str]]:
    """Per-location polynomial templates with fresh unknown coefficients."""
    variables = pts.program_vars
    monos: List[Monomial] = []
    for total in range(degree + 1):
        for combo in itertools.combinations_with_replacement(variables, total):
            powers: Dict[str, int] = {}
            for v in combo:
                powers[v] = powers.get(v, 0) + 1
            monos.append(tuple(sorted(powers.items())))
    templates: Dict[str, Polynomial] = {}
    unknowns: List[str] = []
    locations = list(pts.interior_locations) + [pts.term_location, pts.fail_location]
    for loc in locations:
        terms = {}
        for mono in monos:
            name = f"c({loc})[{mono}]"
            unknowns.append(name)
            terms[mono] = LinExpr.variable(name)
        templates[loc] = Polynomial(terms)
    return templates, unknowns


def polynomial_hoeffding_synthesis(
    pts: PTS,
    invariants: Optional[InvariantMap] = None,
    degree: int = 2,
    handelman_degree: Optional[int] = None,
    search_tol: float = 1e-5,
    eps_cap: float = 1e3,
    verify: bool = False,
) -> UpperBoundCertificate:
    """Section 5.1 with polynomial RepRSMs (Remark 3), via Handelman + LP.

    Works on PTSs whose per-transition premises ``I(l) /\\ guard`` are
    bounded polytopes and whose sampling is absent or degenerate (the C4
    support box is folded into the premise for discrete/point cases).
    Returns the usual Hoeffding-form certificate ``exp(8 eps eta(init))``.
    """
    start = time.perf_counter()
    if invariants is None:
        invariants = generate_interval_invariants(pts)
    if pts.distributions:
        raise ModelError(
            "polynomial RepRSM synthesis currently supports fork randomness "
            "only (no sampling variables)"
        )
    handelman_degree = handelman_degree or degree + 1
    templates, unknowns = _poly_template(pts, degree)

    def build_lp(eps_value: float) -> LinearProgram:
        lp = LinearProgram()
        for name in unknowns:
            lp.add_variable(name)
        lp.add_variable("_omega", upper=0.0)
        eps = as_fraction(round(eps_value, 10))
        init_val = {v: pts.init_valuation[v] for v in pts.program_vars}
        # (C1): eta(init) <= omega
        eta_init = templates[pts.init_location].at_point(init_val)
        lp.add_le(eta_init - LinExpr.variable("_omega"), label="C1")
        # (C2): eta(fail) >= 0 on I(fail)
        fail_inv = invariants.of(pts.fail_location)
        if not fail_inv.is_empty():
            handelman_constraints(
                templates[pts.fail_location], fail_inv, lp, handelman_degree, "C2"
            )
        # (C3) + (C4) per transition
        for t_index, t in enumerate(pts.transitions):
            psi = invariants.of(t.source).intersect(t.guard).with_variables(pts.program_vars)
            if psi.is_empty():
                continue
            expected = Polynomial.constant(0)
            for fork in t.forks:
                mapping = {
                    v: fork.update.expr_for(v) for v in pts.program_vars
                }
                post = templates[fork.destination].substitute_affine(mapping)
                expected = expected + post.scale(fork.probability)
            decrease = (
                templates[t.source] - expected - Polynomial.constant(eps)
            )
            handelman_constraints(decrease, psi, lp, handelman_degree, f"C3@{t_index}")
            for f_index, fork in enumerate(t.forks):
                mapping = {v: fork.update.expr_for(v) for v in pts.program_vars}
                post = templates[fork.destination].substitute_affine(mapping)
                diff = post - templates[t.source]
                lp.add_variable("_beta")
                beta = Polynomial({(): LinExpr.variable("_beta")})
                handelman_constraints(
                    diff - beta, psi, lp, handelman_degree, f"C4lo@{t_index}.{f_index}"
                )
                handelman_constraints(
                    beta + Polynomial.constant(1) - diff,
                    psi,
                    lp,
                    handelman_degree,
                    f"C4hi@{t_index}.{f_index}",
                )
        return lp

    def f(eps_value: float):
        if eps_value <= 0:
            return float("inf"), None
        lp = build_lp(eps_value)
        try:
            assignment = lp.solve(minimize=LinExpr.variable("_omega"))
        except (InfeasibleError, SolverError):
            return float("inf"), None
        return 8.0 * eps_value * assignment["_omega"], assignment

    # bracket eps: grow until infeasible
    hi = 1.0
    while f(hi)[0] < float("inf") and hi < eps_cap:
        hi *= 4.0
    result = ternary_search(f, 1e-9, min(hi, eps_cap), tol=search_tol)
    if result.payload is None or result.value >= 0:
        raise SynthesisError("no useful polynomial RepRSM found")
    assignment = result.payload
    eps_star = result.eps

    init_float = {k: float(v) for k, v in pts.init_valuation.items()}
    eta_init = templates[pts.init_location].evaluate(init_float, assignment)
    log_bound = min(8.0 * eps_star * eta_init, 0.0)

    from repro.core.templates import ExpStateFunction

    # degree-1 projection for reporting; the full polynomial is in `extra`
    sf = ExpStateFunction(
        variables=pts.program_vars,
        coeffs={
            loc: {v: 0.0 for v in pts.program_vars} for loc in pts.interior_locations
        },
        consts={loc: log_bound for loc in pts.interior_locations},
        term_location=pts.term_location,
        fail_location=pts.fail_location,
    )
    certificate = UpperBoundCertificate(
        method="polynomial-hoeffding",
        log_bound=log_bound,
        state_function=sf,
        pts=pts,
        invariants=invariants,
        solve_seconds=time.perf_counter() - start,
        solver_info=f"Handelman LP x{result.evaluations}, eps*={eps_star:.4g}, degree={degree}",
    )
    certificate.polynomial_templates = templates  # type: ignore[attr-defined]
    certificate.polynomial_assignment = assignment  # type: ignore[attr-defined]
    if verify:
        _verify_polynomial_reprsm(pts, invariants, templates, assignment, eps_star)
    return certificate


def _verify_polynomial_reprsm(pts, invariants, templates, assignment, eps, tol=1e-5):
    """Sample-based re-check of (C1)-(C3) for the polynomial RepRSM."""
    import random

    from repro.errors import VerificationError
    from repro.core.certificates import sample_psi_points

    rng = random.Random(13)
    init = {k: float(v) for k, v in pts.init_valuation.items()}
    if templates[pts.init_location].evaluate(init, assignment) > tol:
        raise VerificationError("(C1) failed for polynomial RepRSM")
    for t in pts.transitions:
        psi = invariants.of(t.source).intersect(t.guard).with_variables(pts.program_vars)
        for point in sample_psi_points(psi, rng, count=6):
            current = templates[t.source].evaluate(point, assignment)
            expected = 0.0
            for fork in t.forks:
                nxt = {
                    v: fork.update.expr_for(v).evaluate_float(point)
                    for v in pts.program_vars
                }
                expected += float(fork.probability) * templates[
                    fork.destination
                ].evaluate(nxt, assignment)
            if expected > current - eps + tol * max(1.0, abs(current)):
                raise VerificationError(
                    f"(C3) failed for polynomial RepRSM at {t.name!r} {point}"
                )
