"""Bound certificates and their independent verification.

A synthesis algorithm returning coefficients is not the end of the story:
this library re-derives the soundness conditions *directly from the PTS
semantics* (not from the constraint encodings used during synthesis) and
checks them on the returned state function.  Concretely, for a state
function ``theta`` and transition ``tau`` enabled on ``Psi``:

* upper bounds need the pre fixed-point inequality
  ``ptf(theta)(l, v) <= theta(l, v)`` for ``v in Psi`` (Theorem 4.1/4.3);
* lower bounds need the post fixed-point inequality with ``>=`` plus
  boundedness and almost-sure termination (Theorem 4.4);
* RepRSM certificates additionally carry the (beta, delta, eps) data and
  re-check conditions (C1)-(C4) of Section 5.1.

Points are drawn from each ``Psi`` via its generator representation
(vertices, plus random convex combinations pushed along recession rays), so
the checks exercise both the bounded and the unbounded directions.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import VerificationError
from repro.polyhedra.minkowski import decompose
from repro.pts.model import PTS, Transition
from repro.utils.logspace import format_log_bound, log_sum_exp
from repro.core.invariants import InvariantMap
from repro.core.templates import ExpStateFunction

__all__ = [
    "log_ptf_transition",
    "sample_psi_points",
    "RepRSMData",
    "UpperBoundCertificate",
    "LowerBoundCertificate",
]

NEG_INF = float("-inf")


def log_ptf_transition(
    pts: PTS, sf: ExpStateFunction, transition: Transition, valuation: Dict[str, float]
) -> float:
    """``log( sum_j p_j * E_r[ theta(dst_j, upd_j(v, r)) ] )`` at ``valuation``.

    Computed straight from the PTS: for each fork the expectation factors
    into the destination exponent at the mean update plus the log-MGFs of
    the sampling variables at their (numeric) ``gamma`` coefficients.
    Destination ``l_term`` contributes 0; ``l_fail`` contributes ``p_j``.
    """
    parts: List[float] = []
    for fork in transition.forks:
        dst = fork.destination
        log_p = math.log(float(fork.probability))
        if dst == pts.term_location and dst not in sf.coeffs:
            continue
        if dst == pts.fail_location and dst not in sf.coeffs:
            parts.append(log_p)
            continue
        row = sf.coeffs[dst]
        exponent = sf.consts[dst]
        gammas: Dict[str, float] = {}
        for w in pts.program_vars:
            a_w = row[w]
            if a_w == 0.0:
                continue
            expr = fork.update.expr_for(w)
            exponent += a_w * float(expr.const)
            for name, coeff in expr.coeffs.items():
                if name in pts.distributions:
                    gammas[name] = gammas.get(name, 0.0) + a_w * float(coeff)
                else:
                    exponent += a_w * float(coeff) * valuation[name]
        for r, gamma in gammas.items():
            exponent += pts.distributions[r].log_mgf(gamma)
        parts.append(log_p + exponent)
    return log_sum_exp(parts)


def sample_psi_points(
    psi,
    rng: random.Random,
    count: int = 8,
    ray_scale: float = 50.0,
) -> List[Dict[str, float]]:
    """Sample points of a polyhedron from its generator representation.

    Always includes every vertex; adds random convex combinations of the
    vertices pushed along random nonnegative combinations of recession rays
    and lines (both signs), exercising the unbounded directions that the
    cone condition (D1) governs.
    """
    dec = decompose(psi)
    if dec.is_empty:
        return []
    names = dec.generators.variables
    vertices = [
        {v: float(val) for v, val in point.items()} for point in dec.polytope_points
    ]
    points = [dict(p) for p in vertices]
    directions = [[float(x) for x in ray] for ray in dec.generators.rays]
    for line in dec.generators.lines:
        directions.append([float(x) for x in line])
        directions.append([-float(x) for x in line])
    for _ in range(count):
        weights = [rng.random() for _ in vertices]
        total = sum(weights)
        point = {
            v: sum(w * p[v] for w, p in zip(weights, vertices)) / total for v in names
        }
        for direction in directions:
            t = rng.random() * ray_scale
            for i, v in enumerate(names):
                point[v] += t * direction[i]
        points.append(point)
    return points


@dataclass
class RepRSMData:
    """A solved repulsing ranking supermartingale (Section 5.1)."""

    eta: ExpStateFunction  # includes rows for the sink locations
    eps: float
    beta: float
    delta: float = 1.0

    @property
    def hoeffding_factor(self) -> float:
        """The exponent multiplier ``8 eps / delta^2`` of Theorem 5.1."""
        return 8.0 * self.eps / (self.delta * self.delta)

    @property
    def azuma_factor(self) -> float:
        """The multiplier ``4 eps / delta^2`` of the [CNZ17] bound (Remark 2)."""
        return 4.0 * self.eps / (self.delta * self.delta)


@dataclass
class _CheckReport:
    checked: int = 0
    worst: float = NEG_INF
    failures: List[str] = field(default_factory=list)


class _CertificateBase:
    """Shared plumbing for upper and lower bound certificates."""

    def __init__(
        self,
        method: str,
        log_bound: float,
        state_function: ExpStateFunction,
        pts: PTS,
        invariants: InvariantMap,
        canonical_constraints: Optional[Sequence] = None,
        solve_seconds: float = 0.0,
        solver_info: str = "",
        reprsm: Optional[RepRSMData] = None,
    ):
        self.method = method
        self.log_bound = float(log_bound)
        self.state_function = state_function
        self.pts = pts
        self.invariants = invariants
        self.canonical_constraints = list(canonical_constraints or [])
        self.solve_seconds = solve_seconds
        self.solver_info = solver_info
        self.reprsm = reprsm

    @property
    def bound(self) -> float:
        """The bound as a float (0.0 on underflow — use ``log_bound`` then)."""
        if self.log_bound == NEG_INF:
            return 0.0
        return math.exp(self.log_bound) if self.log_bound < 700 else float("inf")

    @property
    def bound_str(self) -> str:
        """Human-readable bound, robust to double underflow (``1e-3230``...)."""
        return format_log_bound(self.log_bound)

    def render_template(self) -> Dict[str, str]:
        """Per-location symbolic form, like the paper's Tables 3-5."""
        return {
            loc: self.state_function.render(loc) for loc in self.state_function.coeffs
        }

    # -- shared fixed-point sampling check -----------------------------------------
    def _check_fixed_point(
        self, direction: str, tol: float, samples: int, seed: int
    ) -> _CheckReport:
        rng = random.Random(seed)
        report = _CheckReport()
        for t in self.pts.transitions:
            psi = self.invariants.of(t.source).intersect(t.guard)
            psi = psi.with_variables(self.pts.program_vars)
            for point in sample_psi_points(psi, rng, count=samples):
                lhs = log_ptf_transition(self.pts, self.state_function, t, point)
                rhs = self.state_function.log_value(t.source, point)
                gap = lhs - rhs if direction == "pre" else rhs - lhs
                # relative tolerance on large exponents
                scale = max(1.0, abs(rhs) if rhs != NEG_INF else 1.0)
                report.checked += 1
                report.worst = max(report.worst, gap)
                if gap > tol * scale:
                    report.failures.append(
                        f"{direction}-fixed-point violated at {t.name!r} "
                        f"{ {k: round(v, 3) for k, v in point.items()} }: "
                        f"gap {gap:.3e}"
                    )
        return report

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(method={self.method!r}, bound={self.bound_str}, "
            f"time={self.solve_seconds:.2f}s)"
        )


class UpperBoundCertificate(_CertificateBase):
    """A verified upper bound on the assertion violation probability."""

    def verify(self, tol: float = 1e-6, samples: int = 8, seed: int = 7) -> None:
        """Re-check soundness; raises :class:`VerificationError` on failure.

        * ``explinsyn``/``hoeffding``: the state function must be a pre
          fixed-point on every transition's ``Psi`` (sampled generators and
          ray extensions) — Theorem 4.1 then gives ``vpf <= theta``.
        * ``hoeffding``/``azuma``: the stored RepRSM must satisfy (C1)-(C4).
        """
        failures: List[str] = []
        if self.method in ("explinsyn", "hoeffding"):
            report = self._check_fixed_point("pre", tol, samples, seed)
            failures.extend(report.failures[:5])
        if self.reprsm is not None:
            failures.extend(self._check_reprsm(tol, samples, seed)[:5])
        init_log = self.state_function.log_value(
            self.pts.init_location,
            {k: float(v) for k, v in self.pts.init_valuation.items()},
        )
        if self.method == "explinsyn" and self.log_bound < init_log - tol - 1e-9:
            failures.append(
                f"reported log-bound {self.log_bound:.6g} below eta(init) {init_log:.6g}"
            )
        if failures:
            raise VerificationError(
                "upper-bound certificate failed verification:\n  " + "\n  ".join(failures)
            )

    def _check_reprsm(self, tol: float, samples: int, seed: int) -> List[str]:
        assert self.reprsm is not None
        rng = random.Random(seed + 1)
        eta = self.reprsm.eta
        eps, beta, delta = self.reprsm.eps, self.reprsm.beta, self.reprsm.delta
        pts = self.pts
        failures: List[str] = []
        # (C1)
        init_val = {k: float(v) for k, v in pts.init_valuation.items()}
        if eta.exponent(pts.init_location, init_val) > tol:
            failures.append("(C1) eta(init) > 0")
        # (C2) at every state entering l_fail (the form the synthesis encodes
        # and the only form Theorem 5.1's proof needs)
        for t in pts.transitions:
            fail_forks = [f for f in t.forks if f.destination == pts.fail_location]
            if not fail_forks:
                continue
            psi = self.invariants.of(t.source).intersect(t.guard)
            psi = psi.with_variables(pts.program_vars)
            for point in sample_psi_points(psi, rng, count=samples):
                for fork in fail_forks:
                    for draws in _support_draws(pts, rng):
                        nxt = {
                            v: fork.update.expr_for(v).evaluate_float({**point, **draws})
                            for v in pts.program_vars
                        }
                        if eta.exponent(pts.fail_location, nxt) < -tol * max(
                            1.0, abs(eta.exponent(pts.fail_location, nxt))
                        ):
                            failures.append(f"(C2) eta < 0 entering l_fail at {nxt}")
                            break
        # (C3) + (C4)
        for t in pts.transitions:
            psi = self.invariants.of(t.source).intersect(t.guard)
            psi = psi.with_variables(pts.program_vars)
            for point in sample_psi_points(psi, rng, count=samples):
                src_val = eta.exponent(t.source, point)
                expected = 0.0
                for fork in t.forks:
                    mean_update = {
                        v: fork.update.expr_for(v).evaluate_float(
                            {
                                **point,
                                **{
                                    r: float(d.mean())
                                    for r, d in pts.distributions.items()
                                },
                            }
                        )
                        for v in pts.program_vars
                    }
                    expected += float(fork.probability) * eta.exponent(
                        fork.destination, mean_update
                    )
                scale = max(1.0, abs(src_val))
                if expected > src_val - eps + tol * scale:
                    failures.append(f"(C3) violated at {t.name!r} {point}")
                for fork in t.forks:
                    for draws in _support_draws(pts, rng):
                        nxt = {
                            v: fork.update.expr_for(v).evaluate_float({**point, **draws})
                            for v in pts.program_vars
                        }
                        diff = eta.exponent(fork.destination, nxt) - src_val
                        if diff < beta - tol * scale or diff > beta + delta + tol * scale:
                            failures.append(
                                f"(C4) difference {diff:.4f} outside "
                                f"[{beta:.4f}, {beta + delta:.4f}] at {t.name!r}"
                            )
                            break
        return failures


def _support_draws(pts: PTS, rng: random.Random) -> List[Dict[str, float]]:
    """Extreme and random draws of all sampling variables (for C4 checks)."""
    names = sorted(pts.distributions)
    if not names:
        return [{}]
    draws: List[Dict[str, float]] = []
    for pick_hi in (False, True):
        d = {}
        for r in names:
            lo, hi = pts.distributions[r].bounded_support()
            d[r] = float(hi if pick_hi else lo)
        draws.append(d)
    for _ in range(3):
        draws.append({r: pts.distributions[r].sample(rng) for r in names})
    return draws


class LowerBoundCertificate(_CertificateBase):
    """A verified lower bound on the assertion violation probability.

    Soundness additionally rests on almost-sure termination (Theorem 4.4);
    ``termination_certificate`` records how that assumption was discharged
    (an RSM synthesized by :mod:`repro.core.termination`, or a caller
    assertion).
    """

    def __init__(self, *args, termination_certificate=None, bound_m: float = 0.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.termination_certificate = termination_certificate
        self.bound_m = bound_m

    def verify(self, tol: float = 1e-6, samples: int = 8, seed: int = 11) -> None:
        """Re-check the post fixed-point inequality and boundedness."""
        failures: List[str] = []
        report = self._check_fixed_point("post", tol, samples, seed)
        failures.extend(report.failures[:5])
        # boundedness: exponent <= log M on sampled invariant points
        if self.bound_m > 0:
            log_m = math.log(self.bound_m) if self.bound_m >= 1 else 0.0
            rng = random.Random(seed + 2)
            for loc in self.state_function.coeffs:
                inv = self.invariants.of(loc)
                for point in sample_psi_points(inv, rng, count=samples):
                    if self.state_function.exponent(loc, point) > log_m + tol:
                        failures.append(f"boundedness violated at {loc!r}")
                        break
        if self.log_bound > tol:
            failures.append(f"lower bound exceeds 1: log={self.log_bound:.3g}")
        if failures:
            raise VerificationError(
                "lower-bound certificate failed verification:\n  " + "\n  ".join(failures)
            )
