"""Legacy pure-Python value iteration, kept as the differential oracle.

This module is the pre-vectorization implementation of
:mod:`repro.core.fixpoint`, preserved byte-for-byte in behaviour: the same
breadth-first exploration order, the same overflow pessimization, the same
(Gauss-Seidel style, in-place) sweep over successor lists.  The sparse
engine in :mod:`repro.core.fixpoint` must produce brackets that agree with
this one to within iteration tolerance on every discrete program — the
equivalence suites (``tests/test_fixpoint_equivalence.py`` for the scalar
Fraction explorer, ``tests/test_fixpoint_int.py`` for the int64
frontier-batch explorer and the blocked Gauss-Seidel schedule) enforce
that on the example programs and on randomized PTSs.

Do not optimize this module; its value is being slow and obviously correct.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import ModelError
from repro.pts.model import PTS
from repro.core.fixpoint import ValueIterationResult

__all__ = ["value_iteration", "exact_vpf"]

State = Tuple[str, Tuple[Fraction, ...]]


def _explore(
    pts: PTS, max_states: int
) -> Tuple[Dict[State, int], List[Optional[List[Tuple[float, int]]]], bool]:
    """Enumerate reachable states; returns (index, successor lists, truncated).

    ``successors[i]`` is ``None`` for sink/overflow states; otherwise a list
    of ``(probability, state_index)``.  Requires discrete distributions
    (finite atom sets) — continuous sampling has uncountable reach.
    """
    atoms_by_var = {}
    for r, dist in pts.distributions.items():
        atoms = dist.atoms()
        if atoms is None:
            raise ModelError(
                f"value iteration needs discrete sampling; {r!r} is continuous"
            )
        atoms_by_var[r] = atoms

    def draws() -> List[Tuple[float, Dict[str, Fraction]]]:
        combos: List[Tuple[float, Dict[str, Fraction]]] = [(1.0, {})]
        for r, atoms in atoms_by_var.items():
            combos = [
                (p * float(q), {**d, r: value})
                for p, d in combos
                for q, value in atoms
            ]
        return combos

    draw_list = draws()
    init_state: State = (
        pts.init_location,
        tuple(pts.init_valuation[v] for v in pts.program_vars),
    )
    index: Dict[State, int] = {init_state: 0}
    order: List[State] = [init_state]
    successors: List[Optional[List[Tuple[float, int]]]] = []
    truncated = False
    frontier = 0
    while frontier < len(order):
        loc, values = order[frontier]
        frontier += 1
        if pts.is_sink(loc):
            successors.append(None)
            continue
        valuation = dict(zip(pts.program_vars, values))
        float_val = {k: float(v) for k, v in valuation.items()}
        transition = pts.enabled_transition(loc, float_val)
        if transition is None:
            raise ModelError(f"no enabled transition at {loc!r} with {valuation}")
        outs: List[Tuple[float, int]] = []
        for fork in transition.forks:
            for draw_p, draw in draw_list:
                nxt_val = fork.update.apply(valuation, draw)
                nxt: State = (
                    fork.destination,
                    tuple(nxt_val[v] for v in pts.program_vars),
                )
                if nxt not in index:
                    if len(order) >= max_states:
                        truncated = True
                        outs.append((float(fork.probability) * draw_p, -1))
                        continue
                    index[nxt] = len(order)
                    order.append(nxt)
                outs.append((float(fork.probability) * draw_p, index.get(nxt, -1)))
        successors.append(outs)
    return index, successors, truncated


def value_iteration(
    pts: PTS,
    max_states: int = 200_000,
    max_iterations: int = 100_000,
    tol: float = 1e-12,
) -> ValueIterationResult:
    """Compute a rigorous bracket on ``vpf(l_init, v_init)`` by iterating
    ``ptf`` from bottom and from top over the explored state space."""
    index, successors, truncated = _explore(pts, max_states)
    n = len(successors)
    loc_of = [None] * n
    for (loc, _), i in index.items():
        loc_of[i] = loc

    lower = [0.0] * n
    upper = [0.0] * n
    for i in range(n):
        if loc_of[i] == pts.fail_location:
            lower[i] = upper[i] = 1.0
        elif loc_of[i] == pts.term_location:
            lower[i] = upper[i] = 0.0
        elif successors[i] is None:  # pragma: no cover - only sinks are None
            lower[i], upper[i] = 0.0, 1.0
        else:
            lower[i], upper[i] = 0.0, 1.0

    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        delta = 0.0
        for i in range(n):
            outs = successors[i]
            if outs is None:
                continue
            lo = 0.0
            hi = 0.0
            for p, j in outs:
                if j < 0:
                    hi += p  # overflow state: pessimistic 1 above, 0 below
                else:
                    lo += p * lower[j]
                    hi += p * upper[j]
            delta = max(delta, abs(lo - lower[i]), abs(hi - upper[i]))
            lower[i], upper[i] = lo, hi
        if delta <= tol:
            break
    return ValueIterationResult(
        lower=lower[0],
        upper=upper[0],
        states=n,
        iterations=iterations,
        truncated=truncated,
    )


def exact_vpf(pts: PTS, max_states: int = 200_000, tol: float = 1e-12) -> float:
    """``vpf(init)`` when the bracket closes; raises otherwise."""
    result = value_iteration(pts, max_states=max_states, tol=tol)
    if result.width > 1e-6:
        raise ModelError(
            f"value iteration bracket did not close (width {result.width:.2e}); "
            "the PTS may not terminate almost-surely or was truncated"
        )
    return 0.5 * (result.lower + result.upper)
