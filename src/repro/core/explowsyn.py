"""ExpLowSyn (Section 6): exponential lower bounds on violation probability.

For almost-surely terminating PTSs, Theorem 4.4 makes the violation
probability the *greatest* fixed point of ``ptf`` on the bounded lattice
``K_M``, so every bounded post fixed-point is a lower bound.  The synthesis
steps are:

1. **Templates** per interior location (``theta = exp(a_l . v + b_l)``).
2. **Bounding** — ``a_l . v + b_l <= M`` on ``I(l)`` for a fresh unknown
   ``M >= 0`` (Farkas), keeping ``theta`` inside ``K_{exp(M)}``.
3. **Canonicalization** with ``>=`` (shared with Section 5.2).
4. **Jensen's inequality** — each canonical constraint is strengthened to
   the linear form ``sum_j (p_j / Q) (alpha_j . v + beta_j +
   gamma_j . E[r]) >= -ln Q`` with ``Q = sum_j p_j`` (Theorem 6.1); sound
   but incomplete.
5. **Farkas + LP**, maximizing ``a_init . v_init + b_init``.

Almost-sure termination is discharged automatically via
:func:`~repro.core.termination.prove_almost_sure_termination` unless the
caller passes ``assume_termination=True``.
"""

from __future__ import annotations

import math
import time
from fractions import Fraction
from typing import Dict, List, Optional

from repro.errors import InfeasibleError, SolverError, SynthesisError
from repro.numeric.lp import LinearProgram
from repro.polyhedra.farkas import FarkasEncoder, TemplateConstraint
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import PTS
from repro.utils.numbers import as_fraction
from repro.core.canonical import CanonicalConstraint, canonicalize
from repro.core.certificates import LowerBoundCertificate
from repro.core.invariants import InvariantMap, generate_interval_invariants
from repro.core.templates import ExpTemplate
from repro.core.termination import TerminationCertificate, prove_almost_sure_termination

__all__ = ["exp_low_syn", "synthesize"]

M_NAME = "_M"


def _jensen_strengthen(
    con: CanonicalConstraint, pts: PTS, encoder: FarkasEncoder
) -> List[TemplateConstraint]:
    """Step 4: the linear strengthening of one canonical ``>= 1`` constraint."""
    q = sum((t.prob for t in con.terms), Fraction(0))
    if q == 0:
        raise SynthesisError(
            f"transition {con.transition_name!r} moves all probability to the "
            "termination sink; exp-template lower bounds cannot hold there "
            "(theta(l_src) <= 0 is unsatisfiable for exponentials)"
        )
    # mean >= -ln q, with ln q rounded *down* so the encoded constraint
    # implies the true one even at the float boundary
    ln_q = 0.0 if q == 1 else math.log(float(q)) - 1e-12
    mean_coeffs: Dict[str, LinExpr] = {}
    mean_const = LinExpr.constant(0)
    for term in con.terms:
        w = term.prob / q
        for v, expr in term.alpha.items():
            mean_coeffs[v] = mean_coeffs.get(v, LinExpr.constant(0)) + expr * w
        mean_const = mean_const + term.beta * w
        for r, gamma in term.gamma.items():
            mean_const = mean_const + gamma * (pts.distributions[r].mean() * w)
    # sum >= -ln q  <=>  (-mean_coeffs) . v <= mean_const + ln q
    neg = {v: -e for v, e in mean_coeffs.items()}
    rhs = mean_const + as_fraction(ln_q)
    return encoder.encode_implication(
        con.psi, neg, rhs, label=f"jensen:{con.transition_name}"
    )


def exp_low_syn(
    pts: PTS,
    invariants: Optional[InvariantMap] = None,
    assume_termination: bool = False,
    verify: bool = True,
) -> LowerBoundCertificate:
    """Synthesize an exponential lower bound on the violation probability.

    Sound for almost-surely terminating affine PTSs; runs in polynomial
    time (one Farkas encoding + one LP).  Raises :class:`SynthesisError`
    when no affine witness exists (e.g. the Jensen strengthening is too
    coarse, or no ranking supermartingale proves termination).
    """
    start = time.perf_counter()
    if invariants is None:
        invariants = generate_interval_invariants(pts)
    termination: Optional[TerminationCertificate] = None
    if not assume_termination:
        termination = prove_almost_sure_termination(pts, invariants)

    template = ExpTemplate(pts, include_sinks=False)
    encoder = FarkasEncoder(prefix="_l")
    constraints: List[TemplateConstraint] = []

    # Step 2: boundedness  a_l . v + b_l <= M  on I(l), M >= 0
    m_var = LinExpr.variable(M_NAME)
    constraints.append(TemplateConstraint(-m_var, "<=", label="M>=0"))
    for loc in pts.interior_locations:
        inv = invariants.of(loc)
        if inv.is_empty():
            continue
        coeffs = {v: template.coeff(loc, v) for v in pts.program_vars}
        rhs = m_var - template.const(loc)
        constraints.extend(
            encoder.encode_implication(inv, coeffs, rhs, label=f"bound@{loc}")
        )

    # Steps 3-4: canonical constraints, Jensen-strengthened
    for con in canonicalize(pts, invariants, template):
        constraints.extend(_jensen_strengthen(con, pts, encoder))

    # Step 5: LP, maximizing the reported exponent (batched sparse assembly)
    lp = LinearProgram()
    lp.add_constraints(constraints)
    try:
        assignment = lp.solve(minimize=-template.eta_initial())
    except InfeasibleError:
        raise SynthesisError("ExpLowSyn: the strengthened constraint system is infeasible")
    except SolverError as exc:
        raise SynthesisError(f"ExpLowSyn: LP failed ({exc})")

    state_function = template.instantiate(assignment)
    init_val = {k: float(v) for k, v in pts.init_valuation.items()}
    log_bound = min(state_function.exponent(pts.init_location, init_val), 0.0)
    m_value = assignment.get(M_NAME, 0.0)
    certificate = LowerBoundCertificate(
        method="explowsyn",
        log_bound=log_bound,
        state_function=state_function,
        pts=pts,
        invariants=invariants,
        solve_seconds=time.perf_counter() - start,
        solver_info=f"LP with {lp.num_constraints} rows; M={m_value:.3g}",
        termination_certificate=termination,
        bound_m=math.exp(min(m_value, 700.0)),
    )
    if verify:
        certificate.verify()
    return certificate


# -- analysis-engine protocol -------------------------------------------------------


def synthesize(task, deps=None, engine=None):
    """Engine entry point for ``explowsyn`` tasks."""
    from repro.engine.task import CertificateResult, result_from_certificate

    pts, invariants = task.program.resolve()
    start = time.perf_counter()
    try:
        certificate = exp_low_syn(
            pts,
            invariants,
            assume_termination=bool(task.param("assume_termination", False)),
            verify=bool(task.param("verify", True)),
        )
    except Exception as exc:
        return CertificateResult.failure(task, exc, seconds=time.perf_counter() - start)
    return result_from_certificate(
        task.algorithm,
        certificate,
        seconds=time.perf_counter() - start,
        details={
            "init_location": pts.init_location,
            "termination_proved": certificate.termination_certificate is not None,
        },
    )
