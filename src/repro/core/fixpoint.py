"""Fixed-point machinery: the probability transformer and value iteration.

Theorem 4.3 characterizes the violation probability as ``vpf = lfp ptf``;
Theorem 4.2 constructs it as the limit of ``ptf^(i)(bottom)``.  For PTSs
with discrete sampling and finitely many reachable states this is directly
computable, giving the library *ground truth* to validate every synthesized
bound against:

* iterating from ``bottom`` (0 everywhere) yields an increasing sequence of
  **lower** approximations of ``vpf``;
* iterating from ``top`` (1 everywhere, the ``K_1`` top) yields a
  decreasing sequence of **upper** approximations of ``gfp ptf_1`` — equal
  to ``vpf`` under almost-sure termination (Theorem 4.4).

When the reachable space overflows ``max_states``, overflow states are
pessimized (0 in the lower pass, 1 in the upper pass), so the returned
bracket remains rigorous.

Engine architecture (see ``PERFORMANCE.md`` and ``docs/ARCHITECTURE.md``)
-------------------------------------------------------------------------

Exploration runs on one of three interchangeable engines producing
*bit-identical* models:

* **int64 frontier batches** (the fast path, ``explore="int64"``): when the
  PTS lives on the integer lattice (:meth:`repro.pts.PTS.integrality`),
  guards compile to stacked integer inequality matrices and fork/draw
  updates to ``int64`` affine maps, and the BFS advances a whole frontier
  per step — successor batches are computed as matrix products, deduplicated
  through a void-view (``V``-dtype) hash of the raw state bytes instead of
  per-state tuple interning, and admitted in exactly the sequential
  discovery order, so state indices, truncation cuts and COO triplet order
  match the scalar engine bit for bit.  Integer arithmetic is exact;
  coefficient-magnitude admission checks guarantee the reference engine's
  float guard evaluation is exact on every in-range state, and any state
  value beyond ``2**31`` aborts the batch and falls back to the exact path.
* **scaled-lattice int64 frontier batches** (``explore="scaled"``): the
  same frontier engine re-lowered onto a *fixed-point* lattice.  When a
  non-integral PTS admits per-variable denominator LCMs ``s_v``
  (:attr:`IntegralityReport.scale <repro.pts.IntegralityReport>`), the BFS
  explores the rescaled integers ``s_v * v`` — guards and affine steppers
  are rescaled exactly at plan-compile time (each guard row multiplied by
  its own positive integer so coefficients stay integral) — and the lazy
  ``index`` descales back to the exact rationals.  The translation is
  validated by construction: per-row admission checks bound both the
  reference engine's float guard-evaluation error and the lattice gap
  ``1/m`` of the exact guard value, so the scaled integer decision
  ``<= 0`` coincides with the reference's float ``<= 1e-9`` decision on
  every in-range state (see ``_scaled_guard_row``), keeping the
  sequential-discovery-order bit-identity contract intact.
* **scalar Fraction interning** (``explore="fraction"``): the original
  state-interning BFS whose per-location transition logic is *compiled* —
  guards become float predicates and fork/draw updates become
  tuple-to-tuple stepper functions — handling non-integer lattices and
  arbitrary magnitudes with exact rational arithmetic.

Both emit COO triplets ``(state, successor, probability)`` plus
fail/terminate/overflow masks; the value-iteration passes then run as a
single matrix-times-two-column product per sweep — ``scipy.sparse`` CSR for
large systems, a dense ``numpy`` matrix when the state count is small
enough that sparse call overhead dominates — with a sup-norm convergence
check.

The legacy pure-Python engine is preserved in
:mod:`repro.core.fixpoint_reference` and the equivalence suite keeps all
paths in lockstep.  The reference sweep updates states in place — a
Gauss-Seidel schedule.  On the dense path the vectorized engine reproduces
that schedule *exactly*: with ``A = L + U`` split at the strict lower
triangle (in BFS state order), one in-place sweep is the affine map
``x' = (I - L)^{-1} (U x + b)``, and ``(I - L)`` is unit lower triangular,
hence always invertible, so we precompute ``G = (I - L)^{-1} U`` once and
sweep with a single matvec.  Iteration counts and converged values then
match the reference to float rounding.  The CSR path defaults to the
simultaneous (Jacobi) schedule — same fixed point, monotone from the same
lattice elements, but slow-mixing chains may need up to ~2x the sweeps of
the reference.  For those, ``schedule="gauss-seidel"`` runs a *blocked*
Gauss-Seidel sweep: the state space is cut into contiguous
``_DENSE_STATE_LIMIT``-sized blocks and each sweep performs one sparse
triangular solve per block (unit-diagonal ``(I - L_kk)``), which reproduces
the reference's in-place schedule exactly — at a higher per-sweep cost,
worthwhile when Jacobi's extra sweeps dominate.

Slow-mixing chains need tens of thousands of sweeps under *any* schedule,
so ``value_iteration(solver=...)`` adds a solve-then-certify layer
(:mod:`repro.core.solvers`): after a short sweep warmup, an untrusted
oracle (sparse direct solve of ``(I - A) x = b``, SOR, or Anderson
acceleration) proposes a candidate, and a constant number of monotone
certification sweeps either proves it brackets the fixed point (clamping
it into a valid lower/upper pair, plus a contraction witness for the
lower side) or rejects it and falls back to plain sweeping from the
unchanged, still-valid iterate.  The emitted bracket is rigorous either
way — the oracle is pure acceleration, never trusted.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.core import solvers as _solvers
from repro.core.runcert import (
    DigestAccumulator,
    canonical_level_rows,
    exact_state_row,
)
from repro.core.solvers import SOLVERS
from repro.errors import ModelError
from repro.pts.model import PTS

__all__ = [
    "FIXPOINT_FINGERPRINT",
    "SOLVERS",
    "ValueIterationResult",
    "SparseFixpointModel",
    "build_sparse_model",
    "iterate_model",
    "value_iteration",
    "exact_vpf",
]

State = Tuple[str, Tuple[Fraction, ...]]

#: version stamp of the exploration/sweep machinery, folded into engine
#: cache keys (see ``repro.engine.task``) so artifacts produced by
#: different fixpoint engines can never alias on disk.
#: v2: scaled-lattice (fixed-point int64) admission — ``explore="auto"``
#: now covers fractional PTSs too
#: v3: solve-then-certify value iteration (oracle candidates adopted only
#: after monotone certification) + the tiny-model explorer heuristic, which
#: changes ``explore="auto"`` engine selection on small state spaces
FIXPOINT_FINGERPRINT = "scaled-int64-frontier.certified-solve.v3"

#: below this many states a dense matrix beats CSR (per-call overhead of
#: scipy.sparse matvecs dominates on iteration-heavy, state-light chains)
#: and the exact Gauss-Seidel operator (n x n dense) is affordable; it is
#: also the block size of the blocked Gauss-Seidel CSR schedule
_DENSE_STATE_LIMIT = 2048

#: state values beyond this abort the int64 frontier BFS (fallback to the
#: exact Fraction path); chosen so that every guard/update product stays
#: well inside int64 *and* the reference engine's float evaluation of
#: integer-valued guards is provably exact (see `_compile_int_plan`)
_INT_VALUE_LIMIT = 2**31

#: admission bound for guard rows: sum(|coeff|) * _INT_VALUE_LIMIT + |const|
#: must stay below 2**52 so float products/partial sums of in-range states
#: are exact — this is what makes int64 guard decisions *identical* to the
#: reference's float-with-1e-9-tolerance decisions on integer lattices
_INT_GUARD_MAGNITUDE = 2**52

#: admission bound for update rows: results only need to not overflow int64
#: before the per-batch range check (updates are exact in all engines)
_INT_STEP_MAGNITUDE = 2**62

#: per-variable *real-coordinate* magnitude limit of the scaled-lattice
#: engine: scaled values are range-checked against
#: ``min(2**31, s_v * 2**15)``, i.e. descaled magnitudes stay below 2**15.
#: Together with `_SCALED_GUARD_SLACK` this is what bounds the reference
#: engine's float guard-evaluation error on fractional states (scaled
#: guard decisions are exact integers, the reference's are floats with a
#: 1e-9 tolerance — see `_scaled_guard_row` for the agreement argument)
_SCALED_REAL_LIMIT = 2**15

#: cap on a scaled guard row's clearing multiplier ``m``: the exact guard
#: value at any lattice state is a multiple of ``1/m``, so a nonzero value
#: is at least ``1/m >= 2e-9`` — comfortably past the reference's 1e-9
#: float tolerance even after the worst admissible evaluation error
_SCALED_GAP_LIMIT = 5 * 10**8

#: admissible bound on the reference engine's absolute float error when it
#: evaluates a guard row at any in-range state; half the margin between
#: the lattice gap floor (2e-9) and the 1e-9 decision tolerance
_SCALED_GUARD_SLACK = 5e-10

#: unit roundoff of IEEE double arithmetic
_FLOAT_ULP = 2.0**-53

_EXPLORE_MODES = ("auto", "int64", "scaled", "fraction")
_SCHEDULES = ("auto", "jacobi", "gauss-seidel")

#: thin-frontier bailout (``explore="auto"`` only): after this many BFS
#: levels, a run averaging fewer than ``_THIN_MIN_WIDTH`` states per level
#: restarts on the scalar engine — per-batch numpy overhead makes batching
#: a loss on long, narrow chains (1DWalk-shaped systems)
_THIN_CHECK_BATCHES = 64
_THIN_MIN_WIDTH = 8

#: tiny-model bailout (``explore="auto"`` only): a fully explored model
#: below this many states re-runs on the scalar Fraction engine — per-batch
#: numpy setup costs more than the whole scalar BFS on such models (the
#: 13-state gambler measured a 0.29x "speedup" under int64 batching)
_TINY_MODEL_STATES = 256


class _IntOverflow(Exception):
    """Internal: a frontier batch left the admissible int64 range."""


class _ThinFrontier(Exception):
    """Internal: frontier too narrow for batching to pay off."""


@dataclass
class ValueIterationResult:
    """A rigorous bracket ``lower <= vpf(init) <= upper``."""

    lower: float
    upper: float
    states: int
    iterations: int
    truncated: bool  # True when the reachable set overflowed max_states
    #: which solver produced the adopted bracket: ``"sweep"`` when plain
    #: monotone sweeping did (including every oracle rejection/fallback),
    #: else the oracle name (``"direct"``/``"sor"``/``"anderson"``)
    solver: str = "sweep"
    #: True when *both* bracket sides were adopted from a certified oracle
    #: candidate (the bracket carries its own proof; see repro.core.solvers)
    certified: bool = False
    #: monotone verification sweeps spent on certification (0 without an
    #: oracle attempt; each slack-ladder trial costs one two-column sweep,
    #: plus one matvec for the lower side's contraction witness)
    certify_sweeps: int = 0
    #: sup-norm residual ``max |A x* + b - x*|`` of the oracle candidate
    #: over both bracket columns (None when no oracle ran)
    oracle_residual: Optional[float] = None
    #: solver-certification evidence for run certificates (witness hash,
    #: slack-ladder parameters, measured pre/post-fixpoint margins);
    #: excluded from equality — evidence describes *how* the bracket was
    #: certified, not what it is
    evidence: Optional[Dict] = field(default=None, repr=False, compare=False)

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def tight(self) -> bool:
        """True when the bracket pins vpf to within 1e-9."""
        return self.width <= 1e-9

    def contains(self, p: float, slack: float = 1e-12) -> bool:
        return self.lower - slack <= p <= self.upper + slack


# ---------------------------------------------------------------------------
# transition compilation: guards -> float predicates, updates -> steppers
# ---------------------------------------------------------------------------


def _normalize(value: Fraction):
    """Integral rationals as plain ints: same hash/equality, faster arithmetic."""
    return int(value) if value.denominator == 1 else value


def _compile_guard(guard, var_index: Dict[str, int]) -> Callable:
    """Compile ``Polyhedron.contains_float(..., tol=1e-9)`` into a predicate
    over the float state vector, reproducing the reference evaluation order
    (constant first, then coefficients in insertion order)."""
    consts: List[float] = []
    clauses: List[str] = []
    for ineq in guard.inequalities:
        expr = ineq.expr
        parts = [repr(float(expr.const))]
        for name, coeff in expr.iter_coeffs():
            consts.append(float(coeff))
            parts.append(f"_c[{len(consts) - 1}] * f[{var_index[name]}]")
        clauses.append(f"({' + '.join(parts)}) <= 1e-9")
    body = " and ".join(clauses) or "True"
    namespace: Dict[str, object] = {"_c": consts}
    exec(f"def _guard(f, _c=_c):\n    return {body}", namespace)
    return namespace["_guard"]  # type: ignore[return-value]


def _compile_step(
    update, program_vars: Tuple[str, ...], var_index: Dict[str, int], draw: Dict[str, Fraction]
) -> Callable:
    """Compile one fork/draw combination into ``step(values) -> values'``.

    The sampling draw is substituted at compile time, so each stepper is a
    pure tuple-to-tuple affine map over exact numbers (ints where possible).
    """
    consts: List[object] = []
    parts: List[str] = []
    for v in program_vars:
        expr = update.assignments.get(v)
        if expr is None:
            parts.append(f"v[{var_index[v]}]")
            continue
        const = expr.const
        terms: List[str] = []
        for name, coeff in expr.iter_coeffs():
            if name in draw:
                const = const + coeff * draw[name]
                continue
            j = var_index[name]
            if coeff == 1:
                terms.append(f"v[{j}]")
            elif coeff == -1:
                terms.append(f"-v[{j}]")
            else:
                consts.append(_normalize(coeff))
                terms.append(f"_c[{len(consts) - 1}] * v[{j}]")
        if const != 0 or not terms:
            consts.append(_normalize(const))
            terms.append(f"_c[{len(consts) - 1}]")
        parts.append(" + ".join(terms))
    inner = ", ".join(parts)
    if len(parts) == 1:
        inner += ","
    namespace: Dict[str, object] = {"_c": consts}
    exec(f"def _step(v, _c=_c):\n    return ({inner})", namespace)
    return namespace["_step"]  # type: ignore[return-value]


def _draw_list(pts: PTS) -> List[Tuple[float, Dict[str, Fraction]]]:
    """Cartesian product of sampling atoms, in the reference engine's order
    (so probability weights are bit-identical float products)."""
    atoms_by_var = {}
    for r, dist in pts.distributions.items():
        atoms = dist.atoms()
        if atoms is None:
            raise ModelError(
                f"value iteration needs discrete sampling; {r!r} is continuous"
            )
        atoms_by_var[r] = atoms
    combos: List[Tuple[float, Dict[str, Fraction]]] = [(1.0, {})]
    for r, atoms in atoms_by_var.items():
        combos = [
            (p * float(q), {**d, r: value})
            for p, d in combos
            for q, value in atoms
        ]
    return combos


def _compile_plan(pts: PTS):
    """Per-location list of ``(guard_predicate, steppers)`` in transition
    order, where ``steppers`` is ``[(probability, destination, step_fn)]``
    over every fork/draw combination."""
    draw_list = _draw_list(pts)
    var_index = {v: i for i, v in enumerate(pts.program_vars)}
    plan: Dict[str, List[Tuple[Callable, List[Tuple[float, str, Callable]]]]] = {}
    step_cache: Dict[Tuple[int, int], Callable] = {}
    for t in pts.transitions:
        guard_fn = _compile_guard(t.guard, var_index)
        steppers: List[Tuple[float, str, Callable]] = []
        for fork in t.forks:
            p_fork = float(fork.probability)
            for d_idx, (draw_p, draw) in enumerate(draw_list):
                key = (id(fork.update), d_idx)
                step = step_cache.get(key)
                if step is None:
                    step = _compile_step(fork.update, pts.program_vars, var_index, draw)
                    step_cache[key] = step
                steppers.append((p_fork * draw_p, fork.destination, step))
        plan.setdefault(t.source, []).append((guard_fn, steppers))
    return plan


# ---------------------------------------------------------------------------
# int64 lattice compilation: guards -> stacked inequality matrices,
# fork/draw updates -> int64 affine maps
# ---------------------------------------------------------------------------


class _IntLocPlan:
    """Vectorized transition logic of one location.

    ``guard_matrix``/``guard_const`` stack every inequality row of every
    transition out of the location; ``guard_slices[t]`` is the row range of
    transition ``t`` (first-match dispatch slices the evaluated matrix).
    ``steppers[t]`` lists the fork x draw combinations of transition ``t``
    as ``(probability, destination_loc_id, A, c)`` with
    ``succ = values @ A.T + c``.
    """

    __slots__ = ("guard_matrix", "guard_const", "guard_slices", "steppers")

    def __init__(self, guard_matrix, guard_const, guard_slices, steppers):
        self.guard_matrix = guard_matrix
        self.guard_const = guard_const
        self.guard_slices = guard_slices
        self.steppers = steppers


class _IntPlan:
    """A compiled frontier-batch exploration plan plus its lattice.

    ``scale[j]`` is the fixed-point denominator of program variable ``j``
    (all ones on the plain integer lattice, ``scaled = False``); state
    vectors inside the BFS hold ``scale * value``.  ``limits[j]`` is the
    per-variable magnitude bound in *scaled* coordinates that every
    admitted state must satisfy — ``2**31`` on the integer lattice,
    ``min(2**31, scale[j] * 2**15)`` on scaled ones.  ``admission`` is
    the run-certificate record of the bounds actually used — every guard
    row (with its clearing multiplier and overflow headroom) and every
    stepper's headroom, in transition order; an independent checker
    re-derives the same record from the PTS (see
    :mod:`repro.core.runcert`).
    """

    __slots__ = ("by_loc", "scale", "limits", "scaled", "admission")

    def __init__(self, by_loc, scale, limits, scaled, admission):
        self.by_loc = by_loc
        self.scale = scale
        self.limits = limits
        self.scaled = scaled
        self.admission = admission


def _scaled_guard_row(
    expr, var_index: Dict[str, int], scale: List[int], limits: List[int]
) -> Optional[Tuple[List[int], int, int]]:
    """Rescale one guard inequality onto the fixed-point lattice, or
    ``None`` when it is inadmissible.

    The exact row ``sum(a_j * x_j) + c <= 0`` becomes
    ``sum((m * a_j / s_j) * (s_j * x_j)) + m * c <= 0`` for the smallest
    positive integer ``m`` clearing every denominator — sign-preserving,
    so the decision is unchanged.  Admission enforces the
    translation-validation argument that the *exact* integer decision
    equals the reference engine's ``float <= 1e-9`` decision at every
    in-range lattice state:

    * ``m <= 5e8``: the exact guard value is a multiple of ``1/m``, so a
      nonzero value is at least ``2e-9``;
    * the reference's float evaluation error is below ``5e-10``: with
      ``nt`` coefficient terms evaluated in reference order, the absolute
      error is at most ``(nt + 4) * u * (|c| + sum |a_j| * V_j)`` for unit
      roundoff ``u = 2**-53`` and per-variable real magnitude limits
      ``V_j = limits[j] / s_j`` (each input is correctly rounded, each
      product adds ~3u relative error, each partial sum one more);

    hence exact ``<= 0`` implies float ``<= 5e-10 < 1e-9``, and exact
    ``> 0`` implies float ``>= 2e-9 - 5e-10 > 1e-9``.  The rescaled
    int64 row additionally stays below ``2**62`` so the batched integer
    dot products cannot wrap.
    """
    nv = len(scale)
    terms = [(var_index[name], Fraction(coeff)) for name, coeff in expr.iter_coeffs()]
    const = Fraction(expr.const)
    mult = const.denominator
    rescaled = []
    for j, coeff in terms:
        q = coeff / scale[j]
        rescaled.append((j, q))
        mult = mult * q.denominator // gcd(mult, q.denominator)
    if mult > _SCALED_GAP_LIMIT:
        return None
    row = [0] * nv
    for j, q in rescaled:
        row[j] = int(q * mult)
    c = int(const * mult)
    if sum(abs(row[j]) * limits[j] for j in range(nv)) + abs(c) >= _INT_STEP_MAGNITUDE:
        return None
    magnitude = abs(float(const)) + sum(
        abs(float(coeff)) * (limits[j] / scale[j]) for j, coeff in terms
    )
    if (len(terms) + 4) * _FLOAT_ULP * magnitude > _SCALED_GUARD_SLACK:
        return None
    return row, c, mult


def _compile_int_plan(pts: PTS, allow_scaled: bool = False) -> Optional[_IntPlan]:
    """Compile the int64 exploration plan, or ``None`` when inadmissible.

    On the plain integer lattice (:meth:`PTS.integrality`), admission
    requires magnitude bounds: guard rows must satisfy
    ``sum(|coeff|) * 2**31 + |const| < 2**52`` — which simultaneously rules
    out int64 overflow and makes the reference engine's float evaluation of
    the (integer-valued) guard expression exact on every in-range state, so
    ``exact <= 0`` and ``float <= 1e-9`` are the same decision — and update
    rows must stay below ``2**62`` so successor products cannot wrap before
    the per-batch range check.

    With ``allow_scaled``, non-integral systems whose report carries
    per-variable fixed-point denominators are re-lowered onto the scaled
    lattice instead: guard rows via :func:`_scaled_guard_row` (which owns
    the float-agreement argument), steppers via exact rescaling
    ``A'[v, j] = s_v * A[v, j] / s_j`` / ``c'_v = s_v * c_v`` (integral by
    the report's divisibility fixpoint).
    """
    report = pts.integrality()
    if report.integral:
        scaled = False
    elif allow_scaled and report.scale is not None:
        scaled = True
    else:
        return None
    program_vars = pts.program_vars
    nv = len(program_vars)
    var_index = {v: i for i, v in enumerate(program_vars)}
    loc_id = {name: i for i, name in enumerate(pts.locations)}
    draw_list = _draw_list(pts)
    scale = [int(s) for s in (report.scale or (1,) * nv)]
    if scaled:
        limits = [min(_INT_VALUE_LIMIT, s * _SCALED_REAL_LIMIT) for s in scale]
    else:
        limits = [_INT_VALUE_LIMIT] * nv

    guard_entries: List[Dict] = []
    step_entries: List[Dict] = []
    rows_by_loc: Dict[int, List[Tuple]] = {}
    step_cache: Dict[Tuple[int, int], Tuple[Tuple[np.ndarray, np.ndarray], int]] = {}
    for ti, t in enumerate(pts.transitions):
        guard_rows: List[List[int]] = []
        guard_consts: List[int] = []
        for k, ineq in enumerate(t.guard.inequalities):
            expr = ineq.expr
            if scaled:
                compiled_row = _scaled_guard_row(expr, var_index, scale, limits)
                if compiled_row is None:
                    return None
                row, const, mult = compiled_row
                magnitude = sum(
                    abs(row[j]) * limits[j] for j in range(nv)
                ) + abs(const)
                headroom = _INT_STEP_MAGNITUDE - magnitude
            else:
                row = [0] * nv
                for name, coeff in expr.iter_coeffs():
                    row[var_index[name]] = int(coeff)
                const = int(expr.const)
                mult = 1
                magnitude = sum(abs(a) for a in row) * _INT_VALUE_LIMIT + abs(const)
                if magnitude >= _INT_GUARD_MAGNITUDE:
                    return None
                headroom = _INT_GUARD_MAGNITUDE - magnitude
            guard_entries.append(
                {
                    "transition": ti,
                    "ineq": k,
                    "mult": int(mult),
                    "row": list(row),
                    "const": int(const),
                    "headroom": int(headroom),
                }
            )
            guard_rows.append(row)
            guard_consts.append(const)
        steppers: List[Tuple[float, int, np.ndarray, np.ndarray]] = []
        for fi, fork in enumerate(t.forks):
            p_fork = float(fork.probability)
            dest = loc_id[fork.destination]
            for d_idx, (draw_p, draw) in enumerate(draw_list):
                key = (id(fork.update), d_idx)
                cached = step_cache.get(key)
                if cached is None:
                    a_rows: List[List[int]] = []
                    c_row: List[int] = []
                    worst = 0
                    for vi, v in enumerate(program_vars):
                        expr = fork.update.assignments.get(v)
                        if expr is None:
                            row = [0] * nv
                            row[var_index[v]] = 1
                            a_rows.append(row)
                            c_row.append(0)
                            # identity rows skip the admission check but
                            # still count toward the recorded headroom
                            worst = max(worst, limits[vi])
                            continue
                        row = [0] * nv
                        const = expr.const
                        for name, coeff in expr.iter_coeffs():
                            if name in draw:
                                const = const + coeff * draw[name]
                            elif scaled:
                                j = var_index[name]
                                q = Fraction(coeff) * scale[vi] / scale[j]
                                if q.denominator != 1:  # pragma: no cover -
                                    # the report's divisibility fixpoint
                                    # guarantees integrality; stay safe
                                    return None
                                row[j] = int(q)
                            else:
                                row[var_index[name]] = int(coeff)
                        if scaled:
                            scaled_const = Fraction(const) * scale[vi]
                            if scaled_const.denominator != 1:  # pragma: no cover
                                return None
                            c = int(scaled_const)
                        else:
                            c = int(const)
                        magnitude = sum(
                            abs(row[j]) * limits[j] for j in range(nv)
                        ) + abs(c)
                        if magnitude >= _INT_STEP_MAGNITUDE:
                            return None
                        worst = max(worst, magnitude)
                        a_rows.append(row)
                        c_row.append(c)
                    cached = (
                        (
                            np.array(a_rows, dtype=np.int64).reshape(nv, nv),
                            np.array(c_row, dtype=np.int64),
                        ),
                        _INT_STEP_MAGNITUDE - worst,
                    )
                    step_cache[key] = cached
                compiled, step_headroom = cached
                step_entries.append(
                    {
                        "transition": ti,
                        "fork": fi,
                        "draw": d_idx,
                        "headroom": int(step_headroom),
                    }
                )
                steppers.append((p_fork * draw_p, dest, compiled[0], compiled[1]))
        rows_by_loc.setdefault(loc_id[t.source], []).append(
            (guard_rows, guard_consts, steppers)
        )

    admission = {
        "lattice": "scaled" if scaled else "int64",
        "scale": list(scale),
        "limits": list(limits),
        "guards": guard_entries,
        "steps": step_entries,
        "bounds": {
            "value_limit": _INT_VALUE_LIMIT,
            "real_limit": _SCALED_REAL_LIMIT,
            "guard_magnitude": _INT_GUARD_MAGNITUDE,
            "step_magnitude": _INT_STEP_MAGNITUDE,
            "gap_limit": _SCALED_GAP_LIMIT,
            "guard_slack": _SCALED_GUARD_SLACK,
            "ulp": _FLOAT_ULP,
        },
    }

    by_loc: Dict[int, _IntLocPlan] = {}
    for lid, transitions in rows_by_loc.items():
        all_rows: List[List[int]] = []
        all_consts: List[int] = []
        slices: List[Tuple[int, int]] = []
        stepper_lists = []
        for guard_rows, guard_consts, steppers in transitions:
            start = len(all_rows)
            all_rows.extend(guard_rows)
            all_consts.extend(guard_consts)
            slices.append((start, len(all_rows)))
            stepper_lists.append(steppers)
        by_loc[lid] = _IntLocPlan(
            np.array(all_rows, dtype=np.int64).reshape(len(all_rows), nv),
            np.array(all_consts, dtype=np.int64),
            slices,
            stepper_lists,
        )
    return _IntPlan(by_loc, scale, limits, scaled, admission)


# ---------------------------------------------------------------------------
# state-interning BFS -> sparse model
# ---------------------------------------------------------------------------


@dataclass
class SparseFixpointModel:
    """The explored fragment as linear-algebra data.

    ``matrix`` holds interior-row transition probabilities into *every*
    state (sink rows are empty); the fixed sink values and the overflow
    pessimization live in the affine offsets, so one sweep of both passes is
    ``X <- matrix @ X + B``.  ``explored_via`` records which exploration
    engine produced the model (``"int64"``, ``"scaled-int64"`` or
    ``"fraction"``); all produce bit-identical data on admissible systems.
    """

    n: int
    matrix: object  # csr_matrix or np.ndarray, shape (n, n)
    b_lower: np.ndarray  # per-state affine offset of the lower pass
    b_upper: np.ndarray  # ... of the upper pass (includes overflow mass)
    x0_lower: np.ndarray  # bottom lattice element (fail states pinned to 1)
    x0_upper: np.ndarray  # top lattice element (term states pinned to 0)
    truncated: bool
    explored_via: str = "fraction"
    # cache-only plumbing for the lazy `index` property: excluded from
    # equality (bit-identical models must compare equal regardless of which
    # engine built them) and from repr
    _index: Optional[Dict[State, int]] = field(default=None, repr=False, compare=False)
    _index_builder: Optional[Callable[[], Dict[State, int]]] = field(
        default=None, repr=False, compare=False
    )
    # exploration evidence for run certificates (per-level frontier
    # digests + the frontier plan's admission record); excluded from
    # equality for the same reason as the index plumbing — bit-identical
    # models must compare equal whichever engine built them
    _evidence: Optional[Dict] = field(default=None, repr=False, compare=False)

    @property
    def index(self) -> Dict[State, int]:
        """State -> row interning map, materialized on first access.

        The int64/scaled-int64 explorers never build Python state tuples
        during the BFS (the scaled one additionally descales fixed-point
        coordinates back to exact rationals here); callers that want the
        mapping (tests, debugging) pay for it here instead of on every
        exploration.
        """
        if self._index is None:
            self._index = self._index_builder() if self._index_builder else {}
        return self._index

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz) if hasattr(self.matrix, "nnz") else int(
            np.count_nonzero(self.matrix)
        )


def _matrix_from_triplets(n: int, rows, cols, probs):
    """Dense below the cutoff, CSR above — identical triplet order in, so
    duplicate ``(i, j)`` summation is bit-identical across explorers."""
    if n <= _DENSE_STATE_LIMIT:
        matrix: object = np.zeros((n, n))
        np.add.at(matrix, (rows, cols), probs)
        return matrix
    # duplicate (i, j) entries sum, matching successor-list semantics
    return csr_matrix((probs, (rows, cols)), shape=(n, n))


def build_sparse_model(
    pts: PTS, max_states: int = 200_000, explore: str = "auto"
) -> SparseFixpointModel:
    """Explore the reachable fragment and assemble the sparse model.

    ``explore`` selects the exploration engine: ``"auto"`` (default) runs
    the int64 frontier-batch BFS whenever the PTS is admitted by
    :func:`_compile_int_plan` — on the plain integer lattice *or*, for
    fractional systems, on the scaled (fixed-point) lattice — and silently
    falls back to the exact path on inadmissible systems or on value
    overflow mid-exploration; ``"int64"`` forces the integer-lattice fast
    path and ``"scaled"`` the fixed-point one (each raising
    :class:`ModelError` when it cannot run; ``"scaled"`` on an
    integer-lattice PTS degenerates to the int64 path with all scale
    factors 1); ``"fraction"`` forces the exact scalar path.

    All engines visit states in exactly the reference engine's order (so
    ``max_states`` truncation cuts the same frontier) and emit COO triplets
    in the same order, making the resulting models bit-identical.
    """
    if explore not in _EXPLORE_MODES:
        raise ValueError(f"explore must be one of {_EXPLORE_MODES}, got {explore!r}")
    if explore != "fraction":
        plan = _compile_int_plan(pts, allow_scaled=explore in ("auto", "scaled"))
        if plan is None:
            if explore == "int64":
                raise ModelError(
                    "int64 exploration requires an integer-lattice PTS: "
                    + (pts.integrality().reason or "coefficient magnitudes too large")
                )
            if explore == "scaled":
                report = pts.integrality()
                if report.integral:
                    # degenerate case: the scale-1 (plain int64) plan was
                    # rejected, so rescaling played no part in the refusal
                    reason = "coefficient magnitudes too large"
                elif report.scale is None:
                    reason = report.scale_reason
                else:
                    reason = (
                        "rescaled coefficient magnitudes or guard gaps "
                        "exceed the admission bounds"
                    )
                raise ModelError(
                    "scaled exploration requires a fixed-point-admissible "
                    "PTS: " + reason
                )
        else:
            try:
                # forced int64/scaled disables the thin-frontier bailout so
                # tests and benchmarks exercise the batched path
                # deterministically
                return _build_model_int(
                    pts, plan, max_states, allow_thin_bailout=explore == "auto"
                )
            except _IntOverflow:
                if explore in ("int64", "scaled"):
                    raise ModelError(
                        f"state values overflowed the {explore} frontier "
                        f"limit (|scaled value| beyond the per-variable "
                        f"bound, at most {_INT_VALUE_LIMIT}); rerun with "
                        f"explore='fraction'"
                    ) from None
                # fall through to the exact path, which handles any magnitude
            except _ThinFrontier:
                pass  # narrow chain: the scalar engine is faster
    return _build_model_exact(pts, max_states)


def _build_model_exact(pts: PTS, max_states: int) -> SparseFixpointModel:
    """The scalar engine: state-interning BFS over compiled tuple steppers.

    The BFS walks the same state sequence it always did, but in *level
    windows* — the window ``[level_start, level_stop)`` snapshots the
    intern table exactly like the frontier engines' batch windows, so the
    per-level certificate digests agree across engines bit for bit.
    """
    plan = _compile_plan(pts)
    loc_id = {name: i for i, name in enumerate(pts.locations)}
    init_state: State = (
        pts.init_location,
        tuple(pts.init_valuation[v] for v in pts.program_vars),
    )
    index: Dict[State, int] = {init_state: 0}
    order: List[State] = [init_state]
    rows: List[int] = []
    cols: List[int] = []
    probs: List[float] = []
    overflow: Dict[int, float] = {}
    truncated = False
    is_sink = pts.is_sink
    acc = DigestAccumulator()
    level_start = 0
    while level_start < len(order):
        level_stop = len(order)
        acc.add_level(
            [
                exact_state_row(loc_id[loc], values)
                for loc, values in order[level_start:level_stop]
            ]
        )
        for frontier in range(level_start, level_stop):
            loc, values = order[frontier]
            if is_sink(loc):
                continue
            fvals = [float(x) for x in values]
            for guard_fn, steppers in plan.get(loc, ()):
                if guard_fn(fvals):
                    break
            else:
                valuation = dict(zip(pts.program_vars, values))
                raise ModelError(f"no enabled transition at {loc!r} with {valuation}")
            for p, destination, step in steppers:
                nxt = (destination, step(values))
                j = index.get(nxt)
                if j is None:
                    if len(order) >= max_states:
                        truncated = True
                        overflow[frontier] = overflow.get(frontier, 0.0) + p
                        continue
                    j = len(order)
                    index[nxt] = j
                    order.append(nxt)
                rows.append(frontier)
                cols.append(j)
                probs.append(p)
        level_start = level_stop

    n = len(order)
    fail_loc, term_loc = pts.fail_location, pts.term_location
    b_lower = np.zeros(n)
    x0_upper = np.ones(n)
    for i, (loc, _) in enumerate(order):
        if loc == fail_loc:
            b_lower[i] = 1.0
        elif loc == term_loc:
            x0_upper[i] = 0.0
    b_upper = b_lower.copy()
    for i, mass in overflow.items():
        b_upper[i] += mass
    return SparseFixpointModel(
        n=n,
        matrix=_matrix_from_triplets(n, rows, cols, probs),
        b_lower=b_lower,
        b_upper=b_upper,
        x0_lower=b_lower.copy(),
        x0_upper=x0_upper,
        truncated=truncated,
        explored_via="fraction",
        _index=index,
        _evidence={"levels": acc.finish(), "admission": None},
    )


def _build_model_int(
    pts: PTS,
    plan: _IntPlan,
    max_states: int,
    allow_thin_bailout: bool = False,
) -> SparseFixpointModel:
    """The int64/scaled-int64 engine: frontier-batch BFS with void-view dedup.

    Each BFS level is processed as numpy batches — guard dispatch is one
    integer matrix product per location group, successor generation one
    product per fork/draw stepper — and candidates are reordered to the
    sequential ``(source, stepper)`` discovery order before a void-view
    ``np.unique`` assigns new state indices in first-appearance order, so
    interning, truncation and triplet emission replicate the scalar engine
    exactly.  The global intern table is a *sorted* void-key array probed
    with ``np.searchsorted`` — no per-state Python hashing anywhere.
    On a scaled lattice the BFS runs entirely in fixed-point coordinates
    (``plan.scale * value``, an exact bijection onto the reachable
    rationals); only the lazy ``index`` descales back.  Raises
    :class:`_IntOverflow` the moment any successor leaves the per-variable
    admitted range ``plan.limits`` and :class:`_ThinFrontier` (when
    allowed) on chain-shaped systems whose levels are too narrow to
    amortize batching, or on fully explored models too small
    (``< _TINY_MODEL_STATES``) for batching to have paid for itself.
    """
    loc_names = pts.locations
    loc_id = {name: i for i, name in enumerate(loc_names)}
    is_sink = np.array([pts.is_sink(name) for name in loc_names], dtype=bool)
    program_vars = pts.program_vars
    nv = len(program_vars)
    width = nv + 1  # location id + values, the dedup record
    limits = np.array(plan.limits, dtype=np.int64)

    init_vals = []
    for v, s in zip(program_vars, plan.scale):
        value = pts.init_valuation[v] * s
        if value.denominator != 1:  # pragma: no cover - admission folds
            raise _IntOverflow  # init denominators into the scale
        init_vals.append(int(value))
    if any(abs(x) > limit for x, limit in zip(init_vals, plan.limits)):
        raise _IntOverflow

    cap = 1024
    vals = np.zeros((cap, nv), dtype=np.int64)
    locs = np.zeros(cap, dtype=np.int64)
    over = np.zeros(cap, dtype=np.float64)
    vals[0] = init_vals
    locs[0] = loc_id[pts.init_location]
    n = 1

    void_dtype = np.dtype((np.void, 8 * width))

    def void_keys(comb: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(comb).view(void_dtype).ravel()

    first_rec = np.empty((1, width), dtype=np.int64)
    first_rec[0, 0] = locs[0]
    first_rec[0, 1:] = vals[0]
    # two-tier sorted intern table (LSM-style): fresh keys go into the small
    # `side` arrays (cheap O(|side|) inserts); when side overflows it merges
    # into `main` once, so the O(n) rebuild happens every ~8k admissions
    # instead of every batch.  Probes are two binary searches.
    main_keys = void_keys(first_rec)
    main_gidx = np.zeros(1, dtype=np.int64)
    side_keys = main_keys[:0]
    side_gidx = main_gidx[:0]
    _SIDE_LIMIT = 8192

    rows_chunks: List[np.ndarray] = []
    cols_chunks: List[np.ndarray] = []
    probs_chunks: List[np.ndarray] = []
    truncated = False
    batches = 0
    acc = DigestAccumulator()
    scale_row = np.array(plan.scale, dtype=np.int64).reshape(1, nv)

    base = 0
    while base < n:
        stop = n
        batch_locs = locs[base:stop]
        batch_vals = vals[base:stop]
        acc.add_level(canonical_level_rows(batch_locs, batch_vals, scale_row))

        c_src: List[np.ndarray] = []
        c_rank: List[np.ndarray] = []
        c_loc: List[np.ndarray] = []
        c_vals: List[np.ndarray] = []
        c_prob: List[np.ndarray] = []
        for lid in np.unique(batch_locs):
            lid = int(lid)
            if is_sink[lid]:
                continue
            sel = np.nonzero(batch_locs == lid)[0]
            group = batch_vals[sel]
            lp = plan.by_loc.get(lid)
            if lp is None:
                valuation = dict(zip(program_vars, (int(x) for x in group[0])))
                raise ModelError(
                    f"no enabled transition at {loc_names[lid]!r} with {valuation}"
                )
            if lp.guard_matrix.size:
                holds = (group @ lp.guard_matrix.T + lp.guard_const) <= 0
            else:
                holds = np.ones((len(group), 0), dtype=bool)
            enabled = np.column_stack(
                [holds[:, a:b].all(axis=1) for a, b in lp.guard_slices]
            )
            if not enabled.any(axis=1).all():
                bad = int(np.nonzero(~enabled.any(axis=1))[0][0])
                valuation = dict(zip(program_vars, (int(x) for x in group[bad])))
                raise ModelError(
                    f"no enabled transition at {loc_names[lid]!r} with {valuation}"
                )
            choice = enabled.argmax(axis=1)
            for t_idx, steppers in enumerate(lp.steppers):
                t_sel = sel[choice == t_idx]
                if not len(t_sel):
                    continue
                t_vals = batch_vals[t_sel]
                for rank, (p, dest, a_mat, c_vec) in enumerate(steppers):
                    c_src.append(t_sel)
                    c_rank.append(np.full(len(t_sel), rank, dtype=np.int64))
                    c_loc.append(np.full(len(t_sel), dest, dtype=np.int64))
                    c_vals.append(t_vals @ a_mat.T + c_vec)
                    c_prob.append(np.full(len(t_sel), p, dtype=np.float64))

        if not c_src:
            base = stop
            continue
        src = np.concatenate(c_src)
        rank = np.concatenate(c_rank)
        dest_loc = np.concatenate(c_loc)
        succ = np.vstack(c_vals)
        prob = np.concatenate(c_prob)
        # sequential discovery order: source position, then stepper rank
        emit_order = np.lexsort((rank, src))
        src = src[emit_order]
        dest_loc = dest_loc[emit_order]
        succ = succ[emit_order]
        prob = prob[emit_order]

        comb = np.empty((len(src), width), dtype=np.int64)
        comb[:, 0] = dest_loc
        comb[:, 1:] = succ
        keys = void_keys(comb)
        uniq, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
        gidx = np.full(len(uniq), -1, dtype=np.int64)
        pos = np.searchsorted(main_keys, uniq)
        clipped = np.minimum(pos, len(main_keys) - 1)
        known = main_keys[clipped] == uniq
        gidx[known] = main_gidx[pos[known]]
        if len(side_keys):
            pos = np.searchsorted(side_keys, uniq)
            clipped = np.minimum(pos, len(side_keys) - 1)
            in_side = side_keys[clipped] == uniq
            gidx[in_side] = side_gidx[pos[in_side]]
            known |= in_side
        new_ks = np.nonzero(~known)[0]
        if len(new_ks):
            # admit in first-appearance (= sequential discovery) order
            new_ks = new_ks[np.argsort(first[new_ks], kind="stable")]
            room = max_states - n
            if len(new_ks) > room:
                truncated = True
                new_ks = new_ks[:room]
            m = len(new_ks)
            if m:
                if n + m > cap:
                    while cap < n + m:
                        cap *= 2
                    # explicit grow-and-copy (np.resize would repeat-fill);
                    # live batch views keep the old buffers alive
                    vals_grown = np.zeros((cap, nv), dtype=np.int64)
                    vals_grown[:n] = vals[:n]
                    vals = vals_grown
                    locs_grown = np.zeros(cap, dtype=np.int64)
                    locs_grown[:n] = locs[:n]
                    locs = locs_grown
                    over_grown = np.zeros(cap, dtype=np.float64)
                    over_grown[:n] = over[:n]
                    over = over_grown
                admitted_rows = first[new_ks]
                admitted_vals = succ[admitted_rows]
                # range-check only states actually admitted: candidates the
                # max_states budget drops (or duplicates of in-range states)
                # may carry any magnitude — they never feed guard evaluation.
                # Every admitted state staying within its per-variable limit
                # is also what keeps the next level's stepper products
                # inside int64 (and, on scaled lattices, the reference
                # engine's float guard evaluation within the admitted error)
                if admitted_vals.size and bool(
                    (np.abs(admitted_vals) > limits).any()
                ):
                    raise _IntOverflow
                vals[n : n + m] = admitted_vals
                locs[n : n + m] = dest_loc[admitted_rows]
                gidx[new_ks] = n + np.arange(m, dtype=np.int64)
                # admit into the side tier (ascending positions into uniq =
                # ascending key order), spilling into main when it overflows
                adm = np.sort(new_ks)
                ins = np.searchsorted(side_keys, uniq[adm])
                side_keys = np.insert(side_keys, ins, uniq[adm])
                side_gidx = np.insert(side_gidx, ins, gidx[adm])
                if len(side_keys) > _SIDE_LIMIT:
                    ins = np.searchsorted(main_keys, side_keys)
                    main_keys = np.insert(main_keys, ins, side_keys)
                    main_gidx = np.insert(main_gidx, ins, side_gidx)
                    side_keys = side_keys[:0]
                    side_gidx = side_gidx[:0]
                n += m
        cols = gidx[inverse]
        emit = cols >= 0
        rows_chunks.append(src[emit] + base)
        cols_chunks.append(cols[emit])
        probs_chunks.append(prob[emit])
        dropped = ~emit
        if dropped.any():
            np.add.at(over, src[dropped] + base, prob[dropped])
        base = stop
        batches += 1
        if (
            allow_thin_bailout
            and batches == _THIN_CHECK_BATCHES
            and n < _THIN_CHECK_BATCHES * _THIN_MIN_WIDTH
        ):
            raise _ThinFrontier

    if allow_thin_bailout and n < _TINY_MODEL_STATES:
        # the whole reachable set is tiny: batching never amortized its
        # per-level numpy setup, so re-run on the scalar engine (cheap at
        # this size, and what `explore="auto"` should have picked)
        raise _ThinFrontier

    vals = vals[:n]
    locs = locs[:n]
    over = over[:n]
    rows = np.concatenate(rows_chunks) if rows_chunks else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols_chunks) if cols_chunks else np.empty(0, dtype=np.int64)
    probs = (
        np.concatenate(probs_chunks) if probs_chunks else np.empty(0, dtype=np.float64)
    )

    b_lower = np.zeros(n)
    x0_upper = np.ones(n)
    b_lower[locs == loc_id[pts.fail_location]] = 1.0
    x0_upper[locs == loc_id[pts.term_location]] = 0.0
    b_upper = b_lower + over

    def index_builder() -> Dict[State, int]:
        names = [loc_names[i] for i in locs.tolist()]
        rows_list = vals.tolist()
        if plan.scaled:
            # descale back to the exact representation: Fraction(k, s)
            # auto-reduces, and _normalize keeps integral values as plain
            # ints — both hash-equal to the scalar engine's tuples
            denoms = plan.scale
            return {
                (
                    names[i],
                    tuple(
                        _normalize(Fraction(k, s))
                        for k, s in zip(rows_list[i], denoms)
                    ),
                ): i
                for i in range(n)
            }
        return {
            (names[i], tuple(rows_list[i])): i for i in range(n)
        }  # ints hash-equal to the Fractions of the scalar engine

    return SparseFixpointModel(
        n=n,
        matrix=_matrix_from_triplets(n, rows, cols, probs),
        b_lower=b_lower,
        b_upper=b_upper,
        x0_lower=b_lower.copy(),
        x0_upper=x0_upper,
        truncated=truncated,
        explored_via="scaled-int64" if plan.scaled else "int64",
        _index_builder=index_builder,
        _evidence={"levels": acc.finish(), "admission": plan.admission},
    )


# ---------------------------------------------------------------------------
# value iteration sweeps
# ---------------------------------------------------------------------------


def iterate_model(
    model: SparseFixpointModel,
    max_iterations: int = 100_000,
    tol: float = 1e-12,
    schedule: str = "auto",
    solver: str = "auto",
) -> ValueIterationResult:
    """Run the value-iteration passes over an already-built sparse model.

    ``schedule`` selects the sweep kernel (see :func:`value_iteration`);
    ``solver`` the solve-then-certify policy:

    * ``"sweep"`` — plain monotone sweeping to ``tol``, exactly the legacy
      behavior (bit-identical results and iteration counts);
    * ``"direct"``/``"sor"``/``"anderson"`` — after a short sweep warmup
      (fast-mixing systems converge inside it and never pay oracle setup),
      run that oracle on ``(I - A) x = [b_lower, b_upper, 1]``, certify the
      candidate with monotone sweeps (:func:`repro.core.solvers
      .certify_bracket`; the third column is the lower side's contraction
      witness), adopt whatever certifies, and resume sweeping from the —
      certified or unchanged — iterate as polish and fallback;
    * ``"auto"`` — same flow with the direct oracle, the reliably fastest
      certifiable candidate on every bench workload.

    A fully certified adoption (both sides) ends the run immediately: the
    bracket then carries its own proof and further sweeps could only
    shrink it below oracle precision.
    """
    if schedule not in _SCHEDULES:
        raise ValueError(f"schedule must be one of {_SCHEDULES}, got {schedule!r}")
    if solver not in SOLVERS:
        raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
    n = model.n
    x = np.stack([model.x0_lower, model.x0_upper], axis=1)
    b = np.stack([model.b_lower, model.b_upper], axis=1)
    matrix = model.matrix
    if isinstance(matrix, np.ndarray):
        # dense path: precompute the exact Gauss-Seidel sweep operator so the
        # schedule (and hence iteration counts) matches the reference engine
        strict_lower = np.tril(matrix, k=-1)
        sweep_inv = np.linalg.inv(np.eye(n) - strict_lower)
        op = sweep_inv @ (matrix - strict_lower)
        off = sweep_inv @ b

        def sweep(v):
            return op @ v + off

    elif schedule == "gauss-seidel":
        blocks = _solvers.gs_blocks(matrix, n)

        def sweep(v):
            return _solvers.gs_sweep(blocks, v, b)

    else:

        def sweep(v):
            return matrix @ v + b

    iterations = 0
    converged = False

    def sweep_until(x, budget):
        nonlocal iterations, converged
        for _ in range(budget):
            iterations += 1
            x_new = sweep(x)
            delta = float(np.abs(x_new - x).max()) if n else 0.0
            x = x_new
            if delta <= tol:
                converged = True
                break
        return x

    used_solver = "sweep"
    certified = False
    certify_sweeps = 0
    oracle_residual: Optional[float] = None
    # run-certificate evidence: how (not what) the bracket was certified.
    # Deliberately free of timings/timestamps so serial and pooled runs
    # of the same model produce byte-identical certificates.
    vi_evidence: Dict = {
        "requested": solver,
        "oracle": None,
        "warmup_sweeps": None,
        "witness_sha256": None,
        "witness_max": None,
        "witness_ok": None,
        "slack_ladder": None,
        "adopted_lower": False,
        "adopted_upper": False,
        "post_fixpoint_margin": None,
        "pre_fixpoint_margin": None,
        "tol": tol,
    }

    if solver != "sweep":
        x = sweep_until(x, min(_solvers.WARMUP_SWEEPS, max_iterations))
        if not converged and iterations < max_iterations:
            oracle = "direct" if solver == "auto" else solver
            rhs = np.column_stack([model.b_lower, model.b_upper, np.ones(n)])
            x0 = np.column_stack([x, np.ones(n)])
            try:
                candidate = _solvers.run_oracle(
                    model.matrix, rhs, x0, oracle, n, tol
                )
            except _solvers.OracleFailure:
                candidate = None
            if candidate is not None:
                resid = model.matrix @ candidate[:, :2] + b - candidate[:, :2]
                oracle_residual = float(np.abs(resid).max()) if n else 0.0
                allow_lower = _solvers.contraction_witness_ok(
                    model.matrix, candidate[:, 2]
                )
                certify_sweeps += 1  # the witness matvec
                x, ok_lower, ok_upper, sweeps = _solvers.certify_bracket(
                    model.matrix,
                    b,
                    x,
                    candidate[:, :2],
                    candidate[:, 2],
                    oracle_residual,
                    allow_lower,
                )
                certify_sweeps += sweeps
                # replicate the certifier's nudge selection for the
                # witness evidence (see certify_bracket)
                witness = candidate[:, 2]
                if np.isfinite(witness).all() and bool((witness > 0.0).all()):
                    nudge = witness
                else:
                    nudge = np.ones(n)
                base = max(oracle_residual, 2.0**-52)
                vi_evidence.update(
                    oracle=oracle,
                    warmup_sweeps=_solvers.WARMUP_SWEEPS,
                    witness_sha256=hashlib.sha256(
                        np.ascontiguousarray(nudge.astype("<f8")).tobytes()
                    ).hexdigest(),
                    witness_max=float(nudge.max(initial=1.0)),
                    witness_ok=bool(allow_lower),
                    slack_ladder={
                        "base": base,
                        "multiples": list(_solvers.SLACK_MULTIPLES),
                        "cap": _solvers.SLACK_CAP,
                    },
                    adopted_lower=bool(ok_lower),
                    adopted_upper=bool(ok_upper),
                )
                if ok_lower or ok_upper:
                    used_solver = oracle
                    # one extra matvec measures the adopted iterate's
                    # fixed-point margins — the checkable residue of the
                    # Knaster–Tarski argument (post-fixpoint: T(x) >= x
                    # on the lower column; pre-fixpoint: T(x) <= x on
                    # the upper).  Evidence only: certify_sweeps and the
                    # bracket itself are untouched.
                    swept_adopted = model.matrix @ x + b
                    if ok_lower:
                        vi_evidence["post_fixpoint_margin"] = (
                            float((swept_adopted[:, 0] - x[:, 0]).min())
                            if n
                            else 0.0
                        )
                    if ok_upper:
                        vi_evidence["pre_fixpoint_margin"] = (
                            float((x[:, 1] - swept_adopted[:, 1]).min())
                            if n
                            else 0.0
                        )
                if ok_lower and ok_upper:
                    certified = True
                    # the bracket carries its own proof; end the run when
                    # the candidate was solve-quality (further sweeps could
                    # only polish below oracle precision).  A certified but
                    # coarse candidate instead jump-starts the resumed
                    # sweeps: adopted points are pre/post-fixpoints, so
                    # monotone sweeping keeps improving them
                    if oracle_residual <= max(10.0 * tol, 1e-11):
                        converged = True
    if not converged:
        x = sweep_until(x, max_iterations - iterations)
    return ValueIterationResult(
        lower=float(x[0, 0]),
        upper=float(x[0, 1]),
        states=n,
        iterations=iterations,
        truncated=model.truncated,
        solver=used_solver,
        certified=certified,
        certify_sweeps=certify_sweeps,
        oracle_residual=oracle_residual,
        evidence=vi_evidence,
    )


def value_iteration(
    pts: PTS,
    max_states: int = 200_000,
    max_iterations: int = 100_000,
    tol: float = 1e-12,
    explore: str = "auto",
    schedule: str = "auto",
    solver: str = "auto",
) -> ValueIterationResult:
    """Compute a rigorous bracket on ``vpf(l_init, v_init)`` by iterating
    ``ptf`` from bottom and from top over the explored state space.

    Both passes run simultaneously as one matrix product over a two-column
    array per sweep; convergence is a sup-norm check at ``tol``.

    ``explore`` selects the exploration engine (see
    :func:`build_sparse_model`).  ``schedule`` selects the CSR sweep
    schedule: ``"jacobi"`` (the ``"auto"`` default — simultaneous updates,
    cheapest sweep) or ``"gauss-seidel"`` (blocked triangular solves
    reproducing the reference's in-place schedule, worthwhile on
    slow-mixing chains).  The dense path (``n <= 2048``) always uses the
    exact Gauss-Seidel operator regardless of ``schedule``.  ``solver``
    selects the solve-then-certify policy (see :func:`iterate_model`):
    ``"sweep"`` is the legacy pure-sweeping engine, the others accelerate
    slow-mixing systems through certified oracle candidates without
    weakening the bracket.
    """
    model = build_sparse_model(pts, max_states, explore=explore)
    return iterate_model(
        model,
        max_iterations=max_iterations,
        tol=tol,
        schedule=schedule,
        solver=solver,
    )


def exact_vpf(pts: PTS, max_states: int = 200_000, tol: float = 1e-12) -> float:
    """``vpf(init)`` when the bracket closes; raises otherwise."""
    result = value_iteration(pts, max_states=max_states, tol=tol)
    if result.width > 1e-6:
        raise ModelError(
            f"value iteration bracket did not close (width {result.width:.2e}); "
            "the PTS may not terminate almost-surely or was truncated"
        )
    return 0.5 * (result.lower + result.upper)
