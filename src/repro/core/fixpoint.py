"""Fixed-point machinery: the probability transformer and value iteration.

Theorem 4.3 characterizes the violation probability as ``vpf = lfp ptf``;
Theorem 4.2 constructs it as the limit of ``ptf^(i)(bottom)``.  For PTSs
with discrete sampling and finitely many reachable states this is directly
computable, giving the library *ground truth* to validate every synthesized
bound against:

* iterating from ``bottom`` (0 everywhere) yields an increasing sequence of
  **lower** approximations of ``vpf``;
* iterating from ``top`` (1 everywhere, the ``K_1`` top) yields a
  decreasing sequence of **upper** approximations of ``gfp ptf_1`` — equal
  to ``vpf`` under almost-sure termination (Theorem 4.4).

When the reachable space overflows ``max_states``, overflow states are
pessimized (0 in the lower pass, 1 in the upper pass), so the returned
bracket remains rigorous.

Engine architecture (see ``PERFORMANCE.md``)
--------------------------------------------

The reachable fragment is enumerated once by a state-interning BFS whose
per-location transition logic is *compiled*: guards become float predicates
and fork/draw updates become tuple-to-tuple stepper functions with the
sampling draw substituted at compile time, so the inner loop does no dict
construction and no ``LinExpr`` traversal.  The BFS emits COO triplets
``(state, successor, probability)`` plus fail/terminate/overflow masks;
both value-iteration passes then run as a single matrix-times-two-column
product per sweep — ``scipy.sparse`` CSR for large systems, a dense
``numpy`` matrix when the state count is small enough that sparse call
overhead dominates — with a sup-norm convergence check.

The legacy pure-Python engine is preserved in
:mod:`repro.core.fixpoint_reference` and the equivalence suite keeps the
two in lockstep.  The reference sweep updates states in place — a
Gauss-Seidel schedule.  On the dense path the vectorized engine reproduces
that schedule *exactly*: with ``A = L + U`` split at the strict lower
triangle (in BFS state order), one in-place sweep is the affine map
``x' = (I - L)^{-1} (U x + b)``, and ``(I - L)`` is unit lower triangular,
hence always invertible, so we precompute ``G = (I - L)^{-1} U`` once and
sweep with a single matvec.  Iteration counts and converged values then
match the reference to float rounding.  The CSR path uses the simultaneous
(Jacobi) schedule instead — same fixed point, monotone from the same
lattice elements, but slow-mixing chains may need up to ~2x the sweeps of
the reference to pass the same ``tol``; state spaces that large mix
through their sinks quickly in practice, and ``max_iterations`` is cheap
to raise now that a sweep is a matvec.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.errors import ModelError
from repro.pts.model import PTS

__all__ = [
    "ValueIterationResult",
    "SparseFixpointModel",
    "build_sparse_model",
    "value_iteration",
    "exact_vpf",
]

State = Tuple[str, Tuple[Fraction, ...]]

#: below this many states a dense matrix beats CSR (per-call overhead of
#: scipy.sparse matvecs dominates on iteration-heavy, state-light chains)
#: and the exact Gauss-Seidel operator (n x n dense) is affordable
_DENSE_STATE_LIMIT = 2048


@dataclass
class ValueIterationResult:
    """A rigorous bracket ``lower <= vpf(init) <= upper``."""

    lower: float
    upper: float
    states: int
    iterations: int
    truncated: bool  # True when the reachable set overflowed max_states

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def tight(self) -> bool:
        """True when the bracket pins vpf to within 1e-9."""
        return self.width <= 1e-9

    def contains(self, p: float, slack: float = 1e-12) -> bool:
        return self.lower - slack <= p <= self.upper + slack


# ---------------------------------------------------------------------------
# transition compilation: guards -> float predicates, updates -> steppers
# ---------------------------------------------------------------------------


def _normalize(value: Fraction):
    """Integral rationals as plain ints: same hash/equality, faster arithmetic."""
    return int(value) if value.denominator == 1 else value


def _compile_guard(guard, var_index: Dict[str, int]) -> Callable:
    """Compile ``Polyhedron.contains_float(..., tol=1e-9)`` into a predicate
    over the float state vector, reproducing the reference evaluation order
    (constant first, then coefficients in insertion order)."""
    consts: List[float] = []
    clauses: List[str] = []
    for ineq in guard.inequalities:
        expr = ineq.expr
        parts = [repr(float(expr.const))]
        for name, coeff in expr.iter_coeffs():
            consts.append(float(coeff))
            parts.append(f"_c[{len(consts) - 1}] * f[{var_index[name]}]")
        clauses.append(f"({' + '.join(parts)}) <= 1e-9")
    body = " and ".join(clauses) or "True"
    namespace: Dict[str, object] = {"_c": consts}
    exec(f"def _guard(f, _c=_c):\n    return {body}", namespace)
    return namespace["_guard"]  # type: ignore[return-value]


def _compile_step(
    update, program_vars: Tuple[str, ...], var_index: Dict[str, int], draw: Dict[str, Fraction]
) -> Callable:
    """Compile one fork/draw combination into ``step(values) -> values'``.

    The sampling draw is substituted at compile time, so each stepper is a
    pure tuple-to-tuple affine map over exact numbers (ints where possible).
    """
    consts: List[object] = []
    parts: List[str] = []
    for v in program_vars:
        expr = update.assignments.get(v)
        if expr is None:
            parts.append(f"v[{var_index[v]}]")
            continue
        const = expr.const
        terms: List[str] = []
        for name, coeff in expr.iter_coeffs():
            if name in draw:
                const = const + coeff * draw[name]
                continue
            j = var_index[name]
            if coeff == 1:
                terms.append(f"v[{j}]")
            elif coeff == -1:
                terms.append(f"-v[{j}]")
            else:
                consts.append(_normalize(coeff))
                terms.append(f"_c[{len(consts) - 1}] * v[{j}]")
        if const != 0 or not terms:
            consts.append(_normalize(const))
            terms.append(f"_c[{len(consts) - 1}]")
        parts.append(" + ".join(terms))
    inner = ", ".join(parts)
    if len(parts) == 1:
        inner += ","
    namespace: Dict[str, object] = {"_c": consts}
    exec(f"def _step(v, _c=_c):\n    return ({inner})", namespace)
    return namespace["_step"]  # type: ignore[return-value]


def _draw_list(pts: PTS) -> List[Tuple[float, Dict[str, Fraction]]]:
    """Cartesian product of sampling atoms, in the reference engine's order
    (so probability weights are bit-identical float products)."""
    atoms_by_var = {}
    for r, dist in pts.distributions.items():
        atoms = dist.atoms()
        if atoms is None:
            raise ModelError(
                f"value iteration needs discrete sampling; {r!r} is continuous"
            )
        atoms_by_var[r] = atoms
    combos: List[Tuple[float, Dict[str, Fraction]]] = [(1.0, {})]
    for r, atoms in atoms_by_var.items():
        combos = [
            (p * float(q), {**d, r: value})
            for p, d in combos
            for q, value in atoms
        ]
    return combos


def _compile_plan(pts: PTS):
    """Per-location list of ``(guard_predicate, steppers)`` in transition
    order, where ``steppers`` is ``[(probability, destination, step_fn)]``
    over every fork/draw combination."""
    draw_list = _draw_list(pts)
    var_index = {v: i for i, v in enumerate(pts.program_vars)}
    plan: Dict[str, List[Tuple[Callable, List[Tuple[float, str, Callable]]]]] = {}
    step_cache: Dict[Tuple[int, int], Callable] = {}
    for t in pts.transitions:
        guard_fn = _compile_guard(t.guard, var_index)
        steppers: List[Tuple[float, str, Callable]] = []
        for fork in t.forks:
            p_fork = float(fork.probability)
            for d_idx, (draw_p, draw) in enumerate(draw_list):
                key = (id(fork.update), d_idx)
                step = step_cache.get(key)
                if step is None:
                    step = _compile_step(fork.update, pts.program_vars, var_index, draw)
                    step_cache[key] = step
                steppers.append((p_fork * draw_p, fork.destination, step))
        plan.setdefault(t.source, []).append((guard_fn, steppers))
    return plan


# ---------------------------------------------------------------------------
# state-interning BFS -> sparse model
# ---------------------------------------------------------------------------


@dataclass
class SparseFixpointModel:
    """The explored fragment as linear-algebra data.

    ``matrix`` holds interior-row transition probabilities into *every*
    state (sink rows are empty); the fixed sink values and the overflow
    pessimization live in the affine offsets, so one sweep of both passes is
    ``X <- matrix @ X + B``.
    """

    n: int
    matrix: object  # csr_matrix or np.ndarray, shape (n, n)
    b_lower: np.ndarray  # per-state affine offset of the lower pass
    b_upper: np.ndarray  # ... of the upper pass (includes overflow mass)
    x0_lower: np.ndarray  # bottom lattice element (fail states pinned to 1)
    x0_upper: np.ndarray  # top lattice element (term states pinned to 0)
    truncated: bool
    index: Dict[State, int]

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz) if hasattr(self.matrix, "nnz") else int(
            np.count_nonzero(self.matrix)
        )


def build_sparse_model(pts: PTS, max_states: int = 200_000) -> SparseFixpointModel:
    """Explore the reachable fragment and assemble the sparse model.

    The BFS visits states in exactly the reference engine's order (so
    truncation cuts the same frontier), interning each state tuple once:
    the successor lookup is a single ``dict.get`` and the compiled steppers
    never materialize per-state valuation dicts.
    """
    plan = _compile_plan(pts)
    init_state: State = (
        pts.init_location,
        tuple(pts.init_valuation[v] for v in pts.program_vars),
    )
    index: Dict[State, int] = {init_state: 0}
    order: List[State] = [init_state]
    rows: List[int] = []
    cols: List[int] = []
    probs: List[float] = []
    overflow: Dict[int, float] = {}
    truncated = False
    is_sink = pts.is_sink
    frontier = 0
    while frontier < len(order):
        loc, values = order[frontier]
        if is_sink(loc):
            frontier += 1
            continue
        fvals = [float(x) for x in values]
        for guard_fn, steppers in plan.get(loc, ()):
            if guard_fn(fvals):
                break
        else:
            valuation = dict(zip(pts.program_vars, values))
            raise ModelError(f"no enabled transition at {loc!r} with {valuation}")
        for p, destination, step in steppers:
            nxt = (destination, step(values))
            j = index.get(nxt)
            if j is None:
                if len(order) >= max_states:
                    truncated = True
                    overflow[frontier] = overflow.get(frontier, 0.0) + p
                    continue
                j = len(order)
                index[nxt] = j
                order.append(nxt)
            rows.append(frontier)
            cols.append(j)
            probs.append(p)
        frontier += 1

    n = len(order)
    fail_loc, term_loc = pts.fail_location, pts.term_location
    b_lower = np.zeros(n)
    x0_upper = np.ones(n)
    for i, (loc, _) in enumerate(order):
        if loc == fail_loc:
            b_lower[i] = 1.0
        elif loc == term_loc:
            x0_upper[i] = 0.0
    b_upper = b_lower.copy()
    for i, mass in overflow.items():
        b_upper[i] += mass
    if n <= _DENSE_STATE_LIMIT:
        matrix: object = np.zeros((n, n))
        np.add.at(matrix, (rows, cols), probs)
    else:
        matrix = csr_matrix(
            (probs, (rows, cols)), shape=(n, n)
        )  # duplicate (i, j) entries sum, matching successor-list semantics
    return SparseFixpointModel(
        n=n,
        matrix=matrix,
        b_lower=b_lower,
        b_upper=b_upper,
        x0_lower=b_lower.copy(),
        x0_upper=x0_upper,
        truncated=truncated,
        index=index,
    )


def value_iteration(
    pts: PTS,
    max_states: int = 200_000,
    max_iterations: int = 100_000,
    tol: float = 1e-12,
) -> ValueIterationResult:
    """Compute a rigorous bracket on ``vpf(l_init, v_init)`` by iterating
    ``ptf`` from bottom and from top over the explored state space.

    Both passes run simultaneously as one matrix product over a two-column
    array per sweep; convergence is a sup-norm check at ``tol``.
    """
    model = build_sparse_model(pts, max_states)
    x = np.stack([model.x0_lower, model.x0_upper], axis=1)
    b = np.stack([model.b_lower, model.b_upper], axis=1)
    matrix = model.matrix
    if isinstance(matrix, np.ndarray):
        # dense path: precompute the exact Gauss-Seidel sweep operator so the
        # schedule (and hence iteration counts) matches the reference engine
        strict_lower = np.tril(matrix, k=-1)
        sweep_inv = np.linalg.inv(np.eye(model.n) - strict_lower)
        matrix = sweep_inv @ (matrix - strict_lower)
        b = sweep_inv @ b
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        x_new = matrix @ x + b
        delta = float(np.abs(x_new - x).max()) if model.n else 0.0
        x = x_new
        if delta <= tol:
            break
    return ValueIterationResult(
        lower=float(x[0, 0]),
        upper=float(x[0, 1]),
        states=model.n,
        iterations=iterations,
        truncated=model.truncated,
    )


def exact_vpf(pts: PTS, max_states: int = 200_000, tol: float = 1e-12) -> float:
    """``vpf(init)`` when the bracket closes; raises otherwise."""
    result = value_iteration(pts, max_states=max_states, tol=tol)
    if result.width > 1e-6:
        raise ModelError(
            f"value iteration bracket did not close (width {result.width:.2e}); "
            "the PTS may not terminate almost-surely or was truncated"
        )
    return 0.5 * (result.lower + result.upper)
