"""HoeffdingSynthesis (Section 5.1): upper bounds via repulsing RSMs.

A ``(beta, delta, eps)``-repulsing ranking supermartingale (RepRSM) is an
affine ``eta`` over the states with

* (C1) ``eta(l_init, v_init) <= 0``,
* (C2) ``eta(l_fail, v) >= 0`` on ``I(l_fail)``,
* (C3) expected decrease by at least ``eps`` along every transition,
* (C4) one-step differences confined to ``[beta, beta + delta]``.

Theorem 5.1 turns any RepRSM into the pre fixed-point
``exp(8 eps / delta^2 * eta)`` via Hoeffding's lemma, so
``exp(8 eps / delta^2 * eta(l_init, v_init))`` bounds the violation
probability.  (The [CNZ17] baseline of Remark 2 is the same synthesis with
symmetric differences and the weaker Azuma factor ``4 eps / delta^2`` —
exposed here as ``factor="azuma"``.)

All four conditions are affine, so after fixing ``delta = 1`` (``eta``
scales freely) and applying Farkas' lemma they form an LP — except for the
bilinear objective ``8 * eps * omega``, handled by the Appendix C.2 ternary
search (:mod:`repro.numeric.ser`): each probe fixes ``eps`` and minimizes
``omega`` (an upper bound on ``eta(l_init, v_init)``) by LP.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool

from repro.errors import (
    InfeasibleError,
    SolverError,
    SynthesisError,
    TaskError,
    TaskTimeoutError,
)
from repro.numeric.lp import LinearProgram
from repro.numeric.ser import ternary_search
from repro.polyhedra.constraints import Polyhedron
from repro.polyhedra.farkas import FarkasEncoder, TemplateConstraint
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import PTS
from repro.core.certificates import RepRSMData, UpperBoundCertificate
from repro.core.invariants import InvariantMap, generate_interval_invariants
from repro.core.templates import ExpTemplate

__all__ = ["hoeffding_synthesis", "azuma_baseline", "synthesize", "synthesize_probe"]

EPS = "_eps"
OMEGA = "_omega"
BETA = "_beta"


def _mean_substituted(pts: PTS, expr: LinExpr) -> LinExpr:
    """Replace sampling variables by their means (for expectation in (C3))."""
    subs = {r: LinExpr.constant(d.mean()) for r, d in pts.distributions.items()}
    needed = {n: subs[n] for n in expr.variables() if n in subs}
    return expr.substitute(needed) if needed else expr


def _eta_of_update(
    pts: PTS, template: ExpTemplate, dst: str, update
) -> Tuple[Dict[str, LinExpr], Dict[str, LinExpr], LinExpr]:
    """``eta_dst(upd(v, r))`` split into (v-coeffs, r-coeffs, const), all
    affine over the unknowns."""
    v_coeffs: Dict[str, LinExpr] = {}
    r_coeffs: Dict[str, LinExpr] = {}
    const = template.const(dst)
    for w in pts.program_vars:
        a_w = template.coeff(dst, w)
        expr = update.expr_for(w)
        const = const + a_w * expr.const
        for name, coeff in expr.coeffs.items():
            bucket = r_coeffs if name in pts.distributions else v_coeffs
            bucket[name] = bucket.get(name, LinExpr.constant(0)) + a_w * coeff
    return v_coeffs, r_coeffs, const


def _support_box(pts: PTS) -> Polyhedron:
    """The box of all sampling-variable supports (raises if unbounded)."""
    bounds = {}
    for r, dist in pts.distributions.items():
        lo, hi = dist.bounded_support()
        bounds[r] = (lo, hi)
    return Polyhedron.from_box(bounds)


def _build_constraints(
    pts: PTS, invariants: InvariantMap, template: ExpTemplate
) -> List[TemplateConstraint]:
    """All RepRSM conditions as linear constraints over the unknowns
    (template coefficients, Farkas multipliers, ``_eps``/``_omega``/``_beta``)."""
    encoder = FarkasEncoder()
    out: List[TemplateConstraint] = []

    # (C1) eta(init) <= omega <= 0
    out.append(
        TemplateConstraint(
            template.eta_initial() - LinExpr.variable(OMEGA), "<=", label="C1"
        )
    )
    out.append(TemplateConstraint(LinExpr.variable(OMEGA), "<=", label="C1:omega"))
    # eps >= 0
    out.append(TemplateConstraint(-LinExpr.variable(EPS), "<=", label="eps>=0"))

    # (C2) eta must be nonnegative at every state that *enters* l_fail.
    # The paper states C2 over I(l_fail); Theorem 5.1's proof only uses it
    # at successors of transitions into l_fail, so we encode exactly that —
    # for each fork into l_fail: eta_fail(upd(v, r)) >= 0 on Psi x U.  This
    # is strictly more precise than a box invariant at l_fail (which cannot
    # express relational facts like 3DWalk's x+y+z ~ 1000 slab) and remains
    # a linear Farkas block.
    sampling_box = _support_box(pts) if pts.distributions else None
    for t_index, t in enumerate(pts.transitions):
        fail_forks = [f for f in t.forks if f.destination == pts.fail_location]
        if not fail_forks:
            continue
        psi = invariants.of(t.source).intersect(t.guard).with_variables(pts.program_vars)
        if psi.is_empty():
            continue
        extended = psi if sampling_box is None else psi.intersect(sampling_box)
        for f_index, fork in enumerate(fail_forks):
            v_coeffs, r_coeffs, const = _eta_of_update(
                pts, template, pts.fail_location, fork.update
            )
            coeffs = {v: -e for v, e in v_coeffs.items()}
            coeffs.update({r: -e for r, e in r_coeffs.items()})
            out.extend(
                encoder.encode_implication(
                    extended, coeffs, const, label=f"C2@T{t_index}.{f_index}"
                )
            )

    for t_index, t in enumerate(pts.transitions):
        psi = invariants.of(t.source).intersect(t.guard).with_variables(pts.program_vars)
        if psi.is_empty():
            continue
        label = f"T{t_index}:{t.name}"

        # (C3) sum_j p_j E[eta_dst(upd_j(v, r))] <= eta_src(v) - eps on Psi
        c3_coeffs: Dict[str, LinExpr] = {
            v: -template.coeff(t.source, v) for v in pts.program_vars
        }
        c3_rhs = template.const(t.source) - LinExpr.variable(EPS)
        for fork in t.forks:
            v_coeffs, r_coeffs, const = _eta_of_update(
                pts, template, fork.destination, fork.update
            )
            p = fork.probability
            for v, expr in v_coeffs.items():
                c3_coeffs[v] = c3_coeffs.get(v, LinExpr.constant(0)) + expr * p
            mean_part = const
            for r, expr in r_coeffs.items():
                mean_part = mean_part + expr * pts.distributions[r].mean()
            c3_rhs = c3_rhs - mean_part * p
        out.extend(
            encoder.encode_implication(psi, c3_coeffs, c3_rhs, label=f"{label}:C3")
        )

        # (C4) beta <= eta_dst(upd(v, r)) - eta_src(v) <= beta + 1 on Psi x U
        extended = psi if sampling_box is None else psi.intersect(sampling_box)
        for f_index, fork in enumerate(t.forks):
            v_coeffs, r_coeffs, const = _eta_of_update(
                pts, template, fork.destination, fork.update
            )
            diff_v = {
                v: v_coeffs.get(v, LinExpr.constant(0)) - template.coeff(t.source, v)
                for v in pts.program_vars
            }
            diff_const = const - template.const(t.source)
            beta = LinExpr.variable(BETA)
            # beta - D <= 0: (-diff) . (v, r) <= diff_const - beta
            lower_coeffs = {v: -e for v, e in diff_v.items()}
            lower_coeffs.update({r: -e for r, e in r_coeffs.items()})
            out.extend(
                encoder.encode_implication(
                    extended,
                    lower_coeffs,
                    diff_const - beta,
                    label=f"{label}:C4lo[{f_index}]",
                )
            )
            # D - beta - 1 <= 0: diff . (v, r) <= beta + 1 - diff_const
            upper_coeffs = dict(diff_v)
            upper_coeffs.update(r_coeffs)
            out.extend(
                encoder.encode_implication(
                    extended,
                    upper_coeffs,
                    beta + 1 - diff_const,
                    label=f"{label}:C4hi[{f_index}]",
                )
            )
    return out


def _fail_reachable(pts: PTS, invariants: InvariantMap) -> bool:
    """True iff some transition into the failure sink has a nonempty premise."""
    for t in pts.transitions:
        if not any(f.destination == pts.fail_location for f in t.forks):
            continue
        psi = invariants.of(t.source).intersect(t.guard)
        if not psi.is_empty():
            return True
    return False


def _lp_with(
    constraints: List[TemplateConstraint], extra: List[TemplateConstraint] = ()
) -> LinearProgram:
    lp = LinearProgram()
    lp.add_constraints(constraints)
    lp.add_constraints(extra)
    return lp


def _assemble_system(
    pts: PTS, invariants: InvariantMap, template: ExpTemplate, factor: str
) -> List[TemplateConstraint]:
    """The full (C1)-(C4) system for ``factor``, as one constraint list.

    Deterministic in its inputs (fresh Farkas multiplier names are counted
    per encoder), so a worker process rebuilding the system from a program
    spec produces exactly the LP the parent would have solved.
    """
    constraints = _build_constraints(pts, invariants, template)
    if factor == "azuma":
        # [CNZ17] via Azuma's inequality: symmetric differences beta = -delta/2
        constraints = constraints + [
            TemplateConstraint(
                LinExpr.variable(BETA) + Fraction(1, 2), "==", label="azuma:beta"
            )
        ]
    return constraints


def _probe_lp(
    constraints: List[TemplateConstraint], multiplier: float, eps: float
) -> Tuple[float, Optional[Dict[str, float]]]:
    """One Ser eps-probe: fix ``eps``, minimize ``omega`` by LP.

    This is the shared evaluation kernel of the serial ternary search and
    the engine's parallel probe subtasks — both must round/encode ``eps``
    identically for the parallel bracket to be bit-identical to the serial
    one.
    """
    fixed = TemplateConstraint(
        LinExpr.variable(EPS) - LinExpr.constant(Fraction(str(round(eps, 12)))),
        "==",
        label="fix-eps",
    )
    lp = _lp_with(constraints, [fixed])
    try:
        assignment = lp.solve(minimize=LinExpr.variable(OMEGA))
    except (InfeasibleError, SolverError):
        return float("inf"), None
    return multiplier * eps * assignment[OMEGA], assignment


def _synthesize(
    pts: PTS,
    invariants: Optional[InvariantMap],
    factor: str,
    search_tol: float,
    eps_cap: float,
    verify: bool,
    probe_submit=None,
) -> UpperBoundCertificate:
    start = time.perf_counter()
    if invariants is None:
        invariants = generate_interval_invariants(pts)
    template = ExpTemplate(pts, include_sinks=True)
    if not _fail_reachable(pts, invariants):
        # the invariant proves no transition into l_fail is ever enabled:
        # theta = 0 on interior states is a pre fixed-point and vpf = 0
        zero = template.instantiate({})
        for sink in (pts.term_location, pts.fail_location):
            zero.coeffs.pop(sink, None)
            zero.consts.pop(sink, None)
        return UpperBoundCertificate(
            method=factor,
            log_bound=float("-inf"),
            state_function=zero,
            pts=pts,
            invariants=invariants,
            solve_seconds=time.perf_counter() - start,
            solver_info="failure sink unreachable under the invariant",
        )
    constraints = _assemble_system(pts, invariants, template, factor)
    multiplier = 8.0 if factor == "hoeffding" else 4.0

    # Step 1 of Ser: feasibility and the eps range.
    probe = _lp_with(constraints)
    try:
        values = probe.solve(minimize=-LinExpr.variable(EPS))
        eps_max = min(values[EPS], eps_cap)
    except InfeasibleError:
        raise SynthesisError(
            f"{factor}: RepRSM constraint system is infeasible "
            "(no affine repulsing supermartingale exists for this invariant)"
        )
    except SolverError:
        eps_max = eps_cap  # eps unbounded: cap it (bound becomes astronomically small)
    if eps_max <= 0:
        return _trivial_certificate(pts, invariants, template, factor, start)

    # Step 2: ternary search over eps; each probe is one LP minimizing omega.
    # With an engine attached, the independent probes of one bracket step are
    # emitted as subtasks and solve concurrently (see ``synthesize``).
    def f(eps: float):
        return _probe_lp(constraints, multiplier, eps)

    result = ternary_search(
        f,
        0.0,
        eps_max,
        tol=max(search_tol, search_tol * eps_max),
        evaluate_submit=probe_submit,
    )
    if result.payload is None or result.value >= 0:
        return _trivial_certificate(pts, invariants, template, factor, start)
    assignment = result.payload
    eps_star = assignment[EPS]
    beta_star = assignment.get(BETA, 0.0)
    eta = template.instantiate(assignment)
    init_val = {k: float(v) for k, v in pts.init_valuation.items()}
    eta_init = eta.exponent(pts.init_location, init_val)
    scale = multiplier * eps_star
    log_bound = min(scale * eta_init, 0.0)

    scaled = template.instantiate(
        {name: scale * value for name, value in assignment.items() if name.startswith(("a(", "b("))}
    )
    # the fixed-point view only owns interior rows; sinks use the 0/1 convention
    for sink in (pts.term_location, pts.fail_location):
        scaled.coeffs.pop(sink, None)
        scaled.consts.pop(sink, None)
    certificate = UpperBoundCertificate(
        method=factor,
        log_bound=log_bound,
        state_function=scaled,
        pts=pts,
        invariants=invariants,
        solve_seconds=time.perf_counter() - start,
        solver_info=f"Ser: {result.evaluations} LPs, eps*={eps_star:.6g}",
        reprsm=RepRSMData(eta=eta, eps=eps_star, beta=beta_star, delta=1.0),
    )
    if verify:
        certificate.verify()
    return certificate


def _trivial_certificate(pts, invariants, template, factor, start) -> UpperBoundCertificate:
    """The always-sound bound 1 (returned when no useful RepRSM exists)."""
    zero = template.instantiate({})
    for sink in (pts.term_location, pts.fail_location):
        zero.coeffs.pop(sink, None)
        zero.consts.pop(sink, None)
    return UpperBoundCertificate(
        method=factor,
        log_bound=0.0,
        state_function=zero,
        pts=pts,
        invariants=invariants,
        solve_seconds=time.perf_counter() - start,
        solver_info="trivial (no eps > 0 with omega < 0)",
        reprsm=RepRSMData(eta=template.instantiate({}), eps=0.0, beta=0.0),
    )


def hoeffding_synthesis(
    pts: PTS,
    invariants: Optional[InvariantMap] = None,
    search_tol: float = 1e-6,
    eps_cap: float = 1e4,
    verify: bool = True,
) -> UpperBoundCertificate:
    """The Section 5.1 algorithm: RepRSM synthesis + Hoeffding's lemma.

    Polynomial-time and sound but incomplete; bounds are provably tighter
    than the Azuma-based [CNZ17] baseline (Remark 2) but generally looser
    than :func:`~repro.core.explinsyn.exp_lin_syn`.
    """
    return _synthesize(pts, invariants, "hoeffding", search_tol, eps_cap, verify)


def azuma_baseline(
    pts: PTS,
    invariants: Optional[InvariantMap] = None,
    search_tol: float = 1e-6,
    eps_cap: float = 1e4,
    verify: bool = False,
) -> UpperBoundCertificate:
    """The [CNZ17] stochastic-invariant baseline (Remark 2).

    Same RepRSM synthesis restricted to symmetric differences
    (``beta = -delta/2``) with the Azuma factor ``4 eps / delta^2`` — the
    most favourable reading of the prior work's bound, so every comparison
    in our tables is conservative.
    """
    return _synthesize(pts, invariants, "azuma", search_tol, eps_cap, verify)


# -- analysis-engine protocol -------------------------------------------------------

#: per-process memo of rebuilt probe constraint systems, keyed by
#: (program spec, factor) — a pool worker assembles the (C1)-(C4) system
#: once and then serves every eps-probe LP of the search from it
_PROBE_SYSTEMS: Dict[Tuple[object, str], Tuple[List[TemplateConstraint], float]] = {}


def _probe_system(spec, factor: str) -> Tuple[List[TemplateConstraint], float]:
    key = (spec, factor)
    cached = _PROBE_SYSTEMS.get(key)
    if cached is None:
        pts, invariants = spec.resolve()
        template = ExpTemplate(pts, include_sinks=True)
        constraints = _assemble_system(pts, invariants, template, factor)
        multiplier = 8.0 if factor == "hoeffding" else 4.0
        _PROBE_SYSTEMS.clear()  # one system at a time: they are large
        _PROBE_SYSTEMS[key] = (constraints, multiplier)
        cached = _PROBE_SYSTEMS[key]
    return cached


def synthesize_probe(task, deps=None, engine=None):
    """Engine subtask: one Ser eps-probe LP (see :func:`_probe_lp`)."""
    from repro.engine.task import CertificateResult

    factor = task.param("factor", "hoeffding")
    eps = float(task.param("eps"))
    constraints, multiplier = _probe_system(task.program, factor)
    start = time.perf_counter()
    value, assignment = _probe_lp(constraints, multiplier, eps)
    return CertificateResult(
        algorithm=task.algorithm,
        status="ok",
        seconds=time.perf_counter() - start,
        details={"value": value, "assignment": assignment},
    )


class _ProbeHandle:
    """Adapter from an engine subtask future to the ``(value, assignment)``
    pair the ternary search expects; a failed probe surfaces as a
    :class:`SynthesisError` at collection time.  The wait is bounded by
    the subtask's deadline — a hung probe worker becomes a retryable
    :class:`~repro.errors.TaskTimeoutError` instead of blocking the
    search forever."""

    __slots__ = ("_future", "_eps", "_timeout")

    def __init__(self, future, eps, timeout=None):
        self._future = future
        self._eps = eps
        self._timeout = timeout

    def result(self):
        try:
            outcome = self._future.result(timeout=self._timeout)
        except FuturesTimeout as exc:
            self._future.cancel()
            raise TaskTimeoutError(
                f"eps-probe {self._eps!r} exceeded its {self._timeout:g}s deadline"
            ) from exc
        if not outcome.ok:
            raise SynthesisError(f"eps-probe {self._eps!r} failed: {outcome.error}")
        return outcome.details["value"], outcome.details["assignment"]


def synthesize(task, deps=None, engine=None):
    """Engine entry point for ``hoeffding``/``azuma`` tasks.

    With a parallel engine attached (``repro analyze --jobs N``), the
    ternary search's probe rounds are emitted as ``hoeffding_probe``
    subtasks and *streamed* through the engine's executor as futures — no
    barrier map, so the probes share worker capacity with whatever else is
    in flight.  Each worker rebuilds the constraint system from the program
    spec once (memoized per process) and the probe LPs are pure functions
    of ``eps``, so the bracket — and therefore the bound — is bit-identical
    to the serial search.
    """
    from repro.engine.task import AnalysisTask, CertificateResult, result_from_certificate

    factor = "azuma" if task.algorithm == "azuma" else "hoeffding"
    search_tol = float(task.param("search_tol", 1e-6))
    eps_cap = float(task.param("eps_cap", 1e4))
    verify = bool(task.param("verify", factor == "hoeffding"))
    pts, invariants = task.program.resolve()

    probe_submit = None
    if engine is not None and engine.parallel:

        def probe_submit(eps_values):
            subtasks = [
                AnalysisTask.make(
                    "hoeffding_probe",
                    task.program,
                    params={"factor": factor, "eps": repr(eps)},
                    task_id=f"{task.task_id}:probe:{i}:{eps!r}",
                    cacheable=False,
                )
                for i, eps in enumerate(eps_values)
            ]
            futures = engine.submit_subtasks(subtasks)
            return [
                _ProbeHandle(future, eps, timeout=engine.subtask_timeout(subtask))
                for future, eps, subtask in zip(futures, eps_values, subtasks)
            ]

    start = time.perf_counter()
    try:
        certificate = _synthesize(
            pts, invariants, factor, search_tol, eps_cap, verify, probe_submit=probe_submit
        )
    except BrokenProcessPool as exc:
        # a probe worker died: that is an infrastructure casualty, not a
        # synthesis failure — do not let it masquerade as an error row
        raise TaskError(
            "worker process died while solving eps-probe LPs; the pool is gone"
        ) from exc
    except TaskError:
        # same for a probe that timed out or lost its worker-service socket:
        # infrastructure failures propagate so the engine can retry them
        raise
    except Exception as exc:
        return CertificateResult.failure(task, exc, seconds=time.perf_counter() - start)
    details = {"init_location": pts.init_location}
    if certificate.reprsm is not None:
        details.update(
            reprsm_eps=certificate.reprsm.eps,
            reprsm_beta=certificate.reprsm.beta,
            reprsm_eta_init=certificate.reprsm.eta.render(pts.init_location),
        )
    return result_from_certificate(
        task.algorithm,
        certificate,
        seconds=time.perf_counter() - start,
        details=details,
    )
