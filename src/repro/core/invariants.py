"""Invariants for PTSs: representation, checking, and interval generation.

The paper assumes an affine invariant ``I`` mapping each location to a
polyhedron over-approximating the reachable valuations (it derived these
manually for the benchmarks; see Section 7, "Invariants and Termination").
This module provides:

* :class:`InvariantMap` — the invariant object consumed by all three
  synthesis algorithms;
* :func:`generate_interval_invariants` — an automatic generator based on
  interval abstract interpretation with widening (invariant generation is
  an orthogonal problem, as the paper notes; intervals are enough for the
  box-shaped invariants all paper benchmarks use);
* trajectory-based soundness checking (an invariant that fails on sampled
  reachable states is rejected before synthesis).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ModelError
from repro.polyhedra.constraints import AffineIneq, Polyhedron
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import PTS

__all__ = ["InvariantMap", "generate_interval_invariants"]


class InvariantMap:
    """A location-indexed affine invariant ``I : L -> Polyhedron``.

    Locations without an entry get the universe polyhedron (always sound,
    rarely useful).  All polyhedra are re-embedded over the full program
    variable tuple so downstream matrix code sees a consistent dimension.
    """

    def __init__(self, pts: PTS, mapping: Optional[Mapping[str, Polyhedron]] = None):
        self._pts = pts
        self._map: Dict[str, Polyhedron] = {}
        for loc, poly in (mapping or {}).items():
            if loc not in pts.locations:
                raise ModelError(f"invariant for unknown location {loc!r}")
            self._map[loc] = poly.with_variables(pts.program_vars)

    @property
    def pts(self) -> PTS:
        return self._pts

    def of(self, location: str) -> Polyhedron:
        """The invariant polyhedron at ``location`` (universe by default)."""
        poly = self._map.get(location)
        if poly is None:
            return Polyhedron.universe(self._pts.program_vars)
        return poly

    def set(self, location: str, poly: Polyhedron) -> "InvariantMap":
        """Return a copy with the invariant at ``location`` replaced."""
        new = dict(self._map)
        new[location] = poly.with_variables(self._pts.program_vars)
        return InvariantMap(self._pts, new)

    def merged_with(self, annotations: Mapping[str, Polyhedron]) -> "InvariantMap":
        """Intersect with source-level annotations (e.g. ``invariant`` clauses)."""
        new = dict(self._map)
        for loc, poly in annotations.items():
            if loc in new:
                merged = Polyhedron(
                    self._pts.program_vars,
                    list(new[loc].inequalities)
                    + list(poly.with_variables(self._pts.program_vars).inequalities),
                )
                new[loc] = merged
            else:
                new[loc] = poly.with_variables(self._pts.program_vars)
        return InvariantMap(self._pts, new)

    def locations(self) -> List[str]:
        return sorted(self._map)

    def check_on_trajectories(
        self, episodes: int = 200, max_steps: int = 2000, seed: int = 0
    ) -> List[str]:
        """Empirically check soundness: every visited state must satisfy I.

        Returns a list of violation descriptions (empty when none found).
        """
        pts = self._pts
        rng = random.Random(seed)
        sampling = sorted(pts.distributions)
        problems: List[str] = []
        for _ in range(episodes):
            location = pts.init_location
            valuation = {k: float(v) for k, v in pts.init_valuation.items()}
            for _ in range(max_steps):
                if not self.of(location).contains_float(valuation, tol=1e-6):
                    problems.append(
                        f"invariant at {location!r} violated by reachable state "
                        f"{ {k: round(x, 4) for k, x in valuation.items()} }"
                    )
                    return problems
                if pts.is_sink(location):
                    break
                transition = pts.enabled_transition(location, valuation)
                if transition is None:
                    break
                u = rng.random()
                acc = 0.0
                fork = transition.forks[-1]
                for f in transition.forks:
                    acc += float(f.probability)
                    if u <= acc:
                        fork = f
                        break
                draws = {r: pts.distributions[r].sample(rng) for r in sampling}
                valuation = fork.update.apply_float(valuation, draws)
                location = fork.destination
        return problems

    def __repr__(self) -> str:
        return f"InvariantMap({len(self._map)} locations)"


# ---------------------------------------------------------------------------
# interval abstract interpretation
# ---------------------------------------------------------------------------

Interval = Tuple[Optional[Fraction], Optional[Fraction]]  # (lo, hi); None = unbounded
Box = Dict[str, Interval]


def _interval_add(a: Interval, b: Interval) -> Interval:
    lo = None if a[0] is None or b[0] is None else a[0] + b[0]
    hi = None if a[1] is None or b[1] is None else a[1] + b[1]
    return lo, hi


def _interval_scale(a: Interval, k: Fraction) -> Interval:
    if k == 0:
        return Fraction(0), Fraction(0)
    lo, hi = a
    if k > 0:
        return (None if lo is None else lo * k), (None if hi is None else hi * k)
    return (None if hi is None else hi * k), (None if lo is None else lo * k)


def _interval_join(a: Interval, b: Interval) -> Interval:
    lo = None if a[0] is None or b[0] is None else min(a[0], b[0])
    hi = None if a[1] is None or b[1] is None else max(a[1], b[1])
    return lo, hi


def _interval_widen(
    old: Interval, new: Interval, thresholds: List[Fraction]
) -> Interval:
    """Widening with thresholds: a growing bound jumps to the nearest guard
    constant beyond it (infinity when none remains).

    Threshold widening keeps the guard-shaped bounds the paper's manual
    invariants rely on (e.g. ``x <= 100`` for the Figure 3 walk, one past
    the loop guard ``x <= 99``) while still guaranteeing termination of the
    analysis: each widening strictly advances through the finite threshold
    list.
    """
    if old[0] is None or new[0] is None or new[0] < old[0]:
        below = [t for t in thresholds if new[0] is not None and t <= new[0]]
        lo = max(below) if below else None
    else:
        lo = old[0]
    if old[1] is None or new[1] is None or new[1] > old[1]:
        above = [t for t in thresholds if new[1] is not None and t >= new[1]]
        hi = min(above) if above else None
    else:
        hi = old[1]
    return lo, hi


def _guard_thresholds(pts: PTS) -> Dict[str, List[Fraction]]:
    """Per-variable threshold candidates from single-variable guard atoms.

    An atom ``c * x <= d`` contributes ``d / c``; the initial value of each
    variable is included as well (and a +/-1 neighbourhood of each, since
    integer programs typically overshoot a guard by one step).
    """
    thresholds: Dict[str, set] = {v: {pts.init_valuation[v]} for v in pts.program_vars}
    for t in pts.transitions:
        for ineq in t.guard.inequalities:
            names = ineq.expr.variables()
            if len(names) != 1:
                continue
            (name,) = names
            bound = -ineq.expr.const / ineq.expr.coeff(name)
            thresholds[name].update({bound - 1, bound, bound + 1})
    return {v: sorted(vals) for v, vals in thresholds.items()}


def _eval_expr_interval(expr: LinExpr, box: Box, sampling_supports: Box) -> Interval:
    result: Interval = (expr.const, expr.const)
    for name, coeff in expr.coeffs.items():
        if name in box:
            iv = box[name]
        elif name in sampling_supports:
            iv = sampling_supports[name]
        else:
            iv = (None, None)
        result = _interval_add(result, _interval_scale(iv, coeff))
    return result


def _box_to_polyhedron(box: Box, variables) -> Polyhedron:
    ineqs: List[AffineIneq] = []
    for v in variables:
        lo, hi = box.get(v, (None, None))
        if lo is not None:
            ineqs.append(AffineIneq.ge(LinExpr.variable(v), lo))
        if hi is not None:
            ineqs.append(AffineIneq.le(LinExpr.variable(v), hi))
    return Polyhedron(variables, ineqs)


def _tighten_box_by_guard(box: Box, guard: Polyhedron, variables) -> Optional[Box]:
    """Intersect a box with a guard polyhedron, re-extracting per-variable
    bounds via LP.  Returns ``None`` when the intersection is empty."""
    poly = _box_to_polyhedron(box, variables).intersect(guard)
    if poly.is_empty():
        return None
    tightened: Box = {}
    slack = Fraction(1, 10**6)  # round LP bounds outward to stay sound
    for v in variables:
        lo_status, lo_val = poly.maximize(LinExpr({v: -1}))
        hi_status, hi_val = poly.maximize(LinExpr({v: 1}))
        lo = None if lo_status != "optimal" else Fraction(str(round(-lo_val, 9))) - slack
        hi = None if hi_status != "optimal" else Fraction(str(round(hi_val, 9))) + slack
        # snap to integers when within slack of one (exact for integer programs)
        if lo is not None and abs(lo - round(lo)) <= 2 * slack:
            lo = Fraction(round(lo))
        if hi is not None and abs(hi - round(hi)) <= 2 * slack:
            hi = Fraction(round(hi))
        tightened[v] = (lo, hi)
    return tightened


def generate_interval_invariants(
    pts: PTS, widen_after: int = 12, max_rounds: int = 200, narrow_rounds: int = 4
) -> InvariantMap:
    """Interval abstract interpretation with threshold widening + narrowing.

    Computes a sound per-location box over-approximating the reachable
    valuations, starting from the initial state and propagating through
    guards (box-tightened via LP) and affine updates (interval arithmetic;
    sampling variables contribute their support interval).  After
    ``widen_after`` updates of a location, unstable bounds are widened to
    the next guard threshold (or infinity), guaranteeing termination; a
    final descending (narrowing) phase then recovers bounds like
    ``x <= guard + max overshoot`` that widening skipped past.
    """
    variables = pts.program_vars
    thresholds = _guard_thresholds(pts)
    sampling_supports: Box = {
        r: d.support() for r, d in pts.distributions.items()
    }
    boxes: Dict[str, Box] = {
        pts.init_location: {v: (pts.init_valuation[v], pts.init_valuation[v]) for v in variables}
    }
    visits: Dict[str, int] = {}
    worklist = [pts.init_location]
    rounds = 0
    while worklist and rounds < max_rounds:
        rounds += 1
        loc = worklist.pop()
        box = boxes.get(loc)
        if box is None:
            continue
        for t in pts.transitions_from(loc):
            entry = _tighten_box_by_guard(box, t.guard, variables)
            if entry is None:
                continue
            for fork in t.forks:
                image: Box = {
                    v: _eval_expr_interval(fork.update.expr_for(v), entry, sampling_supports)
                    for v in variables
                }
                dest = fork.destination
                old = boxes.get(dest)
                if old is None:
                    boxes[dest] = image
                    if not pts.is_sink(dest):
                        worklist.append(dest)
                    continue
                joined = {v: _interval_join(old[v], image[v]) for v in variables}
                if joined != old:
                    visits[dest] = visits.get(dest, 0) + 1
                    if visits[dest] > widen_after:
                        joined = {
                            v: _interval_widen(old[v], joined[v], thresholds[v])
                            for v in variables
                        }
                    boxes[dest] = joined
                    if not pts.is_sink(dest):
                        worklist.append(dest)
    boxes = _narrow(pts, boxes, sampling_supports, narrow_rounds)
    mapping = {
        loc: _box_to_polyhedron(box, variables) for loc, box in boxes.items()
    }
    return InvariantMap(pts, mapping)


def _interval_meet(a: Interval, b: Interval) -> Interval:
    lo = b[0] if a[0] is None else (a[0] if b[0] is None else max(a[0], b[0]))
    hi = b[1] if a[1] is None else (a[1] if b[1] is None else min(a[1], b[1]))
    return lo, hi


def _narrow(
    pts: PTS,
    boxes: Dict[str, Box],
    sampling_supports: Box,
    rounds: int,
) -> Dict[str, Box]:
    """Descending iterations from the widened post-fixpoint.

    One round recomputes every location's box as the join of the initial
    state (for the initial location) and all one-step images under the
    current boxes, then meets it with the current box.  Starting from a
    post-fixpoint this stays a sound over-approximation while shrinking
    bounds that widening blew past.
    """
    variables = pts.program_vars
    for _ in range(rounds):
        fresh: Dict[str, Box] = {
            pts.init_location: {
                v: (pts.init_valuation[v], pts.init_valuation[v]) for v in variables
            }
        }
        for loc, box in boxes.items():
            for t in pts.transitions_from(loc):
                entry = _tighten_box_by_guard(box, t.guard, variables)
                if entry is None:
                    continue
                for fork in t.forks:
                    image: Box = {
                        v: _eval_expr_interval(
                            fork.update.expr_for(v), entry, sampling_supports
                        )
                        for v in variables
                    }
                    dest = fork.destination
                    if dest in fresh:
                        fresh[dest] = {
                            v: _interval_join(fresh[dest][v], image[v]) for v in variables
                        }
                    else:
                        fresh[dest] = image
        changed = False
        for loc in list(boxes):
            if loc not in fresh:
                continue  # keep the old (sound) box for locations not re-derived
            met = {v: _interval_meet(boxes[loc][v], fresh[loc][v]) for v in variables}
            if met != boxes[loc]:
                boxes[loc] = met
                changed = True
        if not changed:
            break
    return boxes
