"""Baselines from prior work, for the "Previous Results" columns.

Three prior methods appear in the paper's Tables 1 and 2:

* **[CS13] (Chakarov & Sankaranarayanan)** — Deviation benchmarks: for a
  program accumulating ``n`` independent bounded increments, the endpoint
  Hoeffding inequality ``Pr[X - E[X] >= d] <= exp(-2 d^2 / (n c^2))``
  (:func:`cs13_deviation_bound`).  The paper's RdAdder "previous results"
  column matches this formula exactly (n = 500, c = 1).
* **[CFNH18] (Chatterjee, Fu, Novotny, Hasheminezhad)** — Concentration
  benchmarks: synthesize a difference-bounded ranking supermartingale and
  apply the one-sided Azuma inequality
  ``Pr[T > n] <= exp(-(eps n - rho_0)^2 / (2 n c^2))`` for ``eps n > rho_0``
  (:func:`cfnh18_concentration_bound`).
* **[CNZ17] (Chatterjee, Novotny, Zikelic)** — StoInv benchmarks: RepRSM +
  Azuma, implemented as :func:`repro.core.hoeffding.azuma_baseline`
  (Remark 2's reading, which is *favourable* to the baseline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import InfeasibleError, SolverError, SynthesisError
from repro.numeric.lp import LinearProgram
from repro.polyhedra.farkas import FarkasEncoder, TemplateConstraint
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import PTS
from repro.utils.numbers import as_fraction
from repro.core.invariants import InvariantMap, generate_interval_invariants
from repro.core.templates import ExpTemplate

__all__ = [
    "cs13_deviation_bound",
    "BoundedRSM",
    "synthesize_bounded_rsm",
    "cfnh18_concentration_bound",
    "cfnh18_best_bound",
]


def cs13_deviation_bound(n: int, deviation: float, increment_range: float = 1.0) -> float:
    """Endpoint Hoeffding bound ``exp(-2 d^2 / (n c^2))`` in log space.

    Returns the *log* of the bound (consistent with the rest of the
    library).  ``n`` independent increments each confined to an interval of
    width ``increment_range``.
    """
    if n <= 0 or increment_range <= 0:
        raise ValueError("need n > 0 and a positive increment range")
    if deviation <= 0:
        return 0.0  # trivial bound 1
    return -2.0 * deviation * deviation / (n * increment_range * increment_range)


@dataclass
class BoundedRSM:
    """A ranking supermartingale with unit expected decrease and one-step
    differences bounded by ``c`` in absolute value."""

    rho0: float  # rank of the initial state
    c: float  # difference bound
    eps: float = 1.0
    solve_seconds: float = 0.0


def synthesize_bounded_rsm(
    pts: PTS,
    invariants: Optional[InvariantMap] = None,
    c_cap: Optional[float] = None,
) -> BoundedRSM:
    """Synthesize a difference-bounded RSM via Farkas + LP.

    Normalizing ``eps = 1``, the LP minimizes the difference bound ``c``
    first and the initial rank second.  ``c_cap`` optionally fixes an upper
    bound on ``c`` so callers can trade difference size against initial
    rank (see :func:`cfnh18_best_bound`).
    """
    start = time.perf_counter()
    if invariants is None:
        invariants = generate_interval_invariants(pts)
    template = ExpTemplate(pts, include_sinks=False)
    encoder = FarkasEncoder(prefix="_c")
    constraints: List[TemplateConstraint] = []
    c_var = LinExpr.variable("_c_bound")
    constraints.append(TemplateConstraint(1 - c_var, "<=", label="c>=1"))
    if c_cap is not None:
        constraints.append(
            TemplateConstraint(c_var - as_fraction(c_cap), "<=", label="c<=cap")
        )

    for loc in pts.interior_locations:
        inv = invariants.of(loc)
        if inv.is_empty():
            continue
        coeffs = {v: -template.coeff(loc, v) for v in pts.program_vars}
        constraints.extend(
            encoder.encode_implication(inv, coeffs, template.const(loc), label=f"nn@{loc}")
        )

    sampling_means = {r: d.mean() for r, d in pts.distributions.items()}

    for t_index, t in enumerate(pts.transitions):
        psi = invariants.of(t.source).intersect(t.guard).with_variables(pts.program_vars)
        if psi.is_empty():
            continue
        decrease_coeffs: Dict[str, LinExpr] = {
            v: -template.coeff(t.source, v) for v in pts.program_vars
        }
        decrease_rhs = template.const(t.source) - 1
        for fork in t.forks:
            dst = fork.destination
            p = fork.probability
            dst_coeffs: Dict[str, LinExpr] = {}
            dst_const = (
                LinExpr.constant(0) if pts.is_sink(dst) else template.const(dst)
            )
            if not pts.is_sink(dst):
                for w in pts.program_vars:
                    a_w = template.coeff(dst, w)
                    expr = fork.update.expr_for(w)
                    mean_const = expr.const
                    for name, coeff in expr.coeffs.items():
                        if name in pts.distributions:
                            mean_const = mean_const + coeff * sampling_means[name]
                        else:
                            dst_coeffs[name] = (
                                dst_coeffs.get(name, LinExpr.constant(0)) + a_w * coeff
                            )
                    dst_const = dst_const + a_w * mean_const
            for v, e in dst_coeffs.items():
                decrease_coeffs[v] = decrease_coeffs.get(v, LinExpr.constant(0)) + e * p
            decrease_rhs = decrease_rhs - dst_const * p
            if pts.is_sink(dst):
                # the Azuma argument runs on the *stopped* process: one-step
                # differences at the stopping time are irrelevant
                continue
            # difference bound |rho(next) - rho(cur)| <= c at the mean draw
            diff_coeffs = {
                v: dst_coeffs.get(v, LinExpr.constant(0)) - template.coeff(t.source, v)
                for v in pts.program_vars
            }
            diff_const = dst_const - template.const(t.source)
            constraints.extend(
                encoder.encode_implication(
                    psi, diff_coeffs, c_var - diff_const, label=f"dhi@T{t_index}"
                )
            )
            constraints.extend(
                encoder.encode_implication(
                    psi,
                    {v: -e for v, e in diff_coeffs.items()},
                    c_var + diff_const,
                    label=f"dlo@T{t_index}",
                )
            )
        constraints.extend(
            encoder.encode_implication(
                psi, decrease_coeffs, decrease_rhs, label=f"dec@T{t_index}"
            )
        )

    lp = LinearProgram()
    for c in constraints:
        (lp.add_le if c.relation == "<=" else lp.add_eq)(c.expr, c.label)
    try:
        if c_cap is not None:
            # the cap fixes the difference budget: spend it all on rho_0
            assignment = lp.solve(minimize=template.eta_initial())
        else:
            # lexicographic-ish: difference bound dominates, then rho_0
            assignment = lp.solve(minimize=c_var * 1000 + template.eta_initial())
    except (InfeasibleError, SolverError) as exc:
        raise SynthesisError(f"no difference-bounded RSM found: {exc}")
    rho = template.instantiate(assignment)
    rho0 = rho.exponent(
        pts.init_location, {k: float(v) for k, v in pts.init_valuation.items()}
    )
    return BoundedRSM(
        rho0=max(rho0, 0.0),
        c=assignment["_c_bound"],
        solve_seconds=time.perf_counter() - start,
    )


def cfnh18_best_bound(
    pts: PTS,
    invariants: Optional[InvariantMap] = None,
    n: float = 0.0,
    c_grid: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0),
) -> float:
    """Best [CFNH18] Azuma bound over a grid of difference caps.

    For each cap the LP minimizes the initial rank; the reported bound is
    the best resulting Azuma exponent.  (A single lexicographic LP can pick
    a useless time-based rank — small differences but ``rho_0 > n``.)
    """
    if invariants is None:
        invariants = generate_interval_invariants(pts)
    best = 0.0  # the trivial bound 1
    for cap in c_grid:
        try:
            rsm = synthesize_bounded_rsm(pts, invariants, c_cap=cap)
        except SynthesisError:
            continue
        best = min(best, cfnh18_concentration_bound(rsm, n))
    return best


def cfnh18_concentration_bound(rsm: BoundedRSM, n: float) -> float:
    """Log of the [CFNH18] Azuma concentration bound ``Pr[T > n]``.

    One-sided Azuma-Hoeffding on the supermartingale ``rho + eps * t``:
    after ``n`` steps without termination the process has moved at least
    ``eps n - rho_0`` against differences bounded by ``c + eps``, so
    ``Pr[T > n] <= exp(-(eps n - rho_0)^2 / (2 n (c + eps)^2))`` whenever
    ``eps n > rho_0`` (trivial bound 1 otherwise).
    """
    drift = rsm.eps * n - rsm.rho0
    if drift <= 0:
        return 0.0
    width = rsm.c + rsm.eps
    return -(drift * drift) / (2.0 * n * width * width)
