"""Canonicalization of fixed-point constraints (Step 3 of Sections 5.2 / 6).

For every transition ``tau = (l_src, phi, F_1..F_k)`` the pre/post
fixed-point condition on the exponential template divides through by
``theta(l_src, v) = exp(eta_src(v))`` and becomes the canonical form::

    sum_j  p_j * exp(alpha_j . v + beta_j) * E_r[ exp(gamma_j . r) ]  (<=|>=)  1
    for all v in Psi = I(l_src) /\\ phi

with (for a fork to an interior location, ``upd_j(v, r) = Q v + R r + e``)::

    alpha_j = a_dst Q - a_src      beta_j = a_dst . e + b_dst - b_src
    gamma_j = a_dst R

Forks to the failure sink contribute ``p_j * exp(-eta_src(v))`` (because
``theta(l_fail) = 1``), i.e. ``alpha = -a_src``, ``beta = -b_src``,
``gamma = 0``; forks to the termination sink contribute nothing
(``theta(l_term) = 0``).  All of ``alpha/beta/gamma`` are affine in the
unknown template coefficients — represented as :class:`LinExpr` over the
unknown names.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.polyhedra.constraints import Polyhedron
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import PTS, Fork
from repro.core.invariants import InvariantMap
from repro.core.templates import ExpTemplate

__all__ = ["CanonicalTerm", "CanonicalConstraint", "canonicalize"]


@dataclass
class CanonicalTerm:
    """One fork's contribution ``p * exp(alpha . v + beta) * E[exp(gamma . r)]``."""

    prob: Fraction
    alpha: Dict[str, LinExpr]  # program variable -> affine expr over unknowns
    beta: LinExpr
    gamma: Dict[str, LinExpr]  # sampling variable -> affine expr over unknowns
    destination: str = ""

    def alpha_at(self, point: Dict[str, Fraction]) -> LinExpr:
        """``alpha . point + beta`` as an affine expression over the unknowns."""
        expr = self.beta
        for v, coeff_expr in self.alpha.items():
            expr = expr + coeff_expr * point[v]
        return expr


@dataclass
class CanonicalConstraint:
    """``sum(terms) (<=|>=) 1`` universally quantified over ``psi``."""

    psi: Polyhedron
    terms: List[CanonicalTerm]
    transition_name: str = ""
    source: str = ""

    @property
    def dropped_probability(self) -> Fraction:
        """Probability mass of forks to the termination sink (dropped terms)."""
        return Fraction(1) - sum((t.prob for t in self.terms), Fraction(0))


def _term_for_fork(
    pts: PTS, template: ExpTemplate, source: str, fork: Fork
) -> Optional[CanonicalTerm]:
    """Build a canonical term (``None`` for forks into the termination sink)."""
    a_src = {v: template.coeff(source, v) for v in pts.program_vars}
    b_src = template.const(source)
    if fork.destination == pts.term_location:
        return None
    if fork.destination == pts.fail_location:
        return CanonicalTerm(
            prob=fork.probability,
            alpha={v: -a_src[v] for v in pts.program_vars},
            beta=-b_src,
            gamma={},
            destination=fork.destination,
        )
    dst = fork.destination
    alpha: Dict[str, LinExpr] = {}
    gamma: Dict[str, LinExpr] = {}
    beta = template.const(dst) - b_src
    # theta(dst, upd(v, r)) expands through the affine update row by row:
    # exponent = sum_w a_dst[w] * upd_w(v, r) + b_dst
    for w in pts.program_vars:
        expr = fork.update.expr_for(w)
        a_dst_w = template.coeff(dst, w)
        beta = beta + a_dst_w * expr.const
        for name, coeff in expr.coeffs.items():
            if name in pts.distributions:
                gamma[name] = gamma.get(name, LinExpr.constant(0)) + a_dst_w * coeff
            else:
                alpha[name] = alpha.get(name, LinExpr.constant(0)) + a_dst_w * coeff
    # subtract eta_src
    for v in pts.program_vars:
        alpha[v] = alpha.get(v, LinExpr.constant(0)) - a_src[v]
    gamma = {r: g for r, g in gamma.items() if not g.is_zero}
    return CanonicalTerm(
        prob=fork.probability,
        alpha=alpha,
        beta=beta,
        gamma=gamma,
        destination=dst,
    )


def canonicalize(
    pts: PTS, invariants: InvariantMap, template: ExpTemplate
) -> List[CanonicalConstraint]:
    """Canonical constraints for every transition with nonempty ``Psi``.

    Transitions whose ``Psi = I(l_src) /\\ guard`` is empty are unreachable
    according to the invariant and contribute no constraint (the universally
    quantified implication is vacuous).
    """
    constraints: List[CanonicalConstraint] = []
    for t in pts.transitions:
        psi = invariants.of(t.source).intersect(t.guard)
        psi = psi.with_variables(pts.program_vars)
        if psi.is_empty():
            continue
        terms = []
        for fork in t.forks:
            term = _term_for_fork(pts, template, t.source, fork)
            if term is not None:
                terms.append(term)
        constraints.append(
            CanonicalConstraint(
                psi=psi, terms=terms, transition_name=t.name, source=t.source
            )
        )
    return constraints
