"""Polynomial-exponent lower bounds (Remark 5), via Handelman + LP.

The Section 6 pipeline with polynomial templates: after Jensen's
inequality the post fixed-point constraint on ``exp(eta)`` becomes a
*polynomial* inequality over each transition's premise, which Handelman's
Positivstellensatz turns into an LP — the SDP-free counterpart of the
paper's Positivstellensatz suggestion.

Scope mirrors :func:`repro.core.polynomial.polynomial_hoeffding_synthesis`:
fork randomness only, and every premise/invariant must be a bounded
polytope (Handelman's compactness requirement).
"""

from __future__ import annotations

import math
import random
import time
from fractions import Fraction
from typing import Optional

from repro.errors import (
    InfeasibleError,
    ModelError,
    SolverError,
    SynthesisError,
    VerificationError,
)
from repro.numeric.lp import LinearProgram
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import PTS
from repro.utils.numbers import as_fraction
from repro.core.invariants import InvariantMap, generate_interval_invariants
from repro.core.polynomial import Polynomial, _poly_template, handelman_constraints
from repro.core.termination import prove_almost_sure_termination

__all__ = ["PolynomialLowerBound", "polynomial_exp_low_syn", "synthesize"]


class PolynomialLowerBound:
    """A verified polynomial-exponent lower bound certificate."""

    def __init__(self, pts, invariants, templates, assignment, log_bound, solve_seconds):
        self.pts = pts
        self.invariants = invariants
        self.templates = templates
        self.assignment = assignment
        self.log_bound = float(log_bound)
        self.solve_seconds = solve_seconds
        self.method = "polynomial-explowsyn"

    @property
    def bound(self) -> float:
        return math.exp(min(self.log_bound, 0.0))

    def verify(self, tol: float = 1e-6, samples: int = 6, seed: int = 23) -> None:
        """Sample-based re-check of the Jensen-strengthened post fixed-point."""
        from repro.core.certificates import sample_psi_points

        rng = random.Random(seed)
        pts = self.pts
        for t in pts.transitions:
            psi = self.invariants.of(t.source).intersect(t.guard)
            psi = psi.with_variables(pts.program_vars)
            for point in sample_psi_points(psi, rng, count=samples):
                current = self.templates[t.source].evaluate(point, self.assignment)
                q = 0.0
                mean = 0.0
                for fork in t.forks:
                    if fork.destination == pts.term_location:
                        continue
                    p = float(fork.probability)
                    q += p
                    nxt = {
                        v: fork.update.expr_for(v).evaluate_float(point)
                        for v in pts.program_vars
                    }
                    if fork.destination == pts.fail_location:
                        post = 0.0
                    else:
                        post = self.templates[fork.destination].evaluate(
                            nxt, self.assignment
                        )
                    mean += p * (post - current)
                if q <= 0.0:
                    raise VerificationError(
                        f"all mass terminates along {t.name!r}; the bound is vacuous"
                    )
                lhs = mean / q
                if lhs < -math.log(q) - tol * max(1.0, abs(current)):
                    raise VerificationError(
                        f"Jensen post fixed-point violated at {t.name!r} {point}"
                    )


def polynomial_exp_low_syn(
    pts: PTS,
    invariants: Optional[InvariantMap] = None,
    degree: int = 2,
    handelman_degree: Optional[int] = None,
    assume_termination: bool = False,
    verify: bool = True,
) -> PolynomialLowerBound:
    """Section 6 with polynomial exponents (Remark 5)."""
    start = time.perf_counter()
    if pts.distributions:
        raise ModelError(
            "polynomial lower bounds currently support fork randomness only"
        )
    if invariants is None:
        invariants = generate_interval_invariants(pts)
    if not assume_termination:
        prove_almost_sure_termination(pts, invariants)
    handelman_degree = handelman_degree or degree + 1

    templates, unknowns = _poly_template(pts, degree)
    # theta(l_fail) = 1 and theta(l_term) = 0: exponent 0 / -inf; encode by
    # dropping term-forks and using exponent-0 templates at the fail sink
    zero_poly = Polynomial.constant(0)

    lp = LinearProgram()
    for name in unknowns:
        lp.add_variable(name)
    lp.add_variable("_M", lower=0.0)
    m_poly = Polynomial({(): LinExpr.variable("_M")})

    # boundedness: M - eta >= 0 on each interior invariant
    for loc in pts.interior_locations:
        inv = invariants.of(loc)
        if inv.is_empty():
            continue
        handelman_constraints(m_poly - templates[loc], inv, lp, handelman_degree, f"bound@{loc}")

    # Jensen-strengthened post fixed-point per transition
    for t_index, t in enumerate(pts.transitions):
        psi = invariants.of(t.source).intersect(t.guard).with_variables(pts.program_vars)
        if psi.is_empty():
            continue
        kept = [f for f in t.forks if f.destination != pts.term_location]
        q = sum((f.probability for f in kept), Fraction(0))
        if q == 0:
            raise SynthesisError(
                f"transition {t.name!r} moves all probability to termination"
            )
        ln_q = 0.0 if q == 1 else math.log(float(q)) - 1e-12
        mean = Polynomial.constant(0)
        for fork in kept:
            mapping = {v: fork.update.expr_for(v) for v in pts.program_vars}
            post = (
                zero_poly
                if fork.destination == pts.fail_location
                else templates[fork.destination].substitute_affine(mapping)
            )
            mean = mean + (post - templates[t.source]).scale(fork.probability / q)
        target = mean + Polynomial.constant(as_fraction(ln_q))
        handelman_constraints(target, psi, lp, handelman_degree, f"jensen@T{t_index}")

    # objective: maximize eta(init)
    init_val = {v: pts.init_valuation[v] for v in pts.program_vars}
    eta_init = templates[pts.init_location].at_point(init_val)
    try:
        assignment = lp.solve(minimize=-eta_init)
    except (InfeasibleError, SolverError) as exc:
        raise SynthesisError(f"polynomial ExpLowSyn failed: {exc}")

    log_bound = min(
        templates[pts.init_location].evaluate(
            {k: float(v) for k, v in init_val.items()}, assignment
        ),
        0.0,
    )
    certificate = PolynomialLowerBound(
        pts, invariants, templates, assignment, log_bound, time.perf_counter() - start
    )
    if verify:
        certificate.verify()
    return certificate


# -- analysis-engine protocol -------------------------------------------------------


def synthesize(task, deps=None, engine=None):
    """Engine entry point for ``polynomial_lower`` tasks.

    :class:`PolynomialLowerBound` does not share the exponential-template
    certificate API (no per-location affine render), so the result carries
    the bound and degrees only.
    """
    from repro.engine.task import CertificateResult

    pts, invariants = task.program.resolve()
    degree = int(task.param("degree", 2))
    handelman_degree = task.param("handelman_degree")
    start = time.perf_counter()
    try:
        certificate = polynomial_exp_low_syn(
            pts,
            invariants,
            degree=degree,
            handelman_degree=None if handelman_degree is None else int(handelman_degree),
            assume_termination=bool(task.param("assume_termination", False)),
            verify=bool(task.param("verify", True)),
        )
    except Exception as exc:
        return CertificateResult.failure(task, exc, seconds=time.perf_counter() - start)
    return CertificateResult(
        algorithm=task.algorithm,
        status="ok",
        log_bound=certificate.log_bound,
        seconds=time.perf_counter() - start,
        solver_info=f"Handelman LP, degree {degree}",
        details={"init_location": pts.init_location, "degree": degree},
    )
