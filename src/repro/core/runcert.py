"""Per-run translation-validation certificates (emit + independent check).

The exploration/solver fast paths are *validated, not trusted* — but until
now the validation lived only in CI, as a 2x-cost bitwise re-run of every
workload on the exact Fraction engine.  This module turns that posture
into per-run evidence, WaveCert-style: every fast-path run emits a
:class:`RunCertificate` carrying

* the **admission bounds actually used** by the int64/scaled frontier
  explorer — lattice scale factors, per-variable magnitude limits,
  rescaled guard rows with their clearing multipliers, and the integer
  overflow headroom of every guard and stepper row;
* **per-BFS-level frontier digests** — a sha256 over the canonical
  ``(location, numerator, denominator, ...)`` encoding of each level's
  states in admission order, plus the full (compressed) state table so
  the digests can be replayed without re-running exploration;
* the **solver-certification evidence** of the solve-then-certify layer
  (witness vector hash, slack-ladder parameters, measured pre/post-
  fixpoint margins of the adopted bracket);
* the **program and engine fingerprints** binding all of the above to
  one model and one fixpoint-machinery version.

:func:`verify_run_certificate` is the independent checker: it re-derives
the admission inequalities from the PTS with exact ``Fraction``
arithmetic (deliberately *duplicating* the admission constants and the
rescaling algebra instead of importing the fast path's compiled plan),
replays every level digest from the embedded state table, validates
state well-formedness against the re-derived lattice limits, and sanity-
checks the value-iteration evidence — all without running exploration or
a single sweep.  ``repro verify-certificate`` exposes it on the command
line, and the CI ``certificates`` job gates PRs on it (the bitwise
two-engine re-run is demoted to the nightly bench workflow).

Certificates ride the engine cache as sidecar blobs next to their
``ResultCache`` entries (see :mod:`repro.engine.cache`) and deliberately
contain **no timestamps or timings**, so serial and process-pool runs of
the same task produce byte-identical certificates.
"""

from __future__ import annotations

import base64
import hashlib
import json
import zlib
from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = [
    "CERT_FORMAT",
    "CERT_VERSION",
    "CertificateError",
    "DigestAccumulator",
    "RunCertificate",
    "VerificationReport",
    "canonical_level_rows",
    "emit_run_certificate",
    "exact_state_row",
    "program_fingerprint",
    "synthesize_exact",
    "verify_certificate_text",
    "verify_run_certificate",
]

CERT_FORMAT = "repro-run-certificate"
CERT_VERSION = 1

# --------------------------------------------------------------------------
# checker-local admission constants
# --------------------------------------------------------------------------
# These duplicate the admission bounds of ``repro.core.fixpoint`` *on
# purpose*: the checker must re-derive the admission inequalities without
# trusting the fast path's compiled plan, so it carries its own copy of
# the contract.  A silent drift between the two is caught by the
# ``bounds`` section of every certificate — emit records the fast path's
# constants, verify compares them against these.
_VALUE_LIMIT = 2**31  # per-variable scaled-magnitude bound (int64 lattice)
_REAL_LIMIT = 2**15  # descaled real-coordinate bound (scaled lattice)
_GUARD_MAGNITUDE = 2**52  # int64-lattice guard rows: float eval stays exact
_STEP_MAGNITUDE = 2**62  # stepper rows / scaled guard rows: no int64 wrap
_GAP_LIMIT = 5 * 10**8  # scaled guard clearing multiplier cap (gap >= 2e-9)
_GUARD_SLACK = 5e-10  # admissible reference float guard-evaluation error
_ULP = 2.0**-53  # unit roundoff of IEEE double arithmetic

_BOUNDS = {
    "value_limit": _VALUE_LIMIT,
    "real_limit": _REAL_LIMIT,
    "guard_magnitude": _GUARD_MAGNITUDE,
    "step_magnitude": _STEP_MAGNITUDE,
    "gap_limit": _GAP_LIMIT,
    "guard_slack": _GUARD_SLACK,
    "ulp": _ULP,
}

#: checker tolerance on the recorded pre/post-fixpoint margins: the
#: margins are measured with one float matvec on an adopted iterate that
#: is a pre/post-fixpoint in exact arithmetic, so only rounding noise may
#: push them below zero
_MARGIN_TOL = 1e-9


class CertificateError(ReproError):
    """A certificate could not be parsed, emitted or resolved."""


# --------------------------------------------------------------------------
# canonical state encoding + per-level digests
# --------------------------------------------------------------------------
# One state = one row ``[loc_id, num_1, den_1, ..., num_nv, den_nv]`` of
# reduced rationals (``den >= 1``, ``gcd(|num|, den) = 1``) — the unique
# canonical form shared by all three exploration engines, so cross-engine
# digests agree bit for bit.


def canonical_level_rows(
    locs: np.ndarray, vals: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Canonical rows of one frontier level of the int64/scaled engine.

    ``vals`` holds *scaled* coordinates ``s_j * x_j``; reducing
    ``vals[:, j] / scale[j]`` by the (always positive) gcd yields the
    unique reduced numerator/denominator pair — identical to the exact
    engine's ``Fraction`` representation of the same state.
    """
    m, nv = vals.shape
    rows = np.empty((m, 1 + 2 * nv), dtype=np.int64)
    rows[:, 0] = locs
    if bool((scale == 1).all()):
        rows[:, 1::2] = vals
        rows[:, 2::2] = 1
        return rows
    g = np.gcd(vals, scale)  # gcd(0, s) = s, so 0 reduces to 0/1
    rows[:, 1::2] = vals // g  # exact: g divides both operands
    rows[:, 2::2] = scale // g
    return rows


def exact_state_row(loc_id: int, values: Tuple) -> List[int]:
    """Canonical row of one scalar-engine state (ints or ``Fraction`` s,
    the latter already reduced with a positive denominator)."""
    row = [loc_id]
    for v in values:
        if isinstance(v, Fraction):
            row.append(v.numerator)
            row.append(v.denominator)
        else:
            row.append(int(v))
            row.append(1)
    return row


def _digest_i8(rows: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(rows.astype("<i8", copy=False)).tobytes()
    ).hexdigest()


def _digest_text(lines: List[str]) -> str:
    return hashlib.sha256(
        b"text\n" + "\n".join(lines).encode("ascii")
    ).hexdigest()


def _encode_blob(raw: bytes) -> str:
    return base64.b64encode(zlib.compress(raw)).decode("ascii")


def _decode_blob(text: str) -> bytes:
    return zlib.decompress(base64.b64decode(text.encode("ascii"), validate=True))


class DigestAccumulator:
    """Collects one canonical row chunk per BFS level, then freezes the
    per-level sha256 digests and the compressed state table.

    Levels may arrive as int64 arrays (frontier engines) or as lists of
    Python-int rows (the scalar engine, whose values are unbounded).  The
    encoding decision is **global per run** at :meth:`finish`: ``"i8le"``
    (little-endian int64 rows, the cheap common case) whenever every
    value fits, else ``"text"`` (comma-joined decimal rows) — so a
    digest never depends on *which* level a large value appeared in.
    """

    def __init__(self) -> None:
        self._chunks: List[Any] = []

    def add_level(self, rows) -> None:
        self._chunks.append(rows)

    def finish(self) -> Dict[str, Any]:
        arrays: Optional[List[np.ndarray]] = []
        for chunk in self._chunks:
            if isinstance(chunk, np.ndarray):
                arrays.append(chunk)
                continue
            try:
                arrays.append(np.array(chunk, dtype=np.int64))
            except OverflowError:
                arrays = None
                break
        digests: List[str] = []
        ends: List[int] = []
        total = 0
        if arrays is not None:
            raw_parts: List[bytes] = []
            for arr in arrays:
                digests.append(_digest_i8(arr))
                raw_parts.append(
                    np.ascontiguousarray(arr.astype("<i8", copy=False)).tobytes()
                )
                total += len(arr)
                ends.append(total)
            return {
                "encoding": "i8le",
                "level_ends": ends,
                "digests": digests,
                "states_blob": _encode_blob(b"".join(raw_parts)),
            }
        all_lines: List[str] = []
        for chunk in self._chunks:
            rows = chunk.tolist() if isinstance(chunk, np.ndarray) else chunk
            lines = [",".join(str(int(x)) for x in row) for row in rows]
            digests.append(_digest_text(lines))
            all_lines.extend(lines)
            total += len(lines)
            ends.append(total)
        return {
            "encoding": "text",
            "level_ends": ends,
            "digests": digests,
            "states_blob": _encode_blob("\n".join(all_lines).encode("ascii")),
        }


def _decode_states(levels: Dict[str, Any], width: int) -> List[List[int]]:
    """The embedded state table back as rows of Python ints."""
    raw = _decode_blob(levels["states_blob"])
    if levels["encoding"] == "i8le":
        if len(raw) % (8 * width):
            raise ValueError("states blob length is not a whole number of rows")
        arr = np.frombuffer(raw, dtype="<i8").reshape(-1, width)
        return arr.tolist()
    rows = []
    text = raw.decode("ascii")
    for line in text.split("\n") if text else []:
        row = [int(tok) for tok in line.split(",")]
        if len(row) != width:
            raise ValueError("text states blob row width mismatch")
        rows.append(row)
    return rows


def _replay_digest(rows: List[List[int]], encoding: str) -> str:
    if encoding == "i8le":
        return _digest_i8(np.array(rows, dtype=np.int64))
    return _digest_text([",".join(str(x) for x in row) for row in rows])


# --------------------------------------------------------------------------
# the certificate object
# --------------------------------------------------------------------------


def _payload_digest(payload: Dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class RunCertificate:
    """An emitted certificate: the payload plus its integrity digest
    (sha256 over the canonical JSON form of the payload alone)."""

    payload: Dict[str, Any]
    digest: str

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "RunCertificate":
        return RunCertificate(payload=payload, digest=_payload_digest(payload))

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RunCertificate":
        payload = dict(data)
        digest = payload.pop("digest", "")
        return RunCertificate(payload=payload, digest=digest)

    @staticmethod
    def parse(text: str) -> "RunCertificate":
        try:
            data = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CertificateError(f"unparsable certificate: {exc}") from None
        if not isinstance(data, dict):
            raise CertificateError("certificate is not a JSON object")
        return RunCertificate.from_dict(data)

    def as_dict(self) -> Dict[str, Any]:
        return {**self.payload, "digest": self.digest}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @staticmethod
    def load(path) -> "RunCertificate":
        with open(path, "r", encoding="utf-8") as fh:
            return RunCertificate.parse(fh.read())


def program_fingerprint(pts) -> str:
    """sha256 over the pretty-printed PTS — the canonical, compiler-
    independent rendering of the model the certificate is about."""
    return hashlib.sha256(pts.pretty().encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------
# emission (fast-path side)
# --------------------------------------------------------------------------


def emit_run_certificate(
    pts,
    model,
    result,
    *,
    max_states: int,
    explore: str = "auto",
    name: Optional[str] = None,
    source: Optional[str] = None,
    integer_mode: bool = True,
) -> RunCertificate:
    """Package one finished run (model + value-iteration result) as a
    :class:`RunCertificate`.

    ``model`` must carry the exploration evidence every
    :func:`~repro.core.fixpoint.build_sparse_model` run now collects
    (level digests + the admission record of the frontier plan); embed
    ``source`` to make the certificate verifiable standalone.
    """
    from repro.core.fixpoint import FIXPOINT_FINGERPRINT

    evidence = getattr(model, "_evidence", None)
    if not evidence:
        raise CertificateError(
            "model carries no exploration evidence; rebuild it with the "
            "current build_sparse_model"
        )
    if result.states != model.n:
        raise CertificateError(
            f"result/model mismatch: {result.states} vs {model.n} states"
        )
    vi_evidence = getattr(result, "evidence", None)
    payload: Dict[str, Any] = {
        "format": CERT_FORMAT,
        "version": CERT_VERSION,
        "fingerprints": {
            "program_sha256": program_fingerprint(pts),
            "fixpoint": FIXPOINT_FINGERPRINT,
        },
        "program": {
            "name": name or getattr(pts, "name", None) or "program",
            "source": source,
            "integer_mode": bool(integer_mode),
        },
        "exploration": {
            "explorer": model.explored_via,
            "requested": explore,
            "max_states": int(max_states),
            "states": int(model.n),
            "truncated": bool(model.truncated),
            "levels": evidence["levels"],
            "admission": evidence["admission"],
        },
        "value_iteration": {
            "lower": float(result.lower),
            "upper": float(result.upper),
            "iterations": int(result.iterations),
            "solver": result.solver,
            "certified": bool(result.certified),
            "certify_sweeps": int(result.certify_sweeps),
            "oracle_residual": (
                None
                if result.oracle_residual is None
                else float(result.oracle_residual)
            ),
            "evidence": vi_evidence,
        },
    }
    return RunCertificate.from_payload(payload)


# --------------------------------------------------------------------------
# independent admission re-derivation (checker side)
# --------------------------------------------------------------------------


def _draw_values(pts) -> Optional[List[Dict[str, Fraction]]]:
    """The fork/draw Cartesian product in the engines' order (sampling
    variables in ``pts.distributions`` insertion order, atoms in
    declaration order) — value maps only, probabilities are irrelevant to
    admission."""
    combos: List[Dict[str, Fraction]] = [{}]
    for r, dist in pts.distributions.items():
        atoms = dist.atoms()
        if atoms is None:
            return None
        combos = [{**d, r: value} for d in combos for _q, value in atoms]
    return combos


def _derive_guard_entry(
    expr, var_index, scale, limits, scaled, ti: int, k: int
) -> Optional[Dict[str, Any]]:
    """Re-derive one guard row's admission record, or ``None`` when the
    row is inadmissible — mirroring ``_scaled_guard_row`` (scaled) and the
    plain-int64 magnitude check of ``_compile_int_plan`` exactly, but with
    the checker's own constants."""
    nv = len(scale)
    terms = [
        (var_index[name], Fraction(coeff)) for name, coeff in expr.iter_coeffs()
    ]
    const = Fraction(expr.const)
    if scaled:
        mult = const.denominator
        rescaled = []
        for j, coeff in terms:
            q = coeff / scale[j]
            rescaled.append((j, q))
            mult = mult * q.denominator // gcd(mult, q.denominator)
        if mult > _GAP_LIMIT:
            return None
        row = [0] * nv
        for j, q in rescaled:
            row[j] = int(q * mult)
        c = int(const * mult)
        magnitude = sum(abs(row[j]) * limits[j] for j in range(nv)) + abs(c)
        if magnitude >= _STEP_MAGNITUDE:
            return None
        float_mag = abs(float(const)) + sum(
            abs(float(coeff)) * (limits[j] / scale[j]) for j, coeff in terms
        )
        if (len(terms) + 4) * _ULP * float_mag > _GUARD_SLACK:
            return None
        headroom = _STEP_MAGNITUDE - magnitude
    else:
        mult = 1
        row = [0] * nv
        for j, coeff in terms:
            row[j] = int(coeff)
        c = int(const)
        magnitude = sum(abs(a) for a in row) * _VALUE_LIMIT + abs(c)
        if magnitude >= _GUARD_MAGNITUDE:
            return None
        headroom = _GUARD_MAGNITUDE - magnitude
    return {
        "transition": ti,
        "ineq": k,
        "mult": int(mult),
        "row": row,
        "const": c,
        "headroom": int(headroom),
    }


def _derive_step_headroom(
    update, draw, program_vars, var_index, scale, limits, scaled
) -> Optional[int]:
    """Max-over-variables int64 headroom of one fork/draw stepper, or
    ``None`` when inadmissible — same rescaling algebra as the compiled
    plan (identity rows included in the headroom, exempt from the
    admission check: their magnitude is a per-variable limit, always
    far inside the bound)."""
    nv = len(program_vars)
    worst = 0
    for vi, v in enumerate(program_vars):
        expr = update.assignments.get(v)
        if expr is None:
            worst = max(worst, limits[vi])
            continue
        row = [0] * nv
        const = expr.const
        for name, coeff in expr.iter_coeffs():
            if name in draw:
                const = const + coeff * draw[name]
            elif scaled:
                j = var_index[name]
                q = Fraction(coeff) * scale[vi] / scale[j]
                if q.denominator != 1:
                    return None
                row[j] = int(q)
            else:
                row[var_index[name]] = int(coeff)
        if scaled:
            scaled_const = Fraction(const) * scale[vi]
            if scaled_const.denominator != 1:
                return None
            c = int(scaled_const)
        else:
            c = int(const)
        magnitude = sum(abs(row[j]) * limits[j] for j in range(nv)) + abs(c)
        if magnitude >= _STEP_MAGNITUDE:
            return None
        worst = max(worst, magnitude)
    return _STEP_MAGNITUDE - worst


def derive_admission(pts) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """Independently re-derive the frontier engine's admission record from
    the PTS: ``(record, None)`` when the fast path is admissible, else
    ``(None, reason)``.  This is the checker's ground truth — a recorded
    admission section must equal it entry for entry."""
    report = pts.integrality()
    if report.integral:
        scaled = False
    elif report.scale is not None:
        scaled = True
    else:
        return None, (
            report.scale_reason or report.reason or "not lattice-admissible"
        )
    program_vars = pts.program_vars
    nv = len(program_vars)
    var_index = {v: i for i, v in enumerate(program_vars)}
    scale = [int(s) for s in (report.scale or (1,) * nv)]
    if scaled:
        limits = [min(_VALUE_LIMIT, s * _REAL_LIMIT) for s in scale]
    else:
        limits = [_VALUE_LIMIT] * nv
    draws = _draw_values(pts)
    if draws is None:
        return None, "continuous sampling distribution"
    guards: List[Dict[str, Any]] = []
    steps: List[Dict[str, Any]] = []
    for ti, t in enumerate(pts.transitions):
        for k, ineq in enumerate(t.guard.inequalities):
            entry = _derive_guard_entry(
                ineq.expr, var_index, scale, limits, scaled, ti, k
            )
            if entry is None:
                return None, f"guard row {k} of transition {ti} is inadmissible"
            guards.append(entry)
        for fi, fork in enumerate(t.forks):
            for di, draw in enumerate(draws):
                headroom = _derive_step_headroom(
                    fork.update, draw, program_vars, var_index, scale, limits, scaled
                )
                if headroom is None:
                    return None, (
                        f"stepper (transition {ti}, fork {fi}, draw {di}) "
                        "is inadmissible"
                    )
                steps.append(
                    {
                        "transition": ti,
                        "fork": fi,
                        "draw": di,
                        "headroom": int(headroom),
                    }
                )
    record = {
        "lattice": "scaled" if scaled else "int64",
        "scale": scale,
        "limits": limits,
        "guards": guards,
        "steps": steps,
        "bounds": dict(_BOUNDS),
    }
    return record, None


# --------------------------------------------------------------------------
# verification
# --------------------------------------------------------------------------


@dataclass
class VerificationReport:
    """Outcome of one certificate check: named pass/fail results, in
    check order, with a one-line detail per failure."""

    checks: List[Tuple[str, bool, str]] = field(default_factory=list)

    def add(self, name: str, ok: bool, detail: str = "") -> bool:
        self.checks.append((name, bool(ok), detail))
        return bool(ok)

    @property
    def ok(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    @property
    def failures(self) -> List[Tuple[str, str]]:
        return [(name, detail) for name, ok, detail in self.checks if not ok]

    def render(self) -> List[str]:
        lines = []
        for name, ok, detail in self.checks:
            mark = "ok  " if ok else "FAIL"
            line = f"{mark} {name}"
            if detail and not ok:
                line += f": {detail}"
            lines.append(line)
        return lines


def _resolve_pts(cert: RunCertificate, pts):
    if pts is not None:
        return pts, None
    program = cert.payload.get("program") or {}
    source = program.get("source")
    if not source:
        return None, (
            "certificate embeds no program source; pass the program "
            "explicitly (repro verify-certificate --program)"
        )
    from repro.lang import compile_source

    compiled = compile_source(
        source,
        integer_mode=bool(program.get("integer_mode", True)),
        name=program.get("name") or "program",
    )
    return compiled.pts, None


def _check_states(report, rows, pts, admission, explorer) -> None:
    """Well-formedness of the embedded state table: reduced rationals,
    locations in range and — on the frontier lattices — denominators
    dividing the re-derived scale with scaled magnitudes inside the
    re-derived per-variable limits."""
    n_locs = len(pts.locations)
    nv = len(pts.program_vars)
    arr = None
    try:
        arr = np.array(rows, dtype=np.int64)
    except OverflowError:
        pass
    if arr is not None and len(arr):
        locs = arr[:, 0]
        nums = arr[:, 1::2]
        dens = arr[:, 2::2]
        report.add(
            "state-locations",
            bool(((locs >= 0) & (locs < n_locs)).all()),
            "location id out of range",
        )
        well_formed = bool((dens >= 1).all()) and bool(
            (np.gcd(np.abs(nums), dens) == 1).all()
        )
        report.add("state-reduced", well_formed, "state row is not in lowest terms")
        if admission is not None and well_formed:
            scale = np.array(admission["scale"], dtype=np.int64).reshape(1, nv)
            limits = np.array(admission["limits"], dtype=np.int64).reshape(1, nv)
            on_lattice = bool((scale % dens == 0).all())
            report.add(
                "state-lattice",
                on_lattice,
                "state denominator does not divide the lattice scale",
            )
            if on_lattice:
                # |num| <= value limit and scale <= 1e6 keep the product
                # far inside int64, so the multiply below cannot wrap
                small = bool((np.abs(nums) <= _VALUE_LIMIT).all())
                in_range = small and bool(
                    (np.abs(nums * (scale // dens)) <= limits).all()
                )
                report.add(
                    "state-range",
                    in_range,
                    "scaled state magnitude exceeds the admitted limit",
                )
        return
    # unbounded values: only the exact engine produces these (text
    # encoding, no admission record), so check pure well-formedness
    ok_loc = all(0 <= row[0] < n_locs for row in rows)
    report.add("state-locations", ok_loc, "location id out of range")
    ok_red = all(
        row[2 * j + 2] >= 1 and gcd(abs(row[2 * j + 1]), row[2 * j + 2]) == 1
        for row in rows
        for j in range(nv)
    )
    report.add("state-reduced", ok_red, "state row is not in lowest terms")
    if admission is not None:
        report.add(
            "state-range",
            False,
            f"{explorer} explorer states overflow int64",
        )


def _check_value_iteration(report, vi) -> None:
    lower = vi.get("lower")
    upper = vi.get("upper")
    bracket_ok = (
        isinstance(lower, (int, float))
        and isinstance(upper, (int, float))
        and -1e-12 <= lower <= upper + 1e-12
        and upper <= 1.0 + _MARGIN_TOL
    )
    report.add(
        "vi-bracket",
        bracket_ok,
        f"bracket [{lower}, {upper}] is not a probability bracket",
    )
    evidence = vi.get("evidence")
    if not vi.get("certified"):
        return
    if not report.add(
        "vi-evidence",
        isinstance(evidence, dict),
        "certified run carries no solver evidence",
    ):
        return
    report.add(
        "vi-adopted",
        bool(evidence.get("adopted_lower")) and bool(evidence.get("adopted_upper")),
        "certified without both bracket sides adopted",
    )
    report.add(
        "vi-witness",
        bool(evidence.get("witness_ok"))
        and isinstance(evidence.get("witness_sha256"), str)
        and len(evidence.get("witness_sha256") or "") == 64,
        "certified lower side without a contraction witness",
    )
    from repro.core import solvers as _solvers

    ladder = evidence.get("slack_ladder") or {}
    residual = vi.get("oracle_residual")
    base_ok = isinstance(ladder.get("base"), (int, float)) and (
        residual is None
        or ladder["base"] == max(float(residual), 2.0**-52)
    )
    report.add(
        "vi-slack-ladder",
        base_ok
        and list(ladder.get("multiples") or []) == list(_solvers.SLACK_MULTIPLES)
        and ladder.get("cap") == _solvers.SLACK_CAP,
        "slack ladder does not match the certifier's constants",
    )
    margins_ok = True
    for key in ("post_fixpoint_margin", "pre_fixpoint_margin"):
        value = evidence.get(key)
        if not isinstance(value, (int, float)) or value < -_MARGIN_TOL:
            margins_ok = False
    report.add(
        "vi-margins",
        margins_ok,
        "adopted bracket's fixed-point margins are missing or negative",
    )


def verify_run_certificate(cert: RunCertificate, pts=None) -> VerificationReport:
    """Independently check one certificate; ``pts`` overrides the
    embedded program source (required when the certificate has none).

    Checks, in order: payload integrity (digest), structure, program +
    engine fingerprints, the admission record against a from-scratch
    re-derivation, every per-level frontier digest replayed from the
    embedded state table (plus the init state and the level structure),
    state well-formedness against the re-derived lattice, and the
    value-iteration evidence.  No exploration or sweeping runs.
    """
    report = VerificationReport()
    payload = cert.payload
    report.add(
        "integrity",
        cert.digest == _payload_digest(payload),
        "payload digest mismatch (certificate bytes were altered)",
    )
    structure_ok = report.add(
        "structure",
        payload.get("format") == CERT_FORMAT
        and payload.get("version") == CERT_VERSION
        and isinstance(payload.get("exploration"), dict)
        and isinstance(payload.get("value_iteration"), dict)
        and isinstance(payload.get("fingerprints"), dict),
        f"not a {CERT_FORMAT} v{CERT_VERSION} payload",
    )
    if not structure_ok:
        return report

    pts, reason = _resolve_pts(cert, pts)
    if not report.add("program", pts is not None, reason or ""):
        return report

    fingerprints = payload["fingerprints"]
    report.add(
        "program-fingerprint",
        fingerprints.get("program_sha256") == program_fingerprint(pts),
        "certificate was issued for a different program",
    )
    from repro.core.fixpoint import FIXPOINT_FINGERPRINT

    report.add(
        "engine-fingerprint",
        fingerprints.get("fixpoint") == FIXPOINT_FINGERPRINT,
        f"stale fixpoint fingerprint {fingerprints.get('fixpoint')!r} "
        f"(current: {FIXPOINT_FINGERPRINT!r})",
    )

    exploration = payload["exploration"]
    explorer = exploration.get("explorer")
    admission = exploration.get("admission")
    if explorer in ("int64", "scaled-int64"):
        derived, why = derive_admission(pts)
        if report.add(
            "admission-derivable",
            derived is not None,
            f"fast-path admission does not re-derive: {why}",
        ):
            expected_lattice = "scaled" if explorer == "scaled-int64" else "int64"
            report.add(
                "admission-lattice",
                isinstance(admission, dict)
                and admission.get("lattice") == expected_lattice
                and derived["lattice"] == expected_lattice,
                f"admission lattice does not match explorer {explorer!r}",
            )
            report.add(
                "admission-bounds",
                isinstance(admission, dict) and admission == derived,
                "recorded admission record differs from the independent "
                "re-derivation",
            )
        admission_for_states = derived
    else:
        report.add(
            "admission-absent",
            admission is None,
            "fraction-engine run must not carry a frontier admission record",
        )
        admission_for_states = None

    levels = exploration.get("levels") or {}
    states = exploration.get("states")
    nv = len(pts.program_vars)
    width = 1 + 2 * nv
    try:
        rows = _decode_states(levels, width)
    except Exception as exc:
        report.add("frontier-digests", False, f"undecodable state table: {exc}")
        return report
    ends = levels.get("level_ends") or []
    digests = levels.get("digests") or []
    shape_ok = (
        len(rows) == states
        and len(ends) == len(digests)
        and len(ends) > 0
        and all(
            isinstance(e, int) and e > (ends[i - 1] if i else 0)
            for i, e in enumerate(ends)
        )
        and ends[-1] == states
    )
    if report.add(
        "level-structure",
        shape_ok,
        "level boundaries do not partition the state table",
    ):
        replay_ok = True
        start = 0
        for end, recorded in zip(ends, digests):
            if _replay_digest(rows[start:end], levels["encoding"]) != recorded:
                replay_ok = False
                break
            start = end
        report.add(
            "frontier-digests",
            replay_ok,
            "a per-level frontier digest does not replay from the state table",
        )
        init_values = tuple(pts.init_valuation[v] for v in pts.program_vars)
        init_row = exact_state_row(
            list(pts.locations).index(pts.init_location), init_values
        )
        report.add(
            "init-state",
            ends[0] == 1 and rows[0] == init_row,
            "level 0 is not exactly the program's initial state",
        )
        _check_states(report, rows, pts, admission_for_states, explorer)

    _check_value_iteration(report, payload["value_iteration"])
    return report


def verify_certificate_text(text: str, pts=None) -> VerificationReport:
    """Parse + verify; parse failures become a failed single-check report
    instead of an exception (the CLI's bit-flip drill needs a clean
    exit-1 path for arbitrarily corrupted bytes)."""
    try:
        cert = RunCertificate.parse(text)
    except CertificateError as exc:
        report = VerificationReport()
        report.add("parse", False, str(exc))
        return report
    return verify_run_certificate(cert, pts=pts)


# --------------------------------------------------------------------------
# engine integration: the "exact" algorithm
# --------------------------------------------------------------------------


def synthesize_exact(task, deps=None, engine=None):
    """Engine protocol wrapper: a value-iteration bracket as an analysis
    task, with its :class:`RunCertificate` riding the result (and hence
    the cache sidecar).  Certificates carry no timings, so serial and
    pooled executions of the same task emit identical bytes."""
    import time

    from repro.engine.task import CertificateResult

    start = time.perf_counter()
    pts, _invariants = task.program.resolve()
    max_states = int(task.param("max_states", 200_000))
    explore = task.param("explore", "auto")
    schedule = task.param("schedule", "auto")
    solver = task.param("solver", "auto")
    from repro.core.fixpoint import build_sparse_model, iterate_model

    model = build_sparse_model(pts, max_states=max_states, explore=explore)
    result = iterate_model(model, schedule=schedule, solver=solver)
    cert = emit_run_certificate(
        pts,
        model,
        result,
        max_states=max_states,
        explore=explore,
        name=task.program.name,
        source=task.program.source or None,
        integer_mode=task.program.integer_mode,
    )
    return CertificateResult(
        algorithm="exact",
        status="ok",
        log_bound=None,
        seconds=time.perf_counter() - start,
        solver_info=f"explore={model.explored_via} solver={result.solver}",
        details={
            "lower": result.lower,
            "upper": result.upper,
            "states": result.states,
            "iterations": result.iterations,
            "truncated": result.truncated,
            "solver": result.solver,
            "certified": result.certified,
            "certify_sweeps": result.certify_sweeps,
            "oracle_residual": result.oracle_residual,
            "explorer": model.explored_via,
        },
        run_certificate=cert.as_dict(),
        task_key=task.cache_key,
    )
