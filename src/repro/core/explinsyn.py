"""ExpLinSyn (Section 5.2): sound and complete exponential upper bounds.

Pipeline, mirroring the paper's five steps:

1. **Templates** — ``theta(l, v) = exp(a_l . v + b_l)`` per interior
   location, ``theta(l_term) = 0``, ``theta(l_fail) = 1``
   (:class:`~repro.core.templates.ExpTemplate`).
2. **Constraints** — the pre fixed-point condition per transition.
3. **Canonicalization** — divide by ``theta(l_src, v)``
   (:mod:`repro.core.canonical`).
4. **Quantifier elimination** — Minkowski-decompose each ``Psi = Q + C``
   (double description).  Proposition 1 splits the constraint into

   * (D1) each exponent slope ``alpha_j`` must be non-increasing along the
     recession cone ``C``.  The paper encodes this with Farkas multipliers;
     we use the equivalent *polar form* read off the same DD run: for every
     generating ray ``r`` of ``C``, ``alpha_j . r <= 0``, and for every line
     ``l``, ``alpha_j . l == 0``.  These are plain linear constraints over
     the unknowns — no fresh multiplier variables inside the convex solve.
   * (D2) the canonical inequality at every generator point of ``Q`` — a
     log-sum-exp (convex) constraint after expanding ``E[exp(gamma . r)]``
     (discrete distributions expand exactly into atom sums; continuous ones
     contribute their closed-form log-MGF as a smooth convex factor).
5. **Optimization** — minimize ``a_init . v_init + b_init`` (the log of the
   reported bound) with the convex solver; the returned point is verified
   independently by :meth:`UpperBoundCertificate.verify`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SynthesisError
from repro.numeric.convex import ConvexProgram
from repro.polyhedra.linexpr import LinExpr
from repro.polyhedra.minkowski import MinkowskiDecomposition, decompose
from repro.pts.model import PTS
from repro.core.canonical import CanonicalConstraint, CanonicalTerm, canonicalize
from repro.core.certificates import UpperBoundCertificate
from repro.core.invariants import InvariantMap, generate_interval_invariants
from repro.core.templates import ExpTemplate

__all__ = ["exp_lin_syn", "synthesize"]


def _expand_term_at_point(
    pts: PTS, term: CanonicalTerm, point: Dict[str, Fraction]
) -> List[Tuple[float, LinExpr, List]]:
    """Expand one canonical term at a generator point into LSE term specs.

    Products of discrete MGFs expand into the cartesian product of their
    atoms (each combination is one exponential of an affine function of the
    unknowns); continuous sampling variables stay symbolic as smooth
    log-MGF factors.
    """
    base_affine = term.alpha_at(point)
    discrete: List[Tuple[str, List[Tuple[Fraction, Fraction]]]] = []
    smooth: List[Tuple] = []
    for r, gamma in term.gamma.items():
        dist = pts.distributions[r]
        atoms = dist.atoms()
        if atoms is not None:
            discrete.append((r, atoms))
        else:
            smooth.append((dist, gamma))
    specs: List[Tuple[float, LinExpr, List]] = []
    if not discrete:
        specs.append((float(term.prob), base_affine, smooth))
        return specs
    atom_lists = [atoms for _, atoms in discrete]
    names = [r for r, _ in discrete]
    for combo in product(*atom_lists):
        weight = float(term.prob)
        affine = base_affine
        for name, (p_atom, value) in zip(names, combo):
            weight *= float(p_atom)
            affine = affine + term.gamma[name] * value
        specs.append((weight, affine, smooth))
    return specs


@dataclass
class _EliminatedConstraint:
    """Bookkeeping of one canonical constraint after quantifier elimination."""

    constraint: CanonicalConstraint
    decomposition: MinkowskiDecomposition
    generator_points: List[Dict[str, Fraction]]


def _eliminate(
    pts: PTS,
    constraints: Sequence[CanonicalConstraint],
    program: ConvexProgram,
) -> List[_EliminatedConstraint]:
    """Apply Proposition 1 to every canonical constraint, filling ``program``."""
    eliminated: List[_EliminatedConstraint] = []
    for k, con in enumerate(constraints):
        dec = decompose(con.psi)
        if dec.is_empty:
            continue  # vacuous (the invariant proves the guard unreachable)
        label = f"{con.transition_name}#{k}"
        # (D1): polar form of the cone condition, on the cone's generators;
        # rows are collected per canonical constraint and emitted together.
        d1_le: List[Tuple[LinExpr, str]] = []
        d1_eq: List[Tuple[LinExpr, str]] = []
        for term_idx, term in enumerate(con.terms):
            for ray in dec.generators.rays:
                expr = LinExpr.constant(0)
                for v, coeff in zip(dec.generators.variables, ray):
                    if coeff != 0:
                        expr = expr + term.alpha.get(v, LinExpr.constant(0)) * coeff
                if not expr.is_zero:
                    d1_le.append((expr, f"{label}:D1[{term_idx}]"))
            for line in dec.generators.lines:
                expr = LinExpr.constant(0)
                for v, coeff in zip(dec.generators.variables, line):
                    if coeff != 0:
                        expr = expr + term.alpha.get(v, LinExpr.constant(0)) * coeff
                if not expr.is_zero:
                    d1_eq.append((expr, f"{label}:D1-line[{term_idx}]"))
        program.add_linear_le_many(d1_le)
        program.add_linear_eq_many(d1_eq)
        # (D2): the convex inequality at each generator point of the polytope.
        for p_idx, point in enumerate(dec.polytope_points):
            specs: List[Tuple[float, LinExpr, List]] = []
            for term in con.terms:
                specs.extend(_expand_term_at_point(pts, term, point))
            if not specs:
                continue  # all forks terminate: sum is 0 <= 1, trivially true
            program.add_lse(specs, label=f"{label}:D2[{p_idx}]")
        eliminated.append(
            _EliminatedConstraint(con, dec, dec.polytope_points)
        )
    return eliminated


def exp_lin_syn(
    pts: PTS,
    invariants: Optional[InvariantMap] = None,
    margin: float = 1e-9,
    maxiter: int = 800,
    verify: bool = True,
    warm_start=None,
) -> UpperBoundCertificate:
    """Synthesize an exponential upper bound on the assertion violation
    probability of an affine PTS (the paper's complete algorithm).

    ``invariants`` defaults to automatically generated interval invariants.
    ``warm_start`` may carry an :class:`ExpStateFunction` known to be a pre
    fixed-point (e.g. a Hoeffding certificate's scaled function): it seeds
    the convex solve, guaranteeing the result is at least that tight.
    Returns an :class:`UpperBoundCertificate` whose ``log_bound`` is
    ``eta(l_init, v_init)``; ``verify=True`` (default) re-checks the
    certificate and raises :class:`VerificationError` on failure.
    """
    start = time.perf_counter()
    if invariants is None:
        invariants = generate_interval_invariants(pts)
    template = ExpTemplate(pts, include_sinks=False)
    constraints = canonicalize(pts, invariants, template)
    program = ConvexProgram()
    for name in template.unknowns():
        program.add_unknown(name)
    eliminated = _eliminate(pts, constraints, program)
    program.set_objective(template.eta_initial())
    seed = None
    if warm_start is not None:
        seed = {}
        for loc, row in warm_start.coeffs.items():
            if loc not in template.locations:
                continue
            for v, value in row.items():
                seed[template.a_name(loc, v)] = float(value)
            seed[template.b_name(loc)] = float(warm_start.consts[loc])
    solution = program.solve(margin=margin, maxiter=maxiter, warm_start=seed)
    if not solution.feasible:
        raise SynthesisError(
            f"ExpLinSyn: solver returned an infeasible point "
            f"(violation {solution.max_violation:.2e})"
        )
    state_function = template.instantiate(solution.assignment)
    log_bound = min(solution.objective, 0.0)  # probabilities never exceed 1
    certificate = UpperBoundCertificate(
        method="explinsyn",
        log_bound=log_bound,
        state_function=state_function,
        pts=pts,
        invariants=invariants,
        canonical_constraints=list(constraints),
        solve_seconds=time.perf_counter() - start,
        solver_info=f"{solution.method}, violation {solution.max_violation:.1e}",
    )
    if verify:
        certificate.verify()
    return certificate


# -- analysis-engine protocol -------------------------------------------------------


def _warm_start_from_deps(task, deps, pts):
    """Rebuild a warm-start state function from an upstream task's result.

    The task's ``warm_start_from`` parameter names the dependency (a
    ``hoeffding`` task, typically); its ``state_table`` — the scaled
    certificate exponents — is a pre fixed-point, so seeding the convex
    solve with it preserves the completeness guarantee sec5.2 <= sec5.1.
    Errored or absent upstream results simply mean a cold start.
    """
    from repro.core.templates import ExpStateFunction

    dep_id = task.param("warm_start_from")
    if not dep_id or deps is None:
        return None
    upstream = deps.get(dep_id)
    if upstream is None or not upstream.ok or not upstream.state_table:
        return None
    return ExpStateFunction(
        variables=pts.program_vars,
        coeffs={loc: dict(row) for loc, (row, _) in upstream.state_table.items()},
        consts={loc: const for loc, (_, const) in upstream.state_table.items()},
        term_location=pts.term_location,
        fail_location=pts.fail_location,
    )


def synthesize(task, deps=None, engine=None):
    """Engine entry point for ``explinsyn`` tasks."""
    from repro.engine.task import CertificateResult, result_from_certificate

    pts, invariants = task.program.resolve()
    warm = _warm_start_from_deps(task, deps, pts)
    # a cold solve standing in for a requested warm start (failed upstream)
    # must not be cached under the warm-start-fingerprinted key
    degraded = task.param("warm_start_from") is not None and warm is None
    start = time.perf_counter()
    try:
        certificate = exp_lin_syn(
            pts,
            invariants,
            margin=float(task.param("margin", 1e-9)),
            maxiter=int(task.param("maxiter", 800)),
            verify=bool(task.param("verify", True)),
            warm_start=warm,
        )
    except Exception as exc:
        return CertificateResult.failure(task, exc, seconds=time.perf_counter() - start)
    result = result_from_certificate(
        task.algorithm,
        certificate,
        seconds=time.perf_counter() - start,
        details={"init_location": pts.init_location, "warm_started": warm is not None},
    )
    result.cache_ok = not degraded
    return result
