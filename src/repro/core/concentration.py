"""The Section 3.2 reduction: concentration bounds as assertion violation.

``Pr[T > n]`` — the probability a PTS is still running after ``n`` steps —
reduces to QAVA by adding a step counter ``t`` that every transition
increments and jumping to the failure sink once ``t`` exceeds ``n``.  The
paper performs this reduction by hand in its Concentration benchmarks
(Figures 2/9/10 carry an explicit ``t``); :func:`with_step_counter`
automates it for any PTS, and :func:`concentration_bound` runs the full
pipeline (instrument, re-derive invariants, synthesize).

``T`` counts *PTS steps*.  The compiler's fork-flattening pass makes one
step of a compiled loop equal one source-level iteration for all the
paper's loop shapes, so the numbers are directly comparable with the
hand-instrumented benchmarks.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.errors import ModelError
from repro.polyhedra.constraints import AffineIneq, Polyhedron
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import AffineUpdate, Fork, PTS, Transition
from repro.core.certificates import UpperBoundCertificate
from repro.core.invariants import generate_interval_invariants

__all__ = ["with_step_counter", "concentration_bound"]


def with_step_counter(pts: PTS, n: int, counter: str = "t_steps") -> PTS:
    """Instrument ``pts`` with a step counter and a time-out failure edge.

    The returned PTS has one extra program variable ``counter`` (initially
    0, incremented by every fork), and each interior location gains a
    transition ``counter >= n + 1 -> l_fail`` while all original guards are
    restricted to ``counter <= n``.  Its violation probability from the
    initial state is exactly ``Pr[T > n or original violation]``; for
    violation-free programs this is ``Pr[T > n]``.
    """
    if counter in pts.program_vars or counter in pts.distributions:
        raise ModelError(f"counter name {counter!r} collides with an existing variable")
    if n <= 0:
        raise ModelError("the step budget n must be positive")
    variables = tuple(pts.program_vars) + (counter,)
    t_var = LinExpr.variable(counter)
    within = AffineIneq.le(t_var, n)
    timeout = AffineIneq.ge(t_var, n + 1)

    transitions = []
    for t in pts.transitions:
        guard = Polyhedron(
            variables, list(t.guard.inequalities) + [within]
        )
        forks = [
            Fork(
                f.destination,
                f.probability,
                AffineUpdate({**f.update.assignments, counter: t_var + 1}),
            )
            for f in t.forks
        ]
        transitions.append(Transition(t.source, guard, forks, name=t.name))
    for loc in pts.interior_locations:
        transitions.append(
            Transition(
                loc,
                Polyhedron(variables, [timeout]),
                [Fork(pts.fail_location, 1)],
                name=f"timeout@{loc}",
            )
        )
    init_val = dict(pts.init_valuation)
    init_val[counter] = Fraction(0)
    return PTS(
        program_vars=variables,
        init_location=pts.init_location,
        init_valuation=init_val,
        transitions=transitions,
        distributions=pts.distributions,
        term_location=pts.term_location,
        fail_location=pts.fail_location,
        name=f"{pts.name}+steps<={n}",
    )


def concentration_bound(
    pts: PTS,
    n: int,
    counter: str = "t_steps",
    method: Optional[str] = "explinsyn",
) -> UpperBoundCertificate:
    """Upper bound on ``Pr[T > n]`` for ``pts`` via the automated reduction.

    ``method`` selects the synthesis algorithm (``"explinsyn"`` or
    ``"hoeffding"``).  Invariants are regenerated for the instrumented
    system (the counter gets the bounds ``0 <= t <= n + 1`` automatically
    from the timeout guards).
    """
    instrumented = with_step_counter(pts, n, counter)
    invariants = generate_interval_invariants(instrumented)
    if method == "hoeffding":
        from repro.core.hoeffding import hoeffding_synthesis

        return hoeffding_synthesis(instrumented, invariants)
    from repro.core.explinsyn import exp_lin_syn

    return exp_lin_syn(instrumented, invariants)
