"""Zone (difference-bound-matrix) abstract domain for invariant generation.

Interval invariants cannot express relational facts like ``y >= 100 - x``;
zones track all constraints of the forms ``x - y <= c``, ``x <= c`` and
``-x <= c`` — the classic DBM domain [Mine 2001].  The library uses zones
as a second, more precise automatic invariant generator
(:func:`generate_zone_invariants`); both generators can be intersected.

Representation: variables ``v_1..v_n`` plus the zero variable ``v_0 = 0``;
``bound(i, j) = c`` encodes ``v_i - v_j <= c`` (``None`` = unbounded).
Canonicalization is the all-pairs shortest-path closure; an inconsistent
(empty) zone shows up as a negative cycle.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.polyhedra.constraints import AffineIneq, Polyhedron
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import PTS

__all__ = ["Zone", "generate_zone_invariants"]

Bound = Optional[Fraction]  # None = +infinity


def _badd(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return a + b


def _bmin(a: Bound, b: Bound) -> Bound:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _bmax(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return max(a, b)


def _ble(a: Bound, b: Bound) -> bool:
    """a <= b in the extended order (None = +inf)."""
    if b is None:
        return True
    if a is None:
        return False
    return a <= b


class Zone:
    """A closed DBM over ``variables`` (index 0 is the zero variable)."""

    def __init__(self, variables: Sequence[str], bounds: Optional[List[List[Bound]]] = None):
        self.variables: Tuple[str, ...] = tuple(variables)
        n = len(self.variables) + 1
        if bounds is None:
            bounds = [[None if i != j else Fraction(0) for j in range(n)] for i in range(n)]
        self.bounds: List[List[Bound]] = bounds
        self._bottom = False

    # -- construction -----------------------------------------------------------
    @staticmethod
    def top(variables: Sequence[str]) -> "Zone":
        return Zone(variables)

    @staticmethod
    def from_point(variables: Sequence[str], point: Dict[str, Fraction]) -> "Zone":
        z = Zone(variables)
        for i, v in enumerate(variables, start=1):
            c = Fraction(point[v])
            z.bounds[i][0] = c  # v - 0 <= c
            z.bounds[0][i] = -c  # 0 - v <= -c
        z.close()
        return z

    def copy(self) -> "Zone":
        z = Zone(self.variables, [row[:] for row in self.bounds])
        z._bottom = self._bottom
        return z

    def index(self, name: str) -> int:
        return self.variables.index(name) + 1

    @property
    def is_bottom(self) -> bool:
        return self._bottom

    # -- canonicalization ----------------------------------------------------------
    def close(self) -> "Zone":
        """Floyd-Warshall closure; detects emptiness via negative cycles."""
        if self._bottom:
            return self
        n = len(self.bounds)
        b = self.bounds
        for k in range(n):
            for i in range(n):
                ik = b[i][k]
                if ik is None:
                    continue
                for j in range(n):
                    through = _badd(ik, b[k][j])
                    if through is not None and not _ble(b[i][j], through):
                        b[i][j] = through
        for i in range(n):
            if b[i][i] is not None and b[i][i] < 0:
                self._bottom = True
                break
        return self

    # -- lattice operations ------------------------------------------------------------
    def join(self, other: "Zone") -> "Zone":
        if self._bottom:
            return other.copy()
        if other._bottom:
            return self.copy()
        n = len(self.bounds)
        out = Zone(self.variables, [
            [_bmax(self.bounds[i][j], other.bounds[i][j]) for j in range(n)]
            for i in range(n)
        ])
        return out

    def widen(self, newer: "Zone", thresholds: Sequence[Fraction] = ()) -> "Zone":
        """Threshold widening: growing bounds jump to the next threshold."""
        if self._bottom:
            return newer.copy()
        if newer._bottom:
            return self.copy()
        n = len(self.bounds)
        out = Zone(self.variables)
        for i in range(n):
            for j in range(n):
                old, new = self.bounds[i][j], newer.bounds[i][j]
                if _ble(new, old):
                    out.bounds[i][j] = old
                else:
                    above = [t for t in thresholds if new is not None and t >= new]
                    out.bounds[i][j] = min(above) if above else None
        return out

    def le(self, other: "Zone") -> bool:
        if self._bottom:
            return True
        if other._bottom:
            return False
        n = len(self.bounds)
        return all(
            _ble(self.bounds[i][j], other.bounds[i][j])
            for i in range(n)
            for j in range(n)
        )

    # -- transfer functions --------------------------------------------------------------
    def meet_atom(self, expr: LinExpr) -> "Zone":
        """Intersect with ``expr <= 0`` when it is zone-expressible.

        Handles ``+-x + c <= 0`` and ``x - y + c <= 0``; any other shape is
        soundly ignored.  Returns a closed copy.
        """
        z = self.copy()
        coeffs = expr.coeffs
        c = expr.const
        names = sorted(coeffs)
        if len(names) == 1 and coeffs[names[0]] in (1, -1):
            i = z.index(names[0])
            if coeffs[names[0]] == 1:  # x <= -c
                z.bounds[i][0] = _bmin(z.bounds[i][0], -c)
            else:  # -x <= -c  i.e.  0 - x <= -c
                z.bounds[0][i] = _bmin(z.bounds[0][i], -c)
        elif (
            len(names) == 2
            and sorted((coeffs[names[0]], coeffs[names[1]])) == [Fraction(-1), Fraction(1)]
        ):
            pos = names[0] if coeffs[names[0]] == 1 else names[1]
            neg = names[1] if pos == names[0] else names[0]
            i, j = z.index(pos), z.index(neg)
            z.bounds[i][j] = _bmin(z.bounds[i][j], -c)
        return z.close()

    def interval_of(self, expr: LinExpr) -> Tuple[Bound, Bound]:
        """``(lower, upper)`` bounds of an affine expression under the zone
        (interval evaluation on the per-variable bounds)."""
        if self._bottom:
            return Fraction(0), Fraction(0)
        lo: Bound = expr.const
        hi: Bound = expr.const
        for name, coeff in expr.coeffs.items():
            i = self.index(name)
            v_hi = self.bounds[i][0]  # x <= c
            v_lo = None if self.bounds[0][i] is None else -self.bounds[0][i]
            if coeff > 0:
                lo = None if v_lo is None or lo is None else lo + coeff * v_lo
                hi = None if v_hi is None or hi is None else hi + coeff * v_hi
            else:
                lo = None if v_hi is None or lo is None else lo + coeff * v_hi
                hi = None if v_lo is None or hi is None else hi + coeff * v_lo
        return lo, hi

    def assign(self, updates: Dict[str, LinExpr]) -> "Zone":
        """Simultaneous assignment transfer.

        Exact for updates of the forms ``x := y + c`` / ``x := c``; other
        right-hand sides fall back to interval bounds.  Simultaneity is
        handled by evaluating all right-hand sides against the *pre* zone.
        """
        if self._bottom:
            return self.copy()
        pre = self
        out = self.copy()
        targets = set(updates)
        n = len(self.bounds)
        # step 1: havoc all targets (drop every relation they appear in)
        for name in targets:
            i = out.index(name)
            for k in range(n):
                if k != i:
                    out.bounds[i][k] = None
                    out.bounds[k][i] = None
            out.bounds[i][i] = Fraction(0)
        # step 2: reconstrain from the pre-state
        for name, expr in updates.items():
            i = out.index(name)
            coeffs = expr.coeffs
            if len(coeffs) == 1:
                (src, coeff), = coeffs.items()
                if coeff == 1 and src not in targets:
                    # x' = y + c with y unmodified: exact difference bounds
                    j = out.index(src)
                    out.bounds[i][j] = expr.const
                    out.bounds[j][i] = -expr.const
            if len(coeffs) == 1 and next(iter(coeffs.items()))[1] == 1:
                src = next(iter(coeffs))
                # also transfer the pre-state's own bounds of src (+ c)
                j_pre = pre.index(src)
                hi = _badd(pre.bounds[j_pre][0], expr.const)
                lo = _badd(pre.bounds[0][j_pre], -expr.const)
                out.bounds[i][0] = _bmin(out.bounds[i][0], hi)
                out.bounds[0][i] = _bmin(out.bounds[0][i], lo)
                continue
            lo, hi = pre.interval_of(expr)
            out.bounds[i][0] = hi
            out.bounds[0][i] = None if lo is None else -lo
        # step 3: exact pairwise differences between two rebuilt targets
        for a, ea in updates.items():
            for b, eb in updates.items():
                if a == b:
                    continue
                diff = ea - eb
                if diff.is_constant:
                    i, j = out.index(a), out.index(b)
                    out.bounds[i][j] = _bmin(out.bounds[i][j], diff.const)
        return out.close()

    # -- conversion -------------------------------------------------------------------------
    def to_polyhedron(self) -> Polyhedron:
        """The zone as an H-representation polyhedron (finite bounds only)."""
        if self._bottom:
            return Polyhedron(
                self.variables, [AffineIneq(LinExpr.constant(1))]
            )  # empty
        ineqs: List[AffineIneq] = []
        n = len(self.bounds)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                c = self.bounds[i][j]
                if c is None:
                    continue
                expr = LinExpr.constant(-c)
                if i > 0:
                    expr = expr + LinExpr.variable(self.variables[i - 1])
                if j > 0:
                    expr = expr - LinExpr.variable(self.variables[j - 1])
                ineqs.append(AffineIneq(expr))
        return Polyhedron(self.variables, ineqs)

    def __repr__(self) -> str:
        if self._bottom:
            return "Zone(bottom)"
        parts = []
        poly = self.to_polyhedron()
        return f"Zone[{' and '.join(str(i) for i in poly.inequalities) or 'top'}]"


def _zone_thresholds(pts: PTS) -> List[Fraction]:
    """Threshold candidates: guard constants (and +-1 neighbourhoods)."""
    out = set()
    for t in pts.transitions:
        for ineq in t.guard.inequalities:
            c = -ineq.expr.const
            out.update({c - 1, c, c + 1, -c - 1, -c, -c + 1})
    for v in pts.program_vars:
        out.add(pts.init_valuation[v])
    return sorted(out)


def generate_zone_invariants(
    pts: PTS, widen_after: int = 12, max_rounds: int = 400
) -> "InvariantMap":
    """Zone-based invariant generation (same worklist shape as the interval
    generator, but relational)."""
    from repro.core.invariants import InvariantMap

    variables = pts.program_vars
    thresholds = _zone_thresholds(pts)
    supports: Dict[str, Tuple[Bound, Bound]] = {}
    for r, d in pts.distributions.items():
        supports[r] = d.support()

    def transfer(zone: Zone, guard: Polyhedron, update) -> Zone:
        entry = zone
        for ineq in guard.inequalities:
            entry = entry.meet_atom(ineq.expr)
            if entry.is_bottom:
                return entry
        # sampling variables: replace by their support interval via a
        # conservative pre-pass (substitute bounds into the expressions)
        updates: Dict[str, LinExpr] = {}
        for v in variables:
            expr = update.expr_for(v)
            if any(name in supports for name in expr.variables()):
                # widen each sampling variable to its support midpoint +-
                # range by splitting into lo/hi envelopes: approximate with
                # interval arithmetic inside assign() by rewriting r -> 0
                # and padding the result below.
                updates[v] = expr
            elif expr != LinExpr.variable(v):
                updates[v] = expr
            elif False:  # pragma: no cover
                pass
        if not updates:
            return entry
        # split sampling variables out of the update expressions
        clean_updates: Dict[str, LinExpr] = {}
        pads: Dict[str, Tuple[Bound, Bound]] = {}
        for v, expr in updates.items():
            pad_lo: Bound = Fraction(0)
            pad_hi: Bound = Fraction(0)
            clean = LinExpr.constant(expr.const)
            for name, coeff in expr.coeffs.items():
                if name in supports:
                    lo, hi = supports[name]
                    if coeff > 0:
                        pad_lo = None if lo is None or pad_lo is None else pad_lo + coeff * lo
                        pad_hi = None if hi is None or pad_hi is None else pad_hi + coeff * hi
                    else:
                        pad_lo = None if hi is None or pad_lo is None else pad_lo + coeff * hi
                        pad_hi = None if lo is None or pad_hi is None else pad_hi + coeff * lo
                else:
                    clean = clean + LinExpr({name: coeff})
            clean_updates[v] = clean
            pads[v] = (pad_lo, pad_hi)
        post = entry.assign(clean_updates)
        # pad sampled targets
        for v, (pad_lo, pad_hi) in pads.items():
            if pad_lo == 0 and pad_hi == 0:
                continue
            i = post.index(v)
            n = len(post.bounds)
            for k in range(n):
                if k == i:
                    continue
                post.bounds[i][k] = _badd(post.bounds[i][k], pad_hi)
                post.bounds[k][i] = _badd(post.bounds[k][i], None if pad_lo is None else -pad_lo)
            post.close()
        return post

    states: Dict[str, Zone] = {
        pts.init_location: Zone.from_point(variables, dict(pts.init_valuation))
    }
    visits: Dict[str, int] = {}
    worklist = [pts.init_location]
    rounds = 0
    while worklist and rounds < max_rounds:
        rounds += 1
        loc = worklist.pop()
        zone = states.get(loc)
        if zone is None or zone.is_bottom:
            continue
        for t in pts.transitions_from(loc):
            for fork in t.forks:
                image = transfer(zone, t.guard, fork.update)
                if image.is_bottom:
                    continue
                dest = fork.destination
                old = states.get(dest)
                if old is None:
                    states[dest] = image
                    if not pts.is_sink(dest):
                        worklist.append(dest)
                    continue
                if image.le(old):
                    continue
                joined = old.join(image)
                visits[dest] = visits.get(dest, 0) + 1
                if visits[dest] > widen_after:
                    joined = old.widen(joined, thresholds)
                states[dest] = joined.close()
                if not pts.is_sink(dest):
                    worklist.append(dest)
    mapping = {loc: zone.to_polyhedron() for loc, zone in states.items()}
    return InvariantMap(pts, mapping)
