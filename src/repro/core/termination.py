"""Linear ranking-supermartingale synthesis for almost-sure termination.

The soundness of lower bounds (Theorem 4.4 / Section 6) assumes the PTS
terminates almost surely.  The paper discharged this manually by
constructing ranking supermartingales; we automate the same construction:
an affine ``rho`` with

* ``rho(l, v) >= 0`` for every interior location on ``I(l)``, and
* expected decrease ``E[rho(next)] <= rho(l, v) - 1`` along every
  transition (``rho`` is 0 at both sinks),

is a ranking supermartingale, and its existence implies finite expected
termination time and hence almost-sure termination [Chakarov &
Sankaranarayanan 2013; Chatterjee et al. 2018].  Synthesis is one Farkas
encoding plus an LP feasibility check.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import InfeasibleError, SynthesisError
from repro.numeric.lp import LinearProgram
from repro.polyhedra.farkas import FarkasEncoder, TemplateConstraint
from repro.polyhedra.linexpr import LinExpr
from repro.pts.model import PTS
from repro.core.invariants import InvariantMap, generate_interval_invariants
from repro.core.templates import ExpStateFunction, ExpTemplate

__all__ = ["TerminationCertificate", "prove_almost_sure_termination"]


@dataclass
class TerminationCertificate:
    """A synthesized ranking supermartingale witnessing a.s. termination."""

    rho: ExpStateFunction  # affine ranks per interior location (exponent view)
    solve_seconds: float

    def rank(self, location: str, valuation: Dict[str, float]) -> float:
        """The rank ``rho(l, v)`` (0 at the sinks)."""
        if location not in self.rho.coeffs:
            return 0.0
        return self.rho.exponent(location, valuation)

    def check_on_trajectories(
        self, pts: PTS, episodes: int = 100, max_steps: int = 5000, seed: int = 3
    ) -> bool:
        """Sanity check: the rank stays nonnegative along simulated runs."""
        rng = random.Random(seed)
        sampling = sorted(pts.distributions)
        for _ in range(episodes):
            location = pts.init_location
            valuation = {k: float(v) for k, v in pts.init_valuation.items()}
            for _ in range(max_steps):
                if pts.is_sink(location):
                    break
                if self.rank(location, valuation) < -1e-6:
                    return False
                transition = pts.enabled_transition(location, valuation)
                if transition is None:
                    break
                u, acc = rng.random(), 0.0
                fork = transition.forks[-1]
                for f in transition.forks:
                    acc += float(f.probability)
                    if u <= acc:
                        fork = f
                        break
                draws = {r: pts.distributions[r].sample(rng) for r in sampling}
                valuation = fork.update.apply_float(valuation, draws)
                location = fork.destination
        return True


def prove_almost_sure_termination(
    pts: PTS, invariants: Optional[InvariantMap] = None
) -> TerminationCertificate:
    """Synthesize a linear RSM; raises :class:`SynthesisError` when the LP
    finds none (which does *not* mean the program diverges — only that no
    affine witness exists for the given invariant)."""
    start = time.perf_counter()
    if invariants is None:
        invariants = generate_interval_invariants(pts)
    template = ExpTemplate(pts, include_sinks=False)
    encoder = FarkasEncoder(prefix="_t")
    constraints: List[TemplateConstraint] = []

    for loc in pts.interior_locations:
        inv = invariants.of(loc)
        if inv.is_empty():
            continue
        # rho(l, v) >= 0  <=>  (-a_l) . v <= b_l
        coeffs = {v: -template.coeff(loc, v) for v in pts.program_vars}
        constraints.extend(
            encoder.encode_implication(inv, coeffs, template.const(loc), label=f"nonneg@{loc}")
        )

    for t_index, t in enumerate(pts.transitions):
        psi = invariants.of(t.source).intersect(t.guard).with_variables(pts.program_vars)
        if psi.is_empty():
            continue
        # sum_j p_j rho_dst(E[upd_j]) <= rho_src(v) - 1
        coeffs: Dict[str, LinExpr] = {
            v: -template.coeff(t.source, v) for v in pts.program_vars
        }
        rhs = template.const(t.source) - 1
        for fork in t.forks:
            dst = fork.destination
            if pts.is_sink(dst):
                continue  # rho is 0 at the sinks
            p = fork.probability
            rhs = rhs - template.const(dst) * p
            for w in pts.program_vars:
                a_w = template.coeff(dst, w)
                expr = fork.update.expr_for(w)
                mean_const = expr.const
                for name, coeff in expr.coeffs.items():
                    if name in pts.distributions:
                        mean_const = mean_const + coeff * pts.distributions[name].mean()
                    else:
                        coeffs[name] = coeffs.get(name, LinExpr.constant(0)) + a_w * coeff * p
                rhs = rhs - a_w * mean_const * p
        constraints.extend(
            encoder.encode_implication(psi, coeffs, rhs, label=f"rank@T{t_index}")
        )

    lp = LinearProgram()
    for c in constraints:
        (lp.add_le if c.relation == "<=" else lp.add_eq)(c.expr, c.label)
    try:
        assignment = lp.solve(minimize=template.eta_initial())
    except InfeasibleError:
        raise SynthesisError(
            "no affine ranking supermartingale exists for the given invariant; "
            "almost-sure termination could not be established automatically"
        )
    rho = template.instantiate(assignment)
    return TerminationCertificate(rho=rho, solve_seconds=time.perf_counter() - start)
