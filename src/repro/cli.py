"""Command-line interface: ``python -m repro <command> <file>``.

Commands
--------

``compile``    parse a program and print the compiled transition system
``analyze``    synthesize assertion-violation bounds (upper and/or lower);
               ``--jobs N`` solves the independent eps-probe LPs of the
               Hoeffding ternary search concurrently, ``--cache`` replays
               identical analyses from disk
``simulate``   Monte-Carlo estimate of the violation probability
``exact``      value-iteration bracket on the violation probability
               (``--certificate PATH`` also emits the run certificate)
``verify-certificate``
               independently check a run certificate — re-derive the
               admission bounds and replay the frontier digests without
               re-running exploration; exit 0 pass / 1 fail / 2 not found
``fuzz``       differential-fuzzing farm: generate workloads, run every
               explorer/solver lowering as an engine task DAG, cross-check
               brackets and verify every run certificate; discrepancies
               shrink to minimal reproducers and are archived with their
               replay seed
``bench``      time the sparse fixpoint engine (vs the legacy reference)
               and append the results to ``BENCH_fixpoint.json``
``selftest``   one fast task per synthesis family through the analysis
               engine — a pre-push smoke gate (< 60 s)
``workers``    manage the persistent worker service (``start|stop|status``)
               that keeps a warm process pool alive *across* CLI
               invocations; route analyses to it with ``analyze --workers``
``cache``      inspect (``stats``, incl. certificate-sidecar coverage) or
               size-bound (``gc``) the on-disk result cache — eviction is
               LRU by mtime under a byte budget, sidecars co-evicted

Programs are written in the paper's surface syntax, e.g.::

    x := 40
    y := 0
    while x <= 99 and y <= 99:
        if prob(0.5):
            x, y := x + 1, y + 2
        else:
            x := x + 1
    assert x >= 100

Example::

    python -m repro analyze race.prob --upper --lower
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ReproError

__all__ = ["main"]


def _load(path: str, integer_mode: bool):
    from repro.lang import compile_source

    source = Path(path).read_text()
    return compile_source(source, integer_mode=integer_mode, name=Path(path).stem)


def _cmd_compile(args) -> int:
    result = _load(args.file, not args.real_valued)
    print(result.pts.pretty())
    if result.invariants:
        print("\nsource-level invariant annotations:")
        for loc, poly in result.invariants.items():
            print(f"  {loc}: {poly!r}")
    if args.validate:
        from repro.pts import validate_pts

        report = validate_pts(result.pts)
        print(f"\nvalidation: {'ok' if report.ok else 'PROBLEMS'}")
        for p in report.problems:
            print(f"  - {p}")
    return 0


def _cmd_analyze(args) -> int:
    from pathlib import Path as _Path

    from repro.errors import SynthesisError
    from repro.engine import AnalysisTask, ProgramSpec
    from repro.engine.args import engine_from_args
    from repro.utils.logspace import format_log_bound

    path = _Path(args.file)
    spec = ProgramSpec.from_source(
        path.read_text(), name=path.stem, integer_mode=not args.real_valued
    )
    engine = engine_from_args(args)

    def run(algorithm: str):
        # run_inline keeps the engine attached, so a parallel scheduler fans
        # the Hoeffding eps-probe LPs out even for this single program
        result = engine.run_inline(AnalysisTask.make(algorithm, spec))
        if not result.ok:
            raise SynthesisError(result.error)
        return result

    try:
        want_upper = args.upper or not args.lower
        if want_upper:
            result = run("hoeffding" if args.method == "hoeffding" else "explinsyn")
            bound = format_log_bound(result.log_bound)
            print(f"upper bound ({result.algorithm}): Pr[violation] <= {bound}")
            for loc, text in sorted(result.template_renders.items()):
                print(f"  theta({loc}) = {text}")
            cached = " (cached)" if result.cached else ""
            print(f"  solved in {result.seconds:.2f}s; {result.solver_info}{cached}")
        if args.lower:
            result = run("explowsyn")
            bound = format_log_bound(result.log_bound)
            print(f"lower bound (explowsyn): Pr[violation] >= {bound}")
            for loc, text in sorted(result.template_renders.items()):
                print(f"  theta({loc}) = {text}")
            if result.details.get("termination_proved"):
                print("  almost-sure termination proved via ranking supermartingale")
    finally:
        # degraded executions (retries, pool rebuilds, backend switches)
        # still produce identical results, but never silently
        for line in engine.degradation.render():
            print(f"note: {line}", file=sys.stderr)
        engine.close()
    return 0


def _cmd_simulate(args) -> int:
    from repro.pts import simulate

    result = _load(args.file, not args.real_valued)
    sim = simulate(result.pts, episodes=args.episodes, max_steps=args.max_steps, seed=args.seed)
    lo, hi = sim.violation_interval()
    print(f"episodes            : {sim.episodes}")
    print(f"violation rate      : {sim.violation_rate:.6g}")
    print(f"99.9% interval      : [{lo:.6g}, {hi:.6g}]")
    print(f"termination rate    : {sim.termination_rate:.6g}")
    print(f"censored episodes   : {sim.censored}")
    print(f"mean steps/episode  : {sim.mean_steps:.1f}")
    return 0


def _cmd_exact(args) -> int:
    from repro.core.fixpoint import build_sparse_model, iterate_model

    result = _load(args.file, not args.real_valued)
    model = build_sparse_model(
        result.pts, max_states=args.max_states, explore=args.explore
    )
    bracket = iterate_model(model, schedule=args.schedule, solver=args.solver)
    print(f"explored states : {bracket.states}{' (truncated)' if bracket.truncated else ''}")
    print(f"vpf bracket     : [{bracket.lower:.9g}, {bracket.upper:.9g}]")
    print(f"iterations      : {bracket.iterations}")
    solver_line = bracket.solver
    if bracket.solver != "sweep":
        status = "certified" if bracket.certified else "partially certified"
        solver_line += (
            f" ({status}, {bracket.certify_sweeps} certification sweeps, "
            f"oracle residual {bracket.oracle_residual:.2e})"
        )
    print(f"solver          : {solver_line}")
    if args.certificate:
        from repro.core.runcert import emit_run_certificate

        cert = emit_run_certificate(
            result.pts,
            model,
            bracket,
            max_states=args.max_states,
            explore=args.explore,
            name=Path(args.file).stem,
            source=Path(args.file).read_text(),
            integer_mode=not args.real_valued,
        )
        cert.save(args.certificate)
        print(f"certificate     : {args.certificate} ({cert.digest[:16]}…)")
    return 0


def _cmd_verify_certificate(args) -> int:
    from repro.core.runcert import RunCertificate, verify_certificate_text

    target = Path(args.target)
    if target.is_file():
        text = target.read_text()
        origin = str(target)
    else:
        from repro.engine.cache import ResultCache

        cache = ResultCache(args.cache_dir)
        text = cache.get_blob(args.target)
        origin = str(cache.blob_path(args.target))
        if text is None:
            print(
                f"error: {args.target!r} is neither a certificate file nor "
                f"a cache key with a sidecar under {cache.directory}",
                file=sys.stderr,
            )
            return 2
    pts = None
    if args.program:
        pts = _load(args.program, not args.real_valued).pts
    report = verify_certificate_text(text, pts=pts)
    print(f"certificate     : {origin}")
    try:
        cert = RunCertificate.parse(text)
    except ReproError:
        cert = None
    if cert is not None:
        prog = cert.payload.get("program", {})
        print(f"program         : {prog.get('name') or '<unnamed>'}")
        print(f"digest          : {cert.digest[:16]}…")
    for line in report.render():
        print(line)
    if report.ok:
        print("verdict         : PASS")
        return 0
    print("verdict         : FAIL")
    return 1


def _cmd_fuzz(args) -> int:
    from repro.fuzz import ALL_FAMILIES, run_farm

    families = None
    if args.families:
        families = tuple(f.strip() for f in args.families.split(",") if f.strip())
        unknown = [f for f in families if f not in ALL_FAMILIES]
        if unknown:
            print(
                f"error: unknown families {', '.join(unknown)} "
                f"(choose from {', '.join(ALL_FAMILIES)})",
                file=sys.stderr,
            )
            return 1
    report = run_farm(
        seed=args.seed,
        count=args.count,
        families=families,
        jobs=args.jobs,
        max_states=args.max_states,
        out_dir=args.out,
        inject=args.inject,
        shrink=not args.no_shrink,
    )
    for line in report.render():
        print(line)
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    import time
    from pathlib import Path

    from repro.lang import compile_source
    from repro.core.fixpoint import build_sparse_model, iterate_model
    from repro.core import fixpoint_reference
    from repro.experiments.fixpoint_bench import (
        FIXPOINT_WORKLOADS,
        SLOW_MIXING_ANALYTIC_VPF,
        SLOW_MIXING_WORKLOADS,
        append_bench_run,
        explore_timings,
    )

    workloads = dict(FIXPOINT_WORKLOADS)
    for path in args.files:
        workloads[Path(path).stem] = (Path(path).read_text(), 20_000, True)

    results = []
    for name, (source, default_max_states, integer_mode) in workloads.items():
        max_states = args.max_states or default_max_states
        pts = compile_source(
            source, name=name, integer_mode=integer_mode and not args.real_valued
        ).pts

        # exploration phase alone, so the int64-vs-Fraction BFS win is
        # visible separately from the value-iteration sweeps; the Fraction
        # comparison is exactly the slow path --skip-reference opts out of
        explore_fields = explore_timings(
            pts, max_states, explore=args.explore, compare=not args.skip_reference
        )

        start = time.perf_counter()
        model = build_sparse_model(pts, max_states=max_states, explore=args.explore)
        build_seconds = time.perf_counter() - start
        start = time.perf_counter()
        fast = iterate_model(model, solver=args.solver)
        vi_seconds = time.perf_counter() - start
        fast_seconds = build_seconds + vi_seconds
        entry = {
            "program": name,
            "max_states": max_states,
            "states": fast.states,
            "iterations": fast.iterations,
            "truncated": fast.truncated,
            "lower": fast.lower,
            "upper": fast.upper,
            "sparse_seconds": round(fast_seconds, 6),
            "vi_seconds": round(vi_seconds, 6),
            "solver": fast.solver,
            "certified": fast.certified,
            "certify_sweeps": fast.certify_sweeps,
            **explore_fields,
        }
        if fast.oracle_residual is not None:
            entry["oracle_residual"] = fast.oracle_residual
        if name in SLOW_MIXING_WORKLOADS:
            # the pure-Python reference would take minutes to hours at
            # these sweep counts; the ladder is validated analytically
            entry["analytic_vpf"] = SLOW_MIXING_ANALYTIC_VPF
            entry["analytic_error"] = max(
                0.0,
                fast.lower - SLOW_MIXING_ANALYTIC_VPF,
                SLOW_MIXING_ANALYTIC_VPF - fast.upper,
            )
        elif not args.skip_reference:
            start = time.perf_counter()
            ref = fixpoint_reference.value_iteration(pts, max_states=max_states)
            ref_seconds = time.perf_counter() - start
            entry["reference_seconds"] = round(ref_seconds, 6)
            entry["speedup"] = round(ref_seconds / fast_seconds, 2) if fast_seconds else None
            # outward escape from the reference bracket (a certified
            # oracle bracket may legitimately be tighter, never wider)
            entry["bracket_error"] = max(
                0.0, ref.lower - fast.lower, fast.upper - ref.upper
            )
        results.append(entry)
        line = (
            f"{name:<14} states={entry['states']:>7} sparse={entry['sparse_seconds']:.3f}s"
            f" vi[{entry['solver']}]={entry['vi_seconds']:.3f}s"
            f" explore[{entry['explorer']}]={entry['explore_seconds']:.3f}s"
        )
        if "explore_speedup" in entry:
            line += f" ({entry['explore_speedup']:.1f}x vs fraction)"
        if "speedup" in entry:
            line += (
                f" reference={entry['reference_seconds']:.3f}s"
                f" speedup={entry['speedup']:.1f}x"
                f" bracket_err={entry['bracket_error']:.2e}"
            )
        if "analytic_error" in entry:
            line += f" analytic_err={entry['analytic_error']:.2e}"
        print(line)

    run_count = append_bench_run(args.out, results, source="repro bench")
    print(f"perf trajectory appended to {args.out} ({run_count} run(s))")
    return 0


#: one fast representative program per synthesis family (see ``selftest``)
_SELFTEST_RACE = """\
x := 40
y := 0
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""

_SELFTEST_CHAIN = """\
const p = 0.01
i := 0
while i <= 9:
    if prob(1 - p):
        i := i + 1
    else:
        exit
assert false
"""


def _cmd_selftest(args) -> int:
    import time

    from repro.engine import AnalysisEngine, AnalysisTask, ProgramSpec, make_scheduler

    race = ProgramSpec.from_source(_SELFTEST_RACE, name="selftest-race")
    chain = ProgramSpec.from_source(_SELFTEST_CHAIN, name="selftest-chain")
    tasks = [
        AnalysisTask.make("hoeffding", race, task_id="selftest/hoeffding"),
        AnalysisTask.make("explinsyn", race, task_id="selftest/explinsyn"),
        AnalysisTask.make("explowsyn", chain, task_id="selftest/explowsyn"),
        AnalysisTask.make(
            "polynomial_lower",
            chain,
            params={"degree": 2},
            task_id="selftest/polynomial_lower",
        ),
    ]
    start = time.perf_counter()
    with AnalysisEngine(scheduler=make_scheduler(args.jobs)) as engine:
        results = engine.map(tasks)
    failures = 0
    for task, result in zip(tasks, results):
        if result.ok:
            bound = "-inf" if result.log_bound is None else f"{result.log_bound:.6g}"
            print(
                f"{task.algorithm:<17} ok     ln(bound)={bound:<12} "
                f"{result.seconds:.2f}s"
            )
        else:
            failures += 1
            print(f"{task.algorithm:<17} FAILED {result.error}")
    print(
        f"selftest: {len(tasks) - failures}/{len(tasks)} families ok "
        f"in {time.perf_counter() - start:.1f}s"
    )
    return 1 if failures else 0


def _cmd_workers(args) -> int:
    from repro.engine.workers import (
        service_health,
        start_service,
        stop_service,
    )

    if args.action == "start":
        status = start_service(
            args.dir,
            jobs=args.jobs,
            idle_timeout=args.idle_timeout,
            foreground=args.foreground,
        )
        if status.get("exited"):
            return 0
        if status.get("already_running"):
            print(
                f"worker service already running: pid={status['pid']} "
                f"jobs={status['jobs']} (requested flags ignored — "
                f"`repro workers stop` first to reconfigure)"
            )
            return 0
        if status.get("swept_stale"):
            print(f"swept stale state left by a crashed service in {args.dir}")
        print(
            f"worker service up: pid={status['pid']} jobs={status['jobs']} "
            f"idle_timeout={status['idle_timeout']:.0f}s dir={args.dir}"
        )
        return 0
    if args.action == "status":
        health = service_health(args.dir)
        state = health["state"]
        if state == "up":
            age = health.get("heartbeat_age")
            heartbeat = f" heartbeat={age:.1f}s" if age is not None else ""
            print(
                f"worker service: up  pid={health['pid']} jobs={health['jobs']} "
                f"uptime={health['uptime_seconds']:.0f}s "
                f"served={health['tasks_served']} inflight={health['inflight']}"
                f"{heartbeat} rebuilds={health.get('pool_rebuilds', 0)}"
            )
            if health.get("last_degradation"):
                print(f"  last degradation: {health['last_degradation']}")
            return 0
        if state == "wedged":
            age = health.get("heartbeat_age")
            heartbeat = f"; heartbeat {age:.1f}s old" if age is not None else ""
            print(
                f"worker service: WEDGED  pid={health['pid']} is alive but not "
                f"answering{heartbeat} (dir={args.dir}) — "
                f"`repro workers stop` will signal it"
            )
            if health.get("last_degradation"):
                print(f"  last degradation: {health['last_degradation']}")
            return 2
        if state == "stale":
            print(
                f"worker service: down (crashed; stale state in {args.dir} — "
                f"the next `repro workers start` sweeps it)"
            )
            return 1
        print(f"worker service: down (dir={args.dir})")
        return 1
    # stop
    was_running = stop_service(args.dir)
    print(
        f"worker service {'stopped' if was_running else 'was not running'} "
        f"(dir={args.dir})"
    )
    return 0


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - loop always returns


def _cmd_cache(args) -> int:
    from repro.engine.cache import ResultCache, parse_size

    cache = ResultCache(args.dir)
    if args.action == "stats":
        stats = cache.stats()
        budget = _fmt_bytes(stats.max_bytes) if stats.max_bytes else "unbounded"
        print(f"cache directory : {stats.directory}")
        print(f"entries         : {stats.entries}")
        print(f"total size      : {_fmt_bytes(stats.total_bytes)}")
        print(f"byte budget     : {budget}")
        print(f"oldest entry    : {stats.oldest_age_seconds:.0f}s ago")
        with_cert = stats.certificates
        without = stats.entries - with_cert
        print(f"certificates    : {with_cert} of {stats.entries} entries ({without} without)")
        if stats.orphan_certificates:
            print(
                f"orphan sidecars : {stats.orphan_certificates} "
                "(next gc sweeps them)"
            )
        return 0
    # gc
    try:
        budget = (
            parse_size(args.max_bytes) if args.max_bytes is not None else cache.max_bytes
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if budget <= 0:
        print(
            "error: no byte budget — pass --max-bytes or set "
            "REPRO_CACHE_MAX_BYTES",
            file=sys.stderr,
        )
        return 2
    report = cache.gc(budget)
    print(
        f"evicted {report.evicted} entr{'y' if report.evicted == 1 else 'ies'} "
        f"({_fmt_bytes(report.freed_bytes)}); kept {report.kept} "
        f"({_fmt_bytes(report.kept_bytes)}) under {_fmt_bytes(budget)}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="path to the probabilistic program")
        p.add_argument(
            "--real-valued",
            action="store_true",
            help="disable integer tightening of strict guards",
        )

    p_compile = sub.add_parser("compile", help="print the compiled PTS")
    common(p_compile)
    p_compile.add_argument("--validate", action="store_true")
    p_compile.set_defaults(fn=_cmd_compile)

    p_analyze = sub.add_parser("analyze", help="synthesize violation bounds")
    common(p_analyze)
    p_analyze.add_argument("--upper", action="store_true", help="upper bound (default)")
    p_analyze.add_argument("--lower", action="store_true", help="lower bound too")
    p_analyze.add_argument(
        "--method",
        choices=["explinsyn", "hoeffding"],
        default="explinsyn",
        help="upper-bound algorithm (default: the complete Section 5.2 one)",
    )
    from repro.engine.args import add_engine_args
    from repro.engine.cache import DEFAULT_CACHE_DIR
    from repro.engine.workers import DEFAULT_IDLE_TIMEOUT, DEFAULT_WORKERS_DIR

    add_engine_args(
        p_analyze,
        jobs_help="solve independent engine subtasks (Hoeffding eps-probe "
        "LPs) on up to N worker processes; 0 = one per CPU",
    )
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_sim = sub.add_parser("simulate", help="Monte-Carlo estimate")
    common(p_sim)
    p_sim.add_argument("--episodes", type=int, default=20_000)
    p_sim.add_argument("--max-steps", type=int, default=100_000)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(fn=_cmd_simulate)

    p_exact = sub.add_parser("exact", help="value-iteration bracket")
    common(p_exact)
    p_exact.add_argument("--max-states", type=int, default=200_000)
    p_exact.add_argument(
        "--explore",
        choices=["auto", "int64", "scaled", "fraction"],
        default="auto",
        help="exploration engine: int64 frontier batches on integer-lattice "
        "programs, the same engine in fixed-point coordinates (scaled) on "
        "admissible fractional ones, exact Fraction interning otherwise "
        "(default: auto picks among all three)",
    )
    p_exact.add_argument(
        "--schedule",
        choices=["auto", "jacobi", "gauss-seidel"],
        default="auto",
        help="CSR sweep schedule above 2048 states: jacobi (default) or "
        "blocked gauss-seidel (reference schedule, ~half the sweeps)",
    )
    p_exact.add_argument(
        "--solver",
        choices=["auto", "sweep", "direct", "sor", "anderson"],
        default=os.environ.get("REPRO_SOLVER", "auto"),
        help="value-iteration solver: pure monotone sweeping, or an oracle "
        "(sparse direct / SOR / Anderson) whose candidate is adopted only "
        "after monotone certification sweeps prove it brackets the fixed "
        "point (default: auto = certified direct solve; REPRO_SOLVER "
        "overrides the default)",
    )
    p_exact.add_argument(
        "--certificate",
        default=None,
        metavar="PATH",
        help="also emit the run certificate (admission bounds, frontier "
        "digests, solver evidence) as JSON to PATH — check it later with "
        "`repro verify-certificate PATH`",
    )
    p_exact.set_defaults(fn=_cmd_exact)

    p_verify = sub.add_parser(
        "verify-certificate",
        help="independently check a run certificate (no re-exploration)",
    )
    p_verify.add_argument(
        "target",
        help="certificate file path, or a cache key whose sidecar blob to "
        "check",
    )
    p_verify.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"cache directory for key targets (default: {DEFAULT_CACHE_DIR})",
    )
    p_verify.add_argument(
        "--program",
        default=None,
        metavar="FILE",
        help="verify against this program file instead of the source "
        "embedded in the certificate",
    )
    p_verify.add_argument(
        "--real-valued",
        action="store_true",
        help="compile --program without integer tightening",
    )
    p_verify.set_defaults(fn=_cmd_verify_certificate)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzzing farm over generated workloads",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="farm seed (recorded in every artifact)"
    )
    p_fuzz.add_argument(
        "--count", type=int, default=20, help="number of programs to generate"
    )
    p_fuzz.add_argument(
        "--families",
        default="",
        help="comma-separated families (default: the four farm families)",
    )
    p_fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="engine workers the task grid fans out over (0 = all cores)",
    )
    p_fuzz.add_argument(
        "--max-states", type=int, default=4096, help="state budget per run"
    )
    p_fuzz.add_argument(
        "--out",
        default=".fuzz-corpus",
        help="archive directory for corpus entries and failure artifacts",
    )
    p_fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip shrinking discrepancies to minimal reproducers",
    )
    p_fuzz.add_argument(
        "--inject",
        default=None,
        metavar="SUBSTR",
        help="plant a synthetic bracket corruption into programs whose "
        "name contains SUBSTR ('*' = all) — self-test of the "
        "detect/shrink/archive path",
    )
    p_fuzz.set_defaults(fn=_cmd_fuzz)

    p_bench = sub.add_parser(
        "bench", help="benchmark the fixpoint engine, append BENCH_fixpoint.json"
    )
    p_bench.add_argument(
        "files", nargs="*", help="extra .prob programs to benchmark (optional)"
    )
    p_bench.add_argument(
        "--real-valued",
        action="store_true",
        help="disable integer tightening of strict guards",
    )
    p_bench.add_argument(
        "--max-states",
        type=int,
        default=None,
        help="override every workload's state budget (default: per-workload)",
    )
    p_bench.add_argument(
        "--skip-reference",
        action="store_true",
        help="time only the sparse engine (the reference is slow by design)",
    )
    p_bench.add_argument(
        "--explore",
        choices=["auto", "int64", "scaled", "fraction"],
        default="auto",
        help="exploration engine to benchmark (default: auto)",
    )
    p_bench.add_argument(
        "--solver",
        choices=["auto", "sweep", "direct", "sor", "anderson"],
        default=os.environ.get("REPRO_SOLVER", "auto"),
        help="value-iteration solver to benchmark (default: auto, or "
        "REPRO_SOLVER)",
    )
    p_bench.add_argument("--out", default="BENCH_fixpoint.json")
    p_bench.set_defaults(fn=_cmd_bench)

    p_self = sub.add_parser(
        "selftest",
        help="run one task per synthesis family through the analysis engine "
        "(fast pre-push gate)",
    )
    p_self.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the family tasks out over N worker processes (0 = per CPU)",
    )
    p_self.set_defaults(fn=_cmd_selftest)

    p_workers = sub.add_parser(
        "workers",
        help="manage the persistent worker service (a warm process pool "
        "shared across CLI invocations)",
    )
    p_workers.add_argument("action", choices=["start", "stop", "status"])
    p_workers.add_argument(
        "--dir",
        default=DEFAULT_WORKERS_DIR,
        metavar="DIR",
        help=f"service state directory (default: {DEFAULT_WORKERS_DIR})",
    )
    p_workers.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for the service pool (0 = one per CPU)",
    )
    p_workers.add_argument(
        "--idle-timeout",
        type=float,
        default=DEFAULT_IDLE_TIMEOUT,
        metavar="SECONDS",
        help="shut the service down after this long without requests "
        f"(default: {DEFAULT_IDLE_TIMEOUT:.0f}s; 0 = never)",
    )
    p_workers.add_argument(
        "--foreground",
        action="store_true",
        help="serve in the foreground instead of daemonizing",
    )
    p_workers.set_defaults(fn=_cmd_workers)

    p_cache = sub.add_parser(
        "cache", help="inspect or garbage-collect the on-disk result cache"
    )
    p_cache.add_argument("action", choices=["stats", "gc"])
    p_cache.add_argument(
        "--dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    p_cache.add_argument(
        "--max-bytes",
        default=None,
        metavar="SIZE",
        help="byte budget for gc, e.g. 64M or 2g (default: "
        "REPRO_CACHE_MAX_BYTES)",
    )
    p_cache.set_defaults(fn=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
