"""Command-line interface: ``python -m repro <command> <file>``.

Commands
--------

``compile``    parse a program and print the compiled transition system
``analyze``    synthesize assertion-violation bounds (upper and/or lower)
``simulate``   Monte-Carlo estimate of the violation probability
``exact``      value-iteration bracket on the violation probability
``bench``      time the sparse fixpoint engine (vs the legacy reference)
               and append the results to ``BENCH_fixpoint.json``

Programs are written in the paper's surface syntax, e.g.::

    x := 40
    y := 0
    while x <= 99 and y <= 99:
        if prob(0.5):
            x, y := x + 1, y + 2
        else:
            x := x + 1
    assert x >= 100

Example::

    python -m repro analyze race.prob --upper --lower
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ReproError

__all__ = ["main"]


def _load(path: str, integer_mode: bool):
    from repro.lang import compile_source

    source = Path(path).read_text()
    return compile_source(source, integer_mode=integer_mode, name=Path(path).stem)


def _cmd_compile(args) -> int:
    result = _load(args.file, not args.real_valued)
    print(result.pts.pretty())
    if result.invariants:
        print("\nsource-level invariant annotations:")
        for loc, poly in result.invariants.items():
            print(f"  {loc}: {poly!r}")
    if args.validate:
        from repro.pts import validate_pts

        report = validate_pts(result.pts)
        print(f"\nvalidation: {'ok' if report.ok else 'PROBLEMS'}")
        for p in report.problems:
            print(f"  - {p}")
    return 0


def _cmd_analyze(args) -> int:
    from repro.core import (
        exp_lin_syn,
        exp_low_syn,
        generate_interval_invariants,
        hoeffding_synthesis,
    )

    result = _load(args.file, not args.real_valued)
    pts = result.pts
    invariants = generate_interval_invariants(pts)
    if result.invariants:
        invariants = invariants.merged_with(result.invariants)
    want_upper = args.upper or not args.lower
    if want_upper:
        method = hoeffding_synthesis if args.method == "hoeffding" else exp_lin_syn
        cert = method(pts, invariants)
        print(f"upper bound ({cert.method}): Pr[violation] <= {cert.bound_str}")
        for loc, text in sorted(cert.render_template().items()):
            print(f"  theta({loc}) = {text}")
        print(f"  solved in {cert.solve_seconds:.2f}s; {cert.solver_info}")
    if args.lower:
        cert = exp_low_syn(pts, invariants)
        print(f"lower bound (explowsyn): Pr[violation] >= {cert.bound_str}")
        for loc, text in sorted(cert.render_template().items()):
            print(f"  theta({loc}) = {text}")
        if cert.termination_certificate is not None:
            print("  almost-sure termination proved via ranking supermartingale")
    return 0


def _cmd_simulate(args) -> int:
    from repro.pts import simulate

    result = _load(args.file, not args.real_valued)
    sim = simulate(result.pts, episodes=args.episodes, max_steps=args.max_steps, seed=args.seed)
    lo, hi = sim.violation_interval()
    print(f"episodes            : {sim.episodes}")
    print(f"violation rate      : {sim.violation_rate:.6g}")
    print(f"99.9% interval      : [{lo:.6g}, {hi:.6g}]")
    print(f"termination rate    : {sim.termination_rate:.6g}")
    print(f"censored episodes   : {sim.censored}")
    print(f"mean steps/episode  : {sim.mean_steps:.1f}")
    return 0


def _cmd_exact(args) -> int:
    from repro.core import value_iteration

    result = _load(args.file, not args.real_valued)
    bracket = value_iteration(result.pts, max_states=args.max_states)
    print(f"explored states : {bracket.states}{' (truncated)' if bracket.truncated else ''}")
    print(f"vpf bracket     : [{bracket.lower:.9g}, {bracket.upper:.9g}]")
    print(f"iterations      : {bracket.iterations}")
    return 0


def _cmd_bench(args) -> int:
    import time
    from pathlib import Path

    from repro.lang import compile_source
    from repro.core.fixpoint import value_iteration
    from repro.core import fixpoint_reference
    from repro.experiments.fixpoint_bench import FIXPOINT_WORKLOADS, append_bench_run

    workloads = dict(FIXPOINT_WORKLOADS)
    for path in args.files:
        workloads[Path(path).stem] = (Path(path).read_text(), 20_000)

    results = []
    for name, (source, default_max_states) in workloads.items():
        max_states = args.max_states or default_max_states
        pts = compile_source(source, name=name, integer_mode=not args.real_valued).pts
        start = time.perf_counter()
        fast = value_iteration(pts, max_states=max_states)
        fast_seconds = time.perf_counter() - start
        entry = {
            "program": name,
            "max_states": max_states,
            "states": fast.states,
            "iterations": fast.iterations,
            "truncated": fast.truncated,
            "lower": fast.lower,
            "upper": fast.upper,
            "sparse_seconds": round(fast_seconds, 6),
        }
        if not args.skip_reference:
            start = time.perf_counter()
            ref = fixpoint_reference.value_iteration(pts, max_states=max_states)
            ref_seconds = time.perf_counter() - start
            entry["reference_seconds"] = round(ref_seconds, 6)
            entry["speedup"] = round(ref_seconds / fast_seconds, 2) if fast_seconds else None
            entry["bracket_error"] = max(
                abs(fast.lower - ref.lower), abs(fast.upper - ref.upper)
            )
        results.append(entry)
        line = f"{name:<14} states={entry['states']:>7} sparse={entry['sparse_seconds']:.3f}s"
        if "speedup" in entry:
            line += (
                f" reference={entry['reference_seconds']:.3f}s"
                f" speedup={entry['speedup']:.1f}x"
                f" bracket_err={entry['bracket_error']:.2e}"
            )
        print(line)

    run_count = append_bench_run(args.out, results, source="repro bench")
    print(f"perf trajectory appended to {args.out} ({run_count} run(s))")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="path to the probabilistic program")
        p.add_argument(
            "--real-valued",
            action="store_true",
            help="disable integer tightening of strict guards",
        )

    p_compile = sub.add_parser("compile", help="print the compiled PTS")
    common(p_compile)
    p_compile.add_argument("--validate", action="store_true")
    p_compile.set_defaults(fn=_cmd_compile)

    p_analyze = sub.add_parser("analyze", help="synthesize violation bounds")
    common(p_analyze)
    p_analyze.add_argument("--upper", action="store_true", help="upper bound (default)")
    p_analyze.add_argument("--lower", action="store_true", help="lower bound too")
    p_analyze.add_argument(
        "--method",
        choices=["explinsyn", "hoeffding"],
        default="explinsyn",
        help="upper-bound algorithm (default: the complete Section 5.2 one)",
    )
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_sim = sub.add_parser("simulate", help="Monte-Carlo estimate")
    common(p_sim)
    p_sim.add_argument("--episodes", type=int, default=20_000)
    p_sim.add_argument("--max-steps", type=int, default=100_000)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(fn=_cmd_simulate)

    p_exact = sub.add_parser("exact", help="value-iteration bracket")
    common(p_exact)
    p_exact.add_argument("--max-states", type=int, default=200_000)
    p_exact.set_defaults(fn=_cmd_exact)

    p_bench = sub.add_parser(
        "bench", help="benchmark the fixpoint engine, append BENCH_fixpoint.json"
    )
    p_bench.add_argument(
        "files", nargs="*", help="extra .prob programs to benchmark (optional)"
    )
    p_bench.add_argument(
        "--real-valued",
        action="store_true",
        help="disable integer tightening of strict guards",
    )
    p_bench.add_argument(
        "--max-states",
        type=int,
        default=None,
        help="override every workload's state budget (default: per-workload)",
    )
    p_bench.add_argument(
        "--skip-reference",
        action="store_true",
        help="time only the sparse engine (the reference is slow by design)",
    )
    p_bench.add_argument("--out", default="BENCH_fixpoint.json")
    p_bench.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
