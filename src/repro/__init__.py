"""repro — Quantitative Analysis of Assertion Violations in Probabilistic Programs.

A from-scratch Python reproduction of the PLDI 2021 paper by Wang, Sun, Fu,
Chatterjee and Goharshady.  The public API exposes:

* a probabilistic programming language and its compiler to probabilistic
  transition systems (:mod:`repro.lang`, :mod:`repro.pts`);
* the three bound-synthesis algorithms of the paper
  (:func:`hoeffding_synthesis` for Section 5.1, :func:`exp_lin_syn` for
  Section 5.2 and :func:`exp_low_syn` for Section 6);
* baselines, certificates, simulation and exact value iteration for
  validating every synthesized bound;
* all paper benchmarks and the experiment harness regenerating the paper's
  tables (:mod:`repro.programs`, :mod:`repro.experiments`).

Quick start::

    from repro import parse_program, compile_program, exp_lin_syn

    source = '''
    x := 40; y := 0;
    while x <= 99 and y <= 99:
        if prob(0.5):
            x, y := x + 1, y + 2
        else:
            x, y := x + 1, y
    assert x >= 100
    '''
    pts = compile_program(parse_program(source))
    certificate = exp_lin_syn(pts)          # invariants are auto-generated
    print(certificate.bound)                # upper bound on Pr[violation]
"""

__version__ = "1.0.0"

from repro.errors import (
    ReproError,
    ModelError,
    ParseError,
    CompileError,
    NotAffineError,
    UnboundedSupportError,
    SolverError,
    InfeasibleError,
    SynthesisError,
    VerificationError,
)

__all__ = [
    "ReproError",
    "ModelError",
    "ParseError",
    "CompileError",
    "NotAffineError",
    "UnboundedSupportError",
    "SolverError",
    "InfeasibleError",
    "SynthesisError",
    "VerificationError",
    "__version__",
]


def __getattr__(name):  # lazy re-exports to keep import time low
    from importlib import import_module

    lazy = {
        "LinExpr": "repro.polyhedra",
        "AffineIneq": "repro.polyhedra",
        "Polyhedron": "repro.polyhedra",
        "PTS": "repro.pts",
        "PTSBuilder": "repro.pts",
        "Distribution": "repro.pts",
        "simulate_violation_probability": "repro.pts",
        "parse_program": "repro.lang",
        "compile_program": "repro.lang",
        "hoeffding_synthesis": "repro.core",
        "exp_lin_syn": "repro.core",
        "exp_low_syn": "repro.core",
        "azuma_baseline": "repro.core",
        "value_iteration": "repro.core",
        "InvariantMap": "repro.core",
        "prove_almost_sure_termination": "repro.core",
        "polynomial_hoeffding_synthesis": "repro.core",
        "exact_vpf": "repro.core",
        "get_benchmark": "repro.programs",
        "pretty": "repro.lang",
    }
    if name in lazy:
        module = import_module(lazy[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
