"""Exact rational-number helpers used throughout the polyhedra substrate.

The double description method and the Farkas encodings are carried out over
``fractions.Fraction`` so that generator computations are exact; floats only
appear at the solver boundary.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, List, Sequence, Union

Number = Union[int, float, str, Fraction]


def as_fraction(x: Number) -> Fraction:
    """Convert ``x`` to an exact :class:`Fraction`.

    Floats are converted via ``Fraction(str(x))`` when that round-trips the
    repr (so ``0.1`` becomes ``1/10`` rather than the binary expansion), and
    exactly otherwise.  Strings like ``"3/4"`` are accepted.
    """
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, str):
        return Fraction(x)
    if isinstance(x, float):
        if x != x or x in (float("inf"), float("-inf")):
            raise ValueError(f"cannot convert non-finite float {x!r} to Fraction")
        try:
            candidate = Fraction(str(x))
        except ValueError:
            return Fraction(x)
        return candidate if float(candidate) == x else Fraction(x)
    raise TypeError(f"cannot interpret {type(x).__name__} as a rational number")


def fraction_gcd(values: Iterable[Fraction]) -> Fraction:
    """Positive gcd of a collection of fractions (0 if all are zero).

    ``gcd(a/b, c/d) = gcd(a·d, c·b) / (b·d)`` reduced; used to put generator
    rays into a canonical scale.
    """
    result = Fraction(0)
    for v in values:
        v = abs(v)
        if v == 0:
            continue
        if result == 0:
            result = v
        else:
            num = gcd(result.numerator * v.denominator, v.numerator * result.denominator)
            den = result.denominator * v.denominator
            result = Fraction(num, den)
    return result


def normalize_row(row: Sequence[Fraction]) -> List[Fraction]:
    """Scale a rational vector by the reciprocal of its gcd.

    The result has integer entries with gcd 1 and the same direction (the
    leading sign is preserved).  The zero vector is returned unchanged.
    """
    g = fraction_gcd(row)
    if g == 0:
        return list(row)
    return [v / g for v in row]


def is_integral(x: Fraction) -> bool:
    """True iff ``x`` is an integer."""
    return x.denominator == 1
