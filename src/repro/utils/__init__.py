"""Small shared utilities: exact rational helpers and stable log-space math."""

from repro.utils.numbers import (
    as_fraction,
    fraction_gcd,
    normalize_row,
    is_integral,
)
from repro.utils.logspace import log_sum_exp, log1mexp, log_diff_exp

__all__ = [
    "as_fraction",
    "fraction_gcd",
    "normalize_row",
    "is_integral",
    "log_sum_exp",
    "log1mexp",
    "log_diff_exp",
]
