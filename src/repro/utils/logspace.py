"""Numerically stable log-space primitives.

The exponential templates synthesized by the paper routinely have exponents
like ``-3230`` (Table 1, 3DWalk), far outside double range once
exponentiated.  All bound arithmetic in this library therefore happens in
log-space; these helpers are the stable building blocks.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

NEG_INF = float("-inf")


def log_sum_exp(values: Iterable[float]) -> float:
    """``log(sum(exp(v) for v in values))`` computed stably.

    Returns ``-inf`` for an empty collection (the empty sum).
    """
    vals = [v for v in values]
    if not vals:
        return NEG_INF
    m = max(vals)
    if m == NEG_INF:
        return NEG_INF
    if math.isinf(m):
        return m
    total = sum(math.exp(v - m) for v in vals)
    return m + math.log(total)


def weighted_log_sum_exp(pairs: Sequence[Tuple[float, float]]) -> float:
    """``log(sum(w * exp(v)))`` for ``(log_w_free := w > 0)`` weights.

    ``pairs`` holds ``(weight, exponent)`` with nonnegative weights; zero
    weights are skipped.
    """
    terms = [math.log(w) + v for (w, v) in pairs if w > 0.0]
    return log_sum_exp(terms)


def log1mexp(x: float) -> float:
    """``log(1 - exp(x))`` for ``x < 0``, stable near both endpoints."""
    if x >= 0.0:
        raise ValueError("log1mexp requires x < 0")
    # Mächler's trick: switch formulas at log(1/2).
    if x > -math.log(2.0):
        return math.log(-math.expm1(x))
    return math.log1p(-math.exp(x))


def log_diff_exp(a: float, b: float) -> float:
    """``log(exp(a) - exp(b))`` for ``a > b``, stable."""
    if a <= b:
        raise ValueError("log_diff_exp requires a > b")
    return a + log1mexp(b - a)


def format_log_bound(log_value: float) -> str:
    """Render ``exp(log_value)`` as a human-readable probability string.

    Values representable as doubles print in scientific notation; smaller
    values print as ``10^k`` with a mantissa, mirroring the paper's
    ``1e-655``-style entries.
    """
    if log_value == NEG_INF:
        return "0"
    if log_value >= 0.0:
        return "1" if log_value == 0.0 else f"exp({log_value:.3f})"
    log10 = log_value / math.log(10.0)
    if log10 > -300:
        return f"{math.exp(log_value):.3e}"
    exponent = math.floor(log10)
    mantissa = 10.0 ** (log10 - exponent)
    return f"{mantissa:.2f}e{exponent:+d}"
