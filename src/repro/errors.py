"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class.  Each subclass corresponds to one failure domain
(modeling, solving, synthesis, verification).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A PTS, program, or invariant is malformed or violates an assumption."""


class ParseError(ReproError):
    """The probabilistic-program source text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class CompileError(ReproError):
    """The AST could not be compiled to a PTS."""


class NotAffineError(ModelError):
    """An expression/guard/update is not affine but an algorithm requires it."""


class UnboundedSupportError(ModelError):
    """A distribution has unbounded support where bounded support is required
    (e.g. RepRSM condition (C4) needs bounded differences)."""


class SolverError(ReproError):
    """An LP/convex solve failed unexpectedly."""


class InfeasibleError(SolverError):
    """The constraint system admits no solution (synthesis returned 'no')."""


class SynthesisError(ReproError):
    """A synthesis algorithm could not produce a certificate."""


class VerificationError(ReproError):
    """A synthesized certificate failed independent re-verification."""


class EngineError(ReproError):
    """The analysis engine was given an invalid task graph (unknown
    algorithm, duplicate task ids, dependency cycle, missing dependency)."""


class TaskError(EngineError):
    """A task could not be executed for infrastructure reasons — a worker
    process died mid-task, or the worker service vanished.  Distinct from a
    synthesis failure, which is recorded as a ``status="error"`` result.
    Infrastructure failures are retryable (see
    :class:`~repro.engine.engine.RetryPolicy`); synthesis failures are
    deterministic and fail fast."""


class TaskTimeoutError(TaskError):
    """A task exceeded its wall-clock deadline (``AnalysisTask.timeout`` or
    the engine default).  Classified as infrastructure — a deadline says
    nothing about whether the computation would eventually have produced a
    certificate — so it is retryable like a dead worker."""
