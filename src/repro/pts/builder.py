"""Fluent programmatic construction of PTSs.

The language compiler produces PTSs through this builder; library users can
also use it directly when they prefer code over surface syntax (all paper
benchmarks in :mod:`repro.programs` are written against the builder API).

Example — the tortoise-hare race of Figure 1::

    from repro.pts import PTSBuilder
    from repro.polyhedra import var

    b = PTSBuilder(["x", "y"], init={"x": 40, "y": 0}, name="race")
    loop = [b.le(var("x"), 99), b.le(var("y"), 99)]
    b.transition(
        "head",
        guard=loop,
        forks=[
            ("head", "1/2", {"x": var("x") + 1, "y": var("y") + 2}),
            ("head", "1/2", {"x": var("x") + 1}),
        ],
    )
    b.transition("head", guard=[b.ge(var("x"), 100)], forks=[("__term__", 1, {})])
    b.transition(
        "head",
        guard=[b.le(var("x"), 99), b.ge(var("y"), 100)],
        forks=[("__fail__", 1, {})],
    )
    pts = b.build(init_location="head")

Integer-lattice note: keep initial values, guard/update coefficients and
discrete-distribution atoms integral (ints, or Fractions with denominator
1) when the model allows it — the built PTS then classifies as
integer-lattice (:meth:`repro.pts.PTS.integrality`) and ground-truth
value iteration explores it on the int64 frontier fast path, several
times faster than the exact Fraction interning BFS.  Fork *probabilities*
may be arbitrary rationals; they never enter a state vector.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.errors import ModelError
from repro.polyhedra.constraints import AffineIneq, Polyhedron
from repro.polyhedra.linexpr import LinExpr
from repro.pts.distributions import Distribution
from repro.pts.model import FAIL, TERM, AffineUpdate, Fork, PTS, Transition
from repro.utils.numbers import Number

__all__ = ["PTSBuilder"]

ForkSpec = Tuple[str, Number, Mapping[str, Union[LinExpr, Number]]]


class PTSBuilder:
    """Accumulates transitions and builds an immutable :class:`PTS`."""

    def __init__(
        self,
        program_vars: Sequence[str],
        init: Mapping[str, Number],
        name: str = "pts",
    ):
        self.name = name
        self.program_vars = tuple(program_vars)
        self.init = dict(init)
        self._distributions: Dict[str, Distribution] = {}
        self._transitions: List[Transition] = []
        self.term_location = TERM
        self.fail_location = FAIL

    # -- constraint helpers ------------------------------------------------------
    @staticmethod
    def le(lhs, rhs) -> AffineIneq:
        """Guard atom ``lhs <= rhs``."""
        return AffineIneq.le(lhs, rhs)

    @staticmethod
    def ge(lhs, rhs) -> AffineIneq:
        """Guard atom ``lhs >= rhs``."""
        return AffineIneq.ge(lhs, rhs)

    @staticmethod
    def eq(lhs, rhs) -> Tuple[AffineIneq, AffineIneq]:
        """Guard atoms encoding ``lhs == rhs`` (expand with ``*``)."""
        return AffineIneq.eq_pair(lhs, rhs)

    # -- declarations --------------------------------------------------------------
    def sampling(self, name: str, distribution: Distribution) -> LinExpr:
        """Declare a sampling variable; returns it as an expression."""
        if name in self.program_vars:
            raise ModelError(f"{name!r} is already a program variable")
        self._distributions[name] = distribution
        return LinExpr.variable(name)

    def guard(self, atoms: Iterable[Union[AffineIneq, Tuple[AffineIneq, ...]]]) -> Polyhedron:
        """Build a guard polyhedron over the program variables."""
        flat: List[AffineIneq] = []
        for atom in atoms:
            if isinstance(atom, AffineIneq):
                flat.append(atom)
            else:
                flat.extend(atom)
        return Polyhedron(self.program_vars, flat)

    def transition(
        self,
        source: str,
        guard: Union[Polyhedron, Iterable[AffineIneq]],
        forks: Sequence[ForkSpec],
        name: str = "",
    ) -> "PTSBuilder":
        """Add a transition; ``forks`` are ``(dest, prob, {var: expr})``."""
        if not isinstance(guard, Polyhedron):
            guard = self.guard(guard)
        else:
            guard = guard.with_variables(self.program_vars)
        built = [
            Fork(dest, prob, AffineUpdate(update)) for dest, prob, update in forks
        ]
        self._transitions.append(Transition(source, guard, built, name=name))
        return self

    def goto(
        self,
        source: str,
        destination: str,
        guard: Union[Polyhedron, Iterable[AffineIneq]] = (),
        update: Mapping[str, Union[LinExpr, Number]] = (),
        name: str = "",
    ) -> "PTSBuilder":
        """Deterministic transition (single fork with probability 1)."""
        return self.transition(
            source, guard, [(destination, Fraction(1), dict(update))], name=name
        )

    # -- building ----------------------------------------------------------------------
    def build(self, init_location: str) -> PTS:
        """Produce the immutable PTS."""
        return PTS(
            program_vars=self.program_vars,
            init_location=init_location,
            init_valuation=self.init,
            transitions=self._transitions,
            distributions=self._distributions,
            term_location=self.term_location,
            fail_location=self.fail_location,
            name=self.name,
        )
