"""Well-formedness checks for PTSs beyond construction-time validation.

The paper assumes (Section 2, "Additional Assumption") that transition
guards out of each location are *mutually exclusive* and *complete*.  Exact
completeness of a union of polyhedra is expensive to decide in general; we
check exclusivity exactly up to boundaries (full-dimensional overlap is
detected via an interior LP probe) and completeness statistically on sampled
valuations, which catches every compiler bug we care about in practice.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Mapping, Optional, Tuple

from repro.errors import ModelError
from repro.polyhedra.constraints import AffineIneq, Polyhedron
from repro.pts.model import PTS

__all__ = ["ValidationReport", "check_exclusivity", "check_completeness", "validate_pts"]


@dataclass
class ValidationReport:
    """Outcome of PTS validation."""

    exclusive: bool = True
    complete: bool = True
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.exclusive and self.complete and not self.problems

    def raise_if_bad(self) -> None:
        if not self.ok:
            raise ModelError("PTS validation failed:\n  " + "\n  ".join(self.problems))


def _has_full_dimensional_overlap(a: Polyhedron, b: Polyhedron, gap: Fraction) -> bool:
    """True iff ``a ∩ b`` still contains a point after shrinking every
    inequality by ``gap`` — i.e. the overlap is not just a shared boundary."""
    merged = a.intersect(b)
    shrunk = Polyhedron(
        merged.variables,
        [AffineIneq(i.expr + gap) for i in merged.inequalities],
    )
    return not shrunk.is_empty()


def check_exclusivity(pts: PTS, gap: Fraction = Fraction(1, 1000)) -> List[str]:
    """Detect pairs of same-source transitions with overlapping guards.

    Overlap confined to guard boundaries (the compiler's closed-complement
    convention) is tolerated; interior overlap is reported.
    """
    problems = []
    for loc in pts.interior_locations:
        ts = pts.transitions_from(loc)
        for i in range(len(ts)):
            for j in range(i + 1, len(ts)):
                if _has_full_dimensional_overlap(ts[i].guard, ts[j].guard, gap):
                    problems.append(
                        f"location {loc!r}: guards of {ts[i].name!r} and "
                        f"{ts[j].name!r} overlap on an interior region"
                    )
    return problems


def check_completeness(
    pts: PTS,
    region: Optional[Mapping[str, Tuple[float, float]]] = None,
    samples: int = 200,
    seed: int = 0,
    max_steps: int = 400,
) -> List[str]:
    """Statistically check completeness on *reachable* states.

    The paper's completeness assumption quantifies over all real valuations,
    but integer-stepped programs (all paper benchmarks) legitimately leave
    guard gaps between grid points; what simulation and value iteration need
    is completeness on the reachable set ``S``.  We therefore follow
    ``samples`` random trajectories from the initial state and report any
    reached interior state with no enabled transition.  Locations with no
    outgoing transitions at all are always reported.  ``region`` is accepted
    for API compatibility and ignored.
    """
    del region  # reachability-based check needs no sampling box
    rng = random.Random(seed)
    problems = []
    for loc in pts.interior_locations:
        if not pts.transitions_from(loc):
            problems.append(f"location {loc!r} has no outgoing transitions")
    if problems:
        return problems
    sampling = sorted(pts.distributions)
    for _ in range(samples):
        location = pts.init_location
        valuation = {k: float(v) for k, v in pts.init_valuation.items()}
        for _ in range(max_steps):
            if pts.is_sink(location):
                break
            transition = pts.enabled_transition(location, valuation)
            if transition is None:
                problems.append(
                    f"location {location!r}: no guard enabled at reachable valuation "
                    f"{ {k: round(x, 3) for k, x in valuation.items()} }"
                )
                return problems
            u = rng.random()
            acc = 0.0
            fork = transition.forks[-1]
            for f in transition.forks:
                acc += float(f.probability)
                if u <= acc:
                    fork = f
                    break
            draws = {r: pts.distributions[r].sample(rng) for r in sampling}
            valuation = fork.update.apply_float(valuation, draws)
            location = fork.destination
    return problems


def validate_pts(
    pts: PTS,
    region: Optional[Mapping[str, Tuple[float, float]]] = None,
    check_complete: bool = True,
) -> ValidationReport:
    """Full validation: construction invariants already hold; adds guard
    exclusivity and (optionally) statistical completeness."""
    report = ValidationReport()
    excl = check_exclusivity(pts)
    if excl:
        report.exclusive = False
        report.problems.extend(excl)
    if check_complete:
        comp = check_completeness(pts, region)
        if comp:
            report.complete = False
            report.problems.extend(comp)
    return report
