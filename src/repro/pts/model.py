"""Probabilistic transition systems (Section 2 of the paper).

A PTS is a tuple ``(V, R, D, L, T, l_init, v_init, l_term, l_fail)``:
program variables, sampling variables with distributions, locations, guarded
probabilistic transitions, an initial state and two distinguished sink
locations — ``l_term`` for normal termination and ``l_fail`` for assertion
violation.  The quantity of interest (QAVA) is::

    vpf(l, v) = Pr[ reach l_fail | start in (l, v) ]

All guards are conjunctions of affine inequalities (:class:`Polyhedron`) and
all updates are affine maps ``upd(v, r) = Q v + R r + e`` — the *affine PTS*
class for which the paper's algorithms are sound/complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.polyhedra.constraints import Polyhedron
from repro.polyhedra.linexpr import LinExpr
from repro.pts.distributions import Distribution
from repro.utils.numbers import Number, as_fraction

__all__ = [
    "TERM",
    "FAIL",
    "AffineUpdate",
    "Fork",
    "Transition",
    "PTS",
    "IntegralityReport",
]

#: canonical names of the two sink locations
TERM = "__term__"
FAIL = "__fail__"


@dataclass(frozen=True)
class IntegralityReport:
    """Whether a PTS lives on the integer lattice, and why not if it doesn't.

    A PTS is *integer-lattice* when every quantity that enters a reachable
    state is an integer: the initial valuation, every guard coefficient and
    constant, every update coefficient and constant, and every atom value of
    every (discrete) sampling distribution.  On such systems the reachable
    fragment is a subset of ``Z^|V|`` and state exploration can run on
    machine integers (see the int64 frontier fast path in
    :mod:`repro.core.fixpoint`) with decisions provably identical to the
    exact :class:`~fractions.Fraction` semantics.

    Fork *probabilities* are deliberately exempt: they weight transitions
    but never enter a state vector.
    """

    integral: bool
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.integral


class AffineUpdate:
    """An affine update function ``upd(v, r) = Q v + R r + e``.

    Stored as a mapping from each *updated* program variable to an affine
    :class:`LinExpr` over program and sampling variables; unmentioned
    variables keep their value (identity rows of ``Q``).
    """

    __slots__ = ("assignments",)

    def __init__(self, assignments: Mapping[str, LinExpr] = ()):  # type: ignore[assignment]
        items = dict(assignments) if isinstance(assignments, Mapping) else dict(assignments)
        self.assignments: Dict[str, LinExpr] = {
            name: LinExpr.coerce(expr) for name, expr in items.items()
        }

    @staticmethod
    def identity() -> "AffineUpdate":
        """The update that leaves every variable unchanged."""
        return AffineUpdate({})

    def expr_for(self, variable: str) -> LinExpr:
        """The post-expression of ``variable`` (its own value if unmentioned)."""
        return self.assignments.get(variable, LinExpr.variable(variable))

    def apply(
        self,
        valuation: Mapping[str, Fraction],
        samples: Mapping[str, Fraction] = (),
    ) -> Dict[str, Fraction]:
        """Exact simultaneous application (tuple-assignment semantics)."""
        env: Dict[str, Fraction] = dict(valuation)
        if samples:
            env.update(samples)
        return {
            name: self.expr_for(name).evaluate(env) for name in valuation
        }

    def apply_float(
        self,
        valuation: Mapping[str, float],
        samples: Mapping[str, float] = (),
    ) -> Dict[str, float]:
        """Float application (simulation hot path)."""
        env: Dict[str, float] = dict(valuation)
        if samples:
            env.update(samples)
        return {
            name: self.expr_for(name).evaluate_float(env) for name in valuation
        }

    def matrices(
        self, program_vars: Sequence[str], sampling_vars: Sequence[str]
    ) -> Tuple[List[List[Fraction]], List[List[Fraction]], List[Fraction]]:
        """``(Q, R, e)`` with row order = ``program_vars``."""
        q: List[List[Fraction]] = []
        r: List[List[Fraction]] = []
        e: List[Fraction] = []
        for v in program_vars:
            expr = self.expr_for(v)
            q.append([expr.coeff(u) for u in program_vars])
            r.append([expr.coeff(u) for u in sampling_vars])
            e.append(expr.const)
        return q, r, e

    def sampling_variables(self) -> Tuple[str, ...]:
        """Sampling variables referenced by this update (computed later by
        the owning PTS, which knows which names are sampling variables)."""
        names = set()
        for expr in self.assignments.values():
            names.update(expr.variables())
        return tuple(sorted(names))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineUpdate):
            return NotImplemented
        return self.assignments == other.assignments

    def __repr__(self) -> str:
        if not self.assignments:
            return "AffineUpdate(identity)"
        inner = ", ".join(f"{k} := {v}" for k, v in sorted(self.assignments.items()))
        return f"AffineUpdate({inner})"


@dataclass(frozen=True)
class Fork:
    """One probabilistic branch of a transition: ``(destination, p, update)``."""

    destination: str
    probability: Fraction
    update: AffineUpdate

    def __init__(self, destination: str, probability: Number, update: Optional[AffineUpdate] = None):
        object.__setattr__(self, "destination", destination)
        object.__setattr__(self, "probability", as_fraction(probability))
        object.__setattr__(self, "update", update if update is not None else AffineUpdate.identity())
        if not 0 < self.probability <= 1:
            raise ModelError(f"fork probability {self.probability} outside (0, 1]")


@dataclass(frozen=True)
class Transition:
    """A guarded probabilistic transition out of ``source``."""

    source: str
    guard: Polyhedron
    forks: Tuple[Fork, ...]
    name: str = ""

    def __init__(self, source: str, guard: Polyhedron, forks: Iterable[Fork], name: str = ""):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "guard", guard)
        object.__setattr__(self, "forks", tuple(forks))
        object.__setattr__(self, "name", name or source)
        total = sum((f.probability for f in self.forks), Fraction(0))
        if total != 1:
            raise ModelError(
                f"transition {self.name!r}: fork probabilities sum to {total}, not 1"
            )


class PTS:
    """A probabilistic transition system (immutable after construction)."""

    def __init__(
        self,
        program_vars: Sequence[str],
        init_location: str,
        init_valuation: Mapping[str, Number],
        transitions: Iterable[Transition],
        distributions: Mapping[str, Distribution] = (),
        term_location: str = TERM,
        fail_location: str = FAIL,
        name: str = "pts",
    ):
        self.name = name
        self.program_vars: Tuple[str, ...] = tuple(program_vars)
        self.term_location = term_location
        self.fail_location = fail_location
        self.init_location = init_location
        missing_init = set(self.program_vars) - set(init_valuation)
        if missing_init:
            raise ModelError(f"initial valuation missing variables {sorted(missing_init)}")
        self.init_valuation: Dict[str, Fraction] = {
            v: as_fraction(init_valuation[v]) for v in self.program_vars
        }
        self.distributions: Dict[str, Distribution] = dict(distributions)
        self.transitions: Tuple[Transition, ...] = tuple(transitions)
        self._by_source: Dict[str, List[Transition]] = {}
        for t in self.transitions:
            self._by_source.setdefault(t.source, []).append(t)
        self.locations: Tuple[str, ...] = self._collect_locations()
        self._validate()
        self._integrality: Optional[IntegralityReport] = None

    # -- construction-time validation -------------------------------------------
    def _collect_locations(self) -> Tuple[str, ...]:
        names = {self.init_location, self.term_location, self.fail_location}
        for t in self.transitions:
            names.add(t.source)
            for f in t.forks:
                names.add(f.destination)
        return tuple(sorted(names))

    def _validate(self) -> None:
        overlap = set(self.program_vars) & set(self.distributions)
        if overlap:
            raise ModelError(f"names used as both program and sampling variables: {sorted(overlap)}")
        if len(set(self.program_vars)) != len(self.program_vars):
            raise ModelError("duplicate program variables")
        if self.term_location == self.fail_location:
            raise ModelError("terminal and failure locations must differ")
        missing = set(self.program_vars) - set(self.init_valuation)
        if missing:
            raise ModelError(f"initial valuation missing variables {sorted(missing)}")
        allowed = set(self.program_vars) | set(self.distributions)
        for t in self.transitions:
            if t.source in (self.term_location, self.fail_location):
                raise ModelError(f"transition out of sink location {t.source!r}")
            bad_guard = set(v for i in t.guard.inequalities for v in i.variables()) - set(self.program_vars)
            if bad_guard:
                raise ModelError(
                    f"transition {t.name!r}: guard uses non-program variables {sorted(bad_guard)}"
                )
            for f in t.forks:
                for target, expr in f.update.assignments.items():
                    if target not in self.program_vars:
                        raise ModelError(
                            f"transition {t.name!r}: update assigns unknown variable {target!r}"
                        )
                    bad = set(expr.variables()) - allowed
                    if bad:
                        raise ModelError(
                            f"transition {t.name!r}: update for {target!r} uses "
                            f"undeclared variables {sorted(bad)}"
                        )

    # -- queries ---------------------------------------------------------------------
    @property
    def sampling_vars(self) -> Tuple[str, ...]:
        return tuple(sorted(self.distributions))

    @property
    def interior_locations(self) -> Tuple[str, ...]:
        """All locations except the two sinks."""
        return tuple(
            l for l in self.locations if l not in (self.term_location, self.fail_location)
        )

    def transitions_from(self, location: str) -> List[Transition]:
        return list(self._by_source.get(location, []))

    def enabled_transition(
        self, location: str, valuation: Mapping[str, float], tol: float = 1e-9
    ) -> Optional[Transition]:
        """The first transition whose guard holds at ``valuation``.

        Well-formed PTSs have mutually exclusive guards up to measure-zero
        boundary overlap (see the compiler's complement convention), so "the
        first match" is canonical.
        """
        for t in self._by_source.get(location, []):
            if t.guard.contains_float(valuation, tol):
                return t
        return None

    def initial_state(self) -> Tuple[str, Dict[str, Fraction]]:
        return self.init_location, dict(self.init_valuation)

    def is_sink(self, location: str) -> bool:
        return location in (self.term_location, self.fail_location)

    def is_affine(self) -> bool:
        """Affine by construction; kept for interface symmetry."""
        return True

    def integrality(self) -> IntegralityReport:
        """Classify this PTS as integer-lattice or not (cached).

        The report is the admission check of the int64 exploration fast
        path: when it is negative, exploration must stay on the exact
        Fraction representation.  Magnitude limits (values that would
        overflow ``int64``) are a property of a *run*, not of the system,
        so they are checked by the explorer itself, not here.
        """
        if self._integrality is None:
            self._integrality = self._analyze_integrality()
        return self._integrality

    def _analyze_integrality(self) -> IntegralityReport:
        def fractional(value: Fraction) -> bool:
            return value.denominator != 1

        for v, value in self.init_valuation.items():
            if fractional(value):
                return IntegralityReport(False, f"init {v} = {value} is not integral")
        for r, dist in self.distributions.items():
            atoms = dist.atoms()
            if atoms is None:
                return IntegralityReport(False, f"sampling variable {r!r} is continuous")
            for _, value in atoms:
                if fractional(value):
                    return IntegralityReport(
                        False, f"atom {value} of {r!r} is not integral"
                    )
        for t in self.transitions:
            for ineq in t.guard.inequalities:
                expr = ineq.expr
                if fractional(expr.const) or any(
                    fractional(c) for _, c in expr.iter_coeffs()
                ):
                    return IntegralityReport(
                        False,
                        f"guard of {t.name!r} has non-integral coefficients",
                    )
            for f in t.forks:
                for target, expr in f.update.assignments.items():
                    if fractional(expr.const) or any(
                        fractional(c) for _, c in expr.iter_coeffs()
                    ):
                        return IntegralityReport(
                            False,
                            f"update of {target!r} in {t.name!r} is not integral",
                        )
        return IntegralityReport(True)

    def max_fork_count(self) -> int:
        return max((len(t.forks) for t in self.transitions), default=0)

    def pretty(self) -> str:
        """A readable multi-line rendering of the whole system."""
        lines = [f"PTS {self.name!r}"]
        lines.append(f"  program vars : {', '.join(self.program_vars)}")
        if self.distributions:
            lines.append("  sampling vars:")
            for r, d in sorted(self.distributions.items()):
                lines.append(f"    {r} ~ {d!r}")
        init = ", ".join(f"{v}={self.init_valuation[v]}" for v in self.program_vars)
        lines.append(f"  init         : {self.init_location} [{init}]")
        lines.append(f"  sinks        : term={self.term_location} fail={self.fail_location}")
        for t in self.transitions:
            guard = " and ".join(str(i) for i in t.guard.inequalities) or "true"
            lines.append(f"  {t.source}: when {guard}")
            for f in t.forks:
                lines.append(f"    -> {f.destination} w.p. {f.probability} {f.update!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PTS({self.name!r}, |V|={len(self.program_vars)}, "
            f"|L|={len(self.locations)}, |T|={len(self.transitions)})"
        )
