"""Probabilistic transition systems (Section 2 of the paper).

A PTS is a tuple ``(V, R, D, L, T, l_init, v_init, l_term, l_fail)``:
program variables, sampling variables with distributions, locations, guarded
probabilistic transitions, an initial state and two distinguished sink
locations — ``l_term`` for normal termination and ``l_fail`` for assertion
violation.  The quantity of interest (QAVA) is::

    vpf(l, v) = Pr[ reach l_fail | start in (l, v) ]

All guards are conjunctions of affine inequalities (:class:`Polyhedron`) and
all updates are affine maps ``upd(v, r) = Q v + R r + e`` — the *affine PTS*
class for which the paper's algorithms are sound/complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd, lcm
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.polyhedra.constraints import Polyhedron
from repro.polyhedra.linexpr import LinExpr
from repro.pts.distributions import Distribution
from repro.utils.numbers import Number, as_fraction

__all__ = [
    "TERM",
    "FAIL",
    "AffineUpdate",
    "Fork",
    "Transition",
    "PTS",
    "IntegralityReport",
]

#: canonical names of the two sink locations
TERM = "__term__"
FAIL = "__fail__"

#: hard cap on any per-variable fixed-point denominator of the scaled
#: lattice (see :meth:`PTS.integrality`): the guard-gap argument of the
#: scaled int64 explorer needs ``1/scale`` to stay orders of magnitude
#: above the reference engine's 1e-9 float guard tolerance
_SCALE_LIMIT = 10**6

#: bound on the divisibility-propagation passes of the scaled-lattice
#: analysis — a safety net only: contractive update coefficients (like
#: ``x := x/2``) grow some denominator geometrically and trip the
#: ``_SCALE_LIMIT`` cap within a few passes, long before this budget
_SCALE_PASSES = 64


@dataclass(frozen=True)
class IntegralityReport:
    """Lattice-admission report: does a PTS live on the integer lattice,
    and if not, on which *scaled* (fixed-point) lattice?

    A PTS is *integer-lattice* (``integral``) when every quantity that
    enters a reachable state is an integer: the initial valuation, every
    guard coefficient and constant, every update coefficient and constant,
    and every atom value of every (discrete) sampling distribution.  On
    such systems the reachable fragment is a subset of ``Z^|V|`` and state
    exploration can run on machine integers (see the int64 frontier fast
    path in :mod:`repro.core.fixpoint`) with decisions provably identical
    to the exact :class:`~fractions.Fraction` semantics.

    When the system is *not* integral, ``scale`` reports the per-variable
    denominator LCMs ``s_v`` of a fixed-point lattice: every reachable
    value of variable ``v`` is an integer multiple of ``1/s_v``, so
    exploration can run on the rescaled integers ``s_v * v`` (the
    ``"scaled-int64"`` engine) and descale emitted states back to the
    exact representation.  ``scale`` is ``None`` — with ``scale_reason``
    naming the witness — when no such lattice exists: continuous sampling,
    contractive update coefficients (``x := x/2`` refines the lattice
    forever), or denominators beyond the 10^6 cap.  For integral systems
    ``scale`` is all ones.

    Fork *probabilities* are deliberately exempt throughout: they weight
    transitions but never enter a state vector.  Engine magnitude limits
    (values that would overflow ``int64``) are a property of a *run*, not
    of the system, and are checked by the explorer, not here.
    """

    integral: bool
    reason: str = ""
    #: per-``program_vars`` fixed-point denominators, or ``None`` when the
    #: system admits no finite scaled lattice
    scale: Optional[Tuple[int, ...]] = None
    #: why ``scale`` is ``None`` (empty otherwise)
    scale_reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.integral

    @property
    def max_scale(self) -> int:
        """The coarsest single denominator covering every variable (1 when
        no scaled lattice exists)."""
        if not self.scale:
            return 1
        return lcm(*self.scale)


class AffineUpdate:
    """An affine update function ``upd(v, r) = Q v + R r + e``.

    Stored as a mapping from each *updated* program variable to an affine
    :class:`LinExpr` over program and sampling variables; unmentioned
    variables keep their value (identity rows of ``Q``).
    """

    __slots__ = ("assignments",)

    def __init__(self, assignments: Mapping[str, LinExpr] = ()):  # type: ignore[assignment]
        items = dict(assignments) if isinstance(assignments, Mapping) else dict(assignments)
        self.assignments: Dict[str, LinExpr] = {
            name: LinExpr.coerce(expr) for name, expr in items.items()
        }

    @staticmethod
    def identity() -> "AffineUpdate":
        """The update that leaves every variable unchanged."""
        return AffineUpdate({})

    def expr_for(self, variable: str) -> LinExpr:
        """The post-expression of ``variable`` (its own value if unmentioned)."""
        return self.assignments.get(variable, LinExpr.variable(variable))

    def apply(
        self,
        valuation: Mapping[str, Fraction],
        samples: Mapping[str, Fraction] = (),
    ) -> Dict[str, Fraction]:
        """Exact simultaneous application (tuple-assignment semantics)."""
        env: Dict[str, Fraction] = dict(valuation)
        if samples:
            env.update(samples)
        return {
            name: self.expr_for(name).evaluate(env) for name in valuation
        }

    def apply_float(
        self,
        valuation: Mapping[str, float],
        samples: Mapping[str, float] = (),
    ) -> Dict[str, float]:
        """Float application (simulation hot path)."""
        env: Dict[str, float] = dict(valuation)
        if samples:
            env.update(samples)
        return {
            name: self.expr_for(name).evaluate_float(env) for name in valuation
        }

    def matrices(
        self, program_vars: Sequence[str], sampling_vars: Sequence[str]
    ) -> Tuple[List[List[Fraction]], List[List[Fraction]], List[Fraction]]:
        """``(Q, R, e)`` with row order = ``program_vars``."""
        q: List[List[Fraction]] = []
        r: List[List[Fraction]] = []
        e: List[Fraction] = []
        for v in program_vars:
            expr = self.expr_for(v)
            q.append([expr.coeff(u) for u in program_vars])
            r.append([expr.coeff(u) for u in sampling_vars])
            e.append(expr.const)
        return q, r, e

    def sampling_variables(self) -> Tuple[str, ...]:
        """Sampling variables referenced by this update (computed later by
        the owning PTS, which knows which names are sampling variables)."""
        names = set()
        for expr in self.assignments.values():
            names.update(expr.variables())
        return tuple(sorted(names))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineUpdate):
            return NotImplemented
        return self.assignments == other.assignments

    def __repr__(self) -> str:
        if not self.assignments:
            return "AffineUpdate(identity)"
        inner = ", ".join(f"{k} := {v}" for k, v in sorted(self.assignments.items()))
        return f"AffineUpdate({inner})"


@dataclass(frozen=True)
class Fork:
    """One probabilistic branch of a transition: ``(destination, p, update)``."""

    destination: str
    probability: Fraction
    update: AffineUpdate

    def __init__(self, destination: str, probability: Number, update: Optional[AffineUpdate] = None):
        object.__setattr__(self, "destination", destination)
        object.__setattr__(self, "probability", as_fraction(probability))
        object.__setattr__(self, "update", update if update is not None else AffineUpdate.identity())
        if not 0 < self.probability <= 1:
            raise ModelError(f"fork probability {self.probability} outside (0, 1]")


@dataclass(frozen=True)
class Transition:
    """A guarded probabilistic transition out of ``source``."""

    source: str
    guard: Polyhedron
    forks: Tuple[Fork, ...]
    name: str = ""

    def __init__(self, source: str, guard: Polyhedron, forks: Iterable[Fork], name: str = ""):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "guard", guard)
        object.__setattr__(self, "forks", tuple(forks))
        object.__setattr__(self, "name", name or source)
        total = sum((f.probability for f in self.forks), Fraction(0))
        if total != 1:
            raise ModelError(
                f"transition {self.name!r}: fork probabilities sum to {total}, not 1"
            )


class PTS:
    """A probabilistic transition system (immutable after construction)."""

    def __init__(
        self,
        program_vars: Sequence[str],
        init_location: str,
        init_valuation: Mapping[str, Number],
        transitions: Iterable[Transition],
        distributions: Mapping[str, Distribution] = (),
        term_location: str = TERM,
        fail_location: str = FAIL,
        name: str = "pts",
    ):
        self.name = name
        self.program_vars: Tuple[str, ...] = tuple(program_vars)
        self.term_location = term_location
        self.fail_location = fail_location
        self.init_location = init_location
        missing_init = set(self.program_vars) - set(init_valuation)
        if missing_init:
            raise ModelError(f"initial valuation missing variables {sorted(missing_init)}")
        self.init_valuation: Dict[str, Fraction] = {
            v: as_fraction(init_valuation[v]) for v in self.program_vars
        }
        self.distributions: Dict[str, Distribution] = dict(distributions)
        self.transitions: Tuple[Transition, ...] = tuple(transitions)
        self._by_source: Dict[str, List[Transition]] = {}
        for t in self.transitions:
            self._by_source.setdefault(t.source, []).append(t)
        self.locations: Tuple[str, ...] = self._collect_locations()
        self._validate()
        #: (report, stamp ids, stamp refs) — see :meth:`integrality` for
        #: the immutability contract this cache leans on; dropped by
        #: ``__getstate__`` so copies recompute instead of false-alarming
        self._integrality: Optional[Tuple[IntegralityReport, Tuple, Tuple]] = None

    # -- construction-time validation -------------------------------------------
    def _collect_locations(self) -> Tuple[str, ...]:
        names = {self.init_location, self.term_location, self.fail_location}
        for t in self.transitions:
            names.add(t.source)
            for f in t.forks:
                names.add(f.destination)
        return tuple(sorted(names))

    def _validate(self) -> None:
        overlap = set(self.program_vars) & set(self.distributions)
        if overlap:
            raise ModelError(f"names used as both program and sampling variables: {sorted(overlap)}")
        if len(set(self.program_vars)) != len(self.program_vars):
            raise ModelError("duplicate program variables")
        if self.term_location == self.fail_location:
            raise ModelError("terminal and failure locations must differ")
        missing = set(self.program_vars) - set(self.init_valuation)
        if missing:
            raise ModelError(f"initial valuation missing variables {sorted(missing)}")
        allowed = set(self.program_vars) | set(self.distributions)
        for t in self.transitions:
            if t.source in (self.term_location, self.fail_location):
                raise ModelError(f"transition out of sink location {t.source!r}")
            bad_guard = set(v for i in t.guard.inequalities for v in i.variables()) - set(self.program_vars)
            if bad_guard:
                raise ModelError(
                    f"transition {t.name!r}: guard uses non-program variables {sorted(bad_guard)}"
                )
            for f in t.forks:
                for target, expr in f.update.assignments.items():
                    if target not in self.program_vars:
                        raise ModelError(
                            f"transition {t.name!r}: update assigns unknown variable {target!r}"
                        )
                    bad = set(expr.variables()) - allowed
                    if bad:
                        raise ModelError(
                            f"transition {t.name!r}: update for {target!r} uses "
                            f"undeclared variables {sorted(bad)}"
                        )

    # -- queries ---------------------------------------------------------------------
    @property
    def sampling_vars(self) -> Tuple[str, ...]:
        return tuple(sorted(self.distributions))

    @property
    def interior_locations(self) -> Tuple[str, ...]:
        """All locations except the two sinks."""
        return tuple(
            l for l in self.locations if l not in (self.term_location, self.fail_location)
        )

    def transitions_from(self, location: str) -> List[Transition]:
        return list(self._by_source.get(location, []))

    def enabled_transition(
        self, location: str, valuation: Mapping[str, float], tol: float = 1e-9
    ) -> Optional[Transition]:
        """The first transition whose guard holds at ``valuation``.

        Well-formed PTSs have mutually exclusive guards up to measure-zero
        boundary overlap (see the compiler's complement convention), so "the
        first match" is canonical.
        """
        for t in self._by_source.get(location, []):
            if t.guard.contains_float(valuation, tol):
                return t
        return None

    def initial_state(self) -> Tuple[str, Dict[str, Fraction]]:
        return self.init_location, dict(self.init_valuation)

    def is_sink(self, location: str) -> bool:
        return location in (self.term_location, self.fail_location)

    def is_affine(self) -> bool:
        """Affine by construction; kept for interface symmetry."""
        return True

    def _structure_stamp(self) -> Tuple[Tuple, Tuple]:
        """Cheap fingerprint of everything :meth:`integrality` reads.

        Returns ``(ids, refs)``: ``ids`` is an identity sweep over the
        transitions tuple, every guard inequality's expression, every
        update assignment binding and every distribution binding, plus
        the initial valuation *by value* — linear in the system size, no
        arithmetic — enough to catch any shallow mutation: rebinding
        ``transitions``, editing a guard's inequality list, swapping an
        update expression, replacing a distribution, changing an initial
        value.  ``refs`` holds the swept objects themselves; the cache
        keeps them alive so a swapped-in replacement can never reuse a
        stamped ``id`` (only ``ids`` is ever compared).  The one mutation
        class this cannot see is *inside* a :class:`LinExpr`, and that is
        excluded by the class's own immutability/interning contract.
        """
        guard_exprs = tuple(
            ineq.expr for t in self.transitions for ineq in t.guard.inequalities
        )
        update_bindings = tuple(
            (name, expr)
            for t in self.transitions
            for f in t.forks
            for name, expr in f.update.assignments.items()
        )
        dist_bindings = tuple(self.distributions.items())
        ids = (
            id(self.transitions),
            tuple(id(e) for e in guard_exprs),
            tuple((name, id(e)) for name, e in update_bindings),
            tuple((r, id(d)) for r, d in dist_bindings),
            tuple(self.init_valuation.items()),
            self.init_location,
        )
        refs = (self.transitions, guard_exprs, update_bindings, dist_bindings)
        return ids, refs

    def __getstate__(self):
        """Drop the integrality cache when pickling (and hence deepcopying):
        its stamp pins *object identities* of this instance, which a copy
        does not share — the copy recomputes the report lazily instead of
        tripping the mutation guard."""
        state = self.__dict__.copy()
        state["_integrality"] = None
        return state

    def integrality(self) -> IntegralityReport:
        """The lattice-admission report of this PTS (cached).

        The report is the admission check of the int64/scaled-int64
        exploration fast paths: ``integral`` admits the plain integer
        lattice, ``scale`` the fixed-point one, and a ``scale`` of ``None``
        pins exploration to the exact Fraction representation.  Magnitude
        limits (values that would overflow ``int64``) are a property of a
        *run*, not of the system, so they are checked by the explorer
        itself, not here.

        **Immutability contract**: PTS instances are immutable after
        construction (class docstring), so the report is computed once and
        cached on the instance with *no invalidation*.  Anything that
        mutates ``transitions``/``distributions``/``init_valuation`` in
        place would silently serve a stale admission report to the
        explorer — so every cache hit re-checks a cheap structural stamp
        and raises :class:`~repro.errors.ModelError` on mismatch instead.
        """
        if self._integrality is not None:
            report, ids, _refs = self._integrality
            if ids != self._structure_stamp()[0]:
                raise ModelError(
                    f"PTS {self.name!r} was mutated after its integrality "
                    "report was cached; PTS instances are immutable after "
                    "construction — build a new PTS instead"
                )
            return report
        report = self._analyze_integrality()
        ids, refs = self._structure_stamp()
        self._integrality = (report, ids, refs)
        return report

    def _analyze_integrality(self) -> IntegralityReport:
        def fractional(value: Fraction) -> bool:
            return value.denominator != 1

        def non_integral(reason: str) -> IntegralityReport:
            scale, scale_reason = self._analyze_scale()
            return IntegralityReport(False, reason, scale, scale_reason)

        for v, value in self.init_valuation.items():
            if fractional(value):
                return non_integral(f"init {v} = {value} is not integral")
        for r, dist in self.distributions.items():
            atoms = dist.atoms()
            if atoms is None:
                return non_integral(f"sampling variable {r!r} is continuous")
            for _, value in atoms:
                if fractional(value):
                    return non_integral(f"atom {value} of {r!r} is not integral")
        for t in self.transitions:
            for ineq in t.guard.inequalities:
                expr = ineq.expr
                if fractional(expr.const) or any(
                    fractional(c) for _, c in expr.iter_coeffs()
                ):
                    return non_integral(
                        f"guard of {t.name!r} has non-integral coefficients"
                    )
            for f in t.forks:
                for target, expr in f.update.assignments.items():
                    if fractional(expr.const) or any(
                        fractional(c) for _, c in expr.iter_coeffs()
                    ):
                        return non_integral(
                            f"update of {target!r} in {t.name!r} is not integral"
                        )
        return IntegralityReport(True, scale=(1,) * len(self.program_vars))

    def _analyze_scale(self) -> Tuple[Optional[Tuple[int, ...]], str]:
        """Per-variable denominator LCMs of the scaled (fixed-point) lattice.

        Base pass: ``s_v`` collects the denominator LCM of every quantity
        that directly lands in ``v`` — its initial value and the constants
        of updates assigning it (with sampling draws folded in atom by
        atom).  Propagation passes then enforce the update-coupling
        divisibility: ``v := ... + a * u + ...`` maps the ``1/s_u``
        lattice of ``u`` into ``v``, so ``s_v * a / s_u`` must be an
        integer.  Guards never refine the lattice — neither constants nor
        coefficients change a reachable value, and an inequality can
        always be cleared by a positive per-row multiplier, which the
        explorer picks — and fork probabilities never enter a state.
        Returns ``(None, reason)`` when sampling is continuous, a
        denominator exceeds ``10**6`` (contractive coefficients like
        ``x := x/2`` refine the lattice without bound and blow through the
        cap within a few passes), or propagation fails to stabilize within
        the pass budget.
        """
        scale: Dict[str, int] = {v: 1 for v in self.program_vars}

        for r, dist in self.distributions.items():
            if dist.atoms() is None:
                return None, f"sampling variable {r!r} is continuous"

        for v, value in self.init_valuation.items():
            scale[v] = lcm(scale[v], value.denominator)
        for t in self.transitions:
            for f in t.forks:
                for target, expr in f.update.assignments.items():
                    d = expr.const.denominator
                    for name, coeff in expr.iter_coeffs():
                        dist = self.distributions.get(name)
                        if dist is not None:
                            for _, atom in dist.atoms():
                                d = lcm(d, (coeff * atom).denominator)
                    scale[target] = lcm(scale[target], d)

        for _ in range(_SCALE_PASSES):
            worst = max(scale.values())
            if worst > _SCALE_LIMIT:
                witness = max(scale, key=scale.get)  # type: ignore[arg-type]
                return None, (
                    f"denominator LCM of {witness!r} exceeds the "
                    f"{_SCALE_LIMIT} fixed-point cap"
                )
            changed = False
            for t in self.transitions:
                for f in t.forks:
                    for target, expr in f.update.assignments.items():
                        for name, coeff in expr.iter_coeffs():
                            if name in self.distributions:
                                continue
                            # s_target * coeff / s_name must be integral
                            p, q = coeff.numerator, coeff.denominator
                            need = q * scale[name]
                            need //= gcd(abs(p), need)
                            merged = lcm(scale[target], need)
                            if merged != scale[target]:
                                scale[target] = merged
                                changed = True
            if not changed:
                return tuple(scale[v] for v in self.program_vars), ""
        return None, (
            f"per-variable denominators did not stabilize within "
            f"{_SCALE_PASSES} propagation passes"
        )

    def max_fork_count(self) -> int:
        return max((len(t.forks) for t in self.transitions), default=0)

    def pretty(self) -> str:
        """A readable multi-line rendering of the whole system."""
        lines = [f"PTS {self.name!r}"]
        lines.append(f"  program vars : {', '.join(self.program_vars)}")
        if self.distributions:
            lines.append("  sampling vars:")
            for r, d in sorted(self.distributions.items()):
                lines.append(f"    {r} ~ {d!r}")
        init = ", ".join(f"{v}={self.init_valuation[v]}" for v in self.program_vars)
        lines.append(f"  init         : {self.init_location} [{init}]")
        lines.append(f"  sinks        : term={self.term_location} fail={self.fail_location}")
        for t in self.transitions:
            guard = " and ".join(str(i) for i in t.guard.inequalities) or "true"
            lines.append(f"  {t.source}: when {guard}")
            for f in t.forks:
                lines.append(f"    -> {f.destination} w.p. {f.probability} {f.update!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PTS({self.name!r}, |V|={len(self.program_vars)}, "
            f"|L|={len(self.locations)}, |T|={len(self.transitions)})"
        )
