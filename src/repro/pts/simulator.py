"""Monte-Carlo simulation of PTS processes.

The simulator implements the semantics of Definition 1 (Appendix A) directly
and is the library's empirical cross-check: every synthesized upper bound
must dominate the simulated violation frequency (up to confidence-interval
slack) and every lower bound must not exceed it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ModelError
from repro.pts.model import PTS

__all__ = ["SimulationResult", "simulate", "simulate_violation_probability"]


@dataclass
class SimulationResult:
    """Aggregated outcome of a batch of simulated episodes."""

    episodes: int
    violations: int
    terminations: int
    censored: int  # episodes cut off at max_steps before reaching a sink
    total_steps: int

    @property
    def violation_rate(self) -> float:
        """Point estimate of the assertion violation probability."""
        return self.violations / self.episodes if self.episodes else 0.0

    @property
    def termination_rate(self) -> float:
        return self.terminations / self.episodes if self.episodes else 0.0

    @property
    def mean_steps(self) -> float:
        return self.total_steps / self.episodes if self.episodes else 0.0

    def violation_interval(self, z: float = 3.29) -> Tuple[float, float]:
        """A (conservative) Wilson score interval for the violation rate.

        Censored episodes are counted as *potential* violations in the upper
        limit and as potential non-violations in the lower limit, so the
        interval stays valid even when some runs were cut off.  The default
        ``z = 3.29`` is a two-sided 99.9% interval.
        """
        n = self.episodes
        if n == 0:
            return 0.0, 1.0
        lo = _wilson(self.violations, n, z)[0]
        hi = _wilson(self.violations + self.censored, n, z)[1]
        return lo, hi


def _wilson(successes: int, n: int, z: float) -> Tuple[float, float]:
    p = successes / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2 * n)) / denom
    margin = z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom
    return max(0.0, center - margin), min(1.0, center + margin)


def simulate(
    pts: PTS,
    episodes: int = 10_000,
    max_steps: int = 10_000,
    seed: Optional[int] = 0,
    init_valuation: Optional[Dict[str, float]] = None,
) -> SimulationResult:
    """Run ``episodes`` independent PTS processes.

    Each episode starts at the initial state (or ``init_valuation`` when
    given), follows the unique enabled transition, picks a fork according to
    the fork probabilities, samples all sampling variables independently and
    applies the affine update — exactly the inductive step of the paper's
    PTS process.  Episodes that reach neither sink within ``max_steps`` are
    reported as censored.
    """
    rng = random.Random(seed)
    start = (
        {k: float(v) for k, v in pts.init_valuation.items()}
        if init_valuation is None
        else dict(init_valuation)
    )
    sampling = sorted(pts.distributions)
    violations = terminations = censored = total_steps = 0

    for _ in range(episodes):
        location = pts.init_location
        valuation = dict(start)
        steps = 0
        while steps < max_steps and not pts.is_sink(location):
            transition = pts.enabled_transition(location, valuation)
            if transition is None:
                raise ModelError(
                    f"no enabled transition at {location!r} with valuation {valuation} "
                    "(incomplete guard cover)"
                )
            u = rng.random()
            acc = 0.0
            fork = transition.forks[-1]
            for f in transition.forks:
                acc += float(f.probability)
                if u <= acc:
                    fork = f
                    break
            samples = {r: pts.distributions[r].sample(rng) for r in sampling}
            valuation = fork.update.apply_float(valuation, samples)
            location = fork.destination
            steps += 1
        total_steps += steps
        if location == pts.fail_location:
            violations += 1
        elif location == pts.term_location:
            terminations += 1
        else:
            censored += 1

    return SimulationResult(
        episodes=episodes,
        violations=violations,
        terminations=terminations,
        censored=censored,
        total_steps=total_steps,
    )


def simulate_violation_probability(
    pts: PTS,
    episodes: int = 10_000,
    max_steps: int = 10_000,
    seed: Optional[int] = 0,
) -> float:
    """Convenience wrapper returning just the violation-rate point estimate."""
    return simulate(pts, episodes=episodes, max_steps=max_steps, seed=seed).violation_rate
