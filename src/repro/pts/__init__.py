"""Probabilistic transition systems: model, distributions, simulation."""

from repro.pts.model import TERM, FAIL, AffineUpdate, Fork, Transition, PTS
from repro.pts.distributions import (
    Distribution,
    PointMass,
    DiscreteDistribution,
    UniformDistribution,
    NormalDistribution,
    bernoulli,
)
from repro.pts.builder import PTSBuilder
from repro.pts.simulator import (
    SimulationResult,
    simulate,
    simulate_violation_probability,
)
from repro.pts.validate import (
    ValidationReport,
    check_exclusivity,
    check_completeness,
    validate_pts,
)

__all__ = [
    "TERM",
    "FAIL",
    "AffineUpdate",
    "Fork",
    "Transition",
    "PTS",
    "Distribution",
    "PointMass",
    "DiscreteDistribution",
    "UniformDistribution",
    "NormalDistribution",
    "bernoulli",
    "PTSBuilder",
    "SimulationResult",
    "simulate",
    "simulate_violation_probability",
    "ValidationReport",
    "check_exclusivity",
    "check_completeness",
    "validate_pts",
]
