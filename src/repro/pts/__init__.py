"""Probabilistic transition systems: model, distributions, simulation.

This is the modelling layer of the stack (see ``docs/ARCHITECTURE.md``):
it owns the paper's semantic object — the :class:`PTS` with its guarded
probabilistic transitions and affine updates — plus the fluent
:class:`PTSBuilder` DSL, the sampling :class:`Distribution` hierarchy, a
Monte-Carlo :func:`simulate` loop and structural validation.

Layer contract: ``pts`` depends only on the exact-arithmetic substrate
(``repro.polyhedra``, ``repro.utils``) and knows nothing about surface
syntax (``repro.lang`` compiles *into* this layer) or about the synthesis
algorithms above it.  A :class:`PTS` is immutable after construction;
derived metadata such as :meth:`PTS.integrality` (the lattice-admission
report — integer-lattice classification plus per-variable fixed-point
denominators — consumed by the fixpoint engine's int64/scaled-int64
exploration fast paths) is cached on the instance, with a cheap
structural stamp re-checked on every hit so rebinding or shallow in-place
mutation cannot serve a stale report (deep mutation inside a
:class:`~repro.polyhedra.linexpr.LinExpr` is excluded by that class's own
immutability contract).
"""

from repro.pts.model import (
    TERM,
    FAIL,
    AffineUpdate,
    Fork,
    IntegralityReport,
    Transition,
    PTS,
)
from repro.pts.distributions import (
    Distribution,
    PointMass,
    DiscreteDistribution,
    UniformDistribution,
    NormalDistribution,
    bernoulli,
)
from repro.pts.builder import PTSBuilder
from repro.pts.simulator import (
    SimulationResult,
    simulate,
    simulate_violation_probability,
)
from repro.pts.validate import (
    ValidationReport,
    check_exclusivity,
    check_completeness,
    validate_pts,
)

__all__ = [
    "TERM",
    "FAIL",
    "AffineUpdate",
    "Fork",
    "Transition",
    "PTS",
    "IntegralityReport",
    "Distribution",
    "PointMass",
    "DiscreteDistribution",
    "UniformDistribution",
    "NormalDistribution",
    "bernoulli",
    "PTSBuilder",
    "SimulationResult",
    "simulate",
    "simulate_violation_probability",
    "ValidationReport",
    "check_exclusivity",
    "check_completeness",
    "validate_pts",
]
