"""Probability distributions for sampling variables.

Each sampling variable ``r`` of a PTS carries a distribution ``D(r)``.  The
synthesis algorithms need more than sampling:

* **support bounds** — condition (C4) of RepRSMs requires bounded
  differences, so :meth:`Distribution.support` must be finite for the
  Hoeffding path;
* **mean** — Jensen's inequality (Step 4 of ExpLowSyn) replaces
  ``E[exp(g·r)]`` by ``exp(g·E[r])``;
* **log-MGF** ``log E[exp(t·r)]`` and its derivative — the canonical
  constraints of ExpLinSyn contain ``E[exp(gamma_j · r)]`` which the paper
  expands in closed form (Section 5.2, "Generality").  Discrete
  distributions additionally expose their atoms so the canonical constraint
  can be flattened into a plain sum of exponentials of affine functions.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.errors import ModelError, UnboundedSupportError
from repro.utils.numbers import Number, as_fraction

__all__ = [
    "Distribution",
    "PointMass",
    "DiscreteDistribution",
    "UniformDistribution",
    "NormalDistribution",
    "bernoulli",
]


class Distribution:
    """Abstract distribution interface for sampling variables."""

    def sample(self, rng: random.Random) -> float:
        """Draw one sample."""
        raise NotImplementedError

    def mean(self) -> Fraction:
        """The exact expectation ``E[r]``."""
        raise NotImplementedError

    def support(self) -> Tuple[Optional[Fraction], Optional[Fraction]]:
        """Closed support bounds ``(lo, hi)``; ``None`` means unbounded."""
        raise NotImplementedError

    def bounded_support(self) -> Tuple[Fraction, Fraction]:
        """Support bounds, raising :class:`UnboundedSupportError` if infinite."""
        lo, hi = self.support()
        if lo is None or hi is None:
            raise UnboundedSupportError(
                f"{self!r} has unbounded support; RepRSM condition (C4) "
                "requires bounded differences"
            )
        return lo, hi

    def log_mgf(self, t: float) -> float:
        """``log E[exp(t * r)]``."""
        raise NotImplementedError

    def d_log_mgf(self, t: float) -> float:
        """Derivative of :meth:`log_mgf` at ``t`` (for solver gradients)."""
        raise NotImplementedError

    def atoms(self) -> Optional[List[Tuple[Fraction, Fraction]]]:
        """``[(probability, value)]`` for discrete distributions, else ``None``.

        When available, ExpLinSyn expands ``E[exp(g·r)]`` into the exact sum
        ``sum(p_k * exp(g * v_k))`` and all constraints become log-sum-exp of
        affine functions — the best-conditioned form for the convex solver.
        """
        return None


@dataclass(frozen=True)
class PointMass(Distribution):
    """The degenerate distribution concentrated at ``value``."""

    value: Fraction

    def __init__(self, value: Number):
        object.__setattr__(self, "value", as_fraction(value))

    def sample(self, rng: random.Random) -> float:
        return float(self.value)

    def mean(self) -> Fraction:
        return self.value

    def support(self):
        return self.value, self.value

    def log_mgf(self, t: float) -> float:
        return t * float(self.value)

    def d_log_mgf(self, t: float) -> float:
        return float(self.value)

    def atoms(self):
        return [(Fraction(1), self.value)]


class DiscreteDistribution(Distribution):
    """A finite discrete distribution given by ``[(probability, value)]``."""

    def __init__(self, weighted_values: Sequence[Tuple[Number, Number]]):
        if not weighted_values:
            raise ModelError("discrete distribution needs at least one atom")
        pairs = [(as_fraction(p), as_fraction(v)) for p, v in weighted_values]
        total = sum(p for p, _ in pairs)
        if total != 1:
            raise ModelError(f"discrete distribution probabilities sum to {total}, not 1")
        if any(p <= 0 for p, _ in pairs):
            raise ModelError("discrete distribution probabilities must be positive")
        merged = {}
        for p, v in pairs:
            merged[v] = merged.get(v, Fraction(0)) + p
        self._atoms: List[Tuple[Fraction, Fraction]] = sorted(
            ((p, v) for v, p in merged.items()), key=lambda pv: pv[1]
        )
        self._cumulative: List[float] = []
        acc = 0.0
        for p, _ in self._atoms:
            acc += float(p)
            self._cumulative.append(acc)

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        for cum, (_, v) in zip(self._cumulative, self._atoms):
            if u <= cum:
                return float(v)
        return float(self._atoms[-1][1])

    def mean(self) -> Fraction:
        return sum((p * v for p, v in self._atoms), Fraction(0))

    def support(self):
        return self._atoms[0][1], self._atoms[-1][1]

    def log_mgf(self, t: float) -> float:
        from repro.utils.logspace import log_sum_exp

        return log_sum_exp(
            [math.log(float(p)) + t * float(v) for p, v in self._atoms]
        )

    def d_log_mgf(self, t: float) -> float:
        # softmax-weighted mean of the atom values
        logs = [math.log(float(p)) + t * float(v) for p, v in self._atoms]
        m = max(logs)
        weights = [math.exp(l - m) for l in logs]
        total = sum(weights)
        return sum(w * float(v) for w, (_, v) in zip(weights, self._atoms)) / total

    def atoms(self):
        return list(self._atoms)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}:{p}" for p, v in self._atoms)
        return f"DiscreteDistribution({inner})"


def bernoulli(p: Number, hi: Number = 1, lo: Number = 0) -> DiscreteDistribution:
    """``hi`` with probability ``p``, else ``lo``."""
    p = as_fraction(p)
    return DiscreteDistribution([(p, hi), (1 - p, lo)])


@dataclass(frozen=True)
class UniformDistribution(Distribution):
    """Continuous uniform distribution on ``[lo, hi]``.

    The closed-form MGF is the one the paper quotes in Section 5.2:
    ``E[exp(t r)] = (exp(t hi) - exp(t lo)) / (t (hi - lo))``.
    """

    lo: Fraction
    hi: Fraction

    def __init__(self, lo: Number, hi: Number):
        lo_f, hi_f = as_fraction(lo), as_fraction(hi)
        if not lo_f < hi_f:
            raise ModelError(f"uniform distribution needs lo < hi, got [{lo_f}, {hi_f}]")
        object.__setattr__(self, "lo", lo_f)
        object.__setattr__(self, "hi", hi_f)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(float(self.lo), float(self.hi))

    def mean(self) -> Fraction:
        return (self.lo + self.hi) / 2

    def support(self):
        return self.lo, self.hi

    def _variance(self) -> float:
        width = float(self.hi - self.lo)
        return width * width / 12.0

    def log_mgf(self, t: float) -> float:
        lo, hi = float(self.lo), float(self.hi)
        width = hi - lo
        u = t * width
        if abs(u) < 1e-6:
            # second-order expansion around t = 0 avoids 0/0
            return t * (lo + hi) / 2.0 + t * t * self._variance() / 2.0
        if abs(u) > 30.0:
            # asymptotically (e^|u| - 1)/|u| ~ e^|u| / |u| (rel. err < 1e-13)
            return (t * hi if u > 0 else t * lo) - math.log(abs(u))
        # log((e^{t hi} - e^{t lo}) / (t (hi-lo))) = t lo + log((e^u - 1)/u)
        if u > 0:
            return t * lo + math.log(math.expm1(u) / u)
        return t * hi + math.log(math.expm1(-u) / (-u))

    def d_log_mgf(self, t: float) -> float:
        lo, hi = float(self.lo), float(self.hi)
        u = t * (hi - lo)
        if abs(u) < 1e-6:
            return (lo + hi) / 2.0 + t * self._variance()
        if abs(u) > 30.0:
            return (hi if u > 0 else lo) - 1.0 / t
        # d/dt [t lo + log((e^u - 1)/u)] with u = t (hi - lo)
        w = hi - lo
        g = w * (math.exp(u) / math.expm1(u)) - 1.0 / t
        return lo + g

    def __repr__(self) -> str:
        return f"UniformDistribution[{self.lo}, {self.hi}]"


@dataclass(frozen=True)
class NormalDistribution(Distribution):
    """Gaussian distribution — unbounded support.

    Usable by ExpLinSyn/ExpLowSyn (its MGF ``exp(t mu + t^2 sigma^2 / 2)`` is
    log-convex and smooth) but rejected by the Hoeffding path, which needs
    bounded differences.
    """

    mu: Fraction
    sigma: Fraction

    def __init__(self, mu: Number, sigma: Number):
        sigma_f = as_fraction(sigma)
        if sigma_f <= 0:
            raise ModelError("normal distribution needs sigma > 0")
        object.__setattr__(self, "mu", as_fraction(mu))
        object.__setattr__(self, "sigma", sigma_f)

    def sample(self, rng: random.Random) -> float:
        return rng.gauss(float(self.mu), float(self.sigma))

    def mean(self) -> Fraction:
        return self.mu

    def support(self):
        return None, None

    def log_mgf(self, t: float) -> float:
        s = float(self.sigma)
        return t * float(self.mu) + 0.5 * t * t * s * s

    def d_log_mgf(self, t: float) -> float:
        s = float(self.sigma)
        return float(self.mu) + t * s * s

    def __repr__(self) -> str:
        return f"NormalDistribution(mu={self.mu}, sigma={self.sigma})"
