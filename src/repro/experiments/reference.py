"""Paper-reported numbers for Tables 1 and 2 (reference data).

Bounds are stored in ``log10`` because several entries (``1e-655``,
``1e-3230``) are far below double-precision range.  Helper accessors
return natural-log values consistent with the rest of the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["PaperRow", "TABLE1", "TABLE2", "log10_to_ln", "ln_to_log10"]

LN10 = math.log(10.0)


def log10_to_ln(v: Optional[float]) -> Optional[float]:
    return None if v is None else v * LN10


def ln_to_log10(v: Optional[float]) -> Optional[float]:
    return None if v is None else v / LN10


def _l10(mantissa: float, exponent: int) -> float:
    """log10 of ``mantissa * 10^exponent``."""
    return math.log10(mantissa) + exponent


@dataclass(frozen=True)
class PaperRow:
    """One row of Table 1 (upper bounds) or Table 2 (lower bounds).

    All bound fields are log10 of the reported probability (``None`` when
    the paper reports "No result" / "Not applicable").
    """

    family: str
    benchmark: str
    param_label: str
    sec51_log10: Optional[float] = None  # Algorithm of Section 5.1
    sec52_log10: Optional[float] = None  # Algorithm of Section 5.2
    sec6_log10: Optional[float] = None  # Algorithm of Section 6 (Table 2)
    previous_log10: Optional[float] = None


TABLE1: Dict[Tuple[str, str], PaperRow] = {
    (row.benchmark, row.param_label): row
    for row in [
        # --- Deviation ------------------------------------------------------
        PaperRow("Deviation", "RdAdder", "d=25", _l10(7.54, -2), _l10(7.43, -2), None, _l10(8.00, -2)),
        PaperRow("Deviation", "RdAdder", "d=50", _l10(3.95, -5), _l10(3.54, -5), None, _l10(4.54, -5)),
        PaperRow("Deviation", "RdAdder", "d=75", _l10(1.44, -10), _l10(9.17, -11), None, _l10(1.69, -10)),
        PaperRow("Deviation", "Robot", "d=1.8", _l10(1.66, -1), _l10(9.64, -6), None, _l10(2.04, -5)),
        PaperRow("Deviation", "Robot", "d=2.0", _l10(6.81, -3), _l10(4.78, -7), None, _l10(1.62, -6)),
        PaperRow("Deviation", "Robot", "d=2.2", _l10(5.66, -5), _l10(1.51, -8), None, _l10(9.85, -8)),
        # --- Concentration --------------------------------------------------
        PaperRow("Concentration", "Coupon", "T>100", _l10(1.02, -1), _l10(7.01, -5), None, _l10(6.00, -3)),
        PaperRow("Concentration", "Coupon", "T>300", _l10(4.02, -5), _l10(7.44, -22), None, _l10(9.01, -10)),
        PaperRow("Concentration", "Coupon", "T>500", _l10(1.40, -8), _l10(4.01, -40), None, _l10(1.05, -16)),
        PaperRow("Concentration", "Prspeed", "T>150", _l10(5.42, -7), _l10(7.43, -23), None, _l10(5.00, -3)),
        PaperRow("Concentration", "Prspeed", "T>200", _l10(1.89, -10), _l10(8.03, -36), None, _l10(2.59, -5)),
        PaperRow("Concentration", "Prspeed", "T>250", _l10(5.65, -14), _l10(2.71, -49), None, _l10(9.17, -8)),
        PaperRow("Concentration", "Rdwalk", "T>400", _l10(1.85, -3), _l10(2.12, -7), None, _l10(3.18, -6)),
        PaperRow("Concentration", "Rdwalk", "T>500", _l10(1.43, -5), _l10(1.57, -12), None, _l10(1.40, -10)),
        PaperRow("Concentration", "Rdwalk", "T>600", _l10(5.47, -8), _l10(4.81, -18), None, _l10(2.68, -15)),
        # --- StoInv ----------------------------------------------------------
        PaperRow("StoInv", "1DWalk", "x=10", _l10(1.73, -64), _l10(7.82, -208), None, _l10(5.1, -5)),
        PaperRow("StoInv", "1DWalk", "x=50", _l10(6.77, -62), _l10(1.79, -199), None, _l10(1.0, -4)),
        PaperRow("StoInv", "1DWalk", "x=100", _l10(1.04, -58), _l10(5.03, -189), None, _l10(2.5, -4)),
        PaperRow("StoInv", "2DWalk", "(1000,10)", _l10(4.14, -73), _l10(1.0, -655), None, _l10(2.4, -11)),
        PaperRow("StoInv", "2DWalk", "(500,40)", _l10(6.43, -37), _l10(9.61, -278), None, _l10(5.5, -4)),
        PaperRow("StoInv", "2DWalk", "(400,50)", _l10(1.11, -29), _l10(1.02, -218), None, _l10(1.9, -2)),
        PaperRow("StoInv", "3DWalk", "(100,100,100)", _l10(4.83, -281), _l10(1.0, -3230), None, _l10(4.4, -17)),
        PaperRow("StoInv", "3DWalk", "(100,150,200)", _l10(6.66, -221), _l10(1.0, -2538), None, _l10(2.9, -9)),
        PaperRow("StoInv", "3DWalk", "(300,100,150)", _l10(7.86, -181), _l10(1.0, -2076), None, _l10(1.3, -7)),
        PaperRow("StoInv", "Race", "(40,0)", _l10(9.08, -4), _l10(1.52, -7), None, None),
        PaperRow("StoInv", "Race", "(35,0)", _l10(6.84, -3), _l10(2.16, -5), None, None),
        PaperRow("StoInv", "Race", "(45,0)", _l10(6.65, -5), _l10(8.65, -11), None, None),
    ]
}

TABLE2: Dict[Tuple[str, str], PaperRow] = {
    (row.benchmark, row.param_label): row
    for row in [
        PaperRow("Hardware", "M1DWalk", "p=1e-7", sec6_log10=math.log10(0.999984)),
        PaperRow("Hardware", "M1DWalk", "p=1e-5", sec6_log10=math.log10(0.998401)),
        PaperRow("Hardware", "M1DWalk", "p=1e-4", sec6_log10=math.log10(0.984126)),
        PaperRow("Hardware", "Newton", "p=5e-4", sec6_log10=math.log10(0.728492)),
        PaperRow("Hardware", "Newton", "p=1e-3", sec6_log10=math.log10(0.534989)),
        PaperRow("Hardware", "Newton", "p=1.5e-3", sec6_log10=math.log10(0.392823)),
        PaperRow(
            "Hardware",
            "Ref",
            "p=1e-7",
            sec6_log10=math.log10(0.998463),
            previous_log10=math.log10(0.994885),  # the better of [5] and [41]
        ),
        PaperRow("Hardware", "Ref", "p=1e-6", sec6_log10=math.log10(0.984738)),
        PaperRow("Hardware", "Ref", "p=1e-5", sec6_log10=math.log10(0.857443)),
    ]
}
