"""Regeneration of the appendix Tables 3/4/5 (symbolic bounds).

The paper's appendix reports, for every benchmark row, the synthesized
template in symbolic form — ``exp(8 * eps * (a . v + b))`` for the
Section 5.1 algorithm (Table 3), ``exp(a . v + b)`` for Section 5.2
(Table 4) and Section 6 (Table 5).  This module renders our synthesized
certificates the same way.

Every row is one engine task (``hoeffding``/``explinsyn``/``explowsyn``),
so ``--jobs N`` fans the whole appendix out over a process pool.  The
``hoeffding`` tasks hash identically to Table 1's and the ``explowsyn``
tasks to Table 2's, so a shared result cache replays those solves from a
previous numeric run; Table 4's ``explinsyn`` tasks run cold here (Table 1
warm-starts its sec5.2 tasks from the Hoeffding certificate, which is part
of the cache key), so they are recomputed rather than risk replaying a
differently-seeded solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import exp_lin_syn, exp_low_syn, hoeffding_synthesis
from repro.programs import get_benchmark
from repro.experiments.table1 import TABLE1_SPECS
from repro.experiments.table2 import TABLE2_SPECS

__all__ = ["SymbolicRow", "symbolic_row_51", "symbolic_row_52", "symbolic_row_6",
           "run_symbolic_tables", "format_symbolic"]


@dataclass
class SymbolicRow:
    benchmark: str
    param_label: str
    table: str  # "3" (sec 5.1), "4" (sec 5.2), "5" (sec 6)
    rendered: str
    error: str = ""


def _render_51(eps: float, eta_init: str) -> str:
    """Table 3 style: ``exp(8 * eps * (eta))`` at the initial location."""
    inner = eta_init[len("exp(") : -1]
    return f"exp(8 * {eps:.3g} * ({inner}))"


def symbolic_row_51(name: str, kwargs: Dict, label: str) -> SymbolicRow:
    """Table 3 row via the direct API (tests and one-off exploration)."""
    inst = get_benchmark(name, **kwargs)
    try:
        cert = hoeffding_synthesis(inst.pts, inst.invariants)
        eta = cert.reprsm.eta.render(inst.pts.init_location)
        return SymbolicRow(name, label, "3", _render_51(cert.reprsm.eps, eta))
    except Exception as exc:
        return SymbolicRow(name, label, "3", "", error=str(exc))


def symbolic_row_52(name: str, kwargs: Dict, label: str) -> SymbolicRow:
    """Table 4 style: the pre fixed-point exponent at the initial location."""
    inst = get_benchmark(name, **kwargs)
    try:
        cert = exp_lin_syn(inst.pts, inst.invariants)
        rendered = cert.state_function.render(inst.pts.init_location)
        return SymbolicRow(name, label, "4", rendered)
    except Exception as exc:
        return SymbolicRow(name, label, "4", "", error=str(exc))


def symbolic_row_6(name: str, kwargs: Dict, label: str) -> SymbolicRow:
    """Table 5 style: the post fixed-point exponent at the initial location."""
    inst = get_benchmark(name, **kwargs)
    try:
        cert = exp_low_syn(inst.pts, inst.invariants)
        rendered = cert.state_function.render(inst.pts.init_location)
        return SymbolicRow(name, label, "5", rendered)
    except Exception as exc:
        return SymbolicRow(name, label, "5", "", error=str(exc))


def _assemble(table: str, name: str, label: str, result) -> SymbolicRow:
    if not result.ok:
        return SymbolicRow(name, label, table, "", error=result.error)
    init = result.details.get("init_location", "")
    if table == "3":
        eta_init = result.details.get("reprsm_eta_init")
        if eta_init is None:
            return SymbolicRow(
                name, label, table, "",
                error="no RepRSM data (trivial or unreachable-failure certificate)",
            )
        return SymbolicRow(
            name, label, table, _render_51(result.details["reprsm_eps"], eta_init)
        )
    return SymbolicRow(name, label, table, result.template_renders[init])


def run_symbolic_tables(
    include_table3: bool = True,
    include_table4: bool = True,
    include_table5: bool = True,
    specs1: Optional[Sequence[Tuple[str, Dict, str]]] = None,
    specs2: Optional[Sequence[Tuple[str, Dict, str]]] = None,
    jobs: int = 1,
    engine=None,
) -> List[SymbolicRow]:
    """Render all requested symbolic tables through the analysis engine."""
    from repro.engine import AnalysisTask, ProgramSpec, engine_scope

    specs1 = list(specs1 if specs1 is not None else TABLE1_SPECS)
    specs2 = list(specs2 if specs2 is not None else TABLE2_SPECS)
    plan: List[Tuple[str, str, str, str]] = []  # (table, name, label, task_id)
    tasks = []
    for name, kwargs, label in specs1:
        spec = ProgramSpec.benchmark(name, **kwargs)
        if include_table3:
            task = AnalysisTask.make("hoeffding", spec, task_id=f"sym3/{name}/{label}")
            tasks.append(task)
            plan.append(("3", name, label, task.task_id))
        if include_table4:
            task = AnalysisTask.make("explinsyn", spec, task_id=f"sym4/{name}/{label}")
            tasks.append(task)
            plan.append(("4", name, label, task.task_id))
    if include_table5:
        for name, kwargs, label in specs2:
            spec = ProgramSpec.benchmark(name, **kwargs)
            task = AnalysisTask.make("explowsyn", spec, task_id=f"sym5/{name}/{label}")
            tasks.append(task)
            plan.append(("5", name, label, task.task_id))
    with engine_scope(engine, jobs=jobs) as eng:
        results = eng.run(tasks)
    return [
        _assemble(table, name, label, results[task_id])
        for table, name, label, task_id in plan
    ]


def format_symbolic(rows: Sequence[SymbolicRow]) -> str:
    lines = [f"{'tbl':<4} {'benchmark':<10} {'params':<14} symbolic bound"]
    lines.append("-" * 72)
    for r in rows:
        body = r.rendered if not r.error else f"(failed: {r.error})"
        lines.append(f"{r.table:<4} {r.benchmark:<10} {r.param_label:<14} {body}")
    return "\n".join(lines)
