"""Regeneration of the appendix Tables 3/4/5 (symbolic bounds).

The paper's appendix reports, for every benchmark row, the synthesized
template in symbolic form — ``exp(8 * eps * (a . v + b))`` for the
Section 5.1 algorithm (Table 3), ``exp(a . v + b)`` for Section 5.2
(Table 4) and Section 6 (Table 5).  This module renders our synthesized
certificates the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import exp_lin_syn, exp_low_syn, hoeffding_synthesis
from repro.programs import get_benchmark
from repro.experiments.table1 import TABLE1_SPECS
from repro.experiments.table2 import TABLE2_SPECS

__all__ = ["SymbolicRow", "symbolic_row_51", "symbolic_row_52", "symbolic_row_6",
           "run_symbolic_tables", "format_symbolic"]


@dataclass
class SymbolicRow:
    benchmark: str
    param_label: str
    table: str  # "3" (sec 5.1), "4" (sec 5.2), "5" (sec 6)
    rendered: str
    error: str = ""


def symbolic_row_51(name: str, kwargs: Dict, label: str) -> SymbolicRow:
    """Table 3 style: ``exp(8 * eps * (eta))`` at the initial location."""
    inst = get_benchmark(name, **kwargs)
    try:
        cert = hoeffding_synthesis(inst.pts, inst.invariants)
        eta = cert.reprsm.eta.render(inst.pts.init_location)
        inner = eta[len("exp(") : -1]
        rendered = f"exp(8 * {cert.reprsm.eps:.3g} * ({inner}))"
        return SymbolicRow(name, label, "3", rendered)
    except Exception as exc:
        return SymbolicRow(name, label, "3", "", error=str(exc))


def symbolic_row_52(name: str, kwargs: Dict, label: str) -> SymbolicRow:
    """Table 4 style: the pre fixed-point exponent at the initial location."""
    inst = get_benchmark(name, **kwargs)
    try:
        cert = exp_lin_syn(inst.pts, inst.invariants)
        rendered = cert.state_function.render(inst.pts.init_location)
        return SymbolicRow(name, label, "4", rendered)
    except Exception as exc:
        return SymbolicRow(name, label, "4", "", error=str(exc))


def symbolic_row_6(name: str, kwargs: Dict, label: str) -> SymbolicRow:
    """Table 5 style: the post fixed-point exponent at the initial location."""
    inst = get_benchmark(name, **kwargs)
    try:
        cert = exp_low_syn(inst.pts, inst.invariants)
        rendered = cert.state_function.render(inst.pts.init_location)
        return SymbolicRow(name, label, "5", rendered)
    except Exception as exc:
        return SymbolicRow(name, label, "5", "", error=str(exc))


def run_symbolic_tables(
    include_table3: bool = True,
    include_table4: bool = True,
    include_table5: bool = True,
    specs1: Optional[Sequence[Tuple[str, Dict, str]]] = None,
    specs2: Optional[Sequence[Tuple[str, Dict, str]]] = None,
) -> List[SymbolicRow]:
    """Render all requested symbolic tables."""
    rows: List[SymbolicRow] = []
    for name, kwargs, label in specs1 if specs1 is not None else TABLE1_SPECS:
        if include_table3:
            rows.append(symbolic_row_51(name, kwargs, label))
        if include_table4:
            rows.append(symbolic_row_52(name, kwargs, label))
    if include_table5:
        for name, kwargs, label in specs2 if specs2 is not None else TABLE2_SPECS:
            rows.append(symbolic_row_6(name, kwargs, label))
    return rows


def format_symbolic(rows: Sequence[SymbolicRow]) -> str:
    lines = [f"{'tbl':<4} {'benchmark':<10} {'params':<14} symbolic bound"]
    lines.append("-" * 72)
    for r in rows:
        body = r.rendered if not r.error else f"(failed: {r.error})"
        lines.append(f"{r.table:<4} {r.benchmark:<10} {r.param_label:<14} {body}")
    return "\n".join(lines)
