"""Regeneration of Table 2 (lower bounds via ExpLowSyn, Section 6).

Rows map one-to-one onto ``explowsyn`` engine tasks, so ``--jobs N`` fans
the nine hardware benchmarks out over a process pool; the assembled rows
(and the formatted table, timing column aside) are identical to a serial
run because each task is a pure function of its benchmark spec.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import exp_low_syn
from repro.programs import get_benchmark
from repro.experiments.reference import TABLE2, PaperRow

__all__ = ["Table2Row", "TABLE2_SPECS", "run_row2", "run_table2", "format_table2"]


@dataclass
class Table2Row:
    """One computed row of Table 2 (lower bounds as natural logs)."""

    family: str
    benchmark: str
    param_label: str
    sec6_ln: Optional[float] = None
    sec6_seconds: float = 0.0
    paper: Optional[PaperRow] = None
    error: str = ""

    @property
    def bound(self) -> Optional[float]:
        return None if self.sec6_ln is None else math.exp(self.sec6_ln)

    @property
    def failure_ratio_vs_paper(self) -> Optional[float]:
        """``(1 - paper) / (1 - ours)`` — the paper's Table 2 ratio style."""
        if self.paper is None or self.paper.sec6_log10 is None or self.bound is None:
            return None
        paper_bound = 10.0 ** self.paper.sec6_log10
        ours = self.bound
        if ours >= 1.0:
            return None
        return (1.0 - paper_bound) / (1.0 - ours)


TABLE2_SPECS: List[Tuple[str, Dict, str]] = [
    ("M1DWalk", dict(p="1e-7"), "p=1e-7"),
    ("M1DWalk", dict(p="1e-5"), "p=1e-5"),
    ("M1DWalk", dict(p="1e-4"), "p=1e-4"),
    ("Newton", dict(p="5e-4"), "p=5e-4"),
    ("Newton", dict(p="1e-3"), "p=1e-3"),
    ("Newton", dict(p="1.5e-3"), "p=1.5e-3"),
    ("Ref", dict(p="1e-7"), "p=1e-7"),
    ("Ref", dict(p="1e-6"), "p=1e-6"),
    ("Ref", dict(p="1e-5"), "p=1e-5"),
]


def run_row2(name: str, kwargs: Dict, param_label: str) -> Table2Row:
    """Compute one Table 2 row."""
    instance = get_benchmark(name, **kwargs)
    row = Table2Row(
        family=instance.family,
        benchmark=name,
        param_label=param_label,
        paper=TABLE2.get((name, param_label)),
    )
    start = time.perf_counter()
    try:
        cert = exp_low_syn(instance.pts, instance.invariants)
        row.sec6_ln = cert.log_bound
    except Exception as exc:
        row.error = str(exc)
    row.sec6_seconds = time.perf_counter() - start
    return row


def run_table2(
    jobs: int = 1,
    engine=None,
    specs: Optional[Sequence[Tuple[str, Dict, str]]] = None,
) -> List[Table2Row]:
    """Compute all (or ``specs``) Table 2 rows through the analysis engine."""
    from repro.engine import AnalysisTask, ProgramSpec, engine_scope

    specs = list(specs if specs is not None else TABLE2_SPECS)
    tasks = [
        AnalysisTask.make(
            "explowsyn",
            ProgramSpec.benchmark(name, **kwargs),
            task_id=f"t2/{name}/{label}",
        )
        for name, kwargs, label in specs
    ]
    with engine_scope(engine, jobs=jobs) as eng:
        results = eng.run(tasks)
    rows: List[Table2Row] = []
    for name, kwargs, label in specs:
        result = results[f"t2/{name}/{label}"]
        row = Table2Row(
            family="Hardware",
            benchmark=name,
            param_label=label,
            paper=TABLE2.get((name, label)),
            sec6_seconds=result.seconds,
        )
        if result.ok:
            row.sec6_ln = result.log_bound
        else:
            row.error = result.error
        rows.append(row)
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render computed rows next to the paper's numbers."""
    header = (
        f"{'benchmark':<10} {'params':<10} {'lower-bound':>12} "
        f"{'paper':>12} {'time(s)':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        paper_val = (
            "-"
            if r.paper is None or r.paper.sec6_log10 is None
            else f"{10.0 ** r.paper.sec6_log10:.6f}"
        )
        ours = "-" if r.bound is None else f"{r.bound:.6f}"
        lines.append(
            f"{r.benchmark:<10} {r.param_label:<10} {ours:>12} "
            f"{paper_val:>12} {r.sec6_seconds:>8.2f}"
            + (f"   ! {r.error}" if r.error else "")
        )
    return "\n".join(lines)
