"""Regeneration of Table 1 (upper bounds on assertion violation).

For every benchmark/parameter row the harness runs

* the Section 5.1 algorithm (``hoeffding_synthesis``),
* the Section 5.2 algorithm (``exp_lin_syn``), and
* the applicable previous-work baseline ([CS13] endpoint Hoeffding for
  Deviation, [CFNH18] RSM+Azuma for Concentration, [CNZ17] RepRSM+Azuma
  for StoInv),

and reports them next to the paper's published numbers
(:mod:`repro.experiments.reference`).

Each row decomposes into an analysis-engine task triple — ``hoeffding``,
``explinsyn`` (warm-started from the Hoeffding certificate, preserving the
row-wise completeness guarantee sec5.2 <= sec5.1) and ``table1_baseline`` —
so ``--jobs N`` fans out up to 3x27 tasks instead of 27 rows, and a shared
result cache serves identical tasks (e.g. the symbolic appendix tables)
without re-solving.  Dispatch is completion-driven: each ``explinsyn``
task starts the moment *its own* ``hoeffding`` producer finishes, so one
slow row (3DWalk's Hoeffding search, typically) no longer holds back
every other row's second stage the way the old wave barrier did.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import (
    azuma_baseline,
    cfnh18_best_bound,
    cs13_deviation_bound,
    exp_lin_syn,
    hoeffding_synthesis,
)
from repro.errors import SynthesisError
from repro.programs import BenchmarkInstance, get_benchmark
from repro.experiments.reference import TABLE1, PaperRow, ln_to_log10

__all__ = [
    "Table1Row",
    "TABLE1_SPECS",
    "run_row",
    "run_table1",
    "format_table1",
    "row_tasks",
    "synthesize_baseline",
]


@dataclass
class Table1Row:
    """One computed row of Table 1 (bounds as natural logs)."""

    family: str
    benchmark: str
    param_label: str
    sec51_ln: Optional[float] = None
    sec52_ln: Optional[float] = None
    baseline_ln: Optional[float] = None
    sec51_seconds: float = 0.0
    sec52_seconds: float = 0.0
    paper: Optional[PaperRow] = None
    error: str = ""

    @property
    def ratio_log10(self) -> Optional[float]:
        """log10(baseline / sec52) — the paper's "Ratio" column."""
        if self.baseline_ln is None or self.sec52_ln is None:
            return None
        return ln_to_log10(self.baseline_ln - self.sec52_ln)


def _deviation_baseline(name: str, params: Dict) -> float:
    if name == "RdAdder":
        return cs13_deviation_bound(500, float(params["deviation"]), 1.0)
    return cs13_deviation_bound(60, float(params["deviation"]), 0.1)


def _concentration_baseline(instance: BenchmarkInstance, params: Dict) -> float:
    return cfnh18_best_bound(instance.pts, instance.invariants, float(params["n"]))


def _stoinv_baseline(instance: BenchmarkInstance, params: Dict) -> float:
    return azuma_baseline(instance.pts, instance.invariants).log_bound


#: (benchmark name, factory kwargs, paper param label)
TABLE1_SPECS: List[Tuple[str, Dict, str]] = [
    ("RdAdder", dict(deviation=25), "d=25"),
    ("RdAdder", dict(deviation=50), "d=50"),
    ("RdAdder", dict(deviation=75), "d=75"),
    ("Robot", dict(deviation="1.8"), "d=1.8"),
    ("Robot", dict(deviation="2.0"), "d=2.0"),
    ("Robot", dict(deviation="2.2"), "d=2.2"),
    ("Coupon", dict(n=100), "T>100"),
    ("Coupon", dict(n=300), "T>300"),
    ("Coupon", dict(n=500), "T>500"),
    ("Prspeed", dict(n=150), "T>150"),
    ("Prspeed", dict(n=200), "T>200"),
    ("Prspeed", dict(n=250), "T>250"),
    ("Rdwalk", dict(n=400), "T>400"),
    ("Rdwalk", dict(n=500), "T>500"),
    ("Rdwalk", dict(n=600), "T>600"),
    ("1DWalk", dict(x0=10), "x=10"),
    ("1DWalk", dict(x0=50), "x=50"),
    ("1DWalk", dict(x0=100), "x=100"),
    ("2DWalk", dict(x0=1000, y0=10), "(1000,10)"),
    ("2DWalk", dict(x0=500, y0=40), "(500,40)"),
    ("2DWalk", dict(x0=400, y0=50), "(400,50)"),
    ("3DWalk", dict(x0=100, y0=100, z0=100), "(100,100,100)"),
    ("3DWalk", dict(x0=100, y0=150, z0=200), "(100,150,200)"),
    ("3DWalk", dict(x0=300, y0=100, z0=150), "(300,100,150)"),
    ("Race", dict(x0=40, y0=0), "(40,0)"),
    ("Race", dict(x0=35, y0=0), "(35,0)"),
    ("Race", dict(x0=45, y0=0), "(45,0)"),
]


def run_row(
    name: str,
    kwargs: Dict,
    param_label: str,
    with_hoeffding: bool = True,
    with_baseline: bool = True,
) -> Table1Row:
    """Compute one Table 1 row."""
    instance = get_benchmark(name, **kwargs)
    row = Table1Row(
        family=instance.family,
        benchmark=name,
        param_label=param_label,
        paper=TABLE1.get((name, param_label)),
    )
    cert51 = None
    if with_hoeffding:
        start = time.perf_counter()
        try:
            cert51 = hoeffding_synthesis(instance.pts, instance.invariants)
            row.sec51_ln = cert51.log_bound
        except Exception as exc:  # incomplete algorithm: record, don't crash
            row.error = f"sec5.1: {exc}"
        row.sec51_seconds = time.perf_counter() - start
    start = time.perf_counter()
    # a Hoeffding certificate is itself a pre fixed-point, so it seeds the
    # convex solve: completeness then guarantees sec5.2 <= sec5.1 row-wise
    warm = cert51.state_function if cert51 is not None else None
    cert52 = exp_lin_syn(instance.pts, instance.invariants, warm_start=warm)
    row.sec52_ln = cert52.log_bound
    row.sec52_seconds = time.perf_counter() - start
    if with_baseline:
        try:
            if instance.family == "Deviation":
                row.baseline_ln = _deviation_baseline(name, kwargs)
            elif instance.family == "Concentration":
                row.baseline_ln = _concentration_baseline(instance, kwargs)
            else:
                row.baseline_ln = _stoinv_baseline(instance, kwargs)
        except Exception as exc:
            row.error = (row.error + f" baseline: {exc}").strip()
    return row


def synthesize_baseline(task, deps=None, engine=None):
    """Engine entry point for ``table1_baseline`` tasks: the applicable
    previous-work bound for the task's benchmark family."""
    from repro.engine.task import CertificateResult

    kwargs = dict(task.program.params)
    start = time.perf_counter()
    try:
        instance = get_benchmark(task.program.name, **kwargs)
        if instance.family == "Deviation":
            ln = _deviation_baseline(task.program.name, kwargs)
        elif instance.family == "Concentration":
            ln = _concentration_baseline(instance, kwargs)
        else:
            ln = _stoinv_baseline(instance, kwargs)
    except Exception as exc:
        return CertificateResult.failure(task, exc, seconds=time.perf_counter() - start)
    return CertificateResult(
        algorithm=task.algorithm,
        status="ok",
        log_bound=float(ln),
        seconds=time.perf_counter() - start,
        solver_info=f"{instance.family} baseline",
    )


def row_tasks(
    name: str,
    kwargs: Dict,
    label: str,
    with_hoeffding: bool = True,
    with_baseline: bool = True,
) -> List:
    """The engine task triple of one Table 1 row (see module docstring)."""
    from repro.engine import AnalysisTask, ProgramSpec

    spec = ProgramSpec.benchmark(name, **kwargs)
    base = f"t1/{name}/{label}"
    tasks = []
    sec52_params: Dict[str, object] = {}
    if with_hoeffding:
        sec51 = AnalysisTask.make("hoeffding", spec, task_id=f"{base}/sec51")
        tasks.append(sec51)
        sec52_params["warm_start_from"] = f"{base}/sec51"
        # fingerprint the warm-start producer into the cache key: the
        # upstream result is a deterministic function of its own key, so
        # two sec52 tasks share a cached result only when their warm
        # starts are guaranteed equal
        sec52_params["warm_start_key"] = sec51.cache_key
    tasks.append(
        AnalysisTask.make(
            "explinsyn",
            spec,
            params=sec52_params,
            task_id=f"{base}/sec52",
            depends_on=(f"{base}/sec51",) if with_hoeffding else (),
        )
    )
    if with_baseline:
        tasks.append(
            AnalysisTask.make("table1_baseline", spec, task_id=f"{base}/baseline")
        )
    return tasks


def _assemble_row(
    name: str,
    kwargs: Dict,
    label: str,
    results,
    with_hoeffding: bool,
    with_baseline: bool,
) -> Table1Row:
    base = f"t1/{name}/{label}"
    family = TABLE1[(name, label)].family if (name, label) in TABLE1 else ""
    row = Table1Row(
        family=family,
        benchmark=name,
        param_label=label,
        paper=TABLE1.get((name, label)),
    )
    if with_hoeffding:
        sec51 = results[f"{base}/sec51"]
        row.sec51_seconds = sec51.seconds
        if sec51.ok:
            row.sec51_ln = sec51.log_bound
        else:
            row.error = f"sec5.1: {sec51.error}"
    sec52 = results[f"{base}/sec52"]
    if not sec52.ok:
        # parity with the direct pipeline, where exp_lin_syn failures
        # propagate instead of silently degrading the table
        raise SynthesisError(f"Table 1 row {name} {label}: {sec52.error}")
    row.sec52_ln = sec52.log_bound
    row.sec52_seconds = sec52.seconds
    # the engine resolves the benchmark inside the worker; recover the
    # family from it when the row has no paper reference
    if not row.family:
        row.family = get_benchmark(name, **kwargs).family
    if with_baseline:
        baseline = results[f"{base}/baseline"]
        if baseline.ok:
            row.baseline_ln = baseline.log_bound
        else:
            row.error = (row.error + f" baseline: {baseline.error}").strip()
    return row


def run_table1(
    families: Optional[Sequence[str]] = None,
    with_hoeffding: bool = True,
    with_baseline: bool = True,
    jobs: int = 1,
    engine=None,
) -> List[Table1Row]:
    """Compute all (or selected families of) Table 1 rows.

    Rows are decomposed into engine tasks (:func:`row_tasks`) and executed
    through ``engine`` — or a fresh one with ``jobs`` workers — so
    ``jobs > 1`` fans out every synthesis and baseline across the table
    while row order, warm starts and the formatted output stay exactly as
    in a serial run.
    """
    from repro.engine import engine_scope

    specs = [
        (name, kwargs, label)
        for name, kwargs, label in TABLE1_SPECS
        if families is None or TABLE1[(name, label)].family in families
    ]
    tasks = []
    for name, kwargs, label in specs:
        tasks.extend(row_tasks(name, kwargs, label, with_hoeffding, with_baseline))
    with engine_scope(engine, jobs=jobs) as eng:
        results = eng.run(tasks)
    return [
        _assemble_row(name, kwargs, label, results, with_hoeffding, with_baseline)
        for name, kwargs, label in specs
    ]


def _fmt(ln: Optional[float]) -> str:
    if ln is None:
        return "-"
    log10 = ln_to_log10(ln)
    if log10 is None or log10 > -1e-12:
        return "1"
    exp = math.floor(log10)
    mantissa = 10.0 ** (log10 - exp)
    if mantissa >= 9.995:  # would print as 10.00e-k
        mantissa /= 10.0
        exp += 1
    return f"{mantissa:.2f}e{exp:+04d}"


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render computed rows next to the paper's numbers."""
    header = (
        f"{'benchmark':<10} {'params':<14} "
        f"{'sec5.1':>11} {'paper':>11} {'sec5.2':>11} {'paper':>11} "
        f"{'baseline':>11} {'paper-prev':>11}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        paper = r.paper
        from repro.experiments.reference import log10_to_ln

        lines.append(
            f"{r.benchmark:<10} {r.param_label:<14} "
            f"{_fmt(r.sec51_ln):>11} "
            f"{_fmt(log10_to_ln(paper.sec51_log10) if paper else None):>11} "
            f"{_fmt(r.sec52_ln):>11} "
            f"{_fmt(log10_to_ln(paper.sec52_log10) if paper else None):>11} "
            f"{_fmt(r.baseline_ln):>11} "
            f"{_fmt(log10_to_ln(paper.previous_log10) if paper else None):>11}"
            + (f"   ! {r.error}" if r.error else "")
        )
    return "\n".join(lines)
