"""Command-line experiment runner.

Usage (installed package)::

    python -m repro.experiments.runner table1 [family ...]
    python -m repro.experiments.runner table2
    python -m repro.experiments.runner symbolic
    python -m repro.experiments.runner all

``table1`` accepts optional family filters (``Deviation``,
``Concentration``, ``StoInv``).  ``--jobs N`` fans the independent engine
tasks of *every* target — Table 1 triples, Table 2 rows, the symbolic
appendix — out over a process pool (``0`` = one worker per CPU, clamped to
the number of runnable tasks); dispatch is completion-driven, so a slow
Hoeffding task delays only its own row's downstream tasks, never the
whole table.  ``--workers [DIR]`` routes tasks to the persistent worker
service (``repro workers start``) so back-to-back invocations skip pool
startup; ``--cache [DIR]`` replays identical tasks from an on-disk result
cache across targets and runs.  Results print next to the paper-reported
numbers; absolute agreement is not expected (our substrate is a
from-scratch Python stack), but orderings and magnitudes should match —
see ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.symbolic_tables import format_symbolic, run_symbolic_tables

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__
    )
    parser.add_argument(
        "target",
        choices=["table1", "table2", "symbolic", "all"],
        help="which table(s) to regenerate",
    )
    parser.add_argument(
        "families",
        nargs="*",
        help="optional Table 1 family filter (Deviation/Concentration/StoInv)",
    )
    parser.add_argument(
        "--no-hoeffding",
        action="store_true",
        help="skip the Section 5.1 algorithm (the slowest column)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="skip previous-work baselines"
    )
    from repro.engine.args import add_engine_args, engine_from_args

    add_engine_args(
        parser,
        jobs_help="run engine tasks (synthesis runs, baselines) on up to N "
        "worker processes; 0 = one worker per CPU",
    )
    args = parser.parse_args(argv)

    from repro.errors import ReproError

    try:
        engine = engine_from_args(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    cache = engine.cache

    start = time.perf_counter()
    try:
        if args.target in ("table1", "all"):
            rows = run_table1(
                families=args.families or None,
                with_hoeffding=not args.no_hoeffding,
                with_baseline=not args.no_baseline,
                engine=engine,
            )
            print("\n== Table 1: upper bounds on assertion violation ==")
            print(format_table1(rows))
        if args.target in ("table2", "all"):
            rows2 = run_table2(engine=engine)
            print("\n== Table 2: lower bounds on assertion violation ==")
            print(format_table2(rows2))
        if args.target in ("symbolic", "all"):
            rows3 = run_symbolic_tables(engine=engine)
            print("\n== Tables 3-5: symbolic bounds ==")
            print(format_symbolic(rows3))
    finally:
        # a degraded run (retries, pool rebuilds, backend switches) still
        # prints identical tables, but never silently
        for line in engine.degradation.render():
            print(f"note: {line}", file=sys.stderr)
        engine.close()
    print(f"\ntotal {time.perf_counter() - start:.1f}s")
    if cache is not None:
        print(f"cache: {cache.hits} hit(s), {cache.stores} store(s) in {cache.directory}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
