"""Command-line experiment runner.

Usage (installed package)::

    python -m repro.experiments.runner table1 [family ...]
    python -m repro.experiments.runner table2
    python -m repro.experiments.runner symbolic
    python -m repro.experiments.runner all

``table1`` accepts optional family filters (``Deviation``,
``Concentration``, ``StoInv``) and ``--jobs N`` to fan independent rows
out over a process pool.  Results print next to the paper-reported
numbers; absolute agreement is not expected (our substrate is a
from-scratch Python stack), but orderings and magnitudes should match —
see ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.symbolic_tables import format_symbolic, run_symbolic_tables

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__
    )
    parser.add_argument(
        "target",
        choices=["table1", "table2", "symbolic", "all"],
        help="which table(s) to regenerate",
    )
    parser.add_argument(
        "families",
        nargs="*",
        help="optional Table 1 family filter (Deviation/Concentration/StoInv)",
    )
    parser.add_argument(
        "--no-hoeffding",
        action="store_true",
        help="skip the Section 5.1 algorithm (the slowest column)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="skip previous-work baselines"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run Table 1 rows on a pool of N worker processes (rows are "
        "independent benchmark families; 0 = one worker per CPU)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs
    if jobs == 0:
        import os

        jobs = os.cpu_count() or 1

    start = time.perf_counter()
    if args.target in ("table1", "all"):
        rows = run_table1(
            families=args.families or None,
            with_hoeffding=not args.no_hoeffding,
            with_baseline=not args.no_baseline,
            jobs=jobs,
        )
        print("\n== Table 1: upper bounds on assertion violation ==")
        print(format_table1(rows))
    if args.target in ("table2", "all"):
        rows2 = run_table2()
        print("\n== Table 2: lower bounds on assertion violation ==")
        print(format_table2(rows2))
    if args.target in ("symbolic", "all"):
        rows3 = run_symbolic_tables()
        print("\n== Tables 3-5: symbolic bounds ==")
        print(format_symbolic(rows3))
    print(f"\ntotal {time.perf_counter() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
