"""Shared fixpoint-benchmark workloads and the BENCH_fixpoint.json writer.

Both producers of the perf trajectory — the ``repro bench`` CLI subcommand
and ``benchmarks/bench_fixpoint.py`` — import the workload table and the
append helper from here, so the two entry points measure the same state
spaces and write the same schema (see ``PERFORMANCE.md``).
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FIXPOINT_WORKLOADS",
    "SLOW_MIXING_WORKLOADS",
    "SLOW_MIXING_ANALYTIC_VPF",
    "append_bench_run",
    "best_recorded_seconds",
    "best_recorded_sparse_seconds",
    "explore_timings",
]

#: name -> (source, default max_states, integer_mode): small /
#: iteration-heavy / state-heavy, covering both the dense and the CSR
#: engine paths, plus two 100k-state all-integer Table 1 shapes where the
#: int64 frontier explorer shows its headroom over the exact Fraction BFS,
#: and the three fractional Table 1 shapes the scaled-lattice (fixed-point
#: int64) admission opened up (see ``PERFORMANCE.md``).  ``integer_mode``
#: mirrors the program registry: fractional-step programs must keep their
#: strict guards un-tightened.
FIXPOINT_WORKLOADS: Dict[str, Tuple[str, int, bool]] = {
    "gambler": (
        "x := 3\nwhile x >= 1 and x <= 9:\n    switch:\n"
        "        prob(0.5): x := x + 1\n        prob(0.5): x := x - 1\n"
        "assert x <= 0",
        20_000,
        True,
    ),
    "gambler-200": (
        "x := 50\nwhile x >= 1 and x <= 199:\n    switch:\n"
        "        prob(0.5): x := x + 1\n        prob(0.5): x := x - 1\n"
        "assert x <= 0",
        20_000,
        True,
    ),
    # the slow-mixing gambler-N ladder: fair walks whose sweep counts grow
    # ~N^2 (76k sweeps at N=200, ~1.9M at N=1000), the regime the
    # solve-then-certify oracles target.  The assert fires on the *rich*
    # exit (x = N), so from x := N/4 the exact violation probability is
    # (N/4)/N = 1/4 — the analytic check the bench twin uses instead of
    # the (hours-slow at these sweep counts) pure-Python reference engine
    "gambler-500": (
        "x := 125\nwhile x >= 1 and x <= 499:\n    switch:\n"
        "        prob(0.5): x := x + 1\n        prob(0.5): x := x - 1\n"
        "assert x <= 0",
        20_000,
        True,
    ),
    "gambler-1000": (
        "x := 250\nwhile x >= 1 and x <= 999:\n    switch:\n"
        "        prob(0.5): x := x + 1\n        prob(0.5): x := x - 1\n"
        "assert x <= 0",
        20_000,
        True,
    ),
    "asym-walk": (
        "x := 0\nt := 0\nwhile x <= 19:\n    switch:\n"
        "        prob(0.75): x, t := x + 1, t + 1\n"
        "        prob(0.25): x, t := x - 1, t + 1\n"
        "assert t <= 60",
        20_000,
        True,
    ),
    # Table 1's asymmetric-walk shape scaled to a 100k-state exploration
    "asym-walk-100k": (
        "x := 0\nt := 0\nwhile x <= 60:\n    switch:\n"
        "        prob(0.75): x, t := x + 1, t + 1\n"
        "        prob(0.25): x, t := x - 1, t + 1\n"
        "assert t <= 600",
        100_000,
        True,
    ),
    # Table 1's RdAdder (500 fair-coin increments), truncated at 100k states
    "rdadder-100k": (
        "i := 0\nx := 0\nwhile i <= 499:\n    if prob(0.5):\n"
        "        i, x := i + 1, x + 1\n    else:\n        i := i + 1\n"
        "assert x <= 275",
        100_000,
        True,
    ),
    # Table 1's 3DWalk (repro.programs.stoinv.walk_3d defaults): 0.1-steps
    # put it on the scale-10 fixed-point lattice
    "3dwalk-100k": (
        "x := 100\ny := 100\nz := 100\n"
        "while x >= 0 and y >= 0 and z >= 0:\n"
        "    assert x + y + z <= 1000\n"
        "    if prob(0.9):\n        switch:\n"
        "            prob(0.5): x, y := x - 1, y - 1\n"
        "            prob(0.5): z := z - 1\n"
        "    else:\n        switch:\n"
        "            prob(0.5): x, y := x + 0.1, y + 0.1\n"
        "            prob(0.5): z := z + 0.1\n",
        100_000,
        False,
    ),
    # Table 1's Robot (repro.programs.deviation.robot defaults): 1.414
    # displacements and +-0.05 actuator noise, scale-500 lattice on x/ex
    "robot-100k": (
        "noise ~ discrete((0.5, -0.05), (0.5, 0.05))\n"
        "i := 0\nx := 0\nex := 0\n"
        "while i <= 59:\n    switch:\n"
        "        prob(0.2): i, x, ex := i + 1, x - 1.414 + noise, ex - 1.414\n"
        "        prob(0.2): i, x, ex := i + 1, x + 1.414 + noise, ex + 1.414\n"
        "        prob(0.2): i, x, ex := i + 1, x - 1 + noise, ex - 1\n"
        "        prob(0.2): i, x, ex := i + 1, x + 1 + noise, ex + 1\n"
        "        prob(0.2): i, x, ex := i + 1, x + noise, ex\n"
        "assert x - ex <= 1.8",
        100_000,
        False,
    ),
    # Table 2's M1DWalk (repro.programs.hardware.m1dwalk, p=1e-7): integer
    # lattice (fork probabilities never enter a state), but a width-2 chain
    # — the thin-frontier bailout keeps it on the scalar engine under auto.
    # Budgeted at 5k states: the chain is slow-mixing, and the reference
    # engine's pure-Python sweeps grow superlinearly with the budget
    "m1dwalk-5k": (
        "const p = 1e-7\nx := 1\nwhile x <= 99:\n    switch:\n"
        "        prob(p): exit\n"
        "        prob(0.75 * (1 - p)): x := x + 1\n"
        "        prob(0.25 * (1 - p)): x := x - 1\n"
        "assert false",
        5_000,
        True,
    ),
}

# promoted finds from the fuzzing farm's generated corpus (see
# repro.programs.fuzzed for the replay triples): frozen text shared with
# the registry so benchmark and program can never drift apart.  Small
# state spaces — the pure-Python reference comparison stays cheap, and
# the perf gate is untouched (no recorded baseline means no gate).
from repro.programs.fuzzed import FUZZED_SOURCES as _FUZZED_SOURCES  # noqa: E402

FIXPOINT_WORKLOADS.update(
    {
        "fz-queue-surge": (_FUZZED_SOURCES["fz-queue-surge"], 5_000, True),
        "fz-grid-trap": (_FUZZED_SOURCES["fz-grid-trap"], 5_000, True),
        "fz-lattice-strain": (_FUZZED_SOURCES["fz-lattice-strain"], 5_000, False),
    }
)

#: workloads whose pure-sweep iteration counts make the pure-Python
#: reference engine impractical (minutes to hours): both bench producers
#: skip the reference comparison here and validate the bracket against
#: the analytic violation probability instead (all ladder entries start
#: at x = N/4 and violate on the rich exit x = N, so vpf = 1/4 exactly)
SLOW_MIXING_WORKLOADS = frozenset({"gambler-500", "gambler-1000"})

#: exact violation probability of every SLOW_MIXING_WORKLOADS entry
SLOW_MIXING_ANALYTIC_VPF = 0.25


def explore_timings(
    pts, max_states: int, explore: str = "auto", compare: bool = True
) -> Dict[str, object]:
    """Time the exploration phase alone and return its bench-entry fields.

    Shared by the ``repro bench`` CLI and ``benchmarks/bench_fixpoint.py``
    so both producers emit the same schema: always ``explorer`` and
    ``explore_seconds``; when a frontier engine ran (``"int64"`` or
    ``"scaled-int64"``, and ``compare`` is true), also the exact
    Fraction-BFS comparison ``explore_fraction_seconds`` and (whenever the
    timer resolved a nonzero frontier time) ``explore_speedup``; when the
    scaled engine ran, additionally the per-variable fixed-point
    denominators as ``scale_factors``.  Keys are *omitted*, never null,
    when inapplicable.  Pass ``compare=False`` to skip the slow Fraction
    re-exploration (``repro bench --skip-reference``).
    """
    import time

    from repro.core.fixpoint import build_sparse_model

    start = time.perf_counter()
    model = build_sparse_model(pts, max_states=max_states, explore=explore)
    explore_seconds = time.perf_counter() - start
    fields: Dict[str, object] = {
        "explorer": model.explored_via,
        "explore_seconds": round(explore_seconds, 6),
    }
    if model.explored_via == "scaled-int64":
        scale = pts.integrality().scale or ()
        fields["scale_factors"] = {
            v: int(s) for v, s in zip(pts.program_vars, scale)
        }
    if compare and model.explored_via in ("int64", "scaled-int64"):
        start = time.perf_counter()
        build_sparse_model(pts, max_states=max_states, explore="fraction")
        fraction_seconds = time.perf_counter() - start
        fields["explore_fraction_seconds"] = round(fraction_seconds, 6)
        if explore_seconds > 0:
            fields["explore_speedup"] = round(fraction_seconds / explore_seconds, 2)
    return fields


def append_bench_run(
    path, results: List[dict], source: Optional[str] = None
) -> int:
    """Append one timestamped run to the ``{"runs": [...]}`` history at
    ``path`` (creating or resetting it if absent/corrupt); returns the new
    run count."""
    out = Path(path)
    history = {"runs": []}
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = {"runs": []}
    run = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "results": list(results),
    }
    if source is not None:
        run["source"] = source
    runs = history.setdefault("runs", [])
    runs.append(run)
    out.write_text(json.dumps(history, indent=2) + "\n")
    return len(runs)


def best_recorded_seconds(
    path, program: str, max_states: int, field: str = "sparse_seconds"
) -> Optional[float]:
    """Fastest ``field`` timing ever recorded for this exact workload
    (same program name *and* state budget), or ``None`` if the trajectory
    has no comparable entry.  This is the baseline of the ``-m bench``
    regression gate: degrading more than 2x against the best known run —
    in the end-to-end ``sparse_seconds`` or the value-iteration-phase
    ``vi_seconds`` — fails the benchmark suite.
    """
    source = Path(path)
    if not source.exists():
        return None
    try:
        history = json.loads(source.read_text())
    except (json.JSONDecodeError, OSError):
        return None
    best: Optional[float] = None
    for run in history.get("runs", []):
        for entry in run.get("results", []):
            if entry.get("program") != program:
                continue
            if entry.get("max_states") != max_states:
                continue
            seconds = entry.get(field)
            if isinstance(seconds, (int, float)) and seconds > 0:
                best = seconds if best is None else min(best, seconds)
    return best


def best_recorded_sparse_seconds(
    path, program: str, max_states: int
) -> Optional[float]:
    """Backwards-compatible alias of :func:`best_recorded_seconds` for the
    end-to-end ``sparse_seconds`` field."""
    return best_recorded_seconds(path, program, max_states, "sparse_seconds")
