"""Experiment harness regenerating the paper's Tables 1, 2 and 3-5."""

from repro.experiments.reference import PaperRow, TABLE1, TABLE2, ln_to_log10, log10_to_ln
from repro.experiments.table1 import Table1Row, TABLE1_SPECS, run_row, run_table1, format_table1
from repro.experiments.table2 import Table2Row, TABLE2_SPECS, run_row2, run_table2, format_table2
from repro.experiments.symbolic_tables import (
    SymbolicRow,
    run_symbolic_tables,
    format_symbolic,
)

__all__ = [
    "PaperRow",
    "TABLE1",
    "TABLE2",
    "ln_to_log10",
    "log10_to_ln",
    "Table1Row",
    "TABLE1_SPECS",
    "run_row",
    "run_table1",
    "format_table1",
    "Table2Row",
    "TABLE2_SPECS",
    "run_row2",
    "run_table2",
    "format_table2",
    "SymbolicRow",
    "run_symbolic_tables",
    "format_symbolic",
]
