"""Concentration benchmarks (Table 1, second block) — from [CFNH18, NCH18].

Each program tracks its running time in a variable ``t`` and asserts
``t <= N`` inside the loop, so the assertion violation probability is
exactly ``Pr[T > N]`` — the concentration of the termination time
(Section 3.2 of the paper).
"""

from __future__ import annotations

from repro.programs.registry import BenchmarkInstance, make_instance, register

__all__ = ["rdwalk", "coupon", "prspeed"]


@register("Rdwalk")
def rdwalk(n: int = 400) -> BenchmarkInstance:
    """Figure 2: asymmetric random walk, Pr[T > n]."""
    source = f"""
x := 0
t := 0
while x <= 99:
    switch:
        prob(0.75): x, t := x + 1, t + 1
        prob(0.25): x, t := x - 1, t + 1
    assert t <= {n}
"""
    return make_instance(
        name="Rdwalk",
        family="Concentration",
        source=source,
        params={"n": n},
        description=f"Pr[T > {n}] for the asymmetric random walk (drift +1/2)",
    )


@register("Coupon")
def coupon(n: int = 100) -> BenchmarkInstance:
    """Figure 9: coupon collector with 5 coupons, Pr[T > n].

    At stage ``i`` a new coupon arrives with probability ``(5 - i) / 5``;
    ``t`` counts the draws.
    """
    source = f"""
i := 0
t := 0
while i <= 4:
    if i <= 0:
        i, t := i + 1, t + 1
    else:
        if i <= 1:
            if prob(0.8):
                i, t := i + 1, t + 1
            else:
                t := t + 1
        else:
            if i <= 2:
                if prob(0.6):
                    i, t := i + 1, t + 1
                else:
                    t := t + 1
            else:
                if i <= 3:
                    if prob(0.4):
                        i, t := i + 1, t + 1
                    else:
                        t := t + 1
                else:
                    if prob(0.2):
                        i, t := i + 1, t + 1
                    else:
                        t := t + 1
    assert t <= {n}
"""
    return make_instance(
        name="Coupon",
        family="Concentration",
        source=source,
        params={"n": n},
        description=f"Pr[T > {n}] for the 5-item coupon collector",
    )


@register("Prspeed")
def prspeed(n: int = 150) -> BenchmarkInstance:
    """Figure 10 (reconstructed): random walk with randomized speed.

    Each step advances ``x`` by Uniform{0, 1, 2, 3} until ``x + 3 > 50``.
    Figure 10 additionally shows a coin-driven ``y`` prelude, but that
    prelude alone contributes ~100 expected steps, making the *true*
    ``Pr[T > 150]`` around 5% — far above the paper's reported upper bound
    of 5.42e-7, which is impossible for a sound bound.  The reported
    numbers are consistent with the randomized-speed phase alone, so that
    is what we evaluate (see EXPERIMENTS.md).
    """
    source = f"""
x := 0
t := 0
while x + 3 <= 50:
    switch:
        prob(0.25): t := t + 1
        prob(0.25): x, t := x + 1, t + 1
        prob(0.25): x, t := x + 2, t + 1
        prob(0.25): x, t := x + 3, t + 1
    assert t <= {n}
"""
    return make_instance(
        name="Prspeed",
        family="Concentration",
        source=source,
        params={"n": n},
        description=f"Pr[T > {n}] for the randomized-speed walk",
    )
