"""Stochastic-invariant benchmarks (Table 1, third block) — from [CNZ17].

Random walks with a drift away from the failure region; the assertion
violation probability decreases exponentially in the distance, which is
where the paper's bounds beat [CNZ17] by hundreds to thousands of orders
of magnitude.
"""

from __future__ import annotations

from repro.programs.registry import BenchmarkInstance, make_instance, register

__all__ = ["walk_1d", "walk_2d", "walk_3d", "race"]


@register("1DWalk")
def walk_1d(x0: int = 10) -> BenchmarkInstance:
    """Figure 6: drift -1/2 walk started at ``x0``; fails if it ever
    climbs past 1000 before absorbing below 0."""
    source = f"""
x := {x0}
while x >= 0:
    assert x <= 1000
    switch:
        prob(0.5): x := x - 2
        prob(0.5): x := x + 1
"""
    return make_instance(
        name="1DWalk",
        family="StoInv",
        source=source,
        params={"x": x0},
        description=f"1D walk from x={x0}: Pr[reach x > 1000 before x < 0]",
    )


@register("2DWalk")
def walk_2d(x0: int = 1000, y0: int = 10) -> BenchmarkInstance:
    """Figure 7: x drifts up, y drifts down; fails if x hits 0 while the
    loop (driven by y >= 1) is still running."""
    source = f"""
x := {x0}
y := {y0}
while y >= 1:
    if prob(0.5):
        switch:
            prob(0.75): x := x + 1
            prob(0.25): x := x - 1
    else:
        switch:
            prob(0.75): y := y - 1
            prob(0.25): y := y + 1
    assert x >= 1
"""
    return make_instance(
        name="2DWalk",
        family="StoInv",
        source=source,
        params={"x": x0, "y": y0},
        description=f"2D walk from ({x0}, {y0}): Pr[x reaches 0 before y does]",
    )


@register("3DWalk")
def walk_3d(x0: int = 100, y0: int = 100, z0: int = 100) -> BenchmarkInstance:
    """Figure 8: three coordinates drifting down by 1 w.p. 0.9 and up by
    0.1 w.p. 0.1; fails if the sum ever exceeds 1000."""
    source = f"""
x := {x0}
y := {y0}
z := {z0}
while x >= 0 and y >= 0 and z >= 0:
    assert x + y + z <= 1000
    if prob(0.9):
        switch:
            prob(0.5): x, y := x - 1, y - 1
            prob(0.5): z := z - 1
    else:
        switch:
            prob(0.5): x, y := x + 0.1, y + 0.1
            prob(0.5): z := z + 0.1
"""
    return make_instance(
        name="3DWalk",
        family="StoInv",
        source=source,
        params={"x": x0, "y": y0, "z": z0},
        description=f"3D walk from ({x0}, {y0}, {z0}): Pr[x+y+z > 1000]",
        integer_mode=False,  # 0.1-steps: strict guards must not be tightened
    )


@register("Race")
def race(x0: int = 40, y0: int = 0) -> BenchmarkInstance:
    """Figure 1 / Section 3.1: the tortoise-hare race."""
    source = f"""
x := {x0}
y := {y0}
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""
    return make_instance(
        name="Race",
        family="StoInv",
        source=source,
        params={"x": x0, "y": y0},
        description=f"tortoise-hare race from ({x0}, {y0}): Pr[hare wins]",
    )
