"""Deviation benchmarks (Table 1, first block) — from [CS13].

These programs accumulate independent bounded increments and ask for the
probability of a large deviation of the final value from its expectation.

Reconstruction notes (see EXPERIMENTS.md): the paper's Figure 4 listing is
inconsistent with both its Table 1 numbers and its Table 3 symbolic bounds,
so both benchmarks are reconstructed *from the previous-results column*,
which matches the endpoint Hoeffding bound ``exp(-2 d^2 / (n c^2))`` of
[CS13] exactly:

* ``RdAdder`` — 500 fair-coin increments (``n = 500``, range ``c = 1``):
  ``exp(-2 * 25^2 / 500) = 8.21e-2`` vs the paper's reported 8.00e-2, and
  likewise 4.54e-5 / 1.69e-10 for d = 50 / 75.
* ``Robot`` — 60 movement commands, each adding deterministic displacement
  to the dead-reckoning estimate ``ex`` and actuator noise ``+-0.05`` to
  the true position ``x`` (``n = 60``, ``c = 0.1``):
  ``exp(-2 * 1.8^2 / 0.6) = 2.04e-5`` — the paper's previous-result column
  verbatim, and likewise 1.62e-6 / 9.85e-8 for d = 2.0 / 2.2.
"""

from __future__ import annotations


from repro.programs.registry import BenchmarkInstance, make_instance, register

__all__ = ["rdadder", "robot"]


@register("RdAdder")
def rdadder(deviation: int = 25, n: int = 500) -> BenchmarkInstance:
    """Randomized accumulation: X ~ Binomial(n, 1/2), assert X <= n/2 + d."""
    threshold = n // 2 + deviation
    source = f"""
i := 0
x := 0
while i <= {n - 1}:
    if prob(0.5):
        i, x := i + 1, x + 1
    else:
        i := i + 1
assert x <= {threshold}
"""
    return make_instance(
        name="RdAdder",
        family="Deviation",
        source=source,
        params={"deviation": deviation},
        description=f"Pr[X - E[X] >= {deviation}] for X ~ Binomial({n}, 1/2)",
        notes="reconstructed: 500 fair increments (matches [CS13] column)",
    )


@register("Robot")
def robot(deviation: str = "1.8", n: int = 60) -> BenchmarkInstance:
    """Dead-reckoning robot: position x vs expected position ex.

    Each of ``n`` commands moves by a direction-dependent displacement
    (both ``x`` and ``ex``) plus ``+-0.05`` actuator noise on ``x`` only,
    drawn through the sampling variable ``noise``.  The assertion bounds
    the dead-reckoning error ``x - ex``.
    """
    source = f"""
noise ~ discrete((0.5, -0.05), (0.5, 0.05))
i := 0
x := 0
ex := 0
while i <= {n - 1}:
    switch:
        prob(0.2): i, x, ex := i + 1, x - 1.414 + noise, ex - 1.414
        prob(0.2): i, x, ex := i + 1, x + 1.414 + noise, ex + 1.414
        prob(0.2): i, x, ex := i + 1, x - 1 + noise, ex - 1
        prob(0.2): i, x, ex := i + 1, x + 1 + noise, ex + 1
        prob(0.2): i, x, ex := i + 1, x + noise, ex
assert x - ex <= {deviation}
"""
    return make_instance(
        name="Robot",
        family="Deviation",
        source=source,
        params={"deviation": deviation},
        description=f"Pr[X - E[X] >= {deviation}] for the deadreckoning robot",
        notes="reconstructed: 60 commands, +-0.05 actuator noise (matches [CS13] column)",
        integer_mode=False,
    )
