"""Unreliable-hardware benchmarks (Table 2) — from [CMR13, SHA19].

Reliability analysis reduces to *lower* bounds on assertion violation
(Section 3.3): the program ends in ``assert false``, so the assertion is
violated exactly when no hardware fault (``exit``) occurred during the run.

Reconstruction notes: ``Newton`` and ``Ref`` follow the paper's Figures 11
and 12 verbatim (loop shapes and per-step failure probabilities); the
``ABSTRACTED`` skips are genuine no-ops.  For ``Ref`` the analytic survival
probability ``(1-p)^(20 * (16 * 16 * 3 + 1))`` reproduces the paper's
reported lower bounds to all printed digits (0.998463 / 0.984738 /
0.857443), confirming the reconstruction.
"""

from __future__ import annotations

from repro.programs.registry import BenchmarkInstance, make_instance, register

__all__ = ["m1dwalk", "newton", "ref"]


@register("M1DWalk")
def m1dwalk(p: str = "1e-7") -> BenchmarkInstance:
    """Figure 3 / Section 3.3: the asymmetric walk on unreliable hardware."""
    source = f"""
const p = {p}
x := 1
while x <= 99:
    switch:
        prob(p): exit
        prob(0.75 * (1 - p)): x := x + 1
        prob(0.25 * (1 - p)): x := x - 1
assert false
"""
    return make_instance(
        name="M1DWalk",
        family="Hardware",
        source=source,
        params={"p": p},
        description=f"Pr[walk finishes with no hardware fault], fault rate {p}",
    )


@register("Newton")
def newton(p: str = "5e-4") -> BenchmarkInstance:
    """Figure 11: Newton's iteration on unreliable hardware.

    41 iterations; each runs five fallible blocks with survival
    probabilities ``(1-p)^5``, ``0.9999``, ``0.9999``, ``(1-p)^3`` and
    ``(1-p)^6`` (the abstracted arithmetic is fault-free ``skip``).
    """
    source = f"""
const p = {p}
i := 0
while i <= 40:
    if prob((1 - p) * (1 - p) * (1 - p) * (1 - p) * (1 - p)):
        skip
    else:
        exit
    if prob(0.9999):
        skip
    else:
        exit
    if prob(0.9999):
        skip
    else:
        exit
    if prob((1 - p) * (1 - p) * (1 - p)):
        skip
    else:
        exit
    if prob((1 - p) * (1 - p) * (1 - p) * (1 - p) * (1 - p) * (1 - p)):
        skip
    else:
        exit
    i := i + 1
assert false
"""
    return make_instance(
        name="Newton",
        family="Hardware",
        source=source,
        params={"p": p},
        description=f"Pr[Newton iteration survives 41 rounds], fault rate {p}",
    )


@register("Ref")
def ref(p: str = "1e-7") -> BenchmarkInstance:
    """Figure 12: the Searchref kernel — 20 x 16 x 16 fallible inner steps
    plus one fallible per-outer-iteration step."""
    source = f"""
const p = {p}
i := 0
j := 0
k := 0
while i <= 19:
    j := 0
    while j <= 15:
        k := 0
        while k <= 15:
            if prob((1 - p) * (1 - p) * (1 - p)):
                skip
            else:
                exit
            k := k + 1
        j := j + 1
    if prob(1 - p):
        skip
    else:
        exit
    i := i + 1
assert false
"""
    return make_instance(
        name="Ref",
        family="Hardware",
        source=source,
        params={"p": p},
        description=f"Pr[Searchref survives], fault rate {p}",
    )
