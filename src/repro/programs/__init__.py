"""All paper benchmarks (Figures 1-12), instantiable by name.

Example::

    from repro.programs import get_benchmark

    race = get_benchmark("Race", x0=40, y0=0)
    print(race.pts.pretty())
"""

from repro.programs.registry import (
    BenchmarkInstance,
    BENCHMARKS,
    get_benchmark,
    make_instance,
    register,
)
from repro.programs import deviation, concentration, stoinv, hardware  # noqa: F401

__all__ = [
    "BenchmarkInstance",
    "BENCHMARKS",
    "get_benchmark",
    "make_instance",
    "register",
]
