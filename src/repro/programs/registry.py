"""Benchmark registry: one entry per paper benchmark.

Each benchmark is a factory producing a :class:`BenchmarkInstance` — the
compiled PTS, its invariants, and bookkeeping for the experiment harness.
Sources are written in the surface language exactly as the paper's
Figures 1-12 give them (reconstructions of abbreviated figures are
documented per family module and in ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import ModelError
from repro.lang import compile_source
from repro.pts.model import PTS
from repro.core.invariants import InvariantMap, generate_interval_invariants

__all__ = ["BenchmarkInstance", "make_instance", "BENCHMARKS", "register", "get_benchmark"]


@dataclass
class BenchmarkInstance:
    """A ready-to-analyze benchmark."""

    name: str
    family: str
    params: Dict[str, object]
    pts: PTS
    invariants: InvariantMap
    description: str = ""
    notes: str = ""

    @property
    def label(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.name}({inner})"


def make_instance(
    name: str,
    family: str,
    source: str,
    params: Dict[str, object],
    description: str = "",
    notes: str = "",
    integer_mode: bool = True,
) -> BenchmarkInstance:
    """Compile a benchmark source and generate its interval invariants."""
    result = compile_source(source, integer_mode=integer_mode, name=name)
    invariants = generate_interval_invariants(result.pts)
    if result.invariants:
        invariants = invariants.merged_with(result.invariants)
    return BenchmarkInstance(
        name=name,
        family=family,
        params=dict(params),
        pts=result.pts,
        invariants=invariants,
        description=description,
        notes=notes,
    )


BENCHMARKS: Dict[str, Callable[..., BenchmarkInstance]] = {}


def register(name: str):
    """Decorator registering a benchmark factory under ``name``."""

    def wrap(fn: Callable[..., BenchmarkInstance]):
        BENCHMARKS[name] = fn
        return fn

    return wrap


def get_benchmark(name: str, **params) -> BenchmarkInstance:
    """Instantiate a registered benchmark by name."""
    # import the family modules so their registrations run
    from repro.programs import (  # noqa: F401
        concentration,
        deviation,
        fuzzed,
        hardware,
        stoinv,
    )

    if name not in BENCHMARKS:
        raise ModelError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[name](**params)
