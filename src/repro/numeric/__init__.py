"""Numeric solver layer: LP (HiGHS), convex optimization, bilinear search."""

from repro.numeric.lp import LPResult, solve_lp, LinearProgram

__all__ = ["LPResult", "solve_lp", "LinearProgram"]
