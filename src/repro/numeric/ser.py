"""The ``Ser`` bilinear search of Appendix C.2.

The HoeffdingSynthesis objective ``8 * eps * omega`` is bilinear (both
``eps >= 0`` and ``omega <= 0`` are unknowns), so the problem is not an LP.
The paper proves (Propositions 5/6) that after fixing ``eps`` the optimum
``f(eps) = 8 * eps * omega_opt(eps)`` is unimodal — strictly decreasing up
to the unique optimizer and strictly increasing after it — which licenses a
ternary search over ``eps``, each step solving one LP.

The probes of one bracket step are *independent* LPs (the two interior
points ``m1``/``m2``, and the three opening probes ``lo``/``hi``/``mid``),
so the search accepts an optional ``evaluate_submit`` callback: submit the
probes and return one *future* per point, and the search streams them
through whatever executor the caller shares (the analysis engine's
completion-driven ready-set), so a probe round rides alongside other
in-flight tasks instead of barriering the pool the way a blocking batch
map would.  Because every probe is a pure function of ``eps`` and the
submitted rounds evaluate exactly the points the serial loop would, the
returned bracket and bound are bit-identical regardless of backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["SerResult", "ternary_search"]

Payload = TypeVar("Payload")


@dataclass
class SerResult(Generic[Payload]):
    """Outcome of the ternary search."""

    eps: float
    value: float
    payload: Payload
    evaluations: int

    @property
    def found(self) -> bool:
        return math.isfinite(self.value)


def ternary_search(
    f: Callable[[float], Tuple[float, Payload]],
    lo: float,
    hi: float,
    tol: float = 1e-6,
    max_iters: int = 120,
    evaluate_submit: Optional[Callable[[Sequence[float]], List]] = None,
) -> SerResult:
    """Minimize a unimodal ``f`` over ``[lo, hi]``.

    ``f(eps)`` returns ``(value, payload)`` with ``value = +inf`` for
    infeasible ``eps``.  The search keeps the best evaluated point (so a
    useful answer survives even if unimodality is broken by LP tolerance)
    and stops when the bracket is narrower than ``tol`` (absolute).

    ``evaluate_submit``, when given, is used for the multi-point rounds: it
    must return one future-like handle (``.result() -> (value, payload)``)
    per input point, in order, and the round's outcomes are collected as
    the handles resolve.  Single leftover points still go through ``f``.
    """
    cache: Dict[float, Tuple[float, Payload]] = {}

    def eval_round(xs: Sequence[float]) -> None:
        missing, seen = [], set()
        for x in xs:
            if x not in cache and x not in seen:
                missing.append(x)
                seen.add(x)
        if not missing:
            return
        if evaluate_submit is not None and len(missing) > 1:
            handles = evaluate_submit(missing)
            if len(handles) != len(missing):
                raise ValueError(
                    f"evaluate_submit returned {len(handles)} handles for "
                    f"{len(missing)} probes"
                )
            # results land keyed by probe point, so collection order is
            # irrelevant to the bracket — the round is done when the last
            # handle resolves, not when a barrier map returns
            for x, handle in zip(missing, handles):
                cache[x] = handle.result()
        else:
            for x in missing:
                cache[x] = f(x)

    opening = [lo, hi, 0.5 * (lo + hi)]
    eval_round(opening)
    best_eps, (best_value, best_payload) = lo, cache[lo]
    for probe in opening[1:]:
        value, payload = cache[probe]
        if value < best_value:
            best_eps, best_value, best_payload = probe, value, payload

    left, right = lo, hi
    iters = 0
    while right - left > tol and iters < max_iters:
        iters += 1
        m1 = left + (right - left) / 3.0
        m2 = right - (right - left) / 3.0
        eval_round([m1, m2])
        v1, p1 = cache[m1]
        v2, p2 = cache[m2]
        if v1 < best_value:
            best_eps, best_value, best_payload = m1, v1, p1
        if v2 < best_value:
            best_eps, best_value, best_payload = m2, v2, p2
        if v1 < v2:
            right = m2
        else:
            left = m1
    return SerResult(
        eps=best_eps, value=best_value, payload=best_payload, evaluations=len(cache)
    )
