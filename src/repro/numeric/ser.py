"""The ``Ser`` bilinear search of Appendix C.2.

The HoeffdingSynthesis objective ``8 * eps * omega`` is bilinear (both
``eps >= 0`` and ``omega <= 0`` are unknowns), so the problem is not an LP.
The paper proves (Propositions 5/6) that after fixing ``eps`` the optimum
``f(eps) = 8 * eps * omega_opt(eps)`` is unimodal — strictly decreasing up
to the unique optimizer and strictly increasing after it — which licenses a
ternary search over ``eps``, each step solving one LP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Optional, Tuple, TypeVar

__all__ = ["SerResult", "ternary_search"]

Payload = TypeVar("Payload")


@dataclass
class SerResult(Generic[Payload]):
    """Outcome of the ternary search."""

    eps: float
    value: float
    payload: Payload
    evaluations: int

    @property
    def found(self) -> bool:
        return math.isfinite(self.value)


def ternary_search(
    f: Callable[[float], Tuple[float, Payload]],
    lo: float,
    hi: float,
    tol: float = 1e-6,
    max_iters: int = 120,
) -> SerResult:
    """Minimize a unimodal ``f`` over ``[lo, hi]``.

    ``f(eps)`` returns ``(value, payload)`` with ``value = +inf`` for
    infeasible ``eps``.  The search keeps the best evaluated point (so a
    useful answer survives even if unimodality is broken by LP tolerance)
    and stops when the bracket is narrower than ``tol`` (absolute).
    """
    cache: Dict[float, Tuple[float, Payload]] = {}

    def eval_cached(x: float) -> Tuple[float, Payload]:
        if x not in cache:
            cache[x] = f(x)
        return cache[x]

    best_eps, (best_value, best_payload) = lo, eval_cached(lo)
    for probe in (hi, 0.5 * (lo + hi)):
        value, payload = eval_cached(probe)
        if value < best_value:
            best_eps, best_value, best_payload = probe, value, payload

    left, right = lo, hi
    iters = 0
    while right - left > tol and iters < max_iters:
        iters += 1
        m1 = left + (right - left) / 3.0
        m2 = right - (right - left) / 3.0
        v1, p1 = eval_cached(m1)
        v2, p2 = eval_cached(m2)
        if v1 < best_value:
            best_eps, best_value, best_payload = m1, v1, p1
        if v2 < best_value:
            best_eps, best_value, best_payload = m2, v2, p2
        if v1 < v2:
            right = m2
        else:
            left = m1
    return SerResult(
        eps=best_eps, value=best_value, payload=best_payload, evaluations=len(cache)
    )
