"""Convex solver for the ExpLinSyn optimization problem (Theorem 5.4).

After quantifier elimination, the Section 5.2 program has

* a **linear objective** ``min a_init . v_init + b_init`` (minimizing the
  log of the bound — equivalent to the paper's ``min exp(...)``),
* **linear constraints** (the cone conditions (D1), expressed on the
  recession cone's generators), and
* **log-sum-exp constraints** (D2): ``log sum_k exp(c_k + w_k . x [+ lmgf]) <= 0``
  where each exponent is affine in the unknowns ``x`` and ``lmgf`` are
  log-MGF terms of continuous distributions evaluated at affine arguments.

This is a smooth convex program.  We solve it with SLSQP (analytic
gradients; log-space evaluation never overflows), falling back to
trust-constr, and **never trust the solver**: the returned point is
re-checked against every constraint, with a feasibility-restoration retry
at a larger margin when the check fails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import NonlinearConstraint, minimize

from repro.errors import SolverError
from repro.polyhedra.linexpr import LinExpr
from repro.pts.distributions import Distribution

__all__ = ["SmoothPart", "LseTerm", "ConvexProgram", "ConvexSolution"]


class _SkipRescue(Exception):
    """Internal control flow: the trust-constr rescue is not needed."""


@dataclass
class SmoothPart:
    """A ``log E[exp(gamma(x) * r)]`` factor with ``gamma`` affine in ``x``."""

    dist: Distribution
    gamma_row: np.ndarray
    gamma_const: float

    def value(self, x: np.ndarray) -> float:
        return self.dist.log_mgf(float(self.gamma_row @ x) + self.gamma_const)

    def grad(self, x: np.ndarray) -> np.ndarray:
        t = float(self.gamma_row @ x) + self.gamma_const
        return self.dist.d_log_mgf(t) * self.gamma_row


@dataclass
class LseTerm:
    """One exponential term ``exp(log_weight + row . x + const + smooth)``."""

    log_weight: float
    row: np.ndarray
    const: float
    smooth: List[SmoothPart] = field(default_factory=list)

    def exponent(self, x: np.ndarray) -> float:
        v = self.log_weight + float(self.row @ x) + self.const
        for s in self.smooth:
            v += s.value(x)
        return v

    def exponent_grad(self, x: np.ndarray) -> np.ndarray:
        g = self.row.copy()
        for s in self.smooth:
            g = g + s.grad(x)
        return g


@dataclass
class ConvexSolution:
    """Solver outcome: assignment, objective, and the verification report."""

    assignment: Dict[str, float]
    objective: float
    max_violation: float
    method: str

    @property
    def feasible(self) -> bool:
        return self.max_violation <= 1e-6


class ConvexProgram:
    """A convex program over named unknowns, assembled symbolically."""

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._linear_le: List[Tuple[LinExpr, str]] = []
        self._linear_eq: List[Tuple[LinExpr, str]] = []
        self._lse: List[Tuple[List, str]] = []  # raw (terms spec, label)
        self._objective: LinExpr = LinExpr.constant(0)
        self._compiled: Optional[Tuple] = None  # (A_le, b_le, A_eq, b_eq, lse)

    # -- assembly ---------------------------------------------------------------
    def add_unknown(self, name: str) -> int:
        if name not in self._index:
            self._index[name] = len(self._index)
            self._compiled = None
        return self._index[name]

    def _register(self, expr: LinExpr) -> None:
        for name in expr.variables():
            self.add_unknown(name)

    def add_linear_le(self, expr: LinExpr, label: str = "") -> None:
        """Constraint ``expr <= 0`` (affine in the unknowns)."""
        self._register(expr)
        self._linear_le.append((expr, label))
        self._compiled = None

    def add_linear_eq(self, expr: LinExpr, label: str = "") -> None:
        """Constraint ``expr == 0``."""
        self._register(expr)
        self._linear_eq.append((expr, label))
        self._compiled = None

    def add_linear_le_many(self, rows: "Sequence[Tuple[LinExpr, str]]") -> None:
        """Batched :meth:`add_linear_le` over ``(expr, label)`` pairs."""
        for expr, label in rows:
            self.add_linear_le(expr, label)

    def add_linear_eq_many(self, rows: "Sequence[Tuple[LinExpr, str]]") -> None:
        """Batched :meth:`add_linear_eq` over ``(expr, label)`` pairs."""
        for expr, label in rows:
            self.add_linear_eq(expr, label)

    def add_lse(
        self,
        terms: Sequence[Tuple[float, LinExpr, Sequence[Tuple[Distribution, LinExpr]]]],
        label: str = "",
    ) -> None:
        """Constraint ``log sum_k w_k exp(affine_k(x)) * prod E[exp(g(x) r)] <= 0``.

        ``terms`` holds ``(weight, affine, smooth)`` with ``weight > 0`` and
        ``smooth`` a list of ``(distribution, gamma_affine)`` factors.
        """
        for _, affine, smooth in terms:
            self._register(affine)
            for _, gamma in smooth:
                self._register(gamma)
        self._lse.append((list(terms), label))
        self._compiled = None

    def set_objective(self, expr: LinExpr) -> None:
        """Minimization objective (affine)."""
        self._register(expr)
        self._objective = expr

    @property
    def num_unknowns(self) -> int:
        return len(self._index)

    @property
    def num_constraints(self) -> int:
        return len(self._linear_le) + len(self._linear_eq) + len(self._lse)

    # -- compilation to numpy -------------------------------------------------------
    def _row(self, expr: LinExpr) -> Tuple[np.ndarray, float]:
        row = np.zeros(len(self._index))
        for name, coeff in expr.iter_coeffs():
            row[self._index[name]] = float(coeff)
        return row, float(expr.const)

    def _block(self, exprs: Sequence[LinExpr]) -> Tuple[np.ndarray, np.ndarray]:
        """Stack expressions into ``(A, b)`` with one coefficient-scatter pass
        (no per-row array allocation + vstack)."""
        n = len(self._index)
        a = np.zeros((len(exprs), n))
        b = np.zeros(len(exprs))
        index = self._index
        for r, expr in enumerate(exprs):
            for name, coeff in expr.iter_coeffs():
                a[r, index[name]] = float(coeff)
            b[r] = float(expr.const)
        return a, b

    def _compile_lse(self) -> List[Tuple[List[LseTerm], str]]:
        out = []
        for terms, label in self._lse:
            compiled: List[LseTerm] = []
            for weight, affine, smooth in terms:
                if weight <= 0:
                    raise SolverError(f"non-positive weight {weight} in constraint {label!r}")
                row, const = self._row(affine)
                parts = []
                for dist, gamma in smooth:
                    grow, gconst = self._row(gamma)
                    parts.append(SmoothPart(dist, grow, gconst))
                compiled.append(LseTerm(math.log(weight), row, const, parts))
            out.append((compiled, label))
        return out

    def _compile(self) -> Tuple:
        """``(A_le, b_le, A_eq, b_eq, lse_compiled)``, cached until the next
        ``add_*`` — :meth:`max_violation` runs inside the feasibility-repair
        bisection, so recompiling per call would dominate the solve."""
        if self._compiled is None:
            a_le, b_le = self._block([e for e, _ in self._linear_le])
            a_eq, b_eq = self._block([e for e, _ in self._linear_eq])
            self._compiled = (a_le, b_le, a_eq, b_eq, self._compile_lse())
        return self._compiled

    @staticmethod
    def _lse_value_grad(terms: List[LseTerm], x: np.ndarray) -> Tuple[float, np.ndarray]:
        exps = np.array([t.exponent(x) for t in terms])
        m = float(np.max(exps))
        shifted = np.exp(exps - m)
        total = float(np.sum(shifted))
        value = m + math.log(total)
        weights = shifted / total
        grad = np.zeros_like(x)
        for w, t in zip(weights, terms):
            grad += w * t.exponent_grad(x)
        return value, grad

    # -- evaluation ---------------------------------------------------------------------
    def max_violation(self, assignment: Dict[str, float]) -> float:
        """Largest constraint violation at ``assignment`` (0 when feasible)."""
        x = np.zeros(len(self._index))
        for name, idx in self._index.items():
            x[idx] = assignment.get(name, 0.0)
        a_le, b_le, a_eq, b_eq, lse_compiled = self._compile()
        worst = 0.0
        if len(b_le):
            worst = max(worst, float(np.max(a_le @ x + b_le)))
        if len(b_eq):
            worst = max(worst, float(np.max(np.abs(a_eq @ x + b_eq))))
        for terms, _ in lse_compiled:
            value, _ = self._lse_value_grad(terms, x)
            worst = max(worst, value)
        return worst

    # -- solving ------------------------------------------------------------------------
    def solve(
        self,
        margin: float = 1e-9,
        maxiter: int = 800,
        objective_floor: Optional[float] = -1e5,
        warm_start: Optional[Dict[str, float]] = None,
    ) -> ConvexSolution:
        """Minimize the objective; returns a verified :class:`ConvexSolution`.

        ``margin`` shrinks every LSE constraint to ``<= -margin`` during the
        solve so small solver slack cannot produce an infeasible answer;
        ``objective_floor`` caps how far the objective may fall (a bound of
        ``exp(-1e5)`` is already indistinguishable from 0 and the cap keeps
        the solve well-scaled when the true optimum is unbounded).
        """
        n = len(self._index)
        if n == 0:
            return ConvexSolution({}, float(self._objective.const), 0.0, "trivial")
        obj_row, obj_const = self._row(self._objective)
        a_le, b_le, a_eq_c, b_eq_c, lse_compiled = self._compile()

        if objective_floor is not None and np.any(obj_row != 0):
            floor_expr = -self._objective + objective_floor
            row, const = self._row(floor_expr)
            a_le = np.vstack([a_le, row[np.newaxis, :]])
            b_le = np.append(b_le, const)

        def objective(x: np.ndarray) -> float:
            return float(obj_row @ x) + obj_const

        def objective_jac(x: np.ndarray) -> np.ndarray:
            return obj_row

        le_rows = len(b_le) > 0
        eq_rows = len(b_eq_c) > 0
        constraints = []
        if le_rows:
            a = a_le
            b = b_le
            constraints.append(
                {"type": "ineq", "fun": lambda x: -(a @ x + b), "jac": lambda x: -a}
            )
        if eq_rows:
            a_eq = a_eq_c
            b_eq = b_eq_c
            constraints.append(
                {"type": "ineq", "fun": lambda x: (a_eq @ x + b_eq) + 1e-12, "jac": lambda x: a_eq}
            )
            constraints.append(
                {"type": "ineq", "fun": lambda x: -(a_eq @ x + b_eq) + 1e-12, "jac": lambda x: -a_eq}
            )
        for terms, label in lse_compiled:
            def make(terms_local):
                def fun(x: np.ndarray) -> float:
                    value, _ = self._lse_value_grad(terms_local, x)
                    return -(value + margin)

                def jac(x: np.ndarray) -> np.ndarray:
                    _, grad = self._lse_value_grad(terms_local, x)
                    return -grad

                return fun, jac

            fun, jac = make(terms)
            constraints.append({"type": "ineq", "fun": fun, "jac": jac})

        def assignment_of(x: np.ndarray) -> Dict[str, float]:
            return {name: float(x[idx]) for name, idx in self._index.items()}

        def violation_of(x: np.ndarray) -> float:
            return self.max_violation(assignment_of(x))

        def repair_by_scaling(x: np.ndarray) -> np.ndarray:
            """Pull an infeasible iterate back along the ray to the origin.

            Every constraint is convex and satisfied at 0 (the trivial
            template), so the feasible set intersected with the segment
            [0, x] is a sub-segment containing 0 — binary search finds the
            farthest feasible point.
            """
            lo_t, hi_t = 0.0, 1.0
            if violation_of(x) <= 1e-9:
                return x
            for _ in range(50):
                mid = 0.5 * (lo_t + hi_t)
                if violation_of(mid * x) <= 1e-9:
                    lo_t = mid
                else:
                    hi_t = mid
            return lo_t * x

        best: Optional[ConvexSolution] = None
        best_x = np.zeros(n)
        x_cur = np.zeros(n)
        best_objective = float("inf")
        if warm_start:
            seed = np.zeros(n)
            for name, value in warm_start.items():
                if name in self._index:
                    seed[self._index[name]] = float(value)
            seed = repair_by_scaling(seed)
            seed_candidate = ConvexSolution(
                assignment_of(seed), objective(seed), violation_of(seed), "warm-start"
            )
            if seed_candidate.feasible:
                best = seed_candidate
                best_objective = seed_candidate.objective
                best_x = seed
                x_cur = seed
        # on stall, restart from progressively scaled versions of the best
        # point: the optimum often lies far along the same template
        # direction and SLSQP's relative ftol stalls long before reaching it
        pushes = iter(("raw", 2.0, 4.0, 16.0, 64.0))
        for round_idx in range(24):
            res = minimize(
                objective,
                x_cur,
                jac=objective_jac,
                method="SLSQP",
                constraints=constraints,
                options={"maxiter": maxiter, "ftol": 1e-12},
            )
            raw = np.asarray(res.x, dtype=float)
            x = repair_by_scaling(raw)
            candidate = ConvexSolution(
                assignment_of(x), objective(x), violation_of(x), f"SLSQP/r{round_idx}"
            )
            if candidate.feasible and (best is None or candidate.objective < best.objective):
                best = candidate
            if objective(x) < best_objective - 1e-7:
                # progress: continue from the repaired (feasible) point
                best_objective = objective(x)
                best_x = x
                x_cur = x
            else:
                push = next(pushes, None)
                if push is None:
                    break
                # pushes start (possibly) infeasible on purpose; SLSQP pulls
                # them back while continuing the descent
                x_cur = raw if push == "raw" else push * best_x
        # trust-constr rescue: SLSQP's step-size heuristics can stall on the
        # huge-exponent instances (3DWalk-style optima at |obj| ~ 1e4); the
        # interior-point method keeps moving.  Run it only when the
        # continuation rounds never improved past the first solve — the
        # stall signature — so well-behaved instances stay fast.
        stalled = best is None or best.method in ("SLSQP/r0",)
        try:
            if not stalled:
                raise _SkipRescue
            from scipy.optimize import NonlinearConstraint

            tc_constraints = []
            if le_rows:
                tc_constraints.append(
                    NonlinearConstraint(
                        lambda x, a=a_le, b=b_le: a @ x + b, -np.inf, 0.0
                    )
                )
            if eq_rows:
                a_eq2 = a_eq_c
                b_eq2 = b_eq_c
                tc_constraints.append(
                    NonlinearConstraint(
                        lambda x, a=a_eq2, b=b_eq2: a @ x + b, 0.0, 0.0
                    )
                )
            for terms, _ in lse_compiled:
                tc_constraints.append(
                    NonlinearConstraint(
                        lambda x, t=terms: self._lse_value_grad(t, x)[0],
                        -np.inf,
                        -margin,
                        jac=lambda x, t=terms: self._lse_value_grad(t, x)[1].reshape(1, -1),
                    )
                )
            res = minimize(
                objective,
                best_x,
                jac=objective_jac,
                method="trust-constr",
                constraints=tc_constraints,
                options={"maxiter": 3000, "gtol": 1e-10, "xtol": 1e-12},
            )
            x = repair_by_scaling(np.asarray(res.x, dtype=float))
            candidate = ConvexSolution(
                assignment_of(x), objective(x), violation_of(x), "trust-constr"
            )
            if candidate.feasible and (
                best is None or candidate.objective < best.objective
            ):
                best = candidate
        except Exception:
            pass  # fall through to the SLSQP result / zero fallback
        if best is None:
            zero = {name: 0.0 for name in self._index}
            violation = self.max_violation(zero)
            best = ConvexSolution(zero, obj_const, violation, "zero-fallback")
            if not best.feasible:
                raise SolverError(
                    f"convex solve failed: even the trivial point violates "
                    f"constraints by {violation:.2e}"
                )
        return best
