"""Linear-programming front-end over ``scipy.optimize.linprog`` (HiGHS).

Two interfaces are provided:

* a low-level matrix interface (:func:`solve_lp`) used by the polyhedra
  substrate for emptiness/boundedness queries, and
* a named-variable interface (:class:`LinearProgram`) used by the synthesis
  algorithms, which assemble constraints symbolically as
  :class:`~repro.polyhedra.linexpr.LinExpr` objects over unknown coefficients
  and Farkas multipliers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import InfeasibleError, SolverError
from repro.polyhedra.linexpr import LinExpr

__all__ = ["LPResult", "solve_lp", "LinearProgram"]


@dataclass
class LPResult:
    """Outcome of an LP solve."""

    status: str  # "optimal" | "infeasible" | "unbounded"
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None

    @property
    def ok(self) -> bool:
        """True iff an optimal solution was found."""
        return self.status == "optimal"


_STATUS = {0: "optimal", 1: "iteration-limit", 2: "infeasible", 3: "unbounded", 4: "numerical"}


def solve_lp(
    c: Sequence[float],
    a_ub: Optional[Sequence[Sequence[float]]] = None,
    b_ub: Optional[Sequence[float]] = None,
    a_eq: Optional[Sequence[Sequence[float]]] = None,
    b_eq: Optional[Sequence[float]] = None,
    bounds: Optional[Sequence[Tuple[Optional[float], Optional[float]]]] = None,
) -> LPResult:
    """Minimize ``c @ x`` subject to ``a_ub @ x <= b_ub`` and ``a_eq @ x == b_eq``.

    Variables are free by default (unlike ``linprog``'s nonnegative default).
    """
    n = len(c)
    if bounds is None:
        bounds = [(None, None)] * n
    res = linprog(
        c,
        A_ub=None if a_ub is None or len(a_ub) == 0 else a_ub,
        b_ub=None if b_ub is None or len(b_ub) == 0 else b_ub,
        A_eq=None if a_eq is None or len(a_eq) == 0 else a_eq,
        b_eq=None if b_eq is None or len(b_eq) == 0 else b_eq,
        bounds=bounds,
        method="highs",
    )
    status = _STATUS.get(res.status, "error")
    if status == "optimal":
        return LPResult("optimal", np.asarray(res.x, dtype=float), float(res.fun))
    if status in ("infeasible", "unbounded"):
        return LPResult(status)
    raise SolverError(f"linprog failed with status {res.status}: {res.message}")


class LinearProgram:
    """An LP assembled from :class:`LinExpr` constraints over named unknowns.

    Constraints are ``expr <= 0`` or ``expr == 0`` where ``expr`` is affine in
    the unknowns.  Variables are registered on first use; bounds can be set
    per variable (default: free).
    """

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._lower: Dict[str, Optional[float]] = {}
        self._upper: Dict[str, Optional[float]] = {}
        self._le_rows: List[Tuple[LinExpr, str]] = []
        self._eq_rows: List[Tuple[LinExpr, str]] = []
        self._objective: LinExpr = LinExpr.constant(0)

    # -- model building ---------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> LinExpr:
        """Register a variable (idempotent) and return it as a LinExpr."""
        if name not in self._index:
            self._index[name] = len(self._index)
            self._lower[name] = lower
            self._upper[name] = upper
        else:
            if lower is not None:
                cur = self._lower[name]
                self._lower[name] = lower if cur is None else max(cur, lower)
            if upper is not None:
                cur = self._upper[name]
                self._upper[name] = upper if cur is None else min(cur, upper)
        return LinExpr.variable(name)

    def _register(self, expr: LinExpr) -> None:
        for name in expr.variables():
            self.add_variable(name)

    def add_le(self, expr: LinExpr, label: str = "") -> None:
        """Add the constraint ``expr <= 0``."""
        self._register(expr)
        self._le_rows.append((expr, label))

    def add_eq(self, expr: LinExpr, label: str = "") -> None:
        """Add the constraint ``expr == 0``."""
        self._register(expr)
        self._eq_rows.append((expr, label))

    def set_objective(self, expr: LinExpr) -> None:
        """Set the (minimization) objective."""
        self._register(expr)
        self._objective = expr

    @property
    def num_variables(self) -> int:
        return len(self._index)

    @property
    def num_constraints(self) -> int:
        return len(self._le_rows) + len(self._eq_rows)

    # -- solving ------------------------------------------------------------------
    def _row(self, expr: LinExpr) -> Tuple[np.ndarray, float]:
        row = np.zeros(len(self._index))
        for name, coeff in expr.coeffs.items():
            row[self._index[name]] = float(coeff)
        return row, -float(expr.const)

    def solve(self, minimize: Optional[LinExpr] = None) -> Dict[str, float]:
        """Solve; returns the optimal assignment as ``{name: value}``.

        Raises :class:`InfeasibleError` if infeasible and
        :class:`SolverError` if unbounded or numerically failed.
        """
        if minimize is not None:
            self.set_objective(minimize)
        n = len(self._index)
        c = np.zeros(n)
        for name, coeff in self._objective.coeffs.items():
            c[self._index[name]] = float(coeff)
        a_ub, b_ub = [], []
        for expr, _ in self._le_rows:
            row, rhs = self._row(expr)
            a_ub.append(row)
            b_ub.append(rhs)
        a_eq, b_eq = [], []
        for expr, _ in self._eq_rows:
            row, rhs = self._row(expr)
            a_eq.append(row)
            b_eq.append(rhs)
        names = sorted(self._index, key=self._index.get)
        bounds = [(self._lower[name], self._upper[name]) for name in names]
        result = solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds)
        if result.status == "infeasible":
            raise InfeasibleError("linear program is infeasible")
        if result.status == "unbounded":
            raise SolverError("linear program is unbounded")
        values = {name: float(result.x[self._index[name]]) for name in names}
        return values

    def feasible(self) -> bool:
        """True iff the constraint system admits some solution."""
        try:
            self.solve(minimize=LinExpr.constant(0))
            return True
        except InfeasibleError:
            return False

    def check_assignment(self, assignment: Dict[str, float], tol: float = 1e-7) -> bool:
        """Verify that ``assignment`` satisfies every constraint within ``tol``."""
        values = dict(assignment)
        for expr, _ in self._le_rows:
            if expr.evaluate_float(values) > tol:
                return False
        for expr, _ in self._eq_rows:
            if abs(expr.evaluate_float(values)) > tol:
                return False
        for name, idx in self._index.items():
            v = values.get(name, 0.0)
            lo, hi = self._lower[name], self._upper[name]
            if lo is not None and v < lo - tol:
                return False
            if hi is not None and v > hi + tol:
                return False
        return True
