"""Linear-programming front-end over ``scipy.optimize.linprog`` (HiGHS).

Two interfaces are provided:

* a low-level matrix interface (:func:`solve_lp`) used by the polyhedra
  substrate for emptiness/boundedness queries, and
* a named-variable interface (:class:`LinearProgram`) used by the synthesis
  algorithms, which assemble constraints symbolically as
  :class:`~repro.polyhedra.linexpr.LinExpr` objects over unknown coefficients
  and Farkas multipliers.

The named-variable interface assembles the constraint matrix as sparse COO
triplets while constraints stream in — no dense per-row Python lists — so
LP *assembly* stays proportional to the number of nonzero coefficients and
keeps pace with the HiGHS solve even on the large Farkas/Handelman systems
(see ``PERFORMANCE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.errors import InfeasibleError, SolverError
from repro.polyhedra.linexpr import LinExpr

__all__ = ["LPResult", "solve_lp", "LinearProgram"]


@dataclass
class LPResult:
    """Outcome of an LP solve."""

    status: str  # "optimal" | "infeasible" | "unbounded"
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None

    @property
    def ok(self) -> bool:
        """True iff an optimal solution was found."""
        return self.status == "optimal"


_STATUS = {0: "optimal", 1: "iteration-limit", 2: "infeasible", 3: "unbounded", 4: "numerical"}

#: statuses worth one retry with the dual simplex before giving up — HiGHS'
#: default (interior point + crossover) occasionally stalls on the nearly
#: degenerate Farkas systems where the simplex finishes cleanly
_RETRY_STATUSES = ("iteration-limit", "numerical")


def _is_empty(matrix) -> bool:
    """True for ``None`` or a 0-row matrix (dense sequence or scipy sparse)."""
    if matrix is None:
        return True
    shape = getattr(matrix, "shape", None)
    if shape is not None and not isinstance(matrix, (list, tuple)):
        return shape[0] == 0
    return len(matrix) == 0


def solve_lp(
    c: Sequence[float],
    a_ub=None,
    b_ub: Optional[Sequence[float]] = None,
    a_eq=None,
    b_eq: Optional[Sequence[float]] = None,
    bounds: Optional[Sequence[Tuple[Optional[float], Optional[float]]]] = None,
) -> LPResult:
    """Minimize ``c @ x`` subject to ``a_ub @ x <= b_ub`` and ``a_eq @ x == b_eq``.

    Variables are free by default (unlike ``linprog``'s nonnegative default).
    Constraint matrices may be dense sequences or ``scipy.sparse`` matrices.
    On an "iteration-limit" or "numerical" status the solve is retried once
    with ``method="highs-ds"`` (dual simplex) before raising
    :class:`SolverError`.
    """
    n = len(c)
    if bounds is None:
        bounds = [(None, None)] * n
    a_ub_arg = None if _is_empty(a_ub) else a_ub
    b_ub_arg = None if a_ub_arg is None else b_ub
    a_eq_arg = None if _is_empty(a_eq) else a_eq
    b_eq_arg = None if a_eq_arg is None else b_eq

    def run(method: str):
        return linprog(
            c,
            A_ub=a_ub_arg,
            b_ub=b_ub_arg,
            A_eq=a_eq_arg,
            b_eq=b_eq_arg,
            bounds=bounds,
            method=method,
        )

    res = run("highs")
    status = _STATUS.get(res.status, "error")
    if status in _RETRY_STATUSES:
        res = run("highs-ds")
        status = _STATUS.get(res.status, "error")
    if status == "optimal":
        return LPResult("optimal", np.asarray(res.x, dtype=float), float(res.fun))
    if status in ("infeasible", "unbounded"):
        return LPResult(status)
    raise SolverError(f"linprog failed with status {res.status}: {res.message}")


class _TripletBlock:
    """One constraint block (<= or ==) as streaming COO triplets."""

    __slots__ = ("rows", "cols", "data", "rhs")

    def __init__(self) -> None:
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.data: List[float] = []
        self.rhs: List[float] = []

    def matrix(self, num_vars: int) -> Optional[csr_matrix]:
        if not self.rhs:
            return None
        return csr_matrix(
            (self.data, (self.rows, self.cols)), shape=(len(self.rhs), num_vars)
        )


class LinearProgram:
    """An LP assembled from :class:`LinExpr` constraints over named unknowns.

    Constraints are ``expr <= 0`` or ``expr == 0`` where ``expr`` is affine in
    the unknowns.  Variables are registered on first use; bounds can be set
    per variable (default: free).  Coefficients go straight into sparse
    triplets at ``add_*`` time; the original expressions are retained only
    for :meth:`check_assignment` and labelled diagnostics.
    """

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._lower: Dict[str, Optional[float]] = {}
        self._upper: Dict[str, Optional[float]] = {}
        self._le = _TripletBlock()
        self._eq = _TripletBlock()
        self._le_rows: List[Tuple[LinExpr, str]] = []
        self._eq_rows: List[Tuple[LinExpr, str]] = []
        self._objective: LinExpr = LinExpr.constant(0)

    # -- model building ---------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> LinExpr:
        """Register a variable (idempotent) and return it as a LinExpr."""
        if name not in self._index:
            self._index[name] = len(self._index)
            self._lower[name] = lower
            self._upper[name] = upper
        else:
            if lower is not None:
                cur = self._lower[name]
                self._lower[name] = lower if cur is None else max(cur, lower)
            if upper is not None:
                cur = self._upper[name]
                self._upper[name] = upper if cur is None else min(cur, upper)
        return LinExpr.variable(name)

    def _register(self, expr: LinExpr) -> None:
        for name in expr.variables():
            self.add_variable(name)

    def _append(self, block: _TripletBlock, expr: LinExpr) -> None:
        self._register(expr)
        row = len(block.rhs)
        index = self._index
        for name, coeff in expr.iter_coeffs():
            block.rows.append(row)
            block.cols.append(index[name])
            block.data.append(float(coeff))
        block.rhs.append(-float(expr.const))

    def add_le(self, expr: LinExpr, label: str = "") -> None:
        """Add the constraint ``expr <= 0``."""
        self._append(self._le, expr)
        self._le_rows.append((expr, label))

    def add_eq(self, expr: LinExpr, label: str = "") -> None:
        """Add the constraint ``expr == 0``."""
        self._append(self._eq, expr)
        self._eq_rows.append((expr, label))

    def add_eq_many(self, rows: Iterable[Tuple[LinExpr, str]]) -> None:
        """Batched :meth:`add_eq` over ``(expr, label)`` pairs."""
        for expr, label in rows:
            self.add_eq(expr, label)

    def add_constraints(self, constraints: Iterable) -> None:
        """Batched emission of ``TemplateConstraint``-likes (``.expr``,
        ``.relation`` in ``{"<=", "=="}``, ``.label``) — the common shape
        produced by the Farkas encoder and the synthesis front-ends."""
        for c in constraints:
            if c.relation == "<=":
                self.add_le(c.expr, c.label)
            else:
                self.add_eq(c.expr, c.label)

    def set_objective(self, expr: LinExpr) -> None:
        """Set the (minimization) objective."""
        self._register(expr)
        self._objective = expr

    @property
    def num_variables(self) -> int:
        return len(self._index)

    @property
    def num_constraints(self) -> int:
        return len(self._le_rows) + len(self._eq_rows)

    # -- solving ------------------------------------------------------------------
    def solve(self, minimize: Optional[LinExpr] = None) -> Dict[str, float]:
        """Solve; returns the optimal assignment as ``{name: value}``.

        Raises :class:`InfeasibleError` if infeasible and
        :class:`SolverError` if unbounded or numerically failed.
        """
        if minimize is not None:
            self.set_objective(minimize)
        n = len(self._index)
        c = np.zeros(n)
        for name, coeff in self._objective.iter_coeffs():
            c[self._index[name]] = float(coeff)
        a_ub = self._le.matrix(n)
        a_eq = self._eq.matrix(n)
        names = sorted(self._index, key=self._index.get)
        bounds = [(self._lower[name], self._upper[name]) for name in names]
        result = solve_lp(c, a_ub, self._le.rhs, a_eq, self._eq.rhs, bounds)
        if result.status == "infeasible":
            raise InfeasibleError("linear program is infeasible")
        if result.status == "unbounded":
            raise SolverError("linear program is unbounded")
        values = {name: float(result.x[self._index[name]]) for name in names}
        return values

    def feasible(self) -> bool:
        """True iff the constraint system admits some solution."""
        try:
            self.solve(minimize=LinExpr.constant(0))
            return True
        except InfeasibleError:
            return False

    def check_assignment(self, assignment: Dict[str, float], tol: float = 1e-7) -> bool:
        """Verify that ``assignment`` satisfies every constraint within ``tol``."""
        values = dict(assignment)
        for expr, _ in self._le_rows:
            if expr.evaluate_float(values) > tol:
                return False
        for expr, _ in self._eq_rows:
            if abs(expr.evaluate_float(values)) > tol:
                return False
        for name, idx in self._index.items():
            v = values.get(name, 0.0)
            lo, hi = self._lower[name], self._upper[name]
            if lo is not None and v < lo - tol:
                return False
            if hi is not None and v > hi + tol:
                return False
        return True
