"""Abstract syntax for the probabilistic surface language.

Arithmetic is lowered to exact :class:`~repro.polyhedra.linexpr.LinExpr`
during parsing (the language is affine by construction — non-affine products
are rejected at parse time), so the AST only distinguishes statement shapes
and boolean structure.

Boolean expressions keep their atom structure (with strictness flags) so the
compiler can build *disjoint* guard cells with the closed-complement
convention documented in :mod:`repro.lang.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

from repro.polyhedra.linexpr import LinExpr
from repro.pts.distributions import Distribution

__all__ = [
    "Atom",
    "BoolConst",
    "And",
    "Or",
    "Not",
    "BoolExpr",
    "Assign",
    "While",
    "If",
    "ProbIf",
    "Switch",
    "Assert",
    "Exit",
    "Skip",
    "SampleDecl",
    "Statement",
    "Program",
]


# ---------------------------------------------------------------------------
# boolean expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """The comparison ``expr <= 0`` (``strict``: ``expr < 0``)."""

    expr: LinExpr
    strict: bool = False

    def negate(self) -> "Atom":
        """Logical complement: ``not (e <= 0)`` is ``-e < 0`` and vice versa."""
        return Atom(-self.expr, not self.strict)

    def __str__(self) -> str:
        return f"{self.expr} {'<' if self.strict else '<='} 0"


@dataclass(frozen=True)
class BoolConst:
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class And:
    operands: Tuple["BoolExpr", ...]

    def __str__(self) -> str:
        return "(" + " and ".join(map(str, self.operands)) + ")"


@dataclass(frozen=True)
class Or:
    operands: Tuple["BoolExpr", ...]

    def __str__(self) -> str:
        return "(" + " or ".join(map(str, self.operands)) + ")"


@dataclass(frozen=True)
class Not:
    operand: "BoolExpr"

    def __str__(self) -> str:
        return f"(not {self.operand})"


BoolExpr = Union[Atom, BoolConst, And, Or, Not]


def negate(expr: BoolExpr) -> BoolExpr:
    """Push a negation one level (De Morgan); atoms flip exactly."""
    if isinstance(expr, Atom):
        return expr.negate()
    if isinstance(expr, BoolConst):
        return BoolConst(not expr.value)
    if isinstance(expr, And):
        return Or(tuple(negate(o) for o in expr.operands))
    if isinstance(expr, Or):
        return And(tuple(negate(o) for o in expr.operands))
    if isinstance(expr, Not):
        return expr.operand
    raise TypeError(f"not a boolean expression: {expr!r}")


def atoms_of(expr: BoolExpr) -> List[Atom]:
    """All distinct atoms appearing in ``expr``, in first-occurrence order."""
    out: List[Atom] = []

    def walk(e: BoolExpr) -> None:
        if isinstance(e, Atom):
            if e not in out and e.negate() not in out:
                out.append(e)
        elif isinstance(e, (And, Or)):
            for o in e.operands:
                walk(o)
        elif isinstance(e, Not):
            walk(e.operand)

    walk(expr)
    return out


def evaluate_bool(expr: BoolExpr, valuation) -> bool:
    """Evaluate under an exact valuation (strictness honored)."""
    if isinstance(expr, Atom):
        v = expr.expr.evaluate(valuation)
        return v < 0 if expr.strict else v <= 0
    if isinstance(expr, BoolConst):
        return expr.value
    if isinstance(expr, And):
        return all(evaluate_bool(o, valuation) for o in expr.operands)
    if isinstance(expr, Or):
        return any(evaluate_bool(o, valuation) for o in expr.operands)
    if isinstance(expr, Not):
        return not evaluate_bool(expr.operand, valuation)
    raise TypeError(f"not a boolean expression: {expr!r}")


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Assign:
    """Simultaneous assignment ``x1, ..., xk := e1, ..., ek``."""

    targets: Tuple[str, ...]
    values: Tuple[LinExpr, ...]
    line: int = 0


@dataclass
class While:
    """``while cond [invariant inv]: body``."""

    cond: BoolExpr
    body: List["Statement"]
    invariant: Optional[BoolExpr] = None
    line: int = 0


@dataclass
class If:
    """Deterministic branch ``if cond: then else: orelse``."""

    cond: BoolExpr
    then: List["Statement"]
    orelse: List["Statement"] = field(default_factory=list)
    line: int = 0


@dataclass
class ProbIf:
    """Probabilistic branch ``if prob(p): then else: orelse``."""

    prob: Fraction
    then: List["Statement"]
    orelse: List["Statement"] = field(default_factory=list)
    line: int = 0


@dataclass
class Switch:
    """``switch:`` with ``prob(p_i):`` arms; probabilities sum to 1."""

    arms: List[Tuple[Fraction, List["Statement"]]]
    line: int = 0


@dataclass
class Assert:
    """``assert cond`` — jumps to the failure sink when ``cond`` is false."""

    cond: BoolExpr
    line: int = 0


@dataclass
class Exit:
    """``exit`` — jump straight to normal termination."""

    line: int = 0


@dataclass
class Skip:
    """``skip`` — no-op."""

    line: int = 0


@dataclass
class SampleDecl:
    """``r ~ distribution(...)`` — declares a sampling variable."""

    name: str
    distribution: Distribution
    line: int = 0


Statement = Union[Assign, While, If, ProbIf, Switch, Assert, Exit, Skip, SampleDecl]


@dataclass
class Program:
    """A parsed program: top-level statements plus constant bindings."""

    body: List[Statement]
    constants: dict = field(default_factory=dict)  # name -> Fraction

    def variables(self) -> Tuple[str, ...]:
        """All program variables (assignment targets), in first-use order."""
        seen: List[str] = []

        def walk(stmts: Sequence[Statement]) -> None:
            for s in stmts:
                if isinstance(s, Assign):
                    for t in s.targets:
                        if t not in seen:
                            seen.append(t)
                elif isinstance(s, While):
                    walk(s.body)
                elif isinstance(s, (If, ProbIf)):
                    walk(s.then)
                    walk(s.orelse)
                elif isinstance(s, Switch):
                    for _, arm in s.arms:
                        walk(arm)

        walk(self.body)
        return tuple(seen)

    def sampling_declarations(self) -> List[SampleDecl]:
        """All sampling-variable declarations (top level only)."""
        return [s for s in self.body if isinstance(s, SampleDecl)]
