"""Pretty-printer: AST back to surface syntax.

``pretty(parse_program(src))`` re-parses to an equivalent program (the
round-trip property is tested), which makes compiled benchmarks and
programmatically assembled ASTs inspectable and diffable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.lang import ast
from repro.polyhedra.linexpr import LinExpr
from repro.pts.distributions import (
    DiscreteDistribution,
    Distribution,
    NormalDistribution,
    PointMass,
    UniformDistribution,
)

__all__ = ["pretty", "render_expr", "render_bool"]

INDENT = "    "


def _frac(value: Fraction) -> str:
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


def render_expr(expr: LinExpr) -> str:
    """An affine expression in surface syntax."""
    parts: List[str] = []
    for name in sorted(expr.coeffs):
        coeff = expr.coeffs[name]
        if coeff == 1:
            term = name
        elif coeff == -1:
            term = f"-{name}"
        elif coeff.denominator == 1:
            term = f"{coeff.numerator} * {name}"
        else:
            term = f"{name} * {coeff.numerator} / {coeff.denominator}"
        if parts:
            parts.append(f"+ {term}" if not term.startswith("-") else f"- {term[1:]}")
        else:
            parts.append(term)
    if expr.const != 0 or not parts:
        c = expr.const
        if parts:
            parts.append(f"+ {_frac(c)}" if c > 0 else f"- {_frac(-c)}")
        else:
            parts.append(_frac(c))
    return " ".join(parts)


def render_bool(cond: ast.BoolExpr) -> str:
    """A boolean condition in surface syntax."""
    if isinstance(cond, ast.Atom):
        op = "<" if cond.strict else "<="
        # e <= 0 rendered as (positive side) <= (negative side) when possible
        return f"{render_expr(cond.expr)} {op} 0"
    if isinstance(cond, ast.BoolConst):
        return "true" if cond.value else "false"
    if isinstance(cond, ast.And):
        return " and ".join(_paren(o) for o in cond.operands)
    if isinstance(cond, ast.Or):
        return " or ".join(_paren(o) for o in cond.operands)
    if isinstance(cond, ast.Not):
        return f"not {_paren(cond.operand)}"
    raise TypeError(f"not a boolean expression: {cond!r}")


def _paren(cond: ast.BoolExpr) -> str:
    text = render_bool(cond)
    if isinstance(cond, (ast.And, ast.Or)):
        return f"({text})"
    return text


def _render_dist(dist: Distribution) -> str:
    if isinstance(dist, UniformDistribution):
        return f"uniform({_frac(dist.lo)}, {_frac(dist.hi)})"
    if isinstance(dist, NormalDistribution):
        return f"normal({_frac(dist.mu)}, {_frac(dist.sigma)})"
    if isinstance(dist, PointMass):
        return f"discrete((1, {_frac(dist.value)}))"
    if isinstance(dist, DiscreteDistribution):
        pairs = ", ".join(f"({_frac(p)}, {_frac(v)})" for p, v in dist.atoms())
        return f"discrete({pairs})"
    raise TypeError(f"unknown distribution {dist!r}")


def _emit(stmt: ast.Statement, lines: List[str], depth: int) -> None:
    pad = INDENT * depth
    if isinstance(stmt, ast.Assign):
        targets = ", ".join(stmt.targets)
        values = ", ".join(render_expr(v) for v in stmt.values)
        lines.append(f"{pad}{targets} := {values}")
    elif isinstance(stmt, ast.Skip):
        lines.append(f"{pad}skip")
    elif isinstance(stmt, ast.Exit):
        lines.append(f"{pad}exit")
    elif isinstance(stmt, ast.Assert):
        lines.append(f"{pad}assert {render_bool(stmt.cond)}")
    elif isinstance(stmt, ast.SampleDecl):
        lines.append(f"{pad}{stmt.name} ~ {_render_dist(stmt.distribution)}")
    elif isinstance(stmt, ast.While):
        inv = f" invariant {render_bool(stmt.invariant)}" if stmt.invariant else ""
        lines.append(f"{pad}while {render_bool(stmt.cond)}{inv}:")
        _emit_block(stmt.body, lines, depth + 1)
    elif isinstance(stmt, ast.If):
        lines.append(f"{pad}if {render_bool(stmt.cond)}:")
        _emit_block(stmt.then, lines, depth + 1)
        if stmt.orelse:
            lines.append(f"{pad}else:")
            _emit_block(stmt.orelse, lines, depth + 1)
    elif isinstance(stmt, ast.ProbIf):
        lines.append(f"{pad}if prob({_frac(stmt.prob)}):")
        _emit_block(stmt.then, lines, depth + 1)
        if stmt.orelse:
            lines.append(f"{pad}else:")
            _emit_block(stmt.orelse, lines, depth + 1)
    elif isinstance(stmt, ast.Switch):
        lines.append(f"{pad}switch:")
        for p, arm in stmt.arms:
            lines.append(f"{pad}{INDENT}prob({_frac(p)}):")
            _emit_block(arm, lines, depth + 2)
    else:  # pragma: no cover
        raise TypeError(f"unknown statement {stmt!r}")


def _emit_block(stmts: List[ast.Statement], lines: List[str], depth: int) -> None:
    if not stmts:
        lines.append(f"{INDENT * depth}skip")
        return
    for s in stmts:
        _emit(s, lines, depth)


def pretty(program: ast.Program) -> str:
    """Render a program back to parseable surface syntax."""
    lines: List[str] = []
    for stmt in program.body:
        _emit(stmt, lines, 0)
    return "\n".join(lines) + "\n"
