"""Tokenizer for the probabilistic surface language.

The language is indentation-structured (like Python): the lexer emits
``INDENT``/``DEDENT`` tokens from leading whitespace, ``NEWLINE`` at logical
line ends, and skips blank lines and ``#`` comments.  Statements may also be
separated by ``;`` on one line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "while",
        "if",
        "else",
        "switch",
        "prob",
        "assert",
        "exit",
        "skip",
        "and",
        "or",
        "not",
        "true",
        "false",
        "const",
        "invariant",
        "uniform",
        "normal",
        "discrete",
        "bernoulli",
    }
)

# multi-character operators first so maximal munch works
_OPERATORS = [
    ":=",
    "<=",
    ">=",
    "==",
    "!=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "(",
    ")",
    ",",
    ":",
    ";",
    "~",
    "=",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token with source position (1-based)."""

    kind: str  # NAME, NUMBER, KEYWORD, OP, NEWLINE, INDENT, DEDENT, EOF
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def _lex_line(line: str, lineno: int, tokens: List[Token]) -> None:
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if ch in " \t":
            i += 1
            continue
        if ch == "#":
            return
        if ch.isdigit() or (ch == "." and i + 1 < n and line[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (line[j].isdigit() or (line[j] == "." and not seen_dot)):
                if line[j] == ".":
                    seen_dot = True
                j += 1
            # exponent part: 1e-7, 2.5E+3
            if j < n and line[j] in "eE":
                k = j + 1
                if k < n and line[k] in "+-":
                    k += 1
                if k < n and line[k].isdigit():
                    while k < n and line[k].isdigit():
                        k += 1
                    j = k
            tokens.append(Token("NUMBER", line[i:j], lineno, i + 1))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (line[j].isalnum() or line[j] == "_"):
                j += 1
            word = line[i:j]
            kind = "KEYWORD" if word in KEYWORDS else "NAME"
            tokens.append(Token(kind, word, lineno, i + 1))
            i = j
            continue
        for op in _OPERATORS:
            if line.startswith(op, i):
                tokens.append(Token("OP", op, lineno, i + 1))
                i += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", lineno, i + 1)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a flat token list ending with EOF.

    Raises :class:`ParseError` on unknown characters or inconsistent
    indentation.
    """
    tokens: List[Token] = []
    indents = [0]
    for lineno, raw in enumerate(source.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].rstrip()
        if not stripped.strip():
            continue  # blank or comment-only line
        indent = len(raw) - len(raw.lstrip(" \t"))
        if "\t" in raw[:indent]:
            # normalize tabs to 8 columns for indent comparison
            prefix = raw[: len(raw) - len(raw.lstrip(" \t"))]
            indent = len(prefix.expandtabs(8))
        if indent > indents[-1]:
            indents.append(indent)
            tokens.append(Token("INDENT", "", lineno, 1))
        else:
            while indent < indents[-1]:
                indents.pop()
                tokens.append(Token("DEDENT", "", lineno, 1))
            if indent != indents[-1]:
                raise ParseError("inconsistent dedent", lineno, indent + 1)
        _lex_line(stripped, lineno, tokens)
        tokens.append(Token("NEWLINE", "", lineno, len(stripped) + 1))
    last_line = source.count("\n") + 1
    while len(indents) > 1:
        indents.pop()
        tokens.append(Token("DEDENT", "", last_line, 1))
    tokens.append(Token("EOF", "", last_line, 1))
    return tokens
