"""Probabilistic surface language: lexer, parser, AST, compiler to PTS."""

from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty, render_expr, render_bool
from repro.lang.compiler import (
    CompilationResult,
    compile_program,
    compile_source,
    split_cells,
    bool_to_polyhedron,
)

__all__ = [
    "Token",
    "tokenize",
    "parse_program",
    "CompilationResult",
    "compile_program",
    "compile_source",
    "split_cells",
    "bool_to_polyhedron",
    "pretty",
    "render_expr",
    "render_bool",
]
