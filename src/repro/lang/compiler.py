"""Compiler from the surface language AST to probabilistic transition systems.

The construction is a standard control-flow-graph build followed by two
clean-up passes that make the emitted PTS match the compact hand-built
systems of the paper:

* **location elision** fuses chains of unconditional deterministic updates
  (so ``x, y := x+1, y+2`` inside a probabilistic branch lands directly on
  the fork, like Figure 1's PTS);
* **initial folding** constant-folds leading deterministic assignments into
  the initial valuation (so ``x := 40; y := 0; while ...`` yields
  ``v_init = (40, 0)`` at the loop head, exactly as in the paper).

Guard construction and the complement convention
------------------------------------------------
Branch/assert conditions are arbitrary boolean combinations of affine
comparisons.  They are compiled into *disjoint* cells by a decision-tree
expansion over the atoms, so compiled PTSs satisfy the paper's
mutual-exclusivity assumption by construction.  Complements of non-strict
atoms are strict; polyhedra are closed, so a strict atom ``e < 0`` becomes

* ``e <= -1`` when ``integer_mode=True`` and ``e`` has integral
  coefficients (the convention for integer-stepped programs — the paper's
  Figure 1 turns ``not (x <= 99)`` into ``x >= 100`` this way), and
* the closed relaxation ``e <= 0`` otherwise, leaving a measure-zero
  boundary overlap that the simulator resolves by first-match and that does
  not affect the synthesized bounds (they are one-sided).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CompileError
from repro.lang import ast
from repro.polyhedra.constraints import AffineIneq, Polyhedron
from repro.polyhedra.linexpr import LinExpr
from repro.pts.distributions import Distribution
from repro.pts.model import FAIL, TERM, AffineUpdate, Fork, PTS, Transition
from repro.utils.numbers import is_integral

__all__ = ["CompilationResult", "compile_program", "compile_source"]


@dataclass
class CompilationResult:
    """A compiled PTS plus source-level invariant annotations.

    ``invariants`` maps loop-head locations to the polyhedra written in
    ``while ... invariant ...`` clauses; the synthesis front-ends merge them
    with automatically generated invariants.
    """

    pts: PTS
    invariants: Dict[str, Polyhedron] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# guard cells
# ---------------------------------------------------------------------------


def _atom_to_ineq(atom: ast.Atom, integer_mode: bool) -> AffineIneq:
    if not atom.strict:
        return AffineIneq(atom.expr)
    expr = atom.expr
    if integer_mode and all(
        is_integral(c) for c in list(expr.coeffs.values()) + [expr.const]
    ):
        return AffineIneq(expr + 1)  # e < 0 over integers is e <= -1
    return AffineIneq(expr)  # closed relaxation


def split_cells(
    cond: ast.BoolExpr, variables: Sequence[str], integer_mode: bool
) -> Tuple[List[Polyhedron], List[Polyhedron]]:
    """Disjoint polyhedral cells where ``cond`` is true / false.

    Decision-tree expansion over the distinct atoms; empty cells are pruned
    with an exact LP check.  The union of all returned cells covers the
    whole space and the true-cells cover exactly the (closed relaxation of
    the) satisfying region.
    """
    atoms = ast.atoms_of(cond)
    if len(atoms) > 12:
        raise CompileError(
            f"guard with {len(atoms)} distinct atoms would expand into "
            f"2^{len(atoms)} cells; simplify the condition"
        )
    true_cells: List[Polyhedron] = []
    false_cells: List[Polyhedron] = []

    def evaluate(expr: ast.BoolExpr, assignment: Dict[ast.Atom, bool]) -> bool:
        if isinstance(expr, ast.Atom):
            if expr in assignment:
                return assignment[expr]
            return not assignment[expr.negate()]
        if isinstance(expr, ast.BoolConst):
            return expr.value
        if isinstance(expr, ast.And):
            return all(evaluate(o, assignment) for o in expr.operands)
        if isinstance(expr, ast.Or):
            return any(evaluate(o, assignment) for o in expr.operands)
        if isinstance(expr, ast.Not):
            return not evaluate(expr.operand, assignment)
        raise CompileError(f"unsupported boolean node {expr!r}")

    def rec(index: int, assignment: Dict[ast.Atom, bool], ineqs: List[AffineIneq]) -> None:
        if index == len(atoms):
            cell = Polyhedron(variables, ineqs)
            if cell.is_empty():
                return
            (true_cells if evaluate(cond, assignment) else false_cells).append(cell)
            return
        atom = atoms[index]
        rec(
            index + 1,
            {**assignment, atom: True},
            ineqs + [_atom_to_ineq(atom, integer_mode)],
        )
        rec(
            index + 1,
            {**assignment, atom: False},
            ineqs + [_atom_to_ineq(atom.negate(), integer_mode)],
        )

    rec(0, {}, [])
    return true_cells, false_cells


def bool_to_polyhedron(
    cond: ast.BoolExpr, variables: Sequence[str], integer_mode: bool
) -> Polyhedron:
    """A conjunction-only boolean expression as a single polyhedron."""
    ineqs: List[AffineIneq] = []

    def walk(expr: ast.BoolExpr) -> None:
        if isinstance(expr, ast.Atom):
            ineqs.append(_atom_to_ineq(expr, integer_mode))
        elif isinstance(expr, ast.BoolConst):
            if not expr.value:
                raise CompileError("invariant 'false' is not a polyhedron")
        elif isinstance(expr, ast.And):
            for o in expr.operands:
                walk(o)
        else:
            raise CompileError(
                "invariant annotations must be conjunctions of affine comparisons"
            )

    walk(cond)
    return Polyhedron(variables, ineqs)


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


class _Compiler:
    def __init__(self, program: ast.Program, integer_mode: bool, name: str):
        self.program = program
        self.integer_mode = integer_mode
        self.name = name
        self.variables = program.variables()
        if not self.variables:
            raise CompileError("program assigns no variables")
        self.distributions: Dict[str, Distribution] = {}
        self.transitions: List[Transition] = []
        self.invariants: Dict[str, Polyhedron] = {}
        self._loc_counter = count(1)

    def fresh(self, hint: str) -> str:
        return f"l{next(self._loc_counter)}_{hint}"

    def universe(self) -> Polyhedron:
        return Polyhedron.universe(self.variables)

    def emit(
        self,
        source: str,
        guard: Polyhedron,
        forks: List[Fork],
        name: str = "",
    ) -> None:
        self.transitions.append(Transition(source, guard, forks, name=name))

    # -- statement compilation ----------------------------------------------------
    def compile(self) -> CompilationResult:
        body = [s for s in self.program.body if not isinstance(s, ast.SampleDecl)]
        for decl in self.program.sampling_declarations():
            if decl.name in self.variables:
                raise CompileError(
                    f"{decl.name!r} is used both as program and sampling variable"
                )
            self.distributions[decl.name] = decl.distribution
        init = self.fresh("init")
        self.compile_block(body, init, TERM)
        pts = PTS(
            program_vars=self.variables,
            init_location=init,
            init_valuation={v: 0 for v in self.variables},
            transitions=self.transitions,
            distributions=self.distributions,
            name=self.name,
        )
        keep = set(self.invariants)
        pts = _elide_trivial_locations(pts, keep=keep)
        pts = _propagate_guard_chains(pts, keep=keep)
        pts = _flatten_probabilistic_chains(pts, keep=keep)
        pts = _elide_trivial_locations(pts, keep=keep)
        pts = _propagate_guard_chains(pts, keep=keep)
        pts = _fold_initial(pts)
        pts = _remove_unreachable(pts)
        self.invariants = {
            loc: poly for loc, poly in self.invariants.items() if loc in pts.locations
        }
        return CompilationResult(pts=pts, invariants=self.invariants)

    def compile_block(self, stmts: Sequence[ast.Statement], entry: str, exit_: str) -> None:
        if not stmts:
            self.emit(entry, self.universe(), [Fork(exit_, 1)])
            return
        current = entry
        for i, stmt in enumerate(stmts):
            is_last = i == len(stmts) - 1
            nxt = exit_ if is_last else self.fresh("seq")
            self.compile_statement(stmt, current, nxt)
            current = nxt

    def compile_statement(self, stmt: ast.Statement, entry: str, exit_: str) -> None:
        if isinstance(stmt, ast.Assign):
            update = AffineUpdate(dict(zip(stmt.targets, stmt.values)))
            self._check_expr_vars(stmt)
            self.emit(entry, self.universe(), [Fork(exit_, 1, update)], name=f"assign@{stmt.line}")
        elif isinstance(stmt, ast.Skip):
            self.emit(entry, self.universe(), [Fork(exit_, 1)], name=f"skip@{stmt.line}")
        elif isinstance(stmt, ast.Exit):
            self.emit(entry, self.universe(), [Fork(TERM, 1)], name=f"exit@{stmt.line}")
        elif isinstance(stmt, ast.Assert):
            self.compile_assert(stmt, entry, exit_)
        elif isinstance(stmt, ast.If):
            self.compile_if(stmt, entry, exit_)
        elif isinstance(stmt, ast.ProbIf):
            self.compile_probif(stmt, entry, exit_)
        elif isinstance(stmt, ast.Switch):
            self.compile_switch(stmt, entry, exit_)
        elif isinstance(stmt, ast.While):
            self.compile_while(stmt, entry, exit_)
        elif isinstance(stmt, ast.SampleDecl):
            raise CompileError(
                f"sampling declaration for {stmt.name!r} must appear at top level"
            )
        else:  # pragma: no cover
            raise CompileError(f"unsupported statement {stmt!r}")

    def _check_expr_vars(self, stmt: ast.Assign) -> None:
        allowed = set(self.variables) | set(self.distributions)
        for expr in stmt.values:
            bad = set(expr.variables()) - allowed
            if bad:
                raise CompileError(
                    f"line {stmt.line}: assignment uses undeclared names {sorted(bad)}"
                )

    def compile_assert(self, stmt: ast.Assert, entry: str, exit_: str) -> None:
        true_cells, false_cells = split_cells(stmt.cond, self.variables, self.integer_mode)
        for i, cell in enumerate(true_cells):
            self.emit(entry, cell, [Fork(exit_, 1)], name=f"assert-pass@{stmt.line}.{i}")
        for i, cell in enumerate(false_cells):
            self.emit(entry, cell, [Fork(FAIL, 1)], name=f"assert-fail@{stmt.line}.{i}")

    def compile_if(self, stmt: ast.If, entry: str, exit_: str) -> None:
        true_cells, false_cells = split_cells(stmt.cond, self.variables, self.integer_mode)
        then_entry = self.fresh("then")
        else_entry = self.fresh("else")
        for i, cell in enumerate(true_cells):
            self.emit(entry, cell, [Fork(then_entry, 1)], name=f"if-true@{stmt.line}.{i}")
        for i, cell in enumerate(false_cells):
            self.emit(entry, cell, [Fork(else_entry, 1)], name=f"if-false@{stmt.line}.{i}")
        self.compile_block(stmt.then, then_entry, exit_)
        self.compile_block(stmt.orelse, else_entry, exit_)

    def compile_probif(self, stmt: ast.ProbIf, entry: str, exit_: str) -> None:
        if not 0 < stmt.prob <= 1:
            raise CompileError(f"line {stmt.line}: prob({stmt.prob}) outside (0, 1]")
        forks: List[Fork] = []
        then_entry = self.fresh("pthen")
        self.compile_block(stmt.then, then_entry, exit_)
        if stmt.prob == 1:
            forks.append(Fork(then_entry, 1))
        else:
            else_entry = self.fresh("pelse")
            self.compile_block(stmt.orelse, else_entry, exit_)
            forks.append(Fork(then_entry, stmt.prob))
            forks.append(Fork(else_entry, 1 - stmt.prob))
        self.emit(entry, self.universe(), forks, name=f"prob-if@{stmt.line}")

    def compile_switch(self, stmt: ast.Switch, entry: str, exit_: str) -> None:
        forks: List[Fork] = []
        for i, (p, arm) in enumerate(stmt.arms):
            arm_entry = self.fresh(f"arm{i}")
            self.compile_block(arm, arm_entry, exit_)
            forks.append(Fork(arm_entry, p))
        self.emit(entry, self.universe(), forks, name=f"switch@{stmt.line}")

    def compile_while(self, stmt: ast.While, entry: str, exit_: str) -> None:
        head = entry
        true_cells, false_cells = split_cells(stmt.cond, self.variables, self.integer_mode)
        body_entry = self.fresh("body")
        for i, cell in enumerate(true_cells):
            self.emit(head, cell, [Fork(body_entry, 1)], name=f"loop-enter@{stmt.line}.{i}")
        for i, cell in enumerate(false_cells):
            self.emit(head, cell, [Fork(exit_, 1)], name=f"loop-exit@{stmt.line}.{i}")
        self.compile_block(stmt.body, body_entry, head)
        if stmt.invariant is not None:
            self.invariants[head] = bool_to_polyhedron(
                stmt.invariant, self.variables, self.integer_mode
            )


# ---------------------------------------------------------------------------
# clean-up passes
# ---------------------------------------------------------------------------


def _compose(first: AffineUpdate, then: AffineUpdate) -> AffineUpdate:
    """The update applying ``first`` and then ``then`` (program vars only).

    Sampling variables in ``then`` are left untouched — callers must ensure
    the two updates reference disjoint sampling variables so fusing does not
    merge independent draws.
    """
    composed: Dict[str, LinExpr] = {}
    targets = set(first.assignments) | set(then.assignments)
    for v in targets:
        composed[v] = then.expr_for(v).substitute(
            {name: first.expr_for(name) for name in then.expr_for(v).variables()}
        )
    return AffineUpdate(composed)


def _assigned_or_read(update: AffineUpdate) -> List[str]:
    names = set(update.assignments)
    for expr in update.assignments.values():
        names.update(expr.variables())
    return sorted(names)


def _sampling_vars_used(update: AffineUpdate, sampling: set) -> set:
    used = set()
    for expr in update.assignments.values():
        used |= set(expr.variables()) & sampling
    return used


def _is_trivial(pts: PTS, loc: str) -> Optional[Fork]:
    """The single unconditional deterministic fork out of ``loc``, if any."""
    ts = pts.transitions_from(loc)
    if len(ts) != 1:
        return None
    t = ts[0]
    if t.guard.inequalities or len(t.forks) != 1:
        return None
    fork = t.forks[0]
    if fork.destination == loc:
        return None
    return fork


def _elide_trivial_locations(pts: PTS, keep: set) -> PTS:
    """Fuse chains of unconditional deterministic transitions."""
    sampling = set(pts.distributions)
    changed = True
    transitions = list(pts.transitions)
    while changed:
        changed = False
        current = PTS(
            pts.program_vars,
            pts.init_location,
            pts.init_valuation,
            transitions,
            pts.distributions,
            name=pts.name,
        )
        for loc in current.interior_locations:
            if loc == current.init_location or loc in keep:
                continue
            through = _is_trivial(current, loc)
            if through is None:
                continue
            through_samples = _sampling_vars_used(through.update, sampling)
            new_transitions: List[Transition] = []
            redirected = False
            ok = True
            for t in transitions:
                if t.source == loc:
                    new_transitions.append(t)
                    continue
                new_forks = []
                for f in t.forks:
                    if f.destination == loc:
                        if through_samples & _sampling_vars_used(f.update, sampling):
                            ok = False  # would merge two independent draws
                            break
                        new_forks.append(
                            Fork(
                                through.destination,
                                f.probability,
                                _compose(f.update, through.update),
                            )
                        )
                        redirected = True
                    else:
                        new_forks.append(f)
                if not ok:
                    break
                new_transitions.append(Transition(t.source, t.guard, new_forks, name=t.name))
            if ok and redirected:
                # drop the now-bypassed location's own transition
                transitions = [t for t in new_transitions if t.source != loc]
                changed = True
                break
    return PTS(
        pts.program_vars,
        pts.init_location,
        pts.init_valuation,
        transitions,
        pts.distributions,
        name=pts.name,
    )


def _substitute_guard(guard: Polyhedron, update: AffineUpdate, variables) -> Polyhedron:
    """The weakest precondition of ``guard`` under a deterministic update."""
    ineqs = []
    for ineq in guard.inequalities:
        expr = ineq.expr.substitute(
            {name: update.expr_for(name) for name in ineq.expr.variables()}
        )
        ineqs.append(AffineIneq(expr))
    return Polyhedron(variables, ineqs)


def _propagate_guard_chains(pts: PTS, keep: set, max_rounds: int = 40) -> PTS:
    """Inline pure guard-dispatcher locations into their predecessors.

    A location ``l`` qualifies when every outgoing transition is a single
    deterministic prob-1 fork (assert and if-chains compile to this shape)
    and every *incoming* fork is itself a deterministic prob-1 sampling-free
    fork.  Each incoming transition is then split along ``l``'s guard cells,
    with the guards pulled back through the incoming update (weakest
    precondition).  This recovers the paper's PTS shape, e.g. Figure 1's
    direct ``l_init --(x<=99 and y>=100)--> l_fail`` edge, and — crucially —
    lets box invariants suffice where the intermediate location would have
    needed a relational invariant.
    """
    sampling = set(pts.distributions)
    transitions = list(pts.transitions)
    for _ in range(max_rounds):
        current = PTS(
            pts.program_vars,
            pts.init_location,
            pts.init_valuation,
            transitions,
            pts.distributions,
            name=pts.name,
        )
        target = None
        for loc in current.interior_locations:
            if loc == current.init_location or loc in keep:
                continue
            outgoing = current.transitions_from(loc)
            if not outgoing:
                continue
            if not all(
                len(t.forks) == 1
                and t.forks[0].probability == 1
                and t.forks[0].destination != loc
                for t in outgoing
            ):
                continue
            incoming = [
                (t, f)
                for t in transitions
                for f in t.forks
                if f.destination == loc and t.source != loc
            ]
            if not incoming:
                continue
            if not all(
                len(t.forks) == 1
                and f.probability == 1
                and not _sampling_vars_used(f.update, sampling)
                for t, f in incoming
            ):
                continue
            target = loc
            break
        if target is None:
            break
        outgoing = current.transitions_from(target)
        rewritten: List[Transition] = []
        for t in transitions:
            if t.source == target:
                continue  # bypassed; dropped once unreachable
            fork = t.forks[0] if len(t.forks) == 1 else None
            if fork is None or fork.destination != target:
                rewritten.append(t)
                continue
            for k, out in enumerate(outgoing):
                pulled = _substitute_guard(out.guard, fork.update, pts.program_vars)
                guard = Polyhedron(
                    pts.program_vars,
                    list(t.guard.inequalities) + list(pulled.inequalities),
                )
                if guard.is_empty():
                    continue
                rewritten.append(
                    Transition(
                        t.source,
                        guard,
                        [
                            Fork(
                                out.forks[0].destination,
                                1,
                                _compose(fork.update, out.forks[0].update),
                            )
                        ],
                        name=f"{t.name}>{out.name}",
                    )
                )
        transitions = rewritten
    return PTS(
        pts.program_vars,
        pts.init_location,
        pts.init_valuation,
        transitions,
        pts.distributions,
        name=pts.name,
    )


def _flatten_probabilistic_chains(pts: PTS, keep: set, max_rounds: int = 200) -> PTS:
    """Merge chains of unconditional probabilistic transitions into one fork set.

    Whenever a fork ``f`` (with a sampling-free update) lands on an interior
    location ``m`` whose *only* behaviour is a single always-enabled
    transition, ``f`` is replaced by that transition's forks with composed
    updates and multiplied probabilities.  Nested ``switch``/``prob``
    branches thus collapse into the single multi-fork transitions of the
    paper's hand-built PTSs (e.g. 3DWalk's one switch node with
    probabilities .45/.45/.05/.05), which both shrinks the template count
    and removes per-location constraint pessimism.
    """
    sampling = set(pts.distributions)
    transitions = list(pts.transitions)
    for _ in range(max_rounds):
        current = PTS(
            pts.program_vars,
            pts.init_location,
            pts.init_valuation,
            transitions,
            pts.distributions,
            name=pts.name,
        )
        flattened = False
        new_transitions: List[Transition] = []
        for t in transitions:
            new_forks: List[Fork] = []
            changed = False
            for f in t.forks:
                m = f.destination
                if (
                    m == t.source
                    or m in keep
                    or current.is_sink(m)
                    or m == current.init_location
                ):
                    new_forks.append(f)
                    continue
                outgoing = current.transitions_from(m)
                if len(outgoing) != 1 or outgoing[0].guard.inequalities:
                    new_forks.append(f)
                    continue
                through = outgoing[0]
                if any(fk.destination == m for fk in through.forks):
                    new_forks.append(f)
                    continue
                f_samples = _sampling_vars_used(f.update, sampling)
                conflict = any(
                    f_samples & _sampling_vars_used(fk.update, sampling)
                    for fk in through.forks
                )
                if f_samples and conflict:
                    new_forks.append(f)
                    continue
                for fk in through.forks:
                    new_forks.append(
                        Fork(
                            fk.destination,
                            f.probability * fk.probability,
                            _compose(f.update, fk.update),
                        )
                    )
                changed = True
            if changed:
                flattened = True
                # merge forks with identical destination and update
                merged: List[Fork] = []
                for fork in new_forks:
                    for i, existing in enumerate(merged):
                        if (
                            existing.destination == fork.destination
                            and existing.update == fork.update
                        ):
                            merged[i] = Fork(
                                existing.destination,
                                existing.probability + fork.probability,
                                existing.update,
                            )
                            break
                    else:
                        merged.append(fork)
                new_transitions.append(Transition(t.source, t.guard, merged, name=t.name))
            else:
                new_transitions.append(t)
        transitions = new_transitions
        if not flattened:
            break
    return PTS(
        pts.program_vars,
        pts.init_location,
        pts.init_valuation,
        transitions,
        pts.distributions,
        name=pts.name,
    )


def _fold_initial(pts: PTS) -> PTS:
    """Constant-fold leading deterministic sampling-free updates into v_init."""
    sampling = set(pts.distributions)
    init_loc = pts.init_location
    init_val = dict(pts.init_valuation)
    transitions = list(pts.transitions)
    while True:
        current = PTS(
            pts.program_vars, init_loc, init_val, transitions, pts.distributions, name=pts.name
        )
        fork = _is_trivial(current, init_loc)
        if fork is None or _sampling_vars_used(fork.update, sampling):
            break
        # folding is only safe when nothing else jumps back to the old init
        incoming = any(
            f.destination == init_loc for t in transitions for f in t.forks
        )
        if incoming:
            break
        init_val = fork.update.apply(init_val)
        transitions = [t for t in transitions if t.source != init_loc]
        init_loc = fork.destination
        if init_loc in (pts.term_location, pts.fail_location):
            break
    if init_loc in (pts.term_location, pts.fail_location):
        # degenerate program that terminates immediately: keep a stub
        stub = "l0_init"
        transitions = [
            Transition(stub, Polyhedron.universe(pts.program_vars), [Fork(init_loc, 1)])
        ]
        init_loc = stub
    return PTS(
        pts.program_vars, init_loc, init_val, transitions, pts.distributions, name=pts.name
    )


def _remove_unreachable(pts: PTS) -> PTS:
    """Drop locations not reachable from the initial location."""
    reachable = {pts.init_location}
    frontier = [pts.init_location]
    while frontier:
        loc = frontier.pop()
        for t in pts.transitions_from(loc):
            for f in t.forks:
                if f.destination not in reachable:
                    reachable.add(f.destination)
                    frontier.append(f.destination)
    transitions = [t for t in pts.transitions if t.source in reachable]
    return PTS(
        pts.program_vars,
        pts.init_location,
        pts.init_valuation,
        transitions,
        pts.distributions,
        name=pts.name,
    )


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def compile_program(
    program: ast.Program, integer_mode: bool = True, name: str = "program"
) -> CompilationResult:
    """Compile a parsed program to a PTS (with invariant annotations)."""
    return _Compiler(program, integer_mode, name).compile()


def compile_source(
    source: str, integer_mode: bool = True, name: str = "program"
) -> CompilationResult:
    """Parse and compile source text in one call."""
    from repro.lang.parser import parse_program

    return compile_program(parse_program(source), integer_mode=integer_mode, name=name)
