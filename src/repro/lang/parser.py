"""Recursive-descent parser for the probabilistic surface language.

Grammar (indentation-structured; ``[...]`` optional, ``{...}`` repetition)::

    program   : { statement }
    statement : assign | sample | constdecl | while | if | switch
              | assert | 'exit' | 'skip'
    assign    : namelist (':=' | '=') exprlist
    sample    : NAME '~' dist
    constdecl : 'const' NAME '=' numexpr
    dist      : 'uniform' '(' numexpr ',' numexpr ')'
              | 'bernoulli' '(' numexpr ')'
              | 'normal' '(' numexpr ',' numexpr ')'
              | 'discrete' '(' pair { ',' pair } ')'       pair: '(' p ',' v ')'
    while     : 'while' bool [ 'invariant' bool ] ':' suite
    if        : 'if' 'prob' '(' numexpr ')' ':' suite [ 'else' ':' suite ]
              | 'if' bool ':' suite [ 'else' ':' suite ]
    switch    : 'switch' ':' NEWLINE INDENT { 'prob' '(' numexpr ')' ':' suite } DEDENT
    assert    : 'assert' bool
    suite     : simple { ';' simple } NEWLINE            (single-line body)
              | NEWLINE INDENT { statement } DEDENT
    bool      : boolterm { 'or' boolterm }
    boolterm  : boolfactor { 'and' boolfactor }
    boolfactor: 'not' boolfactor | 'true' | 'false'
              | '(' bool ')' | expr cmp expr              cmp: <= < >= > == !=
    expr      : affine arithmetic over NAME/NUMBER with + - * / ( )

Arithmetic is affine by construction: products need a constant factor and
divisors must be constants.  Names bound by ``const`` fold to numbers
everywhere, including probabilities.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import Token, tokenize
from repro.polyhedra.linexpr import LinExpr
from repro.pts.distributions import (
    DiscreteDistribution,
    Distribution,
    NormalDistribution,
    UniformDistribution,
    bernoulli,
)
from repro.utils.numbers import as_fraction

__all__ = ["parse_program"]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.constants: Dict[str, Fraction] = {}

    # -- token plumbing -----------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {tok.text or tok.kind!r}", tok.line, tok.column)
        return self.advance()

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, tok.line, tok.column)

    # -- program / statements ---------------------------------------------------------
    def parse_program(self) -> ast.Program:
        body: List[ast.Statement] = []
        while not self.check("EOF"):
            body.append(self.parse_statement())
        return ast.Program(body, constants=dict(self.constants))

    def parse_statement(self) -> ast.Statement:
        tok = self.peek()
        if tok.kind == "KEYWORD":
            handler = {
                "while": self.parse_while,
                "if": self.parse_if,
                "switch": self.parse_switch,
                "assert": self.parse_assert,
                "exit": self.parse_exit,
                "skip": self.parse_skip,
                "const": self.parse_const,
            }.get(tok.text)
            if handler is None:
                raise self.error(f"unexpected keyword {tok.text!r}")
            return handler()
        if tok.kind == "NAME":
            if self.peek(1).kind == "OP" and self.peek(1).text == "~":
                return self.parse_sample_decl()
            return self.parse_assign()
        raise self.error(f"unexpected token {tok.text or tok.kind!r}")

    def parse_simple_statement(self) -> ast.Statement:
        """A statement allowed on a single-line suite (no nested blocks)."""
        tok = self.peek()
        if tok.kind == "KEYWORD" and tok.text in ("assert", "exit", "skip"):
            return self.parse_statement_headless()
        if tok.kind == "NAME":
            return self.parse_assign(consume_newline=False)
        raise self.error("only assignments, assert, exit and skip may appear on a suite line")

    def parse_statement_headless(self) -> ast.Statement:
        tok = self.peek()
        if tok.text == "assert":
            self.advance()
            cond = self.parse_bool()
            return ast.Assert(cond, line=tok.line)
        if tok.text == "exit":
            self.advance()
            return ast.Exit(line=tok.line)
        if tok.text == "skip":
            self.advance()
            return ast.Skip(line=tok.line)
        raise self.error(f"unexpected {tok.text!r}")

    def parse_assign(self, consume_newline: bool = True) -> ast.Assign:
        first = self.expect("NAME")
        targets = [first.text]
        while self.accept("OP", ","):
            targets.append(self.expect("NAME").text)
        if not (self.accept("OP", ":=") or self.accept("OP", "=")):
            raise self.error("expected ':=' in assignment")
        values = [self.parse_expr()]
        while self.accept("OP", ","):
            values.append(self.parse_expr())
        if len(values) != len(targets):
            raise ParseError(
                f"assignment arity mismatch: {len(targets)} targets, {len(values)} values",
                first.line,
                first.column,
            )
        if len(set(targets)) != len(targets):
            raise ParseError("duplicate assignment target", first.line, first.column)
        if consume_newline:
            self.expect("NEWLINE")
        return ast.Assign(tuple(targets), tuple(values), line=first.line)

    def parse_sample_decl(self) -> ast.SampleDecl:
        name_tok = self.expect("NAME")
        self.expect("OP", "~")
        dist = self.parse_distribution()
        self.expect("NEWLINE")
        return ast.SampleDecl(name_tok.text, dist, line=name_tok.line)

    def parse_distribution(self) -> Distribution:
        tok = self.peek()
        if tok.kind != "KEYWORD" or tok.text not in ("uniform", "bernoulli", "normal", "discrete"):
            raise self.error("expected a distribution (uniform/bernoulli/normal/discrete)")
        self.advance()
        self.expect("OP", "(")
        if tok.text == "uniform":
            lo = self.parse_numexpr()
            self.expect("OP", ",")
            hi = self.parse_numexpr()
            self.expect("OP", ")")
            return UniformDistribution(lo, hi)
        if tok.text == "bernoulli":
            p = self.parse_numexpr()
            self.expect("OP", ")")
            return bernoulli(p)
        if tok.text == "normal":
            mu = self.parse_numexpr()
            self.expect("OP", ",")
            sigma = self.parse_numexpr()
            self.expect("OP", ")")
            return NormalDistribution(mu, sigma)
        pairs: List[Tuple[Fraction, Fraction]] = []
        while True:
            self.expect("OP", "(")
            p = self.parse_numexpr()
            self.expect("OP", ",")
            v = self.parse_numexpr()
            self.expect("OP", ")")
            pairs.append((p, v))
            if not self.accept("OP", ","):
                break
        self.expect("OP", ")")
        return DiscreteDistribution(pairs)

    def parse_const(self) -> ast.Statement:
        tok = self.expect("KEYWORD", "const")
        name = self.expect("NAME").text
        if not (self.accept("OP", "=") or self.accept("OP", ":=")):
            raise self.error("expected '=' in const declaration")
        value = self.parse_numexpr()
        self.expect("NEWLINE")
        self.constants[name] = value
        return ast.Skip(line=tok.line)

    def parse_while(self) -> ast.While:
        tok = self.expect("KEYWORD", "while")
        cond = self.parse_bool()
        invariant = None
        if self.accept("KEYWORD", "invariant"):
            invariant = self.parse_bool()
        body = self.parse_suite()
        return ast.While(cond, body, invariant=invariant, line=tok.line)

    def parse_if(self) -> ast.Statement:
        tok = self.expect("KEYWORD", "if")
        if self.check("KEYWORD", "prob"):
            self.advance()
            self.expect("OP", "(")
            p = self.parse_numexpr()
            self.expect("OP", ")")
            then = self.parse_suite()
            orelse: List[ast.Statement] = []
            if self.accept("KEYWORD", "else"):
                orelse = self.parse_suite()
            return ast.ProbIf(p, then, orelse, line=tok.line)
        cond = self.parse_bool()
        then = self.parse_suite()
        orelse = []
        if self.accept("KEYWORD", "else"):
            orelse = self.parse_suite()
        return ast.If(cond, then, orelse, line=tok.line)

    def parse_switch(self) -> ast.Switch:
        tok = self.expect("KEYWORD", "switch")
        self.expect("OP", ":")
        self.expect("NEWLINE")
        self.expect("INDENT")
        arms: List[Tuple[Fraction, List[ast.Statement]]] = []
        while self.check("KEYWORD", "prob"):
            self.advance()
            self.expect("OP", "(")
            p = self.parse_numexpr()
            self.expect("OP", ")")
            arms.append((p, self.parse_suite()))
        self.expect("DEDENT")
        if not arms:
            raise ParseError("switch needs at least one prob(...) arm", tok.line, tok.column)
        total = sum((p for p, _ in arms), Fraction(0))
        if total != 1:
            raise ParseError(f"switch arm probabilities sum to {total}, not 1", tok.line, tok.column)
        return ast.Switch(arms, line=tok.line)

    def parse_assert(self) -> ast.Assert:
        tok = self.expect("KEYWORD", "assert")
        cond = self.parse_bool()
        self.expect("NEWLINE")
        return ast.Assert(cond, line=tok.line)

    def parse_exit(self) -> ast.Exit:
        tok = self.expect("KEYWORD", "exit")
        self.expect("NEWLINE")
        return ast.Exit(line=tok.line)

    def parse_skip(self) -> ast.Skip:
        tok = self.expect("KEYWORD", "skip")
        self.expect("NEWLINE")
        return ast.Skip(line=tok.line)

    def parse_suite(self) -> List[ast.Statement]:
        self.expect("OP", ":")
        if self.accept("NEWLINE"):
            self.expect("INDENT")
            body: List[ast.Statement] = []
            while not self.check("DEDENT"):
                body.append(self.parse_statement())
            self.expect("DEDENT")
            return body
        # single-line suite: simple statements separated by ';'
        body = [self.parse_simple_statement()]
        while self.accept("OP", ";"):
            body.append(self.parse_simple_statement())
        self.expect("NEWLINE")
        return body

    # -- expressions ------------------------------------------------------------------
    def parse_numexpr(self) -> Fraction:
        """A constant arithmetic expression (probabilities, dist parameters)."""
        expr = self.parse_expr()
        if not expr.is_constant:
            raise self.error("expected a constant expression")
        return expr.const

    def parse_expr(self) -> LinExpr:
        left = self.parse_term()
        while True:
            if self.accept("OP", "+"):
                left = left + self.parse_term()
            elif self.accept("OP", "-"):
                left = left - self.parse_term()
            else:
                return left

    def parse_term(self) -> LinExpr:
        left = self.parse_factor()
        while True:
            if self.accept("OP", "*"):
                right = self.parse_factor()
                if left.is_constant:
                    left = right * left.const
                elif right.is_constant:
                    left = left * right.const
                else:
                    raise self.error("non-affine product of two variables")
            elif self.accept("OP", "/"):
                right = self.parse_factor()
                if not right.is_constant:
                    raise self.error("division by a non-constant")
                if right.const == 0:
                    raise self.error("division by zero")
                left = left / right.const
            else:
                return left

    def parse_factor(self) -> LinExpr:
        if self.accept("OP", "-"):
            return -self.parse_factor()
        if self.accept("OP", "+"):
            return self.parse_factor()
        tok = self.peek()
        if tok.kind == "NUMBER":
            self.advance()
            return LinExpr.constant(as_fraction(tok.text if ("." in tok.text or "e" in tok.text or "E" in tok.text) else int(tok.text)))
        if tok.kind == "NAME":
            self.advance()
            if tok.text in self.constants:
                return LinExpr.constant(self.constants[tok.text])
            return LinExpr.variable(tok.text)
        if self.accept("OP", "("):
            inner = self.parse_expr()
            self.expect("OP", ")")
            return inner
        raise self.error(f"unexpected token {tok.text or tok.kind!r} in expression")

    # -- boolean expressions -------------------------------------------------------------
    def parse_bool(self) -> ast.BoolExpr:
        left = self.parse_bool_term()
        terms = [left]
        while self.accept("KEYWORD", "or"):
            terms.append(self.parse_bool_term())
        return terms[0] if len(terms) == 1 else ast.Or(tuple(terms))

    def parse_bool_term(self) -> ast.BoolExpr:
        factors = [self.parse_bool_factor()]
        while self.accept("KEYWORD", "and"):
            factors.append(self.parse_bool_factor())
        return factors[0] if len(factors) == 1 else ast.And(tuple(factors))

    def parse_bool_factor(self) -> ast.BoolExpr:
        if self.accept("KEYWORD", "not"):
            return ast.Not(self.parse_bool_factor())
        if self.accept("KEYWORD", "true"):
            return ast.BoolConst(True)
        if self.accept("KEYWORD", "false"):
            return ast.BoolConst(False)
        if self.check("OP", "("):
            # ambiguous: parenthesized boolean or arithmetic subexpression.
            saved = self.pos
            try:
                return self.parse_comparison()
            except ParseError:
                self.pos = saved
            self.expect("OP", "(")
            inner = self.parse_bool()
            self.expect("OP", ")")
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> ast.BoolExpr:
        left = self.parse_expr()
        tok = self.peek()
        ops = {"<=", "<", ">=", ">", "==", "!="}
        if tok.kind != "OP" or tok.text not in ops:
            raise self.error("expected a comparison operator")
        self.advance()
        right = self.parse_expr()
        diff = left - right
        if tok.text == "<=":
            return ast.Atom(diff)
        if tok.text == "<":
            return ast.Atom(diff, strict=True)
        if tok.text == ">=":
            return ast.Atom(-diff)
        if tok.text == ">":
            return ast.Atom(-diff, strict=True)
        if tok.text == "==":
            return ast.And((ast.Atom(diff), ast.Atom(-diff)))
        return ast.Or((ast.Atom(diff, strict=True), ast.Atom(-diff, strict=True)))


def parse_program(source: str) -> ast.Program:
    """Parse source text into a :class:`~repro.lang.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()
