"""The differential-fuzzing farm: one generated PTS, every lowering.

Each generated program is lowered through the full explorer/solver grid
— ``fraction``/``int64``/``scaled`` where admitted, times
``sweep``/``direct``/``sor``/``anderson`` — as an *engine task DAG*, so
``--jobs`` fans the grid out across workers and the engine's fault
tolerance (retries, deadlines, pool self-healing) applies to fuzz runs
exactly as it does to production tables.  The oracle stack, cheapest
first:

1. **admission differential** — :func:`repro.core.runcert.derive_admission`
   independently predicts which forced modes must run and which must
   refuse; the engine disagreeing either way is a finding in itself;
2. **bracket cross-check** — all surviving brackets must pairwise
   overlap (they bound the same truncated-model value), forced explorers
   must reproduce the Fraction BFS fragment exactly (same states, same
   truncation), and no solver may escape the sweep baseline outward
   beyond tolerance;
3. **certificate check** — every successful run's
   :class:`~repro.core.runcert.RunCertificate` is verified by the
   independent checker against a locally compiled PTS (translation
   validation instead of a bitwise re-run).

A discrepancy is shrunk to a locally-minimal reproducer
(:mod:`repro.fuzz.shrink`) and archived with its replay triple
(:mod:`repro.fuzz.corpus`).  ``inject`` plants a synthetic
bracket-overlap violation in matching programs — the self-test that the
detect -> shrink -> archive path works end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

from . import corpus as corpus_mod
from .generators import (
    FAMILIES,
    GENERATOR_VERSION,
    GeneratedProgram,
    corpus_plan,
)
from .shrink import shrink_source

#: every oracle mode of `iterate_model` the farm forces per explorer.
DEFAULT_SOLVERS: Tuple[str, ...] = ("sweep", "direct", "sor", "anderson")

#: bracket-overlap tolerance: every surviving bracket bounds the same
#: truncated-model value, so intersections only fail by engine bugs.
OVERLAP_TOL = 1e-9

#: outward-escape tolerance vs the fraction/sweep baseline — loose
#: enough for the iterative oracles' certification slack.
ESCAPE_TOL = 1e-6


@dataclass
class Discrepancy:
    """One cross-check violation, plus its shrunk reproducer."""

    name: str
    family: str
    seed: int
    kind: str
    detail: str
    injected: bool = False
    shrunk_source: Optional[str] = None


@dataclass
class ProgramVerdict:
    program: GeneratedProgram
    cells: List[Dict[str, Any]] = field(default_factory=list)
    discrepancies: List[Discrepancy] = field(default_factory=list)
    admission: str = ""  # "int64" | "scaled" | the rejection reason

    @property
    def ok_runs(self) -> int:
        return sum(1 for c in self.cells if c["ok"])

    @property
    def refusals_confirmed(self) -> int:
        return sum(
            1 for c in self.cells if c["expected"] == "refuse" and not c["ok"]
        )

    @property
    def certificates_verified(self) -> int:
        return sum(1 for c in self.cells if c.get("cert_ok"))


@dataclass
class FarmReport:
    seed: int
    count: int
    families: Tuple[str, ...]
    jobs: int
    max_states: int
    generator_version: str = GENERATOR_VERSION
    verdicts: List[ProgramVerdict] = field(default_factory=list)
    corpus_dir: Optional[str] = None
    failure_dir: Optional[str] = None

    @property
    def discrepancies(self) -> List[Discrepancy]:
        return [d for v in self.verdicts for d in v.discrepancies]

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def render(self) -> List[str]:
        fams = ",".join(self.families)
        lines = [
            f"fuzz farm: seed={self.seed} count={self.count} families={fams} "
            f"generator={self.generator_version} jobs={self.jobs} "
            f"max-states={self.max_states}"
        ]
        for v in self.verdicts:
            grid = f"{v.ok_runs} ok"
            if v.refusals_confirmed:
                grid += f" + {v.refusals_confirmed} refusal(s) confirmed"
            status = "ok" if not v.discrepancies else "DISCREPANT"
            lines.append(
                f"  {v.program.name:<28} {v.program.family:<13} "
                f"lattice={v.admission:<8} runs={grid:<28} "
                f"certs={v.certificates_verified:<3} {status}"
            )
        per_family: Dict[str, int] = {}
        for v in self.verdicts:
            per_family[v.program.family] = per_family.get(v.program.family, 0) + 1
        fam_summary = ", ".join(f"{n} {f}" for f, n in sorted(per_family.items()))
        total_cells = sum(len(v.cells) for v in self.verdicts)
        ok_cells = sum(v.ok_runs for v in self.verdicts)
        refusals = sum(v.refusals_confirmed for v in self.verdicts)
        certs = sum(v.certificates_verified for v in self.verdicts)
        lines += [
            f"programs      : {len(self.verdicts)} ({fam_summary})",
            f"engine runs   : {ok_cells} ok / {total_cells} "
            f"({refusals} expected refusal(s) confirmed)",
            f"certificates  : {certs} verified",
            f"discrepancies : {len(self.discrepancies)}",
        ]
        for d in self.discrepancies:
            tag = " [injected]" if d.injected else ""
            lines.append(f"  !! {d.name} {d.kind}{tag}: {d.detail}")
            if d.shrunk_source is not None:
                size = len(d.shrunk_source.split("\n"))
                lines.append(f"     shrunk reproducer: {size} line(s)")
        if self.corpus_dir:
            lines.append(f"corpus        : {len(self.verdicts)} entries -> {self.corpus_dir}")
        if self.failure_dir and self.discrepancies:
            lines.append(f"failures      : archived -> {self.failure_dir}")
        return lines


# ---------------------------------------------------------------------------
# admission prediction (the checker side of the differential)


def _expectations(pts) -> Tuple[Dict[str, str], str]:
    """Which forced explorers must run ("ok") vs refuse ("refuse"),
    derived by the *checker's* admission logic — never the engine's."""
    from repro.core.runcert import derive_admission

    record, reason = derive_admission(pts)
    if record is None:
        return (
            {"fraction": "ok", "int64": "refuse", "scaled": "refuse"},
            reason or "inadmissible",
        )
    if record["lattice"] == "int64":
        return {"fraction": "ok", "int64": "ok", "scaled": "ok"}, "int64"
    return {"fraction": "ok", "int64": "refuse", "scaled": "ok"}, "scaled"


def _grid(expect: Dict[str, str], solvers: Sequence[str]):
    for explore, expected in expect.items():
        # a refusal is mode-level, not solver-level: probe it once
        for solver in (solvers if expected == "ok" else solvers[:1]):
            yield explore, solver, expected


# ---------------------------------------------------------------------------
# cell execution


_CELL_DETAIL_KEYS = (
    "lower",
    "upper",
    "states",
    "iterations",
    "truncated",
    "solver",
    "certified",
    "explorer",
)


def _cell_from_result(explore: str, solver: str, expected: str, res) -> Dict[str, Any]:
    cell: Dict[str, Any] = {
        "explore": explore,
        "solver": solver,
        "expected": expected,
        "ok": res.status == "ok",
        "error": res.error,
        "error_type": res.error_type,
    }
    if res.status == "ok":
        cell.update({k: (res.details or {}).get(k) for k in _CELL_DETAIL_KEYS})
        cell["run_certificate"] = res.run_certificate
    return cell


def _direct_cell(
    pts,
    explore: str,
    solver: str,
    expected: str,
    max_states: int,
    source: str,
    integer_mode: bool,
    name: str,
) -> Dict[str, Any]:
    """In-process execution of one grid cell — the shrink predicate's
    engine-free twin of :func:`repro.core.runcert.synthesize_exact`."""
    from repro.core.fixpoint import build_sparse_model, iterate_model
    from repro.core.runcert import emit_run_certificate

    cell: Dict[str, Any] = {
        "explore": explore,
        "solver": solver,
        "expected": expected,
    }
    try:
        model = build_sparse_model(pts, max_states=max_states, explore=explore)
        result = iterate_model(model, solver=solver)
    except ReproError as exc:
        cell.update(ok=False, error=str(exc), error_type=type(exc).__name__)
        return cell
    cert = emit_run_certificate(
        pts,
        model,
        result,
        max_states=max_states,
        explore=explore,
        name=name,
        source=source,
        integer_mode=integer_mode,
    )
    cell.update(
        ok=True,
        error="",
        error_type="",
        lower=result.lower,
        upper=result.upper,
        states=result.states,
        iterations=result.iterations,
        truncated=result.truncated,
        solver=result.solver,
        certified=result.certified,
        explorer=model.explored_via,
        run_certificate=cert.as_dict(),
    )
    return cell


# ---------------------------------------------------------------------------
# cross-checks


def _apply_injection(cells: List[Dict[str, Any]]) -> None:
    """The synthetic-discrepancy hook: corrupt the baseline cell's
    observed bracket so the overlap check must fire.  Deterministic, so
    the shrinker's re-checks reproduce it on every candidate."""
    for cell in cells:
        if cell["ok"] and cell["explore"] == "fraction":
            cell["lower"] = float(cell["upper"]) + 0.5
            cell["injected"] = True
            return


def cross_check_cells(
    cells: List[Dict[str, Any]],
    inject: bool = False,
    admission_reason: str = "",
) -> List[Tuple[str, str]]:
    """The bracket/admission oracle over normalized grid cells.

    Returns ``(kind, detail)`` pairs; empty means every check passed.
    """
    discs: List[Tuple[str, str]] = []
    if inject:
        _apply_injection(cells)

    ok_cells = [c for c in cells if c["ok"]]
    for cell in cells:
        where = f"{cell['explore']}/{cell['solver']}"
        if cell["expected"] == "refuse" and cell["ok"]:
            discs.append(
                (
                    "admission-mismatch",
                    f"forced {cell['explore']} ran although the checker derives "
                    f"inadmissibility ({admission_reason})",
                )
            )
        elif cell["expected"] == "refuse" and cell["error_type"] != "ModelError":
            discs.append(
                (
                    "task-error",
                    f"{where}: refused with {cell['error_type']} instead of "
                    f"ModelError: {cell['error']}",
                )
            )
        elif cell["expected"] == "ok" and not cell["ok"]:
            if "overflow" in (cell["error"] or "").lower():
                # static admission passed but the run overflowed int64 at
                # runtime — a legitimate conservative refusal, not a bug
                cell["overflow_refusal"] = True
            else:
                discs.append(
                    (
                        "task-error",
                        f"{where}: expected to run but failed with "
                        f"{cell['error_type']}: {cell['error']}",
                    )
                )

    if ok_cells:
        # 1. pairwise overlap: every bracket bounds the same value
        lo_cell = max(ok_cells, key=lambda c: c["lower"])
        hi_cell = min(ok_cells, key=lambda c: c["upper"])
        if lo_cell["lower"] > hi_cell["upper"] + OVERLAP_TOL:
            discs.append(
                (
                    "bracket-overlap",
                    f"{lo_cell['explore']}/{lo_cell['solver']} lower "
                    f"{lo_cell['lower']:.9f} > "
                    f"{hi_cell['explore']}/{hi_cell['solver']} upper "
                    f"{hi_cell['upper']:.9f}",
                )
            )
        # 2. explorer identity: forced modes replay the Fraction BFS
        # fragment exactly (bench asserts the same vs the reference)
        by_solver: Dict[str, List[Dict[str, Any]]] = {}
        for c in ok_cells:
            by_solver.setdefault(c["solver"] or "", []).append(c)
        for solver, group in by_solver.items():
            states = {c["states"] for c in group}
            truncated = {c["truncated"] for c in group}
            if len(states) > 1 or len(truncated) > 1:
                shapes = ", ".join(
                    f"{c['explore']}:{c['states']}{'T' if c['truncated'] else ''}"
                    for c in group
                )
                discs.append(
                    (
                        "explorer-divergence",
                        f"solver {solver}: explorers disagree on the explored "
                        f"fragment ({shapes})",
                    )
                )
        # 3. outward escape vs the fraction/sweep baseline
        baseline = next(
            (
                c
                for c in ok_cells
                if c["explore"] == "fraction" and c["solver"] in ("sweep", None)
            ),
            ok_cells[0],
        )
        for c in ok_cells:
            if c is baseline:
                continue
            if (
                c["lower"] < baseline["lower"] - ESCAPE_TOL
                or c["upper"] > baseline["upper"] + ESCAPE_TOL
            ):
                discs.append(
                    (
                        "outward-escape",
                        f"{c['explore']}/{c['solver']} bracket "
                        f"[{c['lower']:.9f}, {c['upper']:.9f}] escapes baseline "
                        f"[{baseline['lower']:.9f}, {baseline['upper']:.9f}]",
                    )
                )
    return discs


def _check_certificates(pts, cells: List[Dict[str, Any]]) -> List[Tuple[str, str]]:
    """Verify every successful cell's RunCertificate with the independent
    checker — the translation-validation oracle."""
    from repro.core.runcert import RunCertificate, verify_run_certificate

    discs: List[Tuple[str, str]] = []
    for cell in cells:
        if not cell.get("ok") or not cell.get("run_certificate"):
            continue
        cert = RunCertificate.from_dict(cell["run_certificate"])
        report = verify_run_certificate(cert, pts=pts)
        cell["cert_ok"] = report.ok
        if not report.ok:
            first = report.failures[0] if report.failures else ("?", "?")
            discs.append(
                (
                    "certificate",
                    f"{cell['explore']}/{cell['solver']}: certificate rejected "
                    f"({first[0]}: {first[1]})",
                )
            )
    return discs


# ---------------------------------------------------------------------------
# the serial re-check (shared by the shrink predicate)


def check_source(
    source: str,
    integer_mode: bool,
    max_states: int,
    solvers: Sequence[str] = ("sweep",),
    inject: bool = False,
    name: str = "candidate",
) -> List[Tuple[str, str]]:
    """Compile + grid + cross-check + certify one program in-process.

    This is the farm distilled to a pure function of source text — the
    shrinker calls it on every reduction candidate.
    """
    from repro.lang import compile_source

    try:
        pts = compile_source(source, integer_mode=integer_mode, name=name).pts
    except ReproError as exc:
        return [("compile-error", f"{type(exc).__name__}: {exc}")]
    expect, admission = _expectations(pts)
    cells = [
        _direct_cell(pts, explore, solver, expected, max_states, source, integer_mode, name)
        for explore, solver, expected in _grid(expect, solvers)
    ]
    discs = cross_check_cells(cells, inject=inject, admission_reason=admission)
    discs += _check_certificates(pts, cells)
    return discs


def _shrink_predicate(kind: str, integer_mode: bool, max_states: int, inject: bool):
    def predicate(candidate: str) -> bool:
        kinds = [
            k
            for k, _ in check_source(
                candidate, integer_mode, max_states=max_states, inject=inject
            )
        ]
        return kind in kinds

    return predicate


# ---------------------------------------------------------------------------
# the farm


def run_farm(
    seed: int,
    count: int,
    families: Optional[Sequence[str]] = None,
    jobs: int = 1,
    max_states: int = 4096,
    solvers: Sequence[str] = DEFAULT_SOLVERS,
    out_dir=None,
    inject: Optional[str] = None,
    shrink: bool = True,
    engine=None,
) -> FarmReport:
    """Generate ``count`` programs and differential-check every lowering.

    ``inject`` plants a synthetic bracket corruption into every program
    whose name contains the given substring (``"*"`` matches all) — the
    end-to-end self-test of the detect -> shrink -> archive machinery.
    ``engine`` overrides the :class:`~repro.engine.engine.AnalysisEngine`
    (tests pass fault-injected ones); by default one is built from
    ``jobs``.
    """
    from repro.lang import compile_source

    chosen = tuple(families) if families else FAMILIES
    programs = corpus_plan(seed, count, chosen)
    report = FarmReport(
        seed=seed,
        count=count,
        families=chosen,
        jobs=jobs,
        max_states=max_states,
    )

    prepared = []
    for prog in programs:
        verdict = ProgramVerdict(program=prog)
        report.verdicts.append(verdict)
        try:
            pts = compile_source(
                prog.source, integer_mode=prog.integer_mode, name=prog.name
            ).pts
        except ReproError as exc:
            verdict.admission = "compile-error"
            verdict.discrepancies.append(
                Discrepancy(
                    name=prog.name,
                    family=prog.family,
                    seed=prog.seed,
                    kind="compile-error",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        expect, admission = _expectations(pts)
        verdict.admission = admission if admission in ("int64", "scaled") else "none"
        prepared.append((verdict, pts, expect))

    # one engine task per grid cell: --jobs fans the whole farm out, and
    # the engine's retries/deadlines/self-healing apply to fuzz runs too
    tasks, meta = [], []
    for verdict, pts, expect in prepared:
        prog = verdict.program
        from repro.engine.task import AnalysisTask, ProgramSpec

        # invariants="none": value-iteration brackets never read interval
        # invariants, and generating them costs 100x the iteration itself
        spec = ProgramSpec.from_source(
            prog.source,
            name=prog.name,
            integer_mode=prog.integer_mode,
            invariants="none",
        )
        for explore, solver, expected in _grid(expect, solvers):
            tasks.append(
                AnalysisTask.make(
                    "exact",
                    spec,
                    params={
                        "max_states": max_states,
                        "explore": explore,
                        "solver": solver,
                    },
                    task_id=f"fuzz/{prog.name}/{explore}/{solver}",
                    cacheable=False,
                )
            )
            meta.append((verdict, explore, solver, expected))

    results = _execute(tasks, jobs, engine)
    for (verdict, explore, solver, expected), res in zip(meta, results):
        verdict.cells.append(_cell_from_result(explore, solver, expected, res))

    for verdict, pts, expect in prepared:
        prog = verdict.program
        injected = inject is not None and (inject == "*" or inject in prog.name)
        _, admission = _expectations(pts)
        pairs = cross_check_cells(
            verdict.cells, inject=injected, admission_reason=admission
        )
        pairs += _check_certificates(pts, verdict.cells)
        # one finding per kind per program: a single corrupted bracket
        # trips the overlap *and* every pairwise escape check, but those
        # are the same bug — shrink and archive it once
        seen = set()
        pairs = [(k, d) for k, d in pairs if not (k in seen or seen.add(k))]
        for kind, detail in pairs:
            disc = Discrepancy(
                name=prog.name,
                family=prog.family,
                seed=prog.seed,
                kind=kind,
                detail=detail,
                injected=injected,
            )
            if shrink:
                disc.shrunk_source = shrink_source(
                    prog.source,
                    _shrink_predicate(
                        kind, prog.integer_mode, max_states, injected
                    ),
                )
            verdict.discrepancies.append(disc)

    if out_dir is not None:
        _archive(report, Path(out_dir))
    return report


def _execute(tasks, jobs: int, engine=None):
    if not tasks:
        return []
    if engine is not None:
        return engine.map(tasks)
    from repro.engine.engine import AnalysisEngine

    with AnalysisEngine.with_jobs(jobs) as eng:
        return eng.map(tasks)


def _archive(report: FarmReport, out_dir: Path) -> None:
    corpus_dir = out_dir / "corpus"
    failure_dir = out_dir / "failures"
    for verdict in report.verdicts:
        prog = verdict.program
        extra = {
            "farm": {
                "farm_seed": report.seed,
                "max_states": report.max_states,
                "admission": verdict.admission,
                "ok_runs": verdict.ok_runs,
                "refusals_confirmed": verdict.refusals_confirmed,
                "certificates_verified": verdict.certificates_verified,
                "discrepancies": [d.kind for d in verdict.discrepancies],
            }
        }
        corpus_mod.write_entry(
            corpus_dir / f"{prog.name}.json", corpus_mod.corpus_entry(prog, extra)
        )
        for i, disc in enumerate(verdict.discrepancies):
            corpus_mod.write_entry(
                failure_dir / f"{prog.name}-{disc.kind}-{i}.json",
                corpus_mod.failure_entry(
                    prog,
                    disc.kind,
                    disc.detail,
                    shrunk_source=disc.shrunk_source,
                    injected=disc.injected,
                ),
            )
    report.corpus_dir = str(corpus_dir)
    if report.discrepancies:
        report.failure_dir = str(failure_dir)
