"""Parameterized workload generators for the differential-fuzzing farm.

Every generator emits a *surface program* (the indentation-structured
language of :mod:`repro.lang`), never a hand-built PTS: a fuzzed run
exercises the whole lexer -> parser -> compiler -> PTS path before a
single state is explored.  Four named families cover shapes the curated
bench table does not:

* ``birth-death`` — bounded queueing chains (arrive/serve/idle switch,
  nested service guard) on the integer lattice;
* ``gridworld`` — multi-dimensional walks with a resetting obstacle cell
  and wall guards, integer lattice;
* ``inventory`` — restocking loops with a demand coin and a threshold
  trigger, asserting on cumulative sales;
* ``mixed-lattice`` — fractional drift steps whose denominators range up
  to (and occasionally *past*) the ``1e6`` scale cap, mixed with integer
  counters — the family that stresses scaled-lattice admission in both
  directions (admit with a huge multiplier / refuse outright).

A fifth family, ``random``, wraps :class:`ProgramGenerator` — the
grammar-directed generator that used to live privately in
``tests/test_random_programs.py`` — extended beyond its original two
variables and 1/8-grid probabilities with nested conditionals,
fractional constants near the lattice cap, and profiles that force
``integrality()`` scale rejection.

Determinism is the whole contract: ``generate(family, seed)`` is a pure
function of ``(GENERATOR_VERSION, family, seed)``, so any corpus entry
or nightly failure artifact that records those three fields replays to
the identical program text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: bump on ANY change to generator output for existing (family, seed)
#: pairs — corpus entries record it, and replay refuses on mismatch.
GENERATOR_VERSION = "fuzz-gen.v1"

#: the four farm families from the ROADMAP's scenario-diversity item.
FAMILIES: Tuple[str, ...] = ("birth-death", "gridworld", "inventory", "mixed-lattice")

#: everything `generate` accepts (the farm defaults to FAMILIES).
ALL_FAMILIES: Tuple[str, ...] = FAMILIES + ("random",)

#: scale cap mirrored from repro.pts.model._SCALE_LIMIT — denominators at
#: or below admit the scaled-int64 explorer, anything above must refuse.
SCALE_LIMIT = 10**6

#: a prime just past the cap: guaranteed scale rejection.
OVER_CAP_DENOMINATOR = 1_000_003

#: a prime just under the cap: admitted, with a near-maximal multiplier.
NEAR_CAP_DENOMINATOR = 999_983


@dataclass(frozen=True)
class GeneratedProgram:
    """One fuzzed workload: replayable from ``(family, seed)`` alone."""

    name: str
    family: str
    seed: int
    generator_version: str
    source: str
    integer_mode: bool
    params: Dict[str, object] = field(default_factory=dict, compare=False)


def _rng(family: str, seed: int) -> random.Random:
    return random.Random(f"{GENERATOR_VERSION}/{family}/{seed}")


# ---------------------------------------------------------------------------
# birth-death / queueing chains


def _gen_birth_death(rng: random.Random):
    horizon = rng.randint(8, 24)
    q0 = rng.randint(0, 2)
    cap = rng.randint(q0 + 2, q0 + 7)
    den = rng.choice((8, 10, 16, 100, 997))
    arrive = rng.randint(1, den - 2)
    serve = rng.randint(1, den - 1 - arrive)
    idle = den - arrive - serve
    arms = [
        f"        prob({arrive}/{den}): q := q + 1",
        f"        prob({serve}/{den}):\n"
        "            if q >= 1:\n"
        "                q := q - 1\n"
        "            else:\n"
        "                skip",
    ]
    if idle:
        arms.append(f"        prob({idle}/{den}): skip")
    rng.shuffle(arms)
    source = (
        f"q := {q0}\n"
        "t := 0\n"
        f"while t <= {horizon}:\n"
        "    switch:\n" + "\n".join(arms) + "\n"
        "    t := t + 1\n"
        f"assert q <= {cap}"
    )
    params = {"horizon": horizon, "cap": cap, "den": den, "arrive": arrive, "serve": serve}
    return source, True, params


# ---------------------------------------------------------------------------
# gridworlds with obstacles


def _gen_gridworld(rng: random.Random):
    width = rng.randint(3, 6)
    height = rng.randint(3, 6)
    horizon = rng.randint(6, 16)
    den = rng.choice((8, 10, 12))
    weights = [rng.randint(1, 4) for _ in range(3)]
    weights.append(max(1, den - sum(weights)))
    den = sum(weights)
    east, north, west, south = weights
    ox = rng.randint(1, width - 1)
    oy = rng.randint(1, height - 1)
    goal = rng.randint(max(width, height), width + height - 1)
    source = (
        "x := 0\n"
        "y := 0\n"
        "t := 0\n"
        f"while t <= {horizon}:\n"
        "    switch:\n"
        f"        prob({east}/{den}):\n"
        f"            if x <= {width - 1}:\n"
        "                x := x + 1\n"
        f"        prob({north}/{den}):\n"
        f"            if y <= {height - 1}:\n"
        "                y := y + 1\n"
        f"        prob({west}/{den}):\n"
        "            if x >= 1:\n"
        "                x := x - 1\n"
        f"        prob({south}/{den}):\n"
        "            if y >= 1:\n"
        "                y := y - 1\n"
        f"    if x == {ox} and y == {oy}:\n"
        "        x, y := 0, 0\n"
        "    t := t + 1\n"
        f"assert x + y <= {goal}"
    )
    params = {
        "width": width,
        "height": height,
        "horizon": horizon,
        "obstacle": (ox, oy),
        "goal": goal,
    }
    return source, True, params


# ---------------------------------------------------------------------------
# inventory / restocking


def _gen_inventory(rng: random.Random):
    days = rng.randint(8, 20)
    restock_at = rng.randint(1, 3)
    batch = rng.randint(2, 4)
    inv0 = rng.randint(restock_at + 1, restock_at + batch + 2)
    den = rng.choice((4, 8, 10, 100))
    demand = rng.randint(1, den - 1)
    target = rng.randint(days // 2, days)
    source = (
        f"inv := {inv0}\n"
        "sold := 0\n"
        "day := 0\n"
        f"while day <= {days}:\n"
        f"    if prob({demand}/{den}):\n"
        "        if inv >= 1:\n"
        "            inv, sold := inv - 1, sold + 1\n"
        f"    if inv <= {restock_at}:\n"
        f"        inv := inv + {batch}\n"
        "    day := day + 1\n"
        f"assert sold <= {target}"
    )
    params = {
        "days": days,
        "restock_at": restock_at,
        "batch": batch,
        "demand": (demand, den),
        "target": target,
    }
    return source, True, params


# ---------------------------------------------------------------------------
# mixed-lattice programs stressing scaled admission


def _gen_mixed_lattice(rng: random.Random):
    horizon = rng.randint(8, 20)
    roll = rng.random()
    if roll < 0.2:
        den = OVER_CAP_DENOMINATOR  # must be *refused* by scaled admission
    elif roll < 0.45:
        den = NEAR_CAP_DENOMINATOR  # admitted with a near-maximal multiplier
    else:
        den = rng.choice((4, 10, 20, 100, 1000, 9973))
    up = rng.randint(1, 3)
    down = rng.randint(1, 3)
    pden = rng.choice((4, 8, 10))
    pnum = rng.randint(1, pden - 1)
    # threshold (2m+1)/(2*den): the odd numerator never lands exactly on
    # the x-lattice (multiples of 1/den), so the assert boundary stays
    # away from state points while m/den sits inside the reachable range.
    # Written as a constant fraction (coefficient 1 on x) so the guard
    # row stays inside the rescaled-magnitude admission bound even at
    # near-cap denominators — the scaled fast path actually runs there
    thresh = 2 * rng.randint(1, max(1, horizon * up - 1)) + 1
    source = (
        "x := 0\n"
        "t := 0\n"
        f"while t <= {horizon}:\n"
        f"    if prob({pnum}/{pden}):\n"
        f"        x := x + {up}/{den}\n"
        "    else:\n"
        f"        x := x - {down}/{den}\n"
        "    t := t + 1\n"
        f"assert x <= {thresh}/{2 * den}"
    )
    params = {
        "horizon": horizon,
        "den": den,
        "step": (up, down),
        "p": (pnum, pden),
        "over_cap": den > SCALE_LIMIT,
    }
    return source, False, params


# ---------------------------------------------------------------------------
# grammar-directed random programs (ported from tests/test_random_programs.py)


class ProgramGenerator:
    """Generate random surface programs through the full grammar.

    Ported from the test-local generator and extended past its original
    limits (two variables, probabilities on the 1/8 grid, flat bodies):

    * three variables by default, integer shifts up to +-3;
    * probabilities drawn over denominators up to 997 (fork probabilities
      never touch the state lattice, so large denominators are free);
    * nested ``if <cmp>: ... else: ...`` conditionals alongside
      probabilistic branches and switches;
    * profile ``"fractional"`` mixes in update constants with
      denominators near the 1e6 lattice cap (scaled admission with huge
      multipliers);
    * profile ``"reject"`` guarantees a statement ``integrality()`` must
      refuse to scale — an over-cap denominator or a contractive
      ``v := v / 2`` update.

    Profile ``"pipeline"`` (the default) stays on the integer lattice and
    is what the hypothesis pipeline test drives end to end.
    """

    PROFILES = ("pipeline", "fractional", "reject")
    PROB_DENOMINATORS = (8, 10, 997)
    FRACTION_DENOMINATORS = (3, 7, 1000, NEAR_CAP_DENOMINATOR)

    def __init__(
        self,
        rng: random.Random,
        variables: Sequence[str] = ("a", "b", "c"),
        profile: str = "pipeline",
    ):
        if profile not in self.PROFILES:
            raise ValueError(f"unknown profile {profile!r}")
        self.rng = rng
        self.variables = list(variables)
        self.profile = profile

    @property
    def integer_mode(self) -> bool:
        """Strict-guard tightening (``e < 0`` -> ``e <= -1``) is only sound
        on the integer lattice; fractional profiles compile real-valued."""
        return self.profile == "pipeline"

    # -- expressions ---------------------------------------------------------
    def probability(self) -> str:
        den = self.rng.choice(self.PROB_DENOMINATORS)
        num = self.rng.randint(1, den - 1)
        return f"{num}/{den}"

    def shift_expression(self, variable: str) -> str:
        if self.profile != "pipeline" and self.rng.random() < 0.5:
            den = self.rng.choice(self.FRACTION_DENOMINATORS)
            num = self.rng.randint(1, 2)
            sign = self.rng.choice(("+", "-"))
            return f"{variable} {sign} {num}/{den}"
        shift = self.rng.randint(-2, 3)
        if shift >= 0:
            return f"{variable} + {shift}"
        return f"{variable} - {-shift}"

    def rejecting_assignment(self, indent: str) -> str:
        v = self.rng.choice(self.variables)
        if self.rng.random() < 0.5:
            # denominator past the 1e6 cap: scale analysis gives up
            return f"{indent}{v} := {v} + 1/{OVER_CAP_DENOMINATOR}"
        # contraction: the per-variable denominator doubles every coupling
        # pass until it blows through the cap
        return f"{indent}{v} := {v} / 2 + 1"

    # -- statements ----------------------------------------------------------
    def assignment(self, indent: str) -> str:
        v = self.rng.choice(self.variables)
        return f"{indent}{v} := {self.shift_expression(v)}"

    def prob_branch(self, indent: str, depth: int) -> str:
        inner = indent + "    "
        then_block = self.block(inner, depth - 1)
        else_block = self.block(inner, depth - 1)
        return (
            f"{indent}if prob({self.probability()}):\n{then_block}\n"
            f"{indent}else:\n{else_block}"
        )

    def cond_branch(self, indent: str, depth: int) -> str:
        v = self.rng.choice(self.variables)
        bound = self.rng.randint(-2, 4)
        op = self.rng.choice(("<=", ">="))
        inner = indent + "    "
        then_block = self.block(inner, depth - 1)
        else_block = self.block(inner, depth - 1)
        return (
            f"{indent}if {v} {op} {bound}:\n{then_block}\n"
            f"{indent}else:\n{else_block}"
        )

    def switch(self, indent: str) -> str:
        den = self.rng.choice(self.PROB_DENOMINATORS)
        first = self.rng.randint(1, den - 1)
        inner = indent + "    "
        return (
            f"{indent}switch:\n"
            f"{inner}prob({first}/{den}): {self.assignment('')}\n"
            f"{inner}prob({den - first}/{den}): {self.assignment('')}"
        )

    def block(self, indent: str, depth: int) -> str:
        choices = ["assignment", "switch"]
        if depth > 0:
            choices += ["prob_branch", "cond_branch"]
        kind = self.rng.choice(choices)
        if kind == "assignment":
            return self.assignment(indent)
        if kind == "switch":
            return self.switch(indent)
        if kind == "cond_branch":
            return self.cond_branch(indent, depth)
        return self.prob_branch(indent, depth)

    # -- whole programs ------------------------------------------------------
    def program(self) -> str:
        fuel = self.rng.randint(4, 9)
        lines = [f"{v} := {self.rng.randint(-1, 1)}" for v in self.variables]
        lines.append("fuel := 0")
        body = self.block("    ", depth=2)
        extra = ""
        if self.profile == "reject":
            extra = self.rejecting_assignment("    ") + "\n"
        target = self.rng.choice(self.variables)
        op = self.rng.choice(("<=", ">="))
        threshold = self.rng.randint(0, 4)
        lines.append(
            f"while fuel <= {fuel}:\n{body}\n{extra}    fuel := fuel + 1"
        )
        lines.append(f"assert {target} {op} {threshold}")
        return "\n".join(lines)


def _gen_random(rng: random.Random):
    roll = rng.random()
    if roll < 0.6:
        profile = "pipeline"
    elif roll < 0.85:
        profile = "fractional"
    else:
        profile = "reject"
    gen = ProgramGenerator(rng, profile=profile)
    return gen.program(), gen.integer_mode, {"profile": profile}


_FAMILY_BUILDERS = {
    "birth-death": _gen_birth_death,
    "gridworld": _gen_gridworld,
    "inventory": _gen_inventory,
    "mixed-lattice": _gen_mixed_lattice,
    "random": _gen_random,
}


def generate(family: str, seed: int) -> GeneratedProgram:
    """The deterministic entry point: pure in ``(version, family, seed)``."""
    builder = _FAMILY_BUILDERS.get(family)
    if builder is None:
        raise ValueError(
            f"unknown fuzz family {family!r} (choose from {', '.join(ALL_FAMILIES)})"
        )
    source, integer_mode, params = builder(_rng(family, seed))
    return GeneratedProgram(
        name=f"fz-{family}-s{seed}",
        family=family,
        seed=seed,
        generator_version=GENERATOR_VERSION,
        source=source,
        integer_mode=integer_mode,
        params=params,
    )


def program_seed(farm_seed: int, index: int) -> int:
    """Per-program seed derivation: distinct farm seeds give disjoint
    streams (1e6-ish stride), and every program seed is recorded on its
    own so replay never needs the farm context."""
    return farm_seed * 1_000_003 + index


def corpus_plan(
    seed: int, count: int, families: Optional[Sequence[str]] = None
) -> List[GeneratedProgram]:
    """Round-robin ``count`` programs over ``families`` (default: the four
    farm families), each generated from its derived per-program seed."""
    chosen = tuple(families) if families else FAMILIES
    for fam in chosen:
        if fam not in _FAMILY_BUILDERS:
            raise ValueError(f"unknown fuzz family {fam!r}")
    return [
        generate(chosen[i % len(chosen)], program_seed(seed, i)) for i in range(count)
    ]
