"""Generated workload corpus + certificate-oracle differential fuzzing.

``repro.fuzz`` turns the certificate checker into a cheap differential
oracle: :mod:`.generators` emit parameterized surface programs
(queueing chains, gridworlds, inventory loops, mixed-lattice drifts,
grammar-random programs), :mod:`.farm` lowers each one through every
admitted explorer/solver mode as an engine task DAG and cross-checks
brackets, admission and run certificates, :mod:`.shrink` reduces any
discrepancy to a locally-minimal reproducer, and :mod:`.corpus`
archives everything with its deterministic replay triple
``(generator_version, family, seed)``.
"""

from .corpus import (
    CORPUS_FORMAT,
    CorpusError,
    corpus_entry,
    failure_entry,
    load_entry,
    regenerate,
    write_entry,
)
from .farm import (
    DEFAULT_SOLVERS,
    Discrepancy,
    FarmReport,
    ProgramVerdict,
    check_source,
    cross_check_cells,
    run_farm,
)
from .generators import (
    ALL_FAMILIES,
    FAMILIES,
    GENERATOR_VERSION,
    GeneratedProgram,
    ProgramGenerator,
    corpus_plan,
    generate,
    program_seed,
)
from .shrink import shrink_source

__all__ = [
    "ALL_FAMILIES",
    "CORPUS_FORMAT",
    "CorpusError",
    "DEFAULT_SOLVERS",
    "Discrepancy",
    "FAMILIES",
    "FarmReport",
    "GENERATOR_VERSION",
    "GeneratedProgram",
    "ProgramGenerator",
    "ProgramVerdict",
    "check_source",
    "corpus_entry",
    "corpus_plan",
    "cross_check_cells",
    "failure_entry",
    "generate",
    "load_entry",
    "program_seed",
    "regenerate",
    "run_farm",
    "shrink_source",
    "write_entry",
]
