"""Greedy structural shrinking of surface programs.

Given a failing program and a predicate that re-runs the farm's
cross-check on candidate text, :func:`shrink_source` repeatedly tries
two classes of reductions and keeps any candidate on which the predicate
still holds:

* **block removal** — drop a line together with its more-indented suite
  (a whole ``while``/``if``/``switch`` body in one step, a single
  statement at the leaves);
* **literal reduction** — pull integer literals toward zero (halving,
  then 1), which shrinks horizons, thresholds and denominators.

Candidates that no longer compile simply fail the predicate and are
rejected, so no grammar knowledge lives here.  Every accepted step
strictly decreases ``(line count, sum of literals)``, so the loop
terminates; ``max_evals`` caps predicate cost regardless.  The result is
a *local* minimum — the smallest program this greedy pass can reach, not
a global one — which is exactly what a human debugging a nightly finding
wants to start from.
"""

from __future__ import annotations

import re
from typing import Callable, Iterator, List, Optional

_INT = re.compile(r"\d+")


def _indent(line: str) -> int:
    return len(line) - len(line.lstrip(" "))


def _removal_candidates(source: str) -> Iterator[str]:
    lines = source.split("\n")
    n = len(lines)
    for i in range(n):
        if not lines[i].strip():
            continue
        depth = _indent(lines[i])
        j = i + 1
        while j < n and (not lines[j].strip() or _indent(lines[j]) > depth):
            j += 1
        remaining = lines[:i] + lines[j:]
        if any(ln.strip() for ln in remaining):
            yield "\n".join(remaining)


def _literal_candidates(source: str) -> Iterator[str]:
    for match in _INT.finditer(source):
        value = int(match.group())
        for smaller in (value // 2, 1):
            if smaller < value and smaller >= 0:
                yield source[: match.start()] + str(smaller) + source[match.end() :]


def _cost(source: str) -> tuple:
    lines = [ln for ln in source.split("\n") if ln.strip()]
    return (len(lines), sum(int(m.group()) for m in _INT.finditer(source)))


def shrink_source(
    source: str,
    predicate: Callable[[str], bool],
    max_evals: int = 400,
) -> Optional[str]:
    """Return a locally-minimal program on which ``predicate`` holds, or
    ``None`` when it does not even hold on ``source`` (nothing to shrink
    — the discrepancy is not deterministic under the reduced re-check)."""
    evals = 0

    def holds(candidate: str) -> bool:
        nonlocal evals
        evals += 1
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    if not holds(source):
        return None
    current = source
    improved = True
    while improved and evals < max_evals:
        improved = False
        passes: List[Iterator[str]] = [
            _removal_candidates(current),
            _literal_candidates(current),
        ]
        for candidates in passes:
            for candidate in candidates:
                if evals >= max_evals:
                    break
                if _cost(candidate) >= _cost(current):
                    continue
                if holds(candidate):
                    current = candidate
                    improved = True
                    break
            if improved:
                break
    return current
