#!/usr/bin/env python3
"""Offline markdown link checker for the documentation suite.

Scans ``docs/`` plus the top-level ``*.md`` files and verifies that every
relative markdown link resolves:

* ``[text](path)`` — ``path`` must exist relative to the linking file;
* ``[text](path#anchor)`` / ``[text](#anchor)`` — the target file must
  contain a heading whose GitHub-style slug equals ``anchor``;
* ``http(s)://`` links are skipped (CI runs offline by design);
* fenced code blocks are ignored (they contain example syntax, not links).

Exit status 0 when every link resolves, 1 otherwise (one diagnostic line
per broken link).  Run from anywhere: paths are repo-root-relative.
Used by the ``docs`` CI job and by ``tests/test_docs.py``.

``--quickstart`` instead prints the ``sh`` code blocks of the README's
Quickstart section as an executable script, so CI runs *the documented
commands themselves* rather than a copy that can silently go stale.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: [text](target) — excluding images handled identically, so keep the "!"
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^(```|~~~)")


def doc_files() -> List[Path]:
    """The documentation set: docs/**/*.md plus top-level markdown."""
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(REPO_ROOT.glob("docs/**/*.md"))
    return [f for f in files if f.is_file()]


def _strip_fences(text: str) -> str:
    out: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    # inline code/links inside headings contribute their text only
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.replace("`", "")
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> List[str]:
    slugs: List[str] = []
    seen: dict = {}
    for line in _strip_fences(path.read_text(encoding="utf-8")).splitlines():
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        # GitHub dedupes repeated headings with -1, -2, ...
        if slug in seen:
            seen[slug] += 1
            slug = f"{slug}-{seen[slug]}"
        else:
            seen[slug] = 0
        slugs.append(slug)
    return slugs


def links_of(path: Path) -> Iterable[str]:
    for match in _LINK.finditer(_strip_fences(path.read_text(encoding="utf-8"))):
        yield match.group(1)


def check_file(path: Path) -> List[Tuple[Path, str, str]]:
    """Returns (file, link, problem) tuples for every broken link."""
    problems: List[Tuple[Path, str, str]] = []
    for link in links_of(path):
        if link.startswith(("http://", "https://", "mailto:")):
            continue
        target_part, _, anchor = link.partition("#")
        if target_part:
            target = (path.parent / target_part).resolve()
            if not target.exists():
                problems.append((path, link, "target does not exist"))
                continue
        else:
            target = path
        if anchor:
            if target.is_dir() or target.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into non-markdown targets: not checkable
            if anchor not in anchors_of(target):
                problems.append((path, link, f"no heading for anchor #{anchor}"))
    return problems


def quickstart_commands(readme: Path = REPO_ROOT / "README.md") -> str:
    """The ``sh`` fenced blocks of the README's Quickstart section, as one
    shell script (they run from the repo root — that is where the README's
    ``PYTHONPATH=src`` is valid)."""
    lines = readme.read_text(encoding="utf-8").splitlines()
    script: List[str] = []
    in_section = False
    in_fence = False
    for line in lines:
        if line.startswith("## "):
            in_section = line.strip().lower() == "## quickstart"
            continue
        if not in_section:
            continue
        stripped = line.strip()
        if not in_fence and stripped in ("```sh", "```bash", "```shell"):
            in_fence = True
            continue
        if in_fence and _FENCE.match(stripped):
            in_fence = False
            continue
        if in_fence:
            script.append(line)
    return "\n".join(script) + "\n" if script else ""


def main() -> int:
    if "--quickstart" in sys.argv[1:]:
        script = quickstart_commands()
        if not script:
            print("check_docs: no sh blocks in the README Quickstart section",
                  file=sys.stderr)
            return 1
        sys.stdout.write(script)
        return 0
    files = doc_files()
    if not files:
        print("check_docs: no markdown files found", file=sys.stderr)
        return 1
    problems: List[Tuple[Path, str, str]] = []
    for path in files:
        problems.extend(check_file(path))
    for path, link, why in problems:
        rel = path.relative_to(REPO_ROOT)
        print(f"{rel}: broken link {link!r}: {why}", file=sys.stderr)
    checked = len(files)
    if problems:
        print(f"check_docs: {len(problems)} broken link(s) in {checked} files",
              file=sys.stderr)
        return 1
    print(f"check_docs: {checked} markdown files ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
