#!/usr/bin/env python3
"""PR-blocking explorer-parity gate (the ``explorer-parity`` CI job).

Runs small fractional workloads through ``explore="scaled"`` and
``explore="fraction"`` and asserts the resulting models are *bit-identical*
— state count, truncation flag, transition matrix, affine offsets, lattice
start vectors and the (descaled) state index.  One integer-lattice workload
rides along through ``explore="int64"`` so the plain frontier engine is
gated too.

Exploration-engine regressions used to surface only in the nightly
non-blocking bench workflow; this script is deliberately tiny (seconds,
no LP solver, no synthesis) so it can block every push and pull request.

Exit status 0 when every workload matches bitwise, 1 otherwise (one
diagnostic line per mismatching field).  Needs ``repro`` importable
(``PYTHONPATH=src`` or an installed checkout).
"""

from __future__ import annotations

import sys

#: name -> (source, max_states, integer_mode, forced explore mode).
#: Budgets are chosen so every workload truncates or absorbs within a few
#: seconds while still crossing the dense/CSR boundary at least once.
WORKLOADS = {
    # Table 1's 3DWalk shape (0.1-steps, scale-10 lattice), truncated
    "3dwalk-slice": (
        "x := 10\ny := 10\nz := 10\n"
        "while x >= 0 and y >= 0 and z >= 0:\n"
        "    assert x + y + z <= 100\n"
        "    if prob(0.9):\n        switch:\n"
        "            prob(0.5): x, y := x - 1, y - 1\n"
        "            prob(0.5): z := z - 1\n"
        "    else:\n        switch:\n"
        "            prob(0.5): x, y := x + 0.1, y + 0.1\n"
        "            prob(0.5): z := z + 0.1\n",
        4_000,
        False,
        "scaled",
    ),
    # Table 1's Robot shape (1.414 displacements, +-0.05 noise, scale 500)
    "robot-slice": (
        "noise ~ discrete((0.5, -0.05), (0.5, 0.05))\n"
        "i := 0\nx := 0\nex := 0\n"
        "while i <= 11:\n    switch:\n"
        "        prob(0.2): i, x, ex := i + 1, x - 1.414 + noise, ex - 1.414\n"
        "        prob(0.2): i, x, ex := i + 1, x + 1.414 + noise, ex + 1.414\n"
        "        prob(0.2): i, x, ex := i + 1, x - 1 + noise, ex - 1\n"
        "        prob(0.2): i, x, ex := i + 1, x + 1 + noise, ex + 1\n"
        "        prob(0.2): i, x, ex := i + 1, x + noise, ex\n"
        "assert x - ex <= 1.8",
        4_000,
        False,
        "scaled",
    ),
    # mixed lattice: integral counter + half-integer accumulator, with a
    # guard boundary hit exactly at a fractional state
    "mixed-boundary": (
        "i := 0\nx := 0\nwhile i <= 20 and x - 15/2 <= 0:\n"
        "    if prob(0.5):\n        i, x := i + 1, x + 1/2\n"
        "    else:\n        i := i + 1\n"
        "assert x >= 8",
        10_000,
        False,
        "scaled",
    ),
    # integer lattice control through the plain int64 frontier engine
    "gambler-int": (
        "x := 3\nwhile x >= 1 and x <= 9:\n    switch:\n"
        "        prob(0.5): x := x + 1\n        prob(0.5): x := x - 1\n"
        "assert x <= 0",
        20_000,
        True,
        "int64",
    ),
}


def to_dense(matrix):
    return matrix.toarray() if hasattr(matrix, "toarray") else matrix


def compare(name: str, fast, exact) -> list:
    """Field-by-field bitwise comparison; returns diagnostic strings."""
    problems = []
    if fast.n != exact.n:
        problems.append(f"{name}: state count {fast.n} != {exact.n}")
    if fast.truncated != exact.truncated:
        problems.append(f"{name}: truncated {fast.truncated} != {exact.truncated}")
    if problems:  # shapes differ: element comparisons would just throw
        return problems
    if not (to_dense(fast.matrix) == to_dense(exact.matrix)).all():
        problems.append(f"{name}: transition matrices differ")
    for field in ("b_lower", "b_upper", "x0_lower", "x0_upper"):
        if not (getattr(fast, field) == getattr(exact, field)).all():
            problems.append(f"{name}: {field} differs")
    if fast.index != exact.index:
        problems.append(f"{name}: descaled state index differs")
    return problems


def main() -> int:
    from repro.core.fixpoint import build_sparse_model
    from repro.lang import compile_source

    failures = []
    for name, (source, max_states, integer_mode, explore) in WORKLOADS.items():
        pts = compile_source(source, name=name, integer_mode=integer_mode).pts
        fast = build_sparse_model(pts, max_states=max_states, explore=explore)
        exact = build_sparse_model(pts, max_states=max_states, explore="fraction")
        expected = "scaled-int64" if explore == "scaled" else "int64"
        if fast.explored_via != expected:
            failures.append(
                f"{name}: explored via {fast.explored_via!r}, expected {expected!r}"
            )
        problems = compare(name, fast, exact)
        failures.extend(problems)
        status = "MISMATCH" if problems else "ok"
        print(
            f"{name:<16} {fast.explored_via:<13} states={fast.n:>6} "
            f"truncated={str(fast.truncated):<5} {status}"
        )
    if failures:
        print(f"\nexplorer parity FAILED ({len(failures)} problem(s)):")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"\nexplorer parity ok: {len(WORKLOADS)} workload(s) bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
