#!/usr/bin/env python3
"""PR-blocking explorer- and solver-parity gate (the ``explorer-parity``
CI job).

Explorer section: runs small fractional workloads through
``explore="scaled"`` and ``explore="fraction"`` and asserts the resulting
models are *bit-identical* — state count, truncation flag, transition
matrix, affine offsets, lattice start vectors and the (descaled) state
index.  One integer-lattice workload rides along through
``explore="int64"`` so the plain frontier engine is gated too.

Solver section: runs the solve-then-certify oracles
(``solver="direct"|"sor"|"anderson"``, plus ``"auto"``) against the
pure-sweep engine on bracket workloads and asserts every certified
bracket is consistent with the reference — it overlaps the sweep bracket
(both contain vpf, so disjointness means one of them is wrong), never
escapes it outward by more than the certification slack budget, and on
the slow-mixing chain the ``auto`` bracket is additionally
tighter-or-equal and fully certified (the acceptance bar of the
solve-then-certify design).

Engine regressions used to surface only in the nightly non-blocking bench
workflow; this script is deliberately tiny (seconds, no LP solver, no
synthesis) so it can block every push and pull request.

Exit status 0 when every workload passes, 1 otherwise (one diagnostic
line per mismatching field).  Needs ``repro`` importable
(``PYTHONPATH=src`` or an installed checkout).
"""

from __future__ import annotations

import sys

#: name -> (source, max_states, integer_mode, forced explore mode).
#: Budgets are chosen so every workload truncates or absorbs within a few
#: seconds while still crossing the dense/CSR boundary at least once.
WORKLOADS = {
    # Table 1's 3DWalk shape (0.1-steps, scale-10 lattice), truncated
    "3dwalk-slice": (
        "x := 10\ny := 10\nz := 10\n"
        "while x >= 0 and y >= 0 and z >= 0:\n"
        "    assert x + y + z <= 100\n"
        "    if prob(0.9):\n        switch:\n"
        "            prob(0.5): x, y := x - 1, y - 1\n"
        "            prob(0.5): z := z - 1\n"
        "    else:\n        switch:\n"
        "            prob(0.5): x, y := x + 0.1, y + 0.1\n"
        "            prob(0.5): z := z + 0.1\n",
        4_000,
        False,
        "scaled",
    ),
    # Table 1's Robot shape (1.414 displacements, +-0.05 noise, scale 500)
    "robot-slice": (
        "noise ~ discrete((0.5, -0.05), (0.5, 0.05))\n"
        "i := 0\nx := 0\nex := 0\n"
        "while i <= 11:\n    switch:\n"
        "        prob(0.2): i, x, ex := i + 1, x - 1.414 + noise, ex - 1.414\n"
        "        prob(0.2): i, x, ex := i + 1, x + 1.414 + noise, ex + 1.414\n"
        "        prob(0.2): i, x, ex := i + 1, x - 1 + noise, ex - 1\n"
        "        prob(0.2): i, x, ex := i + 1, x + 1 + noise, ex + 1\n"
        "        prob(0.2): i, x, ex := i + 1, x + noise, ex\n"
        "assert x - ex <= 1.8",
        4_000,
        False,
        "scaled",
    ),
    # mixed lattice: integral counter + half-integer accumulator, with a
    # guard boundary hit exactly at a fractional state
    "mixed-boundary": (
        "i := 0\nx := 0\nwhile i <= 20 and x - 15/2 <= 0:\n"
        "    if prob(0.5):\n        i, x := i + 1, x + 1/2\n"
        "    else:\n        i := i + 1\n"
        "assert x >= 8",
        10_000,
        False,
        "scaled",
    ),
    # integer lattice control through the plain int64 frontier engine
    "gambler-int": (
        "x := 3\nwhile x >= 1 and x <= 9:\n    switch:\n"
        "        prob(0.5): x := x + 1\n        prob(0.5): x := x - 1\n"
        "assert x <= 0",
        20_000,
        True,
        "int64",
    ),
}


#: name -> (source, max_states, integer_mode, expect auto-certified).
#: Small bracket workloads stressing the three oracle shapes: a
#: slow-mixing dense fair walk (the solve-then-certify target regime), a
#: drifted CSR chain where SOR has to fall back to its omega=1 restart,
#: and a truncated fragment whose bracket legitimately stays [0, 1].
SOLVER_WORKLOADS = {
    "gambler-120": (
        "x := 30\nwhile x >= 1 and x <= 119:\n    switch:\n"
        "        prob(0.5): x := x + 1\n        prob(0.5): x := x - 1\n"
        "assert x <= 0",
        20_000,
        True,
        True,
    ),
    "drift-chain": (
        "x := 0\nt := 0\nwhile x <= 19:\n    switch:\n"
        "        prob(0.75): x, t := x + 1, t + 1\n"
        "        prob(0.25): x, t := x - 1, t + 1\n"
        "assert t <= 60",
        20_000,
        True,
        False,
    ),
    "rdadder-trunc": (
        "i := 0\nx := 0\nwhile i <= 199:\n    if prob(0.5):\n"
        "        i, x := i + 1, x + 1\n    else:\n        i := i + 1\n"
        "assert x <= 110",
        8_000,
        True,
        False,
    ),
}

#: outward-escape budget per solver: ``auto``/``direct`` adopt candidates
#: at near machine precision; ``sor``/``anderson`` nudge along the
#: expected-visits witness, whose magnitude inflates the slack to
#: ~eps * max(w) (measured ~7e-8 on the fair walk).
SOLVER_TOLERANCES = {
    "auto": 1e-9,
    "direct": 1e-9,
    "sor": 1e-6,
    "anderson": 1e-6,
}


def to_dense(matrix):
    return matrix.toarray() if hasattr(matrix, "toarray") else matrix


def compare(name: str, fast, exact) -> list:
    """Field-by-field bitwise comparison; returns diagnostic strings."""
    problems = []
    if fast.n != exact.n:
        problems.append(f"{name}: state count {fast.n} != {exact.n}")
    if fast.truncated != exact.truncated:
        problems.append(f"{name}: truncated {fast.truncated} != {exact.truncated}")
    if problems:  # shapes differ: element comparisons would just throw
        return problems
    if not (to_dense(fast.matrix) == to_dense(exact.matrix)).all():
        problems.append(f"{name}: transition matrices differ")
    for field in ("b_lower", "b_upper", "x0_lower", "x0_upper"):
        if not (getattr(fast, field) == getattr(exact, field)).all():
            problems.append(f"{name}: {field} differs")
    if fast.index != exact.index:
        problems.append(f"{name}: descaled state index differs")
    return problems


def compare_solver(name: str, solver: str, fast, ref, expect_certified: bool) -> list:
    """Solver-parity checks of one oracle bracket against the pure sweep."""
    problems = []
    tol = SOLVER_TOLERANCES[solver]
    if not (fast.lower <= fast.upper + 1e-12):
        problems.append(
            f"{name}[{solver}]: inverted bracket "
            f"[{fast.lower!r}, {fast.upper!r}]"
        )
    # never escape the sweep bracket outward beyond the slack budget; a
    # *certified* bracket may legitimately be tighter than the sweep's
    if fast.lower < ref.lower - tol:
        problems.append(
            f"{name}[{solver}]: lower bound escaped outward "
            f"({fast.lower!r} < sweep {ref.lower!r} - {tol})"
        )
    if fast.upper > ref.upper + tol:
        problems.append(
            f"{name}[{solver}]: upper bound escaped outward "
            f"({fast.upper!r} > sweep {ref.upper!r} + {tol})"
        )
    # overlap: both brackets contain vpf, so disjointness means a bug
    if fast.lower > ref.upper + tol or fast.upper < ref.lower - tol:
        problems.append(
            f"{name}[{solver}]: bracket [{fast.lower!r}, {fast.upper!r}] "
            f"disjoint from sweep [{ref.lower!r}, {ref.upper!r}]"
        )
    if solver == "auto" and expect_certified:
        if not fast.certified:
            problems.append(
                f"{name}[auto]: expected a fully certified bracket, "
                f"got certified={fast.certified}"
            )
        # the acceptance bar: certified auto brackets are tighter-or-equal
        if fast.lower < ref.lower - 1e-12 or fast.upper > ref.upper + 1e-12:
            problems.append(
                f"{name}[auto]: certified bracket wider than the sweep's "
                f"([{fast.lower!r}, {fast.upper!r}] vs "
                f"[{ref.lower!r}, {ref.upper!r}])"
            )
    return problems


def main() -> int:
    from repro.core.fixpoint import build_sparse_model, iterate_model
    from repro.lang import compile_source

    failures = []
    for name, (source, max_states, integer_mode, explore) in WORKLOADS.items():
        pts = compile_source(source, name=name, integer_mode=integer_mode).pts
        fast = build_sparse_model(pts, max_states=max_states, explore=explore)
        exact = build_sparse_model(pts, max_states=max_states, explore="fraction")
        expected = "scaled-int64" if explore == "scaled" else "int64"
        if fast.explored_via != expected:
            failures.append(
                f"{name}: explored via {fast.explored_via!r}, expected {expected!r}"
            )
        problems = compare(name, fast, exact)
        failures.extend(problems)
        status = "MISMATCH" if problems else "ok"
        print(
            f"{name:<16} {fast.explored_via:<13} states={fast.n:>6} "
            f"truncated={str(fast.truncated):<5} {status}"
        )
    print()
    for name, (source, max_states, integer_mode, expect_cert) in SOLVER_WORKLOADS.items():
        pts = compile_source(source, name=name, integer_mode=integer_mode).pts
        model = build_sparse_model(pts, max_states=max_states)
        ref = iterate_model(model, solver="sweep")
        for solver in ("auto", "direct", "sor", "anderson"):
            fast = iterate_model(model, solver=solver)
            problems = compare_solver(name, solver, fast, ref, expect_cert)
            failures.extend(problems)
            status = "MISMATCH" if problems else "ok"
            print(
                f"{name:<16} {solver:<9} used={fast.solver:<9} "
                f"certified={str(fast.certified):<5} "
                f"[{fast.lower:.12f}, {fast.upper:.12f}] {status}"
            )
    if failures:
        print(f"\nexplorer/solver parity FAILED ({len(failures)} problem(s)):")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(
        f"\nexplorer parity ok: {len(WORKLOADS)} workload(s) bit-identical; "
        f"solver parity ok: {len(SOLVER_WORKLOADS)} workload(s) x 4 solvers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
