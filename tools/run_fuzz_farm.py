#!/usr/bin/env python3
"""Budgeted fuzzing-farm driver (the nightly ``fuzz`` job in bench.yml).

Runs :func:`repro.fuzz.run_farm` in batches until a wall-clock budget is
spent, deriving each batch's farm seed from the base ``--seed`` (the
workflow passes the run id, so every night covers a fresh seed range
while any finding stays replayable from the recorded per-program seed).
Corpus entries and failure artifacts accumulate under ``--out``, which
the workflow uploads; a ``summary.json`` records every batch seed, the
per-family program counts and the discrepancy total.

Exit status 0 when every batch is discrepancy-free, 1 otherwise.  Needs
``repro`` importable (``PYTHONPATH=src``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed", type=int, default=0, help="base farm seed (batch i uses seed+i)"
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=600.0,
        help="stop starting new batches once this much wall-clock is spent",
    )
    parser.add_argument(
        "--batch", type=int, default=20, help="programs per farm batch"
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="engine workers per batch (0 = all cores)"
    )
    parser.add_argument("--max-states", type=int, default=4096)
    parser.add_argument(
        "--max-batches", type=int, default=50, help="hard cap on batches"
    )
    parser.add_argument("--out", default="fuzz-artifacts")
    args = parser.parse_args(argv)

    from repro.fuzz import GENERATOR_VERSION, run_farm

    out = Path(args.out)
    start = time.monotonic()
    batches = []
    total_programs = 0
    total_discrepancies = 0
    per_family: dict = {}
    for i in range(args.max_batches):
        elapsed = time.monotonic() - start
        if i > 0 and elapsed >= args.budget_seconds:
            break
        batch_seed = args.seed + i
        report = run_farm(
            seed=batch_seed,
            count=args.batch,
            jobs=args.jobs,
            max_states=args.max_states,
            out_dir=out,
        )
        for line in report.render():
            print(line)
        print(flush=True)
        total_programs += len(report.verdicts)
        total_discrepancies += len(report.discrepancies)
        for verdict in report.verdicts:
            fam = verdict.program.family
            per_family[fam] = per_family.get(fam, 0) + 1
        batches.append(
            {
                "seed": batch_seed,
                "programs": len(report.verdicts),
                "discrepancies": len(report.discrepancies),
                "seconds": round(time.monotonic() - start - elapsed, 3),
            }
        )

    summary = {
        "generator_version": GENERATOR_VERSION,
        "base_seed": args.seed,
        "batch_size": args.batch,
        "jobs": args.jobs,
        "max_states": args.max_states,
        "budget_seconds": args.budget_seconds,
        "elapsed_seconds": round(time.monotonic() - start, 3),
        "batches": batches,
        "programs": total_programs,
        "per_family": per_family,
        "discrepancies": total_discrepancies,
    }
    out.mkdir(parents=True, exist_ok=True)
    (out / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"farm summary: {len(batches)} batch(es), {total_programs} program(s), "
        f"{total_discrepancies} discrepanc{'y' if total_discrepancies == 1 else 'ies'} "
        f"in {summary['elapsed_seconds']:.0f}s -> {out / 'summary.json'}"
    )
    return 1 if total_discrepancies else 0


if __name__ == "__main__":
    sys.exit(main())
