#!/usr/bin/env python3
"""PR-blocking run-certificate gate (the ``certificates`` CI job).

The old ``explorer-parity`` job proved the fast path against the exact
Fraction engine by *running everything twice* and diffing bitwise — a
2x-cost check that only ever ran in CI.  This gate exercises the shape
every production run now carries: the fast path runs **once**, emits its
:class:`~repro.core.runcert.RunCertificate`, and the independent checker
re-derives the admission inequalities and replays the frontier digests
without re-running exploration.  The full bitwise two-engine re-run
still exists, demoted to the nightly bench workflow
(``tools/check_explorer_parity.py``).

Sections:

* **explorer grid** — the parity workloads through their forced fast
  mode (``scaled``/``int64``); each certificate must verify both against
  the in-memory PTS and *self-contained* (checker recompiles the source
  embedded in the certificate);
* **solver grid** — the solver-parity workloads through every oracle
  (``auto``/``direct``/``sor``/``anderson``); evidence checks cover the
  witness hash, the slack ladder and the pre/post-fixpoint margins;
* **corruption drills** — a bit-flipped file, a tampered frontier
  digest, a tampered admission multiplier and a stale engine
  fingerprint (the latter three re-signed, so only the semantic check
  can catch them) must each be *rejected*.

Exit status 0 when every certificate verifies and every corruption is
caught, 1 otherwise.  Needs ``repro`` importable (``PYTHONPATH=src``)
and runs in seconds — no LP solver, no synthesis, no reference engine.
"""

from __future__ import annotations

import json
import sys

# sibling tool owns the workload tables; both run with tools/ on sys.path
import check_explorer_parity as parity


def _emit(pts, model, result, name, source, integer_mode, max_states, explore):
    from repro.core.runcert import emit_run_certificate

    return emit_run_certificate(
        pts,
        model,
        result,
        max_states=max_states,
        explore=explore,
        name=name,
        source=source,
        integer_mode=integer_mode,
    )


def _resign(cert, mutate):
    """Deep-copy ``cert``'s payload, apply ``mutate``, re-sign the digest —
    modelling an attacker who can recompute hashes but not the run."""
    from repro.core.runcert import RunCertificate

    payload = json.loads(json.dumps(cert.payload))
    mutate(payload)
    return RunCertificate.from_payload(payload)


def check_explorer_grid(failures):
    from repro.core.fixpoint import build_sparse_model, iterate_model
    from repro.core.runcert import verify_certificate_text, verify_run_certificate
    from repro.lang import compile_source

    certs = []
    for name, (source, max_states, integer_mode, explore) in parity.WORKLOADS.items():
        pts = compile_source(source, name=name, integer_mode=integer_mode).pts
        model = build_sparse_model(pts, max_states=max_states, explore=explore)
        result = iterate_model(model)
        cert = _emit(pts, model, result, name, source, integer_mode, max_states, explore)
        report = verify_run_certificate(cert, pts=pts)
        # self-contained: the checker recompiles the embedded source
        standalone = verify_certificate_text(cert.to_json())
        ok = report.ok and standalone.ok
        if not report.ok:
            failures.extend(f"{name}: {line}" for line in report.render() if "FAIL" in line)
        if not standalone.ok:
            failures.extend(
                f"{name} (standalone): {line}"
                for line in standalone.render()
                if "FAIL" in line
            )
        print(
            f"{name:<16} {model.explored_via:<13} states={model.n:>6} "
            f"levels={len(cert.payload['exploration']['levels']['digests']):>4} "
            f"{'ok' if ok else 'REJECTED'}"
        )
        certs.append(cert)
    return certs


def check_solver_grid(failures):
    from repro.core.fixpoint import build_sparse_model, iterate_model
    from repro.core.runcert import verify_run_certificate
    from repro.lang import compile_source

    for name, (source, max_states, integer_mode, _) in parity.SOLVER_WORKLOADS.items():
        pts = compile_source(source, name=name, integer_mode=integer_mode).pts
        model = build_sparse_model(pts, max_states=max_states)
        for solver in ("auto", "direct", "sor", "anderson"):
            result = iterate_model(model, solver=solver)
            cert = _emit(
                pts, model, result, name, source, integer_mode, max_states, "auto"
            )
            report = verify_run_certificate(cert, pts=pts)
            if not report.ok:
                failures.extend(
                    f"{name}[{solver}]: {line}"
                    for line in report.render()
                    if "FAIL" in line
                )
            print(
                f"{name:<16} {solver:<9} used={result.solver:<9} "
                f"certified={str(result.certified):<5} "
                f"{'ok' if report.ok else 'REJECTED'}"
            )


def check_corruption(cert, failures):
    """Every drill must *fail* verification; passing one is a gate bug."""
    from repro.core.runcert import verify_certificate_text

    def flip(payload):
        payload["exploration"]["levels"]["digests"][0] = (
            "0" * 64
            if payload["exploration"]["levels"]["digests"][0] != "0" * 64
            else "f" * 64
        )

    def bounds(payload):
        payload["exploration"]["admission"]["guards"][0]["mult"] += 1

    def stale(payload):
        payload["fingerprints"]["fixpoint"] = "pre-certificate-engine.v0"

    raw = bytearray(cert.to_json().encode("utf-8"))
    raw[len(raw) // 2] ^= 0x20  # flip one bit mid-file
    drills = [
        ("bit-flipped file", verify_certificate_text(raw.decode("utf-8", "replace"))),
        ("tampered digest", verify_certificate_text(_resign(cert, flip).to_json())),
        ("tampered bounds", verify_certificate_text(_resign(cert, bounds).to_json())),
        ("stale fingerprint", verify_certificate_text(_resign(cert, stale).to_json())),
    ]
    for label, report in drills:
        caught = not report.ok
        if not caught:
            failures.append(f"corruption drill {label!r} was ACCEPTED")
        first = report.failures[0][0] if report.failures else "-"
        print(f"corrupt: {label:<18} rejected={str(caught):<5} first-fail={first}")


def main() -> int:
    failures: list = []
    certs = check_explorer_grid(failures)
    print()
    check_solver_grid(failures)
    print()
    # drill against a scaled-lattice certificate: it has the richest
    # payload (admission record with non-unit multipliers)
    check_corruption(certs[0], failures)
    if failures:
        print(f"\ncertificate gate FAILED ({len(failures)} problem(s)):")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(
        f"\ncertificate gate ok: {len(parity.WORKLOADS)} explorer workload(s) + "
        f"{len(parity.SOLVER_WORKLOADS)} solver workload(s) x 4 solvers "
        "verified; 4 corruption drills rejected"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
