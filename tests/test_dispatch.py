"""Completion-driven dispatch, pool lifecycle and the worker service.

The load-bearing properties, in order of importance:

* **pipelining** — one artificially slow task must not delay an
  independent dependency chain (the acceptance criterion of the
  completion-driven rewrite; the old wave barrier fails this by
  construction);
* **crash containment** — a worker process dying mid-task surfaces a
  :class:`TaskError` instead of hanging the ready-set;
* **interrupt hygiene** — a ``KeyboardInterrupt`` during dispatch cancels
  queued work and shuts the pool down;
* **warm pools** — ``PersistentPoolScheduler.close()`` keeps the executor
  alive for the next engine run; the daemonized worker service does the
  same across processes;
* **one clamp** — ``jobs`` semantics (``0`` = per CPU, negatives rejected)
  live only in :func:`repro.engine.scheduler.resolve_jobs`.

The ``t_*`` helper algorithms below are registered into ``ALGORITHMS`` by
a fixture; pool workers are forked, so they inherit the registration and
can re-import this module by its pytest-inserted top-level name.
"""

import os
import time

import pytest

from repro.errors import TaskError
from repro.engine import (
    AnalysisEngine,
    AnalysisTask,
    PersistentPoolScheduler,
    ProcessPoolScheduler,
    ProgramSpec,
    SerialScheduler,
    resolve_jobs,
    shutdown_persistent_pools,
)
from repro.engine.task import CertificateResult

SPEC = ProgramSpec.from_source("x := 0\nassert false", name="dispatch-dummy")


# -- helper algorithms (must be module-level: workers resolve them by name) -------


def synthesize_sleep(task, deps=None, engine=None):
    time.sleep(float(task.param("seconds", 0.0)))
    return CertificateResult(
        algorithm=task.algorithm,
        status="ok",
        details={"finished_at": time.time(), "deps_seen": sorted(deps or {})},
    )


def synthesize_crash(task, deps=None, engine=None):
    os._exit(13)  # simulate a segfault/OOM kill: no Python unwinding


def synthesize_interrupt(task, deps=None, engine=None):
    raise KeyboardInterrupt


def synthesize_touch(task, deps=None, engine=None):
    with open(task.param("path"), "w") as fh:
        fh.write("ran")
    return CertificateResult(algorithm=task.algorithm, status="ok")


def _double(payload):
    return 2 * payload


def _slow_double(payload):
    time.sleep(1.5)
    return 2 * payload


@pytest.fixture
def scratch_algorithms():
    from repro.engine import engine as engine_mod

    added = {
        "t_sleep": "test_dispatch:synthesize_sleep",
        "t_crash": "test_dispatch:synthesize_crash",
        "t_interrupt": "test_dispatch:synthesize_interrupt",
        "t_touch": "test_dispatch:synthesize_touch",
    }
    engine_mod.ALGORITHMS.update(added)
    yield
    for name in added:
        engine_mod.ALGORITHMS.pop(name, None)
        engine_mod._RESOLVED.pop(name, None)


def _sleep_task(task_id, seconds, depends_on=()):
    return AnalysisTask.make(
        "t_sleep",
        SPEC,
        params={"seconds": seconds, "tag": task_id},
        task_id=task_id,
        depends_on=depends_on,
        cacheable=False,
    )


class TestCompletionDrivenDispatch:
    def test_slow_task_does_not_delay_independent_chain(self, scratch_algorithms):
        # DAG: `slow` (wave 1, 2 s) alongside the chain a -> b (~0.1 s).
        # Under the old wave barrier, b could not start before slow
        # finished; completion-driven dispatch finishes the chain while
        # slow is still running.
        slow = _sleep_task("slow", 2.0)
        a = _sleep_task("a", 0.05)
        b = _sleep_task("b", 0.05, depends_on=("a",))
        with ProcessPoolScheduler(jobs=2) as scheduler:
            results = AnalysisEngine(scheduler).run([slow, a, b])
        assert all(r.ok for r in results.values())
        assert (
            results["b"].details["finished_at"]
            < results["slow"].details["finished_at"]
        )

    def test_dependencies_are_delivered(self, scratch_algorithms):
        a = _sleep_task("a", 0.0)
        b = _sleep_task("b", 0.0, depends_on=("a",))
        results = AnalysisEngine(SerialScheduler()).run([b, a])
        assert results["b"].details["deps_seen"] == ["a"]

    def test_worker_crash_surfaces_task_error(self, scratch_algorithms):
        boom = AnalysisTask.make("t_crash", SPEC, task_id="boom", cacheable=False)
        with ProcessPoolScheduler(jobs=2) as scheduler:
            with pytest.raises(TaskError, match="worker process died"):
                AnalysisEngine(scheduler).run([boom, _sleep_task("ok", 0.0)])

    def test_keyboard_interrupt_shuts_pool_down(self, scratch_algorithms):
        scheduler = ProcessPoolScheduler(jobs=2)
        tasks = [
            AnalysisTask.make("t_interrupt", SPEC, task_id="ctrl-c", cacheable=False),
            _sleep_task("bystander", 0.05),
        ]
        with pytest.raises(KeyboardInterrupt):
            AnalysisEngine(scheduler).run(tasks)
        # the engine took the pool down on the way out — nothing to leak
        assert scheduler._executor is None
        assert scheduler.resolved_workers == 0

    def test_keyboard_interrupt_serial_propagates(self, scratch_algorithms):
        with pytest.raises(KeyboardInterrupt):
            AnalysisEngine(SerialScheduler()).run(
                [AnalysisTask.make("t_interrupt", SPEC, task_id="c", cacheable=False)]
            )

    def test_keyboard_interrupt_serial_skips_remaining_tasks(
        self, scratch_algorithms, tmp_path
    ):
        # Ctrl-C during an inline (serial) task must surface immediately —
        # not after the ready-set has inline-executed the rest of the table
        witness = tmp_path / "later-task-ran"
        tasks = [
            AnalysisTask.make("t_interrupt", SPEC, task_id="ctrl-c", cacheable=False),
            AnalysisTask.make(
                "t_touch",
                SPEC,
                params={"path": str(witness)},
                task_id="later",
                cacheable=False,
            ),
        ]
        with pytest.raises(KeyboardInterrupt):
            AnalysisEngine(SerialScheduler()).run(tasks)
        assert not witness.exists()

    def test_single_task_and_linear_chain_never_fork_a_pool(
        self, scratch_algorithms
    ):
        scheduler = ProcessPoolScheduler(jobs=4)
        try:
            engine = AnalysisEngine(scheduler)
            engine.run([_sleep_task("only", 0.0)])
            assert scheduler.resolved_workers == 0  # ran inline
            chain = [
                _sleep_task("c1", 0.0),
                _sleep_task("c2", 0.0, depends_on=("c1",)),
                _sleep_task("c3", 0.0, depends_on=("c2",)),
            ]
            results = engine.run(chain)
            assert scheduler.resolved_workers == 0  # width-1 throughout
            assert all(r.ok for r in results.values())
        finally:
            scheduler.close()


class TestPoolRegrow:
    def test_regrow_handover_does_not_block_on_running_tasks(self):
        # a wider batch arriving while a narrow pool is busy must not wait
        # for the running task: the old pool drains in the background
        scheduler = ProcessPoolScheduler(jobs=3)
        try:
            slow = scheduler.submit(_slow_double, 1, width_hint=2)
            start = time.monotonic()
            quick = [scheduler.submit(_double, i, width_hint=3) for i in range(3)]
            assert [f.result() for f in quick] == [0, 2, 4]
            assert time.monotonic() - start < 1.2  # not serialized behind slow
            assert slow.result() == 2  # the drained pool still delivered
        finally:
            scheduler.close()


@pytest.mark.smoke
class TestJobsClampSingleSource:
    def test_resolve_jobs_contract(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)

    def test_every_pool_backend_uses_it(self, tmp_path):
        from repro.engine.workers import WorkerService

        expected = resolve_jobs(0)
        pool = ProcessPoolScheduler(jobs=0)
        persistent = PersistentPoolScheduler(jobs=0)
        service = WorkerService(tmp_path / "svc", jobs=0)
        assert pool.jobs == persistent.jobs == service.jobs == expected
        with pytest.raises(ValueError):
            ProcessPoolScheduler(jobs=-2)
        with pytest.raises(ValueError):
            PersistentPoolScheduler(jobs=-2)
        with pytest.raises(ValueError):
            WorkerService(tmp_path / "svc2", jobs=-2)


class TestPersistentPool:
    def test_close_keeps_the_pool_warm(self):
        from repro.engine.scheduler import _PERSISTENT_EXECUTORS

        shutdown_persistent_pools()
        first = PersistentPoolScheduler(jobs=2)
        assert first.map(_double, [1, 2, 3]) == [2, 4, 6]
        executor = _PERSISTENT_EXECUTORS[2]
        first.close()  # deliberate no-op
        second = PersistentPoolScheduler(jobs=2)
        assert second.submit(_double, 21).result() == 42
        assert _PERSISTENT_EXECUTORS[2] is executor  # same warm pool
        assert shutdown_persistent_pools() == 1
        assert not _PERSISTENT_EXECUTORS

    def test_engine_runs_reuse_the_pool(self, scratch_algorithms):
        from repro.engine.scheduler import _PERSISTENT_EXECUTORS

        shutdown_persistent_pools()
        try:
            with AnalysisEngine(PersistentPoolScheduler(jobs=2)) as engine:
                engine.run([_sleep_task("r1", 0.0), _sleep_task("r2", 0.0)])
            executor = _PERSISTENT_EXECUTORS.get(2)
            assert executor is not None  # survived engine close()
            with AnalysisEngine(PersistentPoolScheduler(jobs=2)) as engine:
                engine.run([_sleep_task("r3", 0.0)])
            assert _PERSISTENT_EXECUTORS.get(2) is executor
        finally:
            shutdown_persistent_pools()


class TestWorkerService:
    CHAIN = (
        "const p = 0.01\n"
        "i := 0\n"
        "while i <= 9:\n"
        "    if prob(1 - p):\n"
        "        i := i + 1\n"
        "    else:\n"
        "        exit\n"
        "assert false\n"
    )

    def test_round_trip_and_stop(self, tmp_path):
        from repro.engine.workers import (
            ServiceScheduler,
            service_status,
            start_service,
            stop_service,
        )

        directory = tmp_path / "svc"
        spec = ProgramSpec.from_source(self.CHAIN, name="svc-chain")
        task = AnalysisTask.make("explowsyn", spec, task_id="svc/explowsyn")
        serial = AnalysisEngine(SerialScheduler()).run_inline(task)
        try:
            status = start_service(directory, jobs=1, idle_timeout=120)
            assert status["jobs"] == 1
            assert service_status(directory)["pid"] == status["pid"]
            remote = AnalysisEngine(ServiceScheduler(directory)).run([task])
            result = remote[task.task_id]
            assert result.ok
            assert result.log_bound == serial.log_bound  # bit-identical
        finally:
            stop_service(directory)
        assert service_status(directory) is None

    def test_scheduler_requires_running_service(self, tmp_path):
        from repro.engine.workers import ServiceScheduler

        with pytest.raises(TaskError, match="repro workers start"):
            ServiceScheduler(tmp_path / "nowhere")

    def test_idle_timeout_reaps_the_daemon(self, tmp_path):
        from repro.engine.workers import service_status, start_service, stop_service

        directory = tmp_path / "svc-idle"
        try:
            start_service(directory, jobs=1, idle_timeout=0.6)
            deadline = time.monotonic() + 10.0
            while service_status(directory) is not None:
                if time.monotonic() > deadline:
                    pytest.fail("idle service did not shut itself down")
                time.sleep(0.2)
        finally:
            stop_service(directory)  # harmless if already gone
