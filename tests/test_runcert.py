"""Run-certificate emission, verification, tampering and cache transport.

The certificate is only worth its bytes if (a) honest runs always verify,
(b) *every* forgery the checker claims to catch is actually caught — the
tampering drills here re-sign the payload after mutating it, modelling an
attacker who can recompute hashes but not re-run the engine — and (c) the
bytes survive the trip through the result cache and the process pool
unchanged (certificates carry no timings, so serial and pooled executions
of the same task must produce *identical* payloads).
"""

import json
import pickle

import pytest

from repro.core.fixpoint import build_sparse_model, iterate_model
from repro.core.runcert import (
    RunCertificate,
    emit_run_certificate,
    verify_certificate_text,
    verify_run_certificate,
)
from repro.lang import compile_source

pytestmark = pytest.mark.smoke

GAMBLER = (
    "x := 3\nwhile x >= 1 and x <= 9:\n    switch:\n"
    "        prob(0.5): x := x + 1\n        prob(0.5): x := x - 1\n"
    "assert x <= 0"
)

#: fractional half-step accumulator: admitted on the scale-2 lattice, so
#: its certificate carries a non-trivial admission record
HALFSTEP = (
    "i := 0\nx := 0\nwhile i <= 20 and x - 15/2 <= 0:\n"
    "    if prob(0.5):\n        i, x := i + 1, x + 1/2\n"
    "    else:\n        i := i + 1\n"
    "assert x >= 8"
)


def _certificate(source, name, *, explore="auto", integer_mode=True, max_states=10_000):
    pts = compile_source(source, name=name, integer_mode=integer_mode).pts
    model = build_sparse_model(pts, max_states=max_states, explore=explore)
    result = iterate_model(model)
    cert = emit_run_certificate(
        pts,
        model,
        result,
        max_states=max_states,
        explore=explore,
        name=name,
        source=source,
        integer_mode=integer_mode,
    )
    return pts, cert


def _resign(cert, mutate):
    """Mutate a deep copy of the payload and recompute the digest."""
    payload = json.loads(json.dumps(cert.payload))
    mutate(payload)
    return RunCertificate.from_payload(payload)


class TestEmission:
    def test_honest_certificate_verifies(self):
        pts, cert = _certificate(GAMBLER, "gambler", explore="int64")
        report = verify_run_certificate(cert, pts=pts)
        assert report.ok, "\n".join(report.render())

    def test_self_contained_verification_recompiles_the_source(self):
        _, cert = _certificate(HALFSTEP, "halfstep", explore="scaled", integer_mode=False)
        report = verify_certificate_text(cert.to_json())
        assert report.ok, "\n".join(report.render())

    def test_emission_is_deterministic(self):
        _, a = _certificate(GAMBLER, "gambler", explore="int64")
        _, b = _certificate(GAMBLER, "gambler", explore="int64")
        assert a.to_json() == b.to_json()
        assert a.digest == b.digest

    def test_cross_engine_digests_agree(self):
        # the frontier digests hash *reduced rational* state rows, so the
        # scaled-int64 and exact Fraction engines must emit the same
        # levels block — this is the certificate-level parity statement
        _, fast = _certificate(HALFSTEP, "halfstep", explore="scaled", integer_mode=False)
        _, exact = _certificate(
            HALFSTEP, "halfstep", explore="fraction", integer_mode=False
        )
        assert (
            fast.payload["exploration"]["levels"]
            == exact.payload["exploration"]["levels"]
        )

    def test_solver_evidence_rides_the_certificate(self):
        pts, cert = _certificate(GAMBLER, "gambler", explore="int64")
        evidence = cert.payload["value_iteration"]["evidence"]
        assert evidence["requested"] == "auto"
        assert evidence["tol"] == 1e-12


class TestTampering:
    def test_tampered_digest_rejected(self):
        pts, cert = _certificate(GAMBLER, "gambler", explore="int64")

        def flip(payload):
            payload["exploration"]["levels"]["digests"][0] = "0" * 64

        report = verify_run_certificate(_resign(cert, flip), pts=pts)
        assert not report.ok
        assert "frontier-digests" in [name for name, _ in report.failures]

    def test_tampered_bounds_rejected(self):
        pts, cert = _certificate(
            HALFSTEP, "halfstep", explore="scaled", integer_mode=False
        )

        def inflate(payload):
            payload["exploration"]["admission"]["guards"][0]["headroom"] += 1

        report = verify_run_certificate(_resign(cert, inflate), pts=pts)
        assert not report.ok
        assert "admission-bounds" in [name for name, _ in report.failures]

    def test_stale_fingerprint_rejected(self):
        pts, cert = _certificate(GAMBLER, "gambler", explore="int64")

        def stale(payload):
            payload["fingerprints"]["fixpoint"] = "older-engine.v0"

        report = verify_run_certificate(_resign(cert, stale), pts=pts)
        assert not report.ok
        assert "engine-fingerprint" in [name for name, _ in report.failures]

    def test_unsigned_mutation_fails_integrity(self):
        pts, cert = _certificate(GAMBLER, "gambler", explore="int64")
        payload = json.loads(json.dumps(cert.payload))
        payload["exploration"]["states"] += 1
        unsigned = RunCertificate(payload=payload, digest=cert.digest)
        report = verify_run_certificate(unsigned, pts=pts)
        assert not report.ok
        assert report.failures[0][0] == "integrity"

    def test_garbage_text_fails_parse(self):
        report = verify_certificate_text("{not json")
        assert not report.ok
        assert report.failures[0][0] == "parse"


class TestCacheRoundTrip:
    def _task(self):
        from repro.engine.task import AnalysisTask, ProgramSpec

        return AnalysisTask.make(
            "exact",
            ProgramSpec.from_source(GAMBLER, name="gambler"),
            params={"max_states": 10_000, "explore": "int64"},
        )

    def test_sidecar_written_and_reattached(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.engine import AnalysisEngine

        cache = ResultCache(tmp_path / "c")
        task = self._task()
        with AnalysisEngine(cache=cache) as engine:
            result = engine.run_inline(task)
        assert result.ok and result.run_certificate is not None
        # on disk: pickle + sidecar, and the pickle itself is cert-free
        assert cache.blob_path(task.cache_key).is_file()
        with open(cache._path(task.cache_key), "rb") as fh:
            assert pickle.load(fh).run_certificate is None
        # a fresh cache instance reattaches byte-identically
        hit = ResultCache(tmp_path / "c").get(task.cache_key)
        assert hit is not None
        assert hit.run_certificate == result.run_certificate
        report = verify_certificate_text(
            json.dumps(hit.run_certificate)
        )
        assert report.ok, "\n".join(report.render())

    def test_gc_coevicts_sidecars_and_sweeps_orphans(self, tmp_path):
        from repro.engine.cache import ResultCache

        cache = ResultCache(tmp_path / "c")
        task = self._task()
        from repro.engine.engine import AnalysisEngine

        with AnalysisEngine(cache=cache) as engine:
            engine.run_inline(task)
        orphan = cache.blob_path("deadbeef")
        orphan.write_text("{}")
        # a *different* cache instance: the entry is foreign, so a
        # 1-byte budget evicts it — and must take the sidecar with it
        stale = ResultCache(tmp_path / "c", max_bytes=1)
        report = stale.gc()
        assert report.evicted == 1
        leftovers = {p.name for p in (tmp_path / "c").iterdir()}
        assert not any(n.endswith(".cert.json") for n in leftovers)
        assert not orphan.exists()

    def test_stats_report_certificate_coverage(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.engine import AnalysisEngine

        cache = ResultCache(tmp_path / "c")
        with AnalysisEngine(cache=cache) as engine:
            engine.run_inline(self._task())
        (tmp_path / "c" / "bare.pkl").write_bytes(b"x" * 10)
        (tmp_path / "c" / "orphan.cert.json").write_text("{}")
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.certificates == 1
        assert stats.orphan_certificates == 1


class TestSerialVsPool:
    def test_pooled_certificates_are_byte_identical_to_serial(self, tmp_path):
        from repro.engine.engine import AnalysisEngine
        from repro.engine.scheduler import ProcessPoolScheduler
        from repro.engine.task import AnalysisTask, ProgramSpec

        tasks = [
            AnalysisTask.make(
                "exact",
                ProgramSpec.from_source(GAMBLER, name="gambler"),
                params={"max_states": 10_000, "explore": "int64"},
                task_id="gambler",
            ),
            AnalysisTask.make(
                "exact",
                ProgramSpec.from_source(HALFSTEP, name="halfstep", integer_mode=False),
                params={"max_states": 10_000, "explore": "scaled"},
                task_id="halfstep",
            ),
        ]
        serial = AnalysisEngine().run(tasks)
        with ProcessPoolScheduler(jobs=2) as scheduler:
            pooled = AnalysisEngine(scheduler).run(tasks)
        for tid in ("gambler", "halfstep"):
            assert serial[tid].ok and pooled[tid].ok
            blob = json.dumps(serial[tid].run_certificate, sort_keys=True)
            assert blob == json.dumps(pooled[tid].run_certificate, sort_keys=True)
