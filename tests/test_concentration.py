"""Tests for the automated Section 3.2 reduction (step counters)."""

import pytest

from repro.errors import ModelError
from repro.lang import compile_source
from repro.core.concentration import concentration_bound, with_step_counter
from repro.pts import simulate, validate_pts

WALK = """
x := 0
while x <= 19:
    switch:
        prob(0.75): x := x + 1
        prob(0.25): x := x - 1
assert true
"""


@pytest.fixture(scope="module")
def walk_pts():
    return compile_source(WALK, name="walk").pts


class TestWithStepCounter:
    def test_adds_variable_and_timeout_edges(self, walk_pts):
        instrumented = with_step_counter(walk_pts, 100)
        assert "t_steps" in instrumented.program_vars
        assert instrumented.init_valuation["t_steps"] == 0
        timeouts = [t for t in instrumented.transitions if "timeout" in t.name]
        assert len(timeouts) == len(walk_pts.interior_locations)

    def test_validates(self, walk_pts):
        instrumented = with_step_counter(walk_pts, 100)
        assert validate_pts(instrumented).ok

    def test_counter_name_collision_rejected(self, walk_pts):
        with pytest.raises(ModelError):
            with_step_counter(walk_pts, 100, counter="x")

    def test_nonpositive_budget_rejected(self, walk_pts):
        with pytest.raises(ModelError):
            with_step_counter(walk_pts, 0)

    def test_simulation_counts_steps(self, walk_pts):
        # with budget far below E[T] ~ 27, most runs time out (violate)
        tight = with_step_counter(walk_pts, 10)
        r = simulate(tight, episodes=2000, seed=1)
        assert r.violation_rate > 0.9
        # with a generous budget, almost none do
        loose = with_step_counter(walk_pts, 200)
        r2 = simulate(loose, episodes=2000, seed=1)
        assert r2.violation_rate < 0.01

    def test_violation_probability_matches_direct_encoding(self, walk_pts):
        from repro.core import value_iteration

        instrumented = with_step_counter(walk_pts, 80)
        vi = value_iteration(instrumented, max_states=150_000)
        sim = simulate(instrumented, episodes=3000, seed=2)
        lo, hi = sim.violation_interval()
        assert vi.upper >= lo - 1e-9 and vi.lower <= hi + 1e-9


class TestConcentrationBound:
    def test_matches_manual_instrumentation(self, walk_pts):
        """The automated reduction must agree with a hand-instrumented
        program (a scaled-down Rdwalk) to within synthesis tolerance."""
        auto = concentration_bound(walk_pts, 100)
        manual_src = """
x := 0
t := 0
while x <= 19:
    switch:
        prob(0.75): x, t := x + 1, t + 1
        prob(0.25): x, t := x - 1, t + 1
    assert t <= 100
"""
        from repro.core import exp_lin_syn

        manual = compile_source(manual_src, name="manual").pts
        manual_cert = exp_lin_syn(manual)
        assert auto.log_bound == pytest.approx(manual_cert.log_bound, rel=0.05)

    def test_decreasing_in_budget(self, walk_pts):
        b1 = concentration_bound(walk_pts, 60)
        b2 = concentration_bound(walk_pts, 120)
        assert b2.log_bound < b1.log_bound < 0.0

    def test_hoeffding_method(self, walk_pts):
        cert = concentration_bound(walk_pts, 100, method="hoeffding")
        assert cert.method == "hoeffding"
        assert 0.0 < cert.bound < 1.0

    def test_bound_dominates_truth(self, walk_pts):
        from repro.core import value_iteration

        cert = concentration_bound(walk_pts, 80)
        vi = value_iteration(with_step_counter(walk_pts, 80), max_states=150_000)
        assert cert.bound >= vi.lower - 1e-12
