"""Differential tests: sparse vectorized fixpoint engine vs legacy reference.

The engine rewrite (CSR matvecs + compiled BFS steppers) must be
observationally equivalent to the preserved pure-Python implementation in
:mod:`repro.core.fixpoint_reference`:

* identical explored state space (count and truncation flag),
* identical iteration counts on the dense (Gauss-Seidel operator) path,
* brackets equal to iteration tolerance — bit-identical on fast-mixing
  programs, <= 1e-9 on slow-mixing ones,

on all discrete example programs, under truncation, and on randomized
programs from the grammar generator of ``test_random_programs.py``.
"""

import random

import pytest

from repro.lang import compile_source
from repro.core.fixpoint import build_sparse_model, value_iteration
from repro.core import fixpoint_reference

from test_random_programs import ProgramGenerator

COIN = """
x := 0
if prob(0.25):
    x := 1
assert x <= 0
"""

GAMBLER = """
x := 3
while x >= 1 and x <= 9:
    switch:
        prob(0.5): x := x + 1
        prob(0.5): x := x - 1
assert x <= 0
"""

ASYM = """
x := 0
t := 0
while x <= 19:
    switch:
        prob(0.75): x, t := x + 1, t + 1
        prob(0.25): x, t := x - 1, t + 1
assert t <= 60
"""

SAMPLING = """
r ~ bernoulli(0.5)
x := 0
n := 0
while n <= 5:
    x := x + r
    n := n + 1
assert x <= 4
"""

TWO_LOOP = """
x := 2
y := 0
while x >= 1 and x <= 5:
    if prob(3/8):
        x := x + 1
    else:
        x := x - 1
while y <= 3:
    if prob(0.5):
        y := y + 2
    else:
        y := y + 1
assert x <= 0
"""

PROGRAMS = {
    "coin": COIN,
    "gambler": GAMBLER,
    "asym": ASYM,
    "sampling": SAMPLING,
    "two_loop": TWO_LOOP,
}


def assert_equivalent(pts, max_states, tol=1e-9):
    fast = value_iteration(pts, max_states=max_states)
    ref = fixpoint_reference.value_iteration(pts, max_states=max_states)
    assert fast.states == ref.states
    assert fast.truncated == ref.truncated
    assert abs(fast.lower - ref.lower) <= tol, (fast, ref)
    assert abs(fast.upper - ref.upper) <= tol, (fast, ref)
    return fast, ref


class TestExamplePrograms:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_bracket_equivalence(self, name):
        pts = compile_source(PROGRAMS[name], name=name).pts
        assert_equivalent(pts, max_states=50_000)

    def test_coin_bit_identical(self):
        pts = compile_source(COIN, name="coin").pts
        fast = value_iteration(pts)
        ref = fixpoint_reference.value_iteration(pts)
        assert fast.lower == ref.lower
        assert fast.upper == ref.upper
        assert fast.iterations == ref.iterations

    def test_dense_path_matches_iteration_count(self):
        # dense path precomputes the exact Gauss-Seidel operator, so the
        # convergence *schedule* — not just the fixpoint — matches (pinned
        # to pure sweeps: solver="auto" may adopt a certified oracle
        # candidate and stop early)
        pts = compile_source(GAMBLER, name="gambler").pts
        fast = value_iteration(pts, solver="sweep")
        ref = fixpoint_reference.value_iteration(pts)
        assert fast.iterations == ref.iterations

    @pytest.mark.parametrize("max_states", [20, 100, 500])
    def test_truncated_equivalence(self, max_states):
        # truncation pessimizes the same frontier: the BFS visits states in
        # the reference order, so the overflow cut is identical
        pts = compile_source(ASYM, name="asym").pts
        fast, ref = assert_equivalent(pts, max_states=max_states)
        assert fast.truncated

    def test_continuous_sampling_rejected_like_reference(self):
        from repro.errors import ModelError

        src = "r ~ uniform(0, 1)\nx := 0\nx := x + r\nassert x <= 2"
        pts = compile_source(src, name="cont").pts
        with pytest.raises(ModelError):
            value_iteration(pts)
        with pytest.raises(ModelError):
            fixpoint_reference.value_iteration(pts)


class TestSparseModel:
    def test_model_shape(self):
        pts = compile_source(GAMBLER, name="gambler").pts
        model = build_sparse_model(pts, max_states=1000)
        assert model.n == 13
        assert not model.truncated
        assert model.nnz > 0
        assert model.b_lower.shape == (model.n,)
        # init state is interned first, matching the reference exploration
        init = (pts.init_location, tuple(pts.init_valuation[v] for v in pts.program_vars))
        assert model.index[init] == 0

    def test_overflow_mass_only_in_upper_offset(self):
        pts = compile_source(ASYM, name="asym").pts
        model = build_sparse_model(pts, max_states=100)
        assert model.truncated
        assert (model.b_upper - model.b_lower).sum() > 0  # overflow pessimized above
        assert (model.b_lower <= model.b_upper).all()


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(10))
    def test_randomized_equivalence(self, seed):
        source = ProgramGenerator(random.Random(seed)).program()
        pts = compile_source(source, name=f"rand{seed}").pts
        assert_equivalent(pts, max_states=60_000)

    @pytest.mark.parametrize("seed", [3, 7])
    def test_randomized_truncated_equivalence(self, seed):
        source = ProgramGenerator(random.Random(seed)).program()
        pts = compile_source(source, name=f"rand{seed}").pts
        full = fixpoint_reference.value_iteration(pts, max_states=60_000)
        cap = max(10, full.states // 3)
        assert_equivalent(pts, max_states=cap)
