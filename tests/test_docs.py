"""Documentation integrity: links resolve, CLI docs cover every command.

The same link checker runs in the CI ``docs`` job (``tools/check_docs.py``);
running it here too keeps tier-1 self-contained — a PR cannot merge a
dangling cross-reference even if it skips the docs job.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402

pytestmark = pytest.mark.smoke


def test_all_markdown_links_resolve():
    problems = []
    for path in check_docs.doc_files():
        problems.extend(check_docs.check_file(path))
    assert not problems, "\n".join(
        f"{p.relative_to(REPO_ROOT)}: {link!r}: {why}" for p, link, why in problems
    )


def test_doc_suite_is_present():
    names = {p.relative_to(REPO_ROOT).as_posix() for p in check_docs.doc_files()}
    for required in (
        "README.md",
        "PERFORMANCE.md",
        "EXPERIMENTS.md",
        "docs/ARCHITECTURE.md",
        "docs/CLI.md",
    ):
        assert required in names


def test_cli_doc_covers_every_subcommand():
    from repro.cli import build_parser

    # the subparser choices are the authoritative command list
    parser = build_parser()
    subparsers = next(
        a for a in parser._actions if hasattr(a, "choices") and a.choices
    )
    commands = set(subparsers.choices)
    cli_md = (REPO_ROOT / "docs" / "CLI.md").read_text()
    headings = {
        line.lstrip("#").strip()
        for line in cli_md.splitlines()
        if line.startswith("## ")
    }
    missing = commands - headings
    assert not missing, f"docs/CLI.md lacks a section for: {sorted(missing)}"


def test_quickstart_extraction_yields_runnable_commands():
    # the CI docs job executes exactly this extraction, so it must be
    # non-empty and contain the analyze invocation the README documents
    script = check_docs.quickstart_commands()
    assert "race.prob" in script
    assert "python -m repro analyze" in script
    assert "python -m repro exact" in script
    # every non-empty line is a command, not markdown leakage
    for line in script.splitlines():
        assert not line.startswith(("#", "```", "|", "[")), line


def test_github_slugging_matches_expectations():
    assert check_docs.github_slug("The layer stack") == "the-layer-stack"
    assert check_docs.github_slug("`compile`") == "compile"
    assert check_docs.github_slug("Where new work plugs in") == "where-new-work-plugs-in"
