"""Tests for the numeric layer: LP front-end, convex solver, Ser search."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, SolverError
from repro.numeric.convex import ConvexProgram
from repro.numeric.lp import LinearProgram, solve_lp
from repro.numeric.ser import ternary_search
from repro.polyhedra.linexpr import var
from repro.pts.distributions import UniformDistribution


class TestSolveLP:
    def test_optimal(self):
        # min x s.t. x >= 3
        res = solve_lp([1.0], [[-1.0]], [-3.0])
        assert res.ok and res.objective == pytest.approx(3.0)

    def test_infeasible(self):
        res = solve_lp([1.0], [[1.0], [-1.0]], [0.0, -1.0])
        assert res.status == "infeasible"

    def test_unbounded(self):
        res = solve_lp([1.0], [[1.0]], [5.0])
        assert res.status == "unbounded"

    def test_equality(self):
        # min y s.t. x + y = 4, 1 <= x <= 3  =>  y = 1 at x = 3
        res = solve_lp(
            [0.0, 1.0],
            a_ub=[[-1.0, 0.0], [1.0, 0.0]],
            b_ub=[-1.0, 3.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[4.0],
        )
        assert res.ok
        assert res.objective == pytest.approx(1.0)


class TestLinearProgram:
    def test_named_interface(self):
        lp = LinearProgram()
        lp.add_le(var("x") * -1 + 2)  # x >= 2
        values = lp.solve(minimize=var("x"))
        assert values["x"] == pytest.approx(2.0)

    def test_bounds_merge(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=0.0)
        lp.add_variable("x", lower=1.0, upper=5.0)
        values = lp.solve(minimize=var("x"))
        assert values["x"] == pytest.approx(1.0)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        lp.add_le(var("x") - 1)
        lp.add_le(-var("x") + 2)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_unbounded_raises(self):
        lp = LinearProgram()
        lp.add_le(var("x") - 10)
        with pytest.raises(SolverError):
            lp.solve(minimize=var("x"))

    def test_check_assignment(self):
        lp = LinearProgram()
        lp.add_le(var("x") - 1)
        lp.add_eq(var("y") - 2)
        assert lp.check_assignment({"x": 0.5, "y": 2.0})
        assert not lp.check_assignment({"x": 1.5, "y": 2.0})
        assert not lp.check_assignment({"x": 0.5, "y": 2.5})

    def test_feasible(self):
        lp = LinearProgram()
        lp.add_le(var("x") - 1)
        assert lp.feasible()


class TestConvexProgram:
    def test_scalar_lse_constraint(self):
        # minimize t s.t. log(exp(t)) <= 0  =>  t <= 0
        prog = ConvexProgram()
        prog.add_lse([(1.0, var("t"), [])])
        prog.set_objective(var("t"))
        sol = prog.solve()
        assert sol.feasible
        # objective floor stops the descent; any t <= 0 is optimal-feasible
        assert sol.assignment["t"] <= 1e-9

    def test_two_term_balance(self):
        # max a s.t. 0.5 e^{a+1} + 0.5 e^{a} <= 1: optimum a = -log(.5(e+1))
        prog = ConvexProgram()
        prog.add_lse([(0.5, var("a") + 1, []), (0.5, var("a"), [])])
        prog.set_objective(-var("a"))
        sol = prog.solve()
        expected = -math.log(0.5 * (math.e + 1.0))
        assert sol.assignment["a"] == pytest.approx(expected, abs=1e-5)

    def test_linear_constraints_respected(self):
        prog = ConvexProgram()
        prog.add_lse([(1.0, var("a"), [])])
        prog.add_linear_le(-var("a") - 0.25)  # a >= -0.25
        prog.set_objective(var("a"))
        sol = prog.solve()
        assert sol.objective == pytest.approx(-0.25, abs=1e-6)

    def test_linear_eq_respected(self):
        prog = ConvexProgram()
        prog.add_lse([(1.0, var("a") + var("b"), [])])
        prog.add_linear_eq(var("b") - 1)
        prog.set_objective(var("a"))
        sol = prog.solve()
        assert sol.assignment["b"] == pytest.approx(1.0, abs=1e-6)
        assert sol.objective <= -1.0 + 1e-6

    def test_smooth_uniform_mgf_term(self):
        # max a s.t. e^{2a} E[e^{a r}] <= 1 with r ~ U[-6, 0] (mean -3):
        # feasible for small a > 0, binding at a nontrivial a*
        prog = ConvexProgram()
        dist = UniformDistribution(-6, 0)
        prog.add_lse([(1.0, var("a") * 2, [(dist, var("a"))])])
        prog.set_objective(-var("a"))
        sol = prog.solve()
        a = sol.assignment["a"]
        assert a > 0.1  # strictly positive optimum
        direct = 2 * a + dist.log_mgf(a)
        assert direct <= 1e-6  # still feasible
        assert 2 * (a + 0.05) + dist.log_mgf(a + 0.05) > 0  # and near-binding

    def test_max_violation_reports_worst(self):
        prog = ConvexProgram()
        prog.add_lse([(1.0, var("a"), [])])
        prog.add_linear_le(var("a") - 1)
        assert prog.max_violation({"a": 2.0}) == pytest.approx(2.0)
        assert prog.max_violation({"a": -1.0}) == 0.0

    def test_nonpositive_weight_rejected(self):
        prog = ConvexProgram()
        prog.add_lse([(0.0, var("a"), [])])
        prog.set_objective(var("a"))
        with pytest.raises(SolverError):
            prog.solve()

    def test_trivial_program(self):
        prog = ConvexProgram()
        sol = prog.solve()
        assert sol.feasible and sol.objective == 0.0


class TestTernarySearch:
    def test_quadratic_minimum(self):
        result = ternary_search(lambda x: ((x - 3.0) ** 2, None), 0.0, 10.0, tol=1e-8)
        assert result.eps == pytest.approx(3.0, abs=1e-4)

    def test_keeps_best_on_infeasible_tail(self):
        def f(x):
            if x > 5.0:
                return float("inf"), None
            return -x, x

        result = ternary_search(f, 0.0, 10.0, tol=1e-6)
        assert result.value <= -4.9
        assert result.found

    def test_all_infeasible(self):
        result = ternary_search(lambda x: (float("inf"), None), 0.0, 1.0)
        assert not result.found

    def test_boundary_minimum(self):
        result = ternary_search(lambda x: (x, x), 2.0, 9.0, tol=1e-9)
        assert result.eps == pytest.approx(2.0, abs=1e-5)

    @settings(max_examples=20, deadline=None)
    @given(center=st.floats(min_value=0.5, max_value=9.5))
    def test_unimodal_random_center(self, center):
        result = ternary_search(
            lambda x: (abs(x - center), None), 0.0, 10.0, tol=1e-7
        )
        assert result.eps == pytest.approx(center, abs=1e-3)
