"""Additional tests for PTS validation and compiler clean-up passes."""

from fractions import Fraction

import pytest

from repro.lang import compile_source
from repro.polyhedra import var
from repro.pts import FAIL, TERM, PTSBuilder, validate_pts


class TestFlatteningPass:
    def test_nested_switch_flattens_to_single_transition(self):
        src = (
            "x := 0\n"
            "while x >= 0 and x <= 99:\n"
            "    if prob(0.9):\n"
            "        switch:\n"
            "            prob(0.5): x := x - 1\n"
            "            prob(0.5): x := x - 2\n"
            "    else:\n"
            "        x := x + 1\n"
            "assert x >= 100"
        )
        pts = compile_source(src, name="nested").pts
        # the nested probability tree collapses into one 3-fork transition
        assert len(pts.interior_locations) == 1
        loop = [t for t in pts.transitions if len(t.forks) == 3]
        assert loop
        probs = sorted(f.probability for f in loop[0].forks)
        assert probs == [Fraction(1, 10), Fraction(9, 20), Fraction(9, 20)]

    def test_flattening_preserves_distribution(self):
        from repro.pts import simulate

        src_nested = (
            "x := 0\nn := 0\n"
            "while n <= 19:\n"
            "    if prob(0.5):\n"
            "        switch:\n"
            "            prob(0.5): x, n := x + 1, n + 1\n"
            "            prob(0.5): x, n := x - 1, n + 1\n"
            "    else:\n"
            "        n := n + 1\n"
            "assert x <= 2"
        )
        pts = compile_source(src_nested, name="flat").pts
        r = simulate(pts, episodes=4000, seed=21)
        # X = sum of 20 steps in {-1,0,+1} w.p. .25/.5/.25; Pr[X >= 3] = 0.2148
        assert r.violation_rate == pytest.approx(0.2148, abs=0.03)

    def test_sampling_conflict_blocks_flattening(self):
        # two consecutive draws of the same sampling variable must not fuse
        src = (
            "r ~ bernoulli(0.5)\n"
            "a := 0\nb := 0\n"
            "a := a + r\n"
            "b := b + r\n"
            "assert a + b <= 1"
        )
        pts = compile_source(src, name="twodraws").pts
        from repro.pts import simulate

        rate = simulate(pts, episodes=8000, seed=3).violation_rate
        assert rate == pytest.approx(0.25, abs=0.03)


class TestGuardChainPass:
    def test_assert_after_loop_becomes_direct_edges(self):
        src = (
            "x := 40\ny := 0\n"
            "while x <= 99 and y <= 99:\n"
            "    if prob(0.5):\n"
            "        x, y := x + 1, y + 2\n"
            "    else:\n"
            "        x := x + 1\n"
            "assert x >= 100"
        )
        pts = compile_source(src, name="race").pts
        # a direct head -> fail edge guarded by (x <= 99 and y >= 100)
        fail_edges = [
            t
            for t in pts.transitions
            if any(f.destination == FAIL for f in t.forks)
        ]
        assert fail_edges
        guard = fail_edges[0].guard
        assert guard.contains({"x": 99, "y": 100})
        assert not guard.contains({"x": 100, "y": 100})

    def test_weakest_precondition_through_update(self):
        # assert on a post-assignment value must pull back through the update
        src = "x := 0\nx := x + 5\nassert x <= 4"
        pts = compile_source(src, name="wp").pts
        from repro.pts import simulate

        assert simulate(pts, episodes=10, seed=0).violation_rate == 1.0


class TestValidationEdgeCases:
    def test_guard_dedupe_in_polyhedron(self):
        from repro.polyhedra import AffineIneq, Polyhedron

        ineq = AffineIneq.le(var("x"), 5)
        p = Polyhedron(["x"], [ineq, ineq, ineq])
        assert len(p.inequalities) == 1

    def test_trivially_true_inequalities_dropped(self):
        from repro.polyhedra import AffineIneq, Polyhedron
        from repro.polyhedra.linexpr import LinExpr

        p = Polyhedron(["x"], [AffineIneq(LinExpr.constant(-3))])
        assert not p.inequalities

    def test_constant_false_inequality_kept(self):
        from repro.polyhedra import AffineIneq, Polyhedron
        from repro.polyhedra.linexpr import LinExpr

        p = Polyhedron(["x"], [AffineIneq(LinExpr.constant(1))])
        assert p.is_empty()

    def test_builder_guard_accepts_eq_pairs(self):
        b = PTSBuilder(["x"], init={"x": 0})
        b.transition("a", guard=[b.eq(var("x"), 0)], forks=[(TERM, 1, {})])
        b.transition("a", guard=[b.ge(var("x"), 1)], forks=[(FAIL, 1, {})])
        b.transition("a", guard=[b.le(var("x"), -1)], forks=[(FAIL, 1, {})])
        pts = b.build(init_location="a")
        assert validate_pts(pts).ok
