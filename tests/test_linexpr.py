"""Tests for exact affine expressions."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.polyhedra.linexpr import LinExpr, const, var


def small_linexprs():
    names = st.sampled_from(["x", "y", "z"])
    coeffs = st.dictionaries(names, st.fractions(max_denominator=10), max_size=3)
    constants = st.fractions(max_denominator=10)
    return st.builds(LinExpr, coeffs, constants)


class TestConstruction:
    def test_zero_coeffs_dropped(self):
        e = LinExpr({"x": 0, "y": 2})
        assert e.variables() == ("y",)

    def test_var_and_const_helpers(self):
        assert var("x").coeff("x") == 1
        assert const(5).const == 5
        assert const(5).is_constant

    def test_coerce_number(self):
        assert LinExpr.coerce(3) == const(3)

    def test_coerce_passthrough(self):
        e = var("x")
        assert LinExpr.coerce(e) is e

    def test_float_coefficients_exact(self):
        e = LinExpr({"x": 0.5})
        assert e.coeff("x") == Fraction(1, 2)


class TestArithmetic:
    def test_add(self):
        e = var("x") + var("y") + 3
        assert e.coeff("x") == 1 and e.coeff("y") == 1 and e.const == 3

    def test_add_cancels(self):
        e = var("x") - var("x")
        assert e.is_zero

    def test_radd_rsub(self):
        e = 1 + var("x")
        assert e.const == 1
        e2 = 1 - var("x")
        assert e2.coeff("x") == -1 and e2.const == 1

    def test_scalar_mul_div(self):
        e = (var("x") * 3) / 2
        assert e.coeff("x") == Fraction(3, 2)

    def test_div_zero(self):
        with pytest.raises(ZeroDivisionError):
            var("x") / 0

    @given(small_linexprs(), small_linexprs())
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    @given(small_linexprs())
    def test_neg_involution(self, a):
        assert -(-a) == a

    @given(small_linexprs(), st.fractions(max_denominator=5))
    def test_mul_distributes_over_eval(self, a, k):
        val = {"x": 2, "y": 3, "z": 5}
        assert (a * k).evaluate(val) == a.evaluate(val) * k


class TestSemantics:
    def test_evaluate_exact(self):
        e = LinExpr({"x": Fraction(1, 3)}, 1)
        assert e.evaluate({"x": 3}) == 2

    def test_evaluate_missing_variable(self):
        with pytest.raises(KeyError):
            var("x").evaluate({})

    def test_evaluate_float(self):
        e = var("x") * 2 + 1
        assert e.evaluate_float({"x": 0.5}) == pytest.approx(2.0)

    def test_substitute_affine(self):
        e = var("x") * 2 + var("y")
        out = e.substitute({"x": var("y") + 1})
        assert out == var("y") * 3 + 2

    def test_substitute_partial(self):
        e = var("x") + var("y")
        out = e.substitute({"x": const(1)})
        assert out == var("y") + 1

    def test_restrict(self):
        e = var("x") + var("y") * 2 + 7
        r = e.restrict(["y"])
        assert r == var("y") * 2

    @given(small_linexprs())
    def test_substitution_identity(self, e):
        out = e.substitute({v: var(v) for v in e.variables()})
        assert out == e


class TestStructure:
    def test_hash_consistent_with_eq(self):
        a = var("x") + 1
        b = LinExpr({"x": 1}, 1)
        assert a == b and hash(a) == hash(b)

    def test_str_renders_signs(self):
        e = var("x") - var("y") * 2 - 3
        s = str(e)
        assert "x" in s and "2*y" in s and "3" in s

    def test_str_zero(self):
        assert str(LinExpr()) == "0"

    def test_eq_other_type(self):
        assert (var("x") == 42) is False
