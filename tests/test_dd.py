"""Tests for the double description method and Minkowski decomposition.

The property tests cross-validate the V-representation against LP queries on
the H-representation: every generator must lie in the polyhedron / recession
cone, and random convex combinations of generators must lie in the
polyhedron (soundness); random polyhedron points must be dominated by some
vertex in every linear direction (completeness witness for polytopes).
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import (
    AffineIneq,
    Polyhedron,
    decompose,
    polyhedron_generators,
)
from repro.polyhedra.dd import cone_generators
from repro.polyhedra.linexpr import LinExpr, var


class TestConeGenerators:
    def test_full_space(self):
        lines, rays = cone_generators([], 2)
        assert len(lines) == 2 and not rays

    def test_halfspace(self):
        lines, rays = cone_generators([[Fraction(1), Fraction(0)]], 2)
        # {x <= 0}: one line (y axis) and one ray (-x)
        assert len(lines) == 1
        assert len(rays) == 1
        vec = rays[0][0]
        assert vec[0] < 0

    def test_negative_orthant(self):
        rows = [[Fraction(1), Fraction(0)], [Fraction(0), Fraction(1)]]
        lines, rays = cone_generators(rows, 2)
        assert not lines
        vectors = sorted(r[0] for r in rays)
        assert vectors == [(-1, 0), (0, -1)]

    def test_pointed_cone_single_ray(self):
        # x <= 0 and -x <= 0 and y <= 0  ->  ray (0, -1)
        rows = [
            [Fraction(1), Fraction(0)],
            [Fraction(-1), Fraction(0)],
            [Fraction(0), Fraction(1)],
        ]
        lines, rays = cone_generators(rows, 2)
        assert not lines
        assert [r[0] for r in rays] == [(0, -1)]

    def test_trivial_cone(self):
        # x <= 0, -x <= 0, y <= 0, -y <= 0  ->  {0}
        rows = [
            [Fraction(1), Fraction(0)],
            [Fraction(-1), Fraction(0)],
            [Fraction(0), Fraction(1)],
            [Fraction(0), Fraction(-1)],
        ]
        lines, rays = cone_generators(rows, 2)
        assert not lines and not rays

    def test_row_length_validated(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            cone_generators([[Fraction(1)]], 2)


class TestPolyhedronGenerators:
    def test_paper_example_6(self):
        # Psi = {x <= 99, y <= 99} decomposes into the point (99, 99) plus
        # the cone {x <= 0, y <= 0} — exactly Example 6 of the paper.
        p = Polyhedron.from_box({"x": (None, 99), "y": (None, 99)})
        g = polyhedron_generators(p)
        assert g.points == [(99, 99)]
        assert sorted(g.rays) == [(-1, 0), (0, -1)]
        assert not g.lines

    def test_box_vertices(self):
        p = Polyhedron.from_box({"x": (0, 10), "y": (0, 5)})
        g = polyhedron_generators(p)
        assert g.is_polytope
        assert sorted(g.points) == [(0, 0), (0, 5), (10, 0), (10, 5)]

    def test_unconstrained_variable_becomes_line(self):
        p = Polyhedron.from_box({"x": (None, 99)}).with_variables(["x", "y"])
        g = polyhedron_generators(p)
        assert g.points == [(99, 0)]
        assert g.rays == [(-1, 0)]
        assert g.lines == [(0, 1)]

    def test_empty_polyhedron(self):
        p = Polyhedron.from_box({"x": (5, 3)})
        assert polyhedron_generators(p).is_empty

    def test_simplex(self):
        p = Polyhedron.from_box(
            {"x": (0, None), "y": (0, None), "z": (0, None)}
        ).and_ineqs([AffineIneq.le(var("x") + var("y") + var("z"), 6)])
        g = polyhedron_generators(p)
        assert sorted(g.points) == [(0, 0, 0), (0, 0, 6), (0, 6, 0), (6, 0, 0)]
        assert g.is_polytope

    def test_single_point(self):
        p = Polyhedron.from_box({"x": (3, 3)})
        g = polyhedron_generators(p)
        assert g.points == [(3,)]
        assert g.is_polytope

    def test_fractional_vertex(self):
        # x >= 0, y >= 0, 2x + 3y <= 1 has vertex (1/2, 0) and (0, 1/3)
        p = Polyhedron.from_box({"x": (0, None), "y": (0, None)}).and_ineqs(
            [AffineIneq.le(var("x") * 2 + var("y") * 3, 1)]
        )
        g = polyhedron_generators(p)
        assert sorted(g.points) == [
            (0, 0),
            (0, Fraction(1, 3)),
            (Fraction(1, 2), 0),
        ]

    def test_redundant_constraints_ignored(self):
        p = Polyhedron.from_box({"x": (0, 1)}).and_ineqs(
            [AffineIneq.le(var("x"), 10), AffineIneq.le(var("x"), 1)]
        )
        g = polyhedron_generators(p)
        assert sorted(g.points) == [(0,), (1,)]


class TestMinkowskiDecomposition:
    def test_verify_pass(self):
        p = Polyhedron.from_box({"x": (None, 99), "y": (None, 99)})
        d = decompose(p)
        assert d.verify()
        assert not d.cone_is_trivial
        assert d.polytope_points == [{"x": 99, "y": 99}]

    def test_polytope_has_trivial_cone(self):
        d = decompose(Polyhedron.from_box({"x": (0, 1)}))
        assert d.cone_is_trivial

    def test_empty(self):
        d = decompose(Polyhedron.from_box({"x": (1, 0)}))
        assert d.is_empty


def _random_polyhedron(rng, n_vars, n_cons):
    names = [f"v{i}" for i in range(n_vars)]
    ineqs = []
    for _ in range(n_cons):
        coeffs = {name: Fraction(rng.randint(-3, 3)) for name in names}
        ineqs.append(AffineIneq.le(LinExpr(coeffs), Fraction(rng.randint(-4, 8))))
    # keep things bounded below to get interesting vertex structure sometimes
    return Polyhedron(names, ineqs)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generators_sound_random(seed):
    """Every reported generator must agree with the H-representation."""
    rng = random.Random(seed)
    poly = _random_polyhedron(rng, rng.randint(1, 3), rng.randint(1, 4))
    g = polyhedron_generators(poly)
    cone = poly.recession_cone()
    for p in g.points:
        assert poly.contains(dict(zip(g.variables, p)))
    for r in g.rays:
        assert cone.contains(dict(zip(g.variables, r)))
    for l in g.lines:
        assert cone.contains(dict(zip(g.variables, l)))
        assert cone.contains({k: -v for k, v in zip(g.variables, l)})
    # emptiness agrees with the LP decision
    assert g.is_empty == poly.is_empty()
    # random convex combination + cone elements stay inside
    if g.points:
        weights = [rng.random() for _ in g.points]
        total = sum(weights)
        point = {
            v: sum(w * p[i] for w, p in zip(weights, g.points)) / total
            for i, v in enumerate(g.variables)
        }
        for r in g.rays:
            t = rng.random()
            for i, v in enumerate(g.variables):
                point[v] += t * float(r[i])
        assert poly.contains_float({k: float(x) for k, x in point.items()})


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_polytope_vertices_attain_lp_optimum(seed):
    """For bounded polyhedra, max of a linear objective is attained at a
    generator point (completeness of the vertex enumeration)."""
    rng = random.Random(seed)
    n = rng.randint(1, 3)
    names = [f"v{i}" for i in range(n)]
    box = Polyhedron.from_box({name: (rng.randint(-3, 0), rng.randint(1, 4)) for name in names})
    extra = AffineIneq.le(
        LinExpr({name: Fraction(rng.randint(-2, 2)) for name in names}),
        Fraction(rng.randint(0, 6)),
    )
    poly = box.and_ineqs([extra])
    g = polyhedron_generators(poly)
    if g.is_empty:
        assert poly.is_empty()
        return
    assert g.is_polytope
    objective = LinExpr({name: Fraction(rng.randint(-3, 3)) for name in names})
    status, lp_value = poly.maximize(objective)
    assert status == "optimal"
    vertex_value = max(
        float(objective.evaluate(dict(zip(g.variables, p)))) for p in g.points
    )
    assert vertex_value == pytest.approx(lp_value, abs=1e-6)
