"""Tests for invariant maps and interval abstract interpretation."""


import pytest

from repro.errors import ModelError
from repro.lang import compile_source
from repro.polyhedra import AffineIneq, Polyhedron, var
from repro.core.invariants import InvariantMap, generate_interval_invariants

RACE = """
x := 40
y := 0
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""

WALK = """
const p = 1e-4
x := 1
while x <= 99:
    switch:
        prob(p): exit
        prob(0.75 * (1 - p)): x := x + 1
        prob(0.25 * (1 - p)): x := x - 1
assert false
"""


class TestInvariantMap:
    def test_default_universe(self):
        pts = compile_source(RACE, name="race").pts
        inv = InvariantMap(pts)
        assert not inv.of(pts.init_location).inequalities

    def test_unknown_location_rejected(self):
        pts = compile_source(RACE, name="race").pts
        with pytest.raises(ModelError):
            InvariantMap(pts, {"nowhere": Polyhedron.universe(pts.program_vars)})

    def test_set_returns_copy(self):
        pts = compile_source(RACE, name="race").pts
        inv = InvariantMap(pts)
        inv2 = inv.set(pts.init_location, Polyhedron.from_box({"x": (0, 100)}))
        assert not inv.of(pts.init_location).inequalities
        assert inv2.of(pts.init_location).inequalities

    def test_merge_annotations_intersects(self):
        pts = compile_source(RACE, name="race").pts
        base = InvariantMap(pts, {pts.init_location: Polyhedron.from_box({"x": (40, None)})})
        merged = base.merged_with(
            {pts.init_location: Polyhedron.from_box({"x": (None, 100)})}
        )
        poly = merged.of(pts.init_location)
        assert poly.contains({"x": 50, "y": 0})
        assert not poly.contains({"x": 101, "y": 0})
        assert not poly.contains({"x": 39, "y": 0})

    def test_trajectory_check_passes_for_sound_invariant(self):
        pts = compile_source(RACE, name="race").pts
        inv = generate_interval_invariants(pts)
        assert inv.check_on_trajectories(episodes=60, seed=1) == []

    def test_trajectory_check_catches_unsound_invariant(self):
        pts = compile_source(RACE, name="race").pts
        bad = InvariantMap(pts, {pts.init_location: Polyhedron.from_box({"x": (None, 50)})})
        problems = bad.check_on_trajectories(episodes=60, seed=1)
        assert problems


class TestIntervalGeneration:
    def test_race_head_bounds(self):
        pts = compile_source(RACE, name="race").pts
        inv = generate_interval_invariants(pts)
        head = inv.of(pts.init_location)
        # reachable head states satisfy 40 <= x and 0 <= y
        assert head.contains({"x": 40, "y": 0})
        assert not head.contains({"x": 39, "y": 0})
        assert not head.contains({"x": 40, "y": -1})

    def test_walk_threshold_widening_keeps_guard_bound(self):
        pts = compile_source(WALK, name="walk").pts
        inv = generate_interval_invariants(pts)
        head = inv.of(pts.init_location)
        # widening must land on x <= 100 (one past the loop guard), not infinity
        assert head.implies(AffineIneq.le(var("x"), 100))

    def test_fail_location_invariant_exists(self):
        pts = compile_source(RACE, name="race").pts
        inv = generate_interval_invariants(pts)
        fail_inv = inv.of(pts.fail_location)
        assert not fail_inv.is_empty()
        # the hare only wins while the tortoise is still short of the line
        assert fail_inv.implies(AffineIneq.le(var("x"), 100))

    def test_invariants_sound_on_simulation(self):
        for src, name in [(RACE, "race"), (WALK, "walk")]:
            pts = compile_source(src, name=name).pts
            inv = generate_interval_invariants(pts)
            assert inv.check_on_trajectories(episodes=80, seed=5) == []

    def test_bounded_loop_gets_finite_box(self):
        src = "x := 0\nwhile x <= 9:\n  x := x + 1\nassert x <= 20"
        pts = compile_source(src, name="count").pts
        inv = generate_interval_invariants(pts)
        head = inv.of(pts.init_location)
        assert head.implies(AffineIneq.le(var("x"), 10))
        assert head.implies(AffineIneq.ge(var("x"), 0))
