"""Tests for polynomial-exponent lower bounds (Remark 5)."""

import pytest

from repro.errors import ModelError, SynthesisError, VerificationError
from repro.lang import compile_source
from repro.core.polynomial_lower import polynomial_exp_low_syn
from repro.programs import get_benchmark


def chain(p: float = 0.002, length: int = 30) -> str:
    return f"""
const p = {p}
i := 0
while i <= {length - 1}:
    if prob(1 - p):
        i := i + 1
    else:
        exit
assert false
"""


class TestPolynomialLower:
    def test_chain_is_exact(self):
        pts = compile_source(chain(), name="chain").pts
        cert = polynomial_exp_low_syn(pts, degree=2)
        assert cert.bound == pytest.approx(0.998**30, rel=1e-6)
        assert cert.method == "polynomial-explowsyn"

    def test_matches_affine_on_newton(self):
        from repro.core import exp_low_syn

        inst = get_benchmark("Newton", p="5e-4")
        poly = polynomial_exp_low_syn(inst.pts, inst.invariants, degree=1)
        affine = exp_low_syn(inst.pts, inst.invariants)
        assert poly.log_bound == pytest.approx(affine.log_bound, rel=1e-4)

    def test_degree_two_at_least_degree_one(self):
        pts = compile_source(chain(0.01, 12), name="c2").pts
        d1 = polynomial_exp_low_syn(pts, degree=1)
        d2 = polynomial_exp_low_syn(pts, degree=2)
        assert d2.log_bound >= d1.log_bound - 1e-6

    def test_sampling_rejected(self):
        src = "r ~ bernoulli(0.5)\nx := 0\nx := x + r\nassert false"
        pts = compile_source(src, name="s").pts
        with pytest.raises(ModelError):
            polynomial_exp_low_syn(pts)

    def test_all_mass_to_term_rejected(self):
        pts = compile_source("x := 0\nexit\nassert false", name="never").pts
        with pytest.raises(SynthesisError):
            polynomial_exp_low_syn(pts)

    def test_verification_catches_tampering(self):
        pts = compile_source(chain(), name="chain").pts
        cert = polynomial_exp_low_syn(pts, degree=1)
        # inflate the initial template's constant coefficient
        key = next(k for k in cert.assignment if k.startswith("c(") and "[()]" in k)
        cert.assignment[key] += 5.0
        with pytest.raises(VerificationError):
            cert.verify()

    def test_bound_below_truth(self):
        from repro.core import value_iteration

        pts = compile_source(chain(0.01, 15), name="c3").pts
        cert = polynomial_exp_low_syn(pts, degree=1)
        vi = value_iteration(pts)
        assert cert.bound <= vi.upper + 1e-9
