"""Tests for the command-line interface."""

import pytest

from repro.cli import main

RACE = """
x := 40
y := 0
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""

CHAIN = """
const p = 0.01
i := 0
while i <= 9:
    if prob(1 - p):
        i := i + 1
    else:
        exit
assert false
"""


@pytest.fixture
def race_file(tmp_path):
    f = tmp_path / "race.prob"
    f.write_text(RACE)
    return str(f)


@pytest.fixture
def chain_file(tmp_path):
    f = tmp_path / "chain.prob"
    f.write_text(CHAIN)
    return str(f)


class TestCompile:
    def test_prints_pts(self, race_file, capsys):
        assert main(["compile", race_file]) == 0
        out = capsys.readouterr().out
        assert "program vars : x, y" in out
        assert "w.p. 1/2" in out

    def test_validate_flag(self, race_file, capsys):
        assert main(["compile", race_file, "--validate"]) == 0
        assert "validation: ok" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.prob"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.prob"
        bad.write_text("x := := 1")
        assert main(["compile", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestAnalyze:
    def test_upper_default(self, race_file, capsys):
        assert main(["analyze", race_file]) == 0
        out = capsys.readouterr().out
        assert "upper bound (explinsyn)" in out
        assert "e-07" in out

    def test_hoeffding_method(self, race_file, capsys):
        assert main(["analyze", race_file, "--method", "hoeffding"]) == 0
        out = capsys.readouterr().out
        assert "upper bound (hoeffding)" in out

    def test_lower(self, chain_file, capsys):
        assert main(["analyze", chain_file, "--lower"]) == 0
        out = capsys.readouterr().out
        assert "lower bound (explowsyn)" in out
        assert "almost-sure termination proved" in out

    def test_upper_and_lower(self, chain_file, capsys):
        assert main(["analyze", chain_file, "--upper", "--lower"]) == 0
        out = capsys.readouterr().out
        assert "upper bound" in out and "lower bound" in out


class TestSimulateExact:
    def test_simulate(self, race_file, capsys):
        assert main(["simulate", race_file, "--episodes", "500"]) == 0
        out = capsys.readouterr().out
        assert "violation rate" in out
        assert "episodes            : 500" in out

    def test_exact(self, race_file, capsys):
        assert main(["exact", race_file]) == 0
        out = capsys.readouterr().out
        assert "vpf bracket" in out
        assert "truncated" not in out.split("vpf")[0] or True

    def test_exact_truncation_reported(self, chain_file, capsys):
        assert main(["exact", chain_file, "--max-states", "100000"]) == 0
        out = capsys.readouterr().out
        assert "vpf bracket" in out
