"""Tests for the command-line interface."""

import pytest

from repro.cli import main

RACE = """
x := 40
y := 0
while x <= 99 and y <= 99:
    if prob(0.5):
        x, y := x + 1, y + 2
    else:
        x := x + 1
assert x >= 100
"""

CHAIN = """
const p = 0.01
i := 0
while i <= 9:
    if prob(1 - p):
        i := i + 1
    else:
        exit
assert false
"""


@pytest.fixture
def race_file(tmp_path):
    f = tmp_path / "race.prob"
    f.write_text(RACE)
    return str(f)


@pytest.fixture
def chain_file(tmp_path):
    f = tmp_path / "chain.prob"
    f.write_text(CHAIN)
    return str(f)


class TestCompile:
    def test_prints_pts(self, race_file, capsys):
        assert main(["compile", race_file]) == 0
        out = capsys.readouterr().out
        assert "program vars : x, y" in out
        assert "w.p. 1/2" in out

    def test_validate_flag(self, race_file, capsys):
        assert main(["compile", race_file, "--validate"]) == 0
        assert "validation: ok" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.prob"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.prob"
        bad.write_text("x := := 1")
        assert main(["compile", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestAnalyze:
    def test_upper_default(self, race_file, capsys):
        assert main(["analyze", race_file]) == 0
        out = capsys.readouterr().out
        assert "upper bound (explinsyn)" in out
        assert "e-07" in out

    def test_hoeffding_method(self, race_file, capsys):
        assert main(["analyze", race_file, "--method", "hoeffding"]) == 0
        out = capsys.readouterr().out
        assert "upper bound (hoeffding)" in out

    def test_lower(self, chain_file, capsys):
        assert main(["analyze", chain_file, "--lower"]) == 0
        out = capsys.readouterr().out
        assert "lower bound (explowsyn)" in out
        assert "almost-sure termination proved" in out

    def test_upper_and_lower(self, chain_file, capsys):
        assert main(["analyze", chain_file, "--upper", "--lower"]) == 0
        out = capsys.readouterr().out
        assert "upper bound" in out and "lower bound" in out


class TestSimulateExact:
    def test_simulate(self, race_file, capsys):
        assert main(["simulate", race_file, "--episodes", "500"]) == 0
        out = capsys.readouterr().out
        assert "violation rate" in out
        assert "episodes            : 500" in out

    def test_exact(self, race_file, capsys):
        assert main(["exact", race_file]) == 0
        out = capsys.readouterr().out
        assert "vpf bracket" in out
        assert "truncated" not in out.split("vpf")[0] or True

    def test_exact_truncation_reported(self, chain_file, capsys):
        assert main(["exact", chain_file, "--max-states", "100000"]) == 0
        out = capsys.readouterr().out
        assert "vpf bracket" in out


class TestAnalyzeEngineFlags:
    def test_jobs_parallel_probes_match_serial(self, race_file, capsys):
        assert main(["analyze", race_file, "--method", "hoeffding"]) == 0
        serial = capsys.readouterr().out
        assert main(["analyze", race_file, "--method", "hoeffding", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # identical bound, template and Ser trajectory; only the timing
        # line may differ
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("  solved in")
        ]
        assert strip(serial) == strip(parallel)

    def test_cache_replays_analysis(self, race_file, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert main(["analyze", race_file, "--cache", cache_dir]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", race_file, "--cache", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "(cached)" not in first and "(cached)" in second
        assert first.splitlines()[0] == second.splitlines()[0]  # same bound


@pytest.mark.smoke
class TestSelftest:
    def test_all_families_pass(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        for family in ("hoeffding", "explinsyn", "explowsyn", "polynomial_lower"):
            assert family in out
        assert "4/4 families ok" in out
