"""Differential tests for the int64 frontier-batch exploration fast path
and the blocked Gauss-Seidel CSR schedule.

The int64 engine must be *bit-identical* to the exact Fraction engine on
every admissible (integer-lattice) program: same state interning order,
same truncation cut, same COO triplets, hence the same matrix, offsets and
value-iteration trajectory.  Inadmissible or overflowing systems must fall
back to the exact path silently under ``explore="auto"`` and loudly under
``explore="int64"``.
"""

import random

import numpy as np
import pytest

from repro.errors import ModelError
from repro.lang import compile_source
from repro.core import fixpoint_reference
from repro.core.fixpoint import build_sparse_model, value_iteration

from test_fixpoint_equivalence import PROGRAMS
from test_random_programs import ProgramGenerator

#: deterministic doubling chain: reaches |x| > 2**31 after ~33 states, so
#: the int64 BFS must abandon the batch and the exact path take over
OVERFLOW_CHAIN = """
x := 1
while x <= 10000000000:
    x := x * 2
assert x <= 0
"""

#: half-integer steps: not on the integer lattice (compiled in real-valued
#: mode so the loop-exit guards stay complete at fractional states)
HALF_STEPS = """
x := 0
while x <= 5:
    if prob(0.5):
        x := x + 1/2
    else:
        x := x + 1
assert x >= 6
"""

#: >2048 states (CSR path) and slow-mixing: the blocked Gauss-Seidel
#: schedule needs roughly half of Jacobi's sweeps to pass the same tol
SLOW_CHAIN = """
x := 40
while x >= 1 and x <= 2499:
    switch:
        prob(0.6): x := x - 1
        prob(0.4): x := x + 1
assert x >= 1
"""


def to_dense(matrix):
    return matrix.toarray() if hasattr(matrix, "toarray") else matrix


def assert_models_bit_identical(pts, max_states):
    fast = build_sparse_model(pts, max_states=max_states, explore="int64")
    exact = build_sparse_model(pts, max_states=max_states, explore="fraction")
    assert fast.explored_via == "int64"
    assert exact.explored_via == "fraction"
    assert fast.n == exact.n
    assert fast.truncated == exact.truncated
    assert (to_dense(fast.matrix) == to_dense(exact.matrix)).all()
    assert (fast.b_lower == exact.b_lower).all()
    assert (fast.b_upper == exact.b_upper).all()
    assert (fast.x0_lower == exact.x0_lower).all()
    assert (fast.x0_upper == exact.x0_upper).all()
    assert fast.index == exact.index  # lazy on the int64 side
    return fast, exact


class TestIntegerLatticeBitIdentity:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_example_programs(self, name):
        pts = compile_source(PROGRAMS[name], name=name).pts
        assert_models_bit_identical(pts, max_states=50_000)

    @pytest.mark.parametrize("max_states", [20, 100, 500])
    def test_truncation_cuts_the_same_frontier(self, max_states):
        pts = compile_source(PROGRAMS["asym"], name="asym").pts
        fast, _ = assert_models_bit_identical(pts, max_states=max_states)
        assert fast.truncated

    def test_value_iteration_matches_reference_bitwise(self):
        # int64 exploration feeds the same dense Gauss-Seidel operator, so
        # even the iteration count matches the legacy engine
        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        fast = value_iteration(pts, explore="int64")
        ref = fixpoint_reference.value_iteration(pts)
        assert fast.iterations == ref.iterations
        assert fast.lower == ref.lower
        assert fast.upper == ref.upper

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_programs(self, seed):
        source = ProgramGenerator(random.Random(seed)).program()
        pts = compile_source(source, name=f"rand{seed}").pts
        auto = build_sparse_model(pts, max_states=60_000)
        exact = build_sparse_model(pts, max_states=60_000, explore="fraction")
        assert auto.n == exact.n
        assert auto.truncated == exact.truncated
        assert (to_dense(auto.matrix) == to_dense(exact.matrix)).all()
        assert (auto.b_upper == exact.b_upper).all()


#: >64 BFS levels of width ~2: under explore="auto" the batched engine
#: must bail out to the scalar path (per-level numpy overhead dominates)
THIN_CHAIN = """
x := 150
while x >= 1 and x <= 299:
    switch:
        prob(0.5): x := x + 1
        prob(0.5): x := x - 1
assert x <= 0
"""


class TestFallback:
    def test_auto_falls_back_on_int64_overflow(self):
        pts = compile_source(OVERFLOW_CHAIN, name="ovf").pts
        assert pts.integrality().integral
        model = build_sparse_model(pts, max_states=5_000)
        assert model.explored_via == "fraction"
        fast = value_iteration(pts, max_states=5_000)
        ref = fixpoint_reference.value_iteration(pts, max_states=5_000)
        assert fast.states == ref.states
        assert fast.lower == ref.lower
        assert fast.upper == ref.upper

    def test_forced_int64_raises_on_overflow(self):
        pts = compile_source(OVERFLOW_CHAIN, name="ovf").pts
        with pytest.raises(ModelError, match="overflowed the int64"):
            build_sparse_model(pts, max_states=5_000, explore="int64")

    def test_truncation_dropped_overflow_candidates_keep_the_fast_path(self):
        # the 33rd state of the doubling chain exceeds 2**31, but with
        # max_states=16 it is cut by the budget before admission — only
        # *admitted* states are range-checked, so int64 stays usable
        pts = compile_source(OVERFLOW_CHAIN, name="ovf").pts
        fast = build_sparse_model(pts, max_states=16, explore="int64")
        exact = build_sparse_model(pts, max_states=16, explore="fraction")
        assert fast.explored_via == "int64"
        assert fast.truncated
        assert fast.n == exact.n
        assert (to_dense(fast.matrix) == to_dense(exact.matrix)).all()
        assert (fast.b_upper == exact.b_upper).all()

    def test_auto_bails_out_on_thin_frontiers(self):
        # chain-shaped system: >64 narrow BFS levels restart on the scalar
        # engine under auto, but forced int64 still batches to completion
        pts = compile_source(THIN_CHAIN, name="thin").pts
        auto = build_sparse_model(pts, max_states=5_000)
        assert auto.explored_via == "fraction"
        forced = build_sparse_model(pts, max_states=5_000, explore="int64")
        assert forced.explored_via == "int64"
        assert forced.n == auto.n
        assert (to_dense(forced.matrix) == to_dense(auto.matrix)).all()
        assert forced.index == auto.index

    def test_auto_falls_back_on_non_integer_lattice(self):
        pts = compile_source(HALF_STEPS, name="half", integer_mode=False).pts
        report = pts.integrality()
        assert not report.integral
        assert "not integral" in report.reason
        model = build_sparse_model(pts, max_states=5_000)
        assert model.explored_via == "fraction"
        fast = value_iteration(pts, max_states=5_000)
        ref = fixpoint_reference.value_iteration(pts, max_states=5_000)
        assert fast.states == ref.states
        assert abs(fast.lower - ref.lower) <= 1e-9

    def test_forced_int64_rejects_non_integer_lattice(self):
        pts = compile_source(HALF_STEPS, name="half", integer_mode=False).pts
        with pytest.raises(ModelError, match="integer-lattice"):
            build_sparse_model(pts, max_states=5_000, explore="int64")

    def test_continuous_sampling_rejected_before_exploring(self):
        src = "r ~ uniform(0, 1)\nx := 0\nx := x + r\nassert x <= 2"
        pts = compile_source(src, name="cont").pts
        assert not pts.integrality().integral
        with pytest.raises(ModelError):
            value_iteration(pts)

    def test_unknown_modes_rejected(self):
        pts = compile_source(PROGRAMS["coin"], name="coin").pts
        with pytest.raises(ValueError):
            build_sparse_model(pts, explore="simd")
        with pytest.raises(ValueError):
            value_iteration(pts, schedule="sor")


class TestIntegralityReport:
    def test_integral_program(self):
        pts = compile_source(PROGRAMS["sampling"], name="sampling").pts
        assert pts.integrality().integral
        assert pts.integrality() is pts.integrality()  # cached

    def test_fractional_init(self):
        src = "x := 1/2\nassert x <= 0"
        pts = compile_source(src, name="finit", integer_mode=False).pts
        report = pts.integrality()
        assert not report.integral
        assert "init" in report.reason


class TestBlockedGaussSeidel:
    def test_value_agreement_and_fewer_sweeps_on_slow_chain(self):
        pts = compile_source(SLOW_CHAIN, name="slow-chain").pts
        jacobi = value_iteration(pts, schedule="jacobi")
        gs = value_iteration(pts, schedule="gauss-seidel")
        assert jacobi.states == gs.states
        assert jacobi.states > 2048  # CSR path, not the dense operator
        assert abs(jacobi.lower - gs.lower) <= 1e-9
        assert abs(jacobi.upper - gs.upper) <= 1e-9
        assert jacobi.lower > 0.9  # the bracket is meaningful, not degenerate
        # the blocked triangular solves reproduce the reference's in-place
        # schedule, which needs roughly half of Jacobi's sweeps here
        assert gs.iterations < jacobi.iterations

    def test_matches_reference_schedule(self):
        pts = compile_source(SLOW_CHAIN, name="slow-chain").pts
        gs = value_iteration(pts, schedule="gauss-seidel")
        ref = fixpoint_reference.value_iteration(pts)
        assert gs.iterations == ref.iterations
        assert abs(gs.lower - ref.lower) <= 1e-9
        assert abs(gs.upper - ref.upper) <= 1e-9

    def test_dense_path_ignores_schedule(self):
        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        default = value_iteration(pts)
        gs = value_iteration(pts, schedule="gauss-seidel")
        assert default.iterations == gs.iterations
        assert default.lower == gs.lower


class TestEngineFingerprint:
    def test_cache_keys_fold_in_the_fixpoint_fingerprint(self):
        from repro.core.fixpoint import FIXPOINT_FINGERPRINT
        from repro.engine import AnalysisTask, ProgramSpec

        task = AnalysisTask.make(
            "hoeffding", ProgramSpec.from_source("x := 0\nassert x <= 0")
        )
        key = task.cache_key
        assert len(key) == 64
        # the key is a hash, so pin the coupling instead: the fingerprint
        # constant exists and changing it must change every cache key
        import repro.engine.task as task_mod

        assert task_mod._fixpoint_fingerprint() == FIXPOINT_FINGERPRINT


def test_int64_handles_batched_duplicate_candidates():
    # many states of one frontier level map onto the same successor: the
    # void-view dedup must assign one index and keep every edge
    src = """
x := 0
y := 0
while x <= 6:
    switch:
        prob(0.5): x, y := x + 1, 0
        prob(0.5): x, y := x + 1, 1
assert y <= 0
"""
    pts = compile_source(src, name="dedup").pts
    fast = build_sparse_model(pts, max_states=10_000, explore="int64")
    exact = build_sparse_model(pts, max_states=10_000, explore="fraction")
    assert fast.n == exact.n
    assert (to_dense(fast.matrix) == to_dense(exact.matrix)).all()
    assert np.isclose(to_dense(fast.matrix).sum(axis=1).max(), 1.0)
