"""Differential tests for the int64/scaled-int64 frontier-batch exploration
fast paths and the blocked Gauss-Seidel CSR schedule.

The int64 engine must be *bit-identical* to the exact Fraction engine on
every admissible (integer-lattice) program — and the scaled-int64 engine on
every fixed-point-admissible fractional program: same state interning
order, same truncation cut, same COO triplets, hence the same matrix,
offsets and value-iteration trajectory.  Inadmissible or overflowing
systems must fall back to the exact path silently under ``explore="auto"``
and loudly under ``explore="int64"``/``explore="scaled"``.
"""

import random

import numpy as np
import pytest

from repro.errors import ModelError
from repro.lang import compile_source
from repro.core import fixpoint_reference
from repro.core.fixpoint import build_sparse_model, value_iteration

from test_fixpoint_equivalence import PROGRAMS
from test_random_programs import ProgramGenerator

#: deterministic doubling chain: reaches |x| > 2**31 after ~33 states, so
#: the int64 BFS must abandon the batch and the exact path take over
OVERFLOW_CHAIN = """
x := 1
while x <= 10000000000:
    x := x * 2
assert x <= 0
"""

#: half-integer steps: not on the integer lattice, but on the scale-2
#: fixed-point one (compiled in real-valued mode so the loop-exit guards
#: stay complete at fractional states)
HALF_STEPS = """
x := 0
while x <= 5:
    if prob(0.5):
        x := x + 1/2
    else:
        x := x + 1
assert x >= 6
"""

#: >2048 states (CSR path) and slow-mixing: the blocked Gauss-Seidel
#: schedule needs roughly half of Jacobi's sweeps to pass the same tol
SLOW_CHAIN = """
x := 40
while x >= 1 and x <= 2499:
    switch:
        prob(0.6): x := x - 1
        prob(0.4): x := x + 1
assert x >= 1
"""


def to_dense(matrix):
    return matrix.toarray() if hasattr(matrix, "toarray") else matrix


def assert_models_bit_identical(pts, max_states, explore="int64"):
    fast = build_sparse_model(pts, max_states=max_states, explore=explore)
    exact = build_sparse_model(pts, max_states=max_states, explore="fraction")
    assert fast.explored_via in ("int64", "scaled-int64")
    assert exact.explored_via == "fraction"
    assert fast.n == exact.n
    assert fast.truncated == exact.truncated
    assert (to_dense(fast.matrix) == to_dense(exact.matrix)).all()
    assert (fast.b_lower == exact.b_lower).all()
    assert (fast.b_upper == exact.b_upper).all()
    assert (fast.x0_lower == exact.x0_lower).all()
    assert (fast.x0_upper == exact.x0_upper).all()
    assert fast.index == exact.index  # lazy on the int64 side
    return fast, exact


class TestIntegerLatticeBitIdentity:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_example_programs(self, name):
        pts = compile_source(PROGRAMS[name], name=name).pts
        assert_models_bit_identical(pts, max_states=50_000)

    @pytest.mark.parametrize("max_states", [20, 100, 500])
    def test_truncation_cuts_the_same_frontier(self, max_states):
        pts = compile_source(PROGRAMS["asym"], name="asym").pts
        fast, _ = assert_models_bit_identical(pts, max_states=max_states)
        assert fast.truncated

    def test_value_iteration_matches_reference_bitwise(self):
        # int64 exploration feeds the same dense Gauss-Seidel operator, so
        # even the iteration count matches the legacy engine (pure sweeps:
        # solver="auto" may hand converged oracle candidates back early)
        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        fast = value_iteration(pts, explore="int64", solver="sweep")
        ref = fixpoint_reference.value_iteration(pts)
        assert fast.iterations == ref.iterations
        assert fast.lower == ref.lower
        assert fast.upper == ref.upper

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_programs(self, seed):
        source = ProgramGenerator(random.Random(seed)).program()
        pts = compile_source(source, name=f"rand{seed}").pts
        auto = build_sparse_model(pts, max_states=60_000)
        exact = build_sparse_model(pts, max_states=60_000, explore="fraction")
        assert auto.n == exact.n
        assert auto.truncated == exact.truncated
        assert (to_dense(auto.matrix) == to_dense(exact.matrix)).all()
        assert (auto.b_upper == exact.b_upper).all()


#: >64 BFS levels of width ~2: under explore="auto" the batched engine
#: must bail out to the scalar path (per-level numpy overhead dominates)
THIN_CHAIN = """
x := 150
while x >= 1 and x <= 299:
    switch:
        prob(0.5): x := x + 1
        prob(0.5): x := x - 1
assert x <= 0
"""


class TestFallback:
    def test_auto_falls_back_on_int64_overflow(self):
        pts = compile_source(OVERFLOW_CHAIN, name="ovf").pts
        assert pts.integrality().integral
        model = build_sparse_model(pts, max_states=5_000)
        assert model.explored_via == "fraction"
        fast = value_iteration(pts, max_states=5_000, solver="sweep")
        ref = fixpoint_reference.value_iteration(pts, max_states=5_000)
        assert fast.states == ref.states
        assert fast.lower == ref.lower
        assert fast.upper == ref.upper

    def test_forced_int64_raises_on_overflow(self):
        pts = compile_source(OVERFLOW_CHAIN, name="ovf").pts
        with pytest.raises(ModelError, match="overflowed the int64"):
            build_sparse_model(pts, max_states=5_000, explore="int64")

    def test_truncation_dropped_overflow_candidates_keep_the_fast_path(self):
        # the 33rd state of the doubling chain exceeds 2**31, but with
        # max_states=16 it is cut by the budget before admission — only
        # *admitted* states are range-checked, so int64 stays usable
        pts = compile_source(OVERFLOW_CHAIN, name="ovf").pts
        fast = build_sparse_model(pts, max_states=16, explore="int64")
        exact = build_sparse_model(pts, max_states=16, explore="fraction")
        assert fast.explored_via == "int64"
        assert fast.truncated
        assert fast.n == exact.n
        assert (to_dense(fast.matrix) == to_dense(exact.matrix)).all()
        assert (fast.b_upper == exact.b_upper).all()

    def test_auto_bails_out_on_thin_frontiers(self):
        # chain-shaped system: >64 narrow BFS levels restart on the scalar
        # engine under auto, but forced int64 still batches to completion
        pts = compile_source(THIN_CHAIN, name="thin").pts
        auto = build_sparse_model(pts, max_states=5_000)
        assert auto.explored_via == "fraction"
        forced = build_sparse_model(pts, max_states=5_000, explore="int64")
        assert forced.explored_via == "int64"
        assert forced.n == auto.n
        assert (to_dense(forced.matrix) == to_dense(auto.matrix)).all()
        assert forced.index == auto.index

    def test_auto_falls_back_when_no_scaled_lattice_exists(self):
        # a 1e-7 step size needs a denominator beyond the 1e6 fixed-point
        # cap, so not even the scaled engine admits it
        src = "x := 0\nwhile x <= 2:\n    x := x + 1/10000000\nassert x <= 0"
        pts = compile_source(src, name="tiny-steps", integer_mode=False).pts
        report = pts.integrality()
        assert not report.integral
        assert report.scale is None
        assert "fixed-point cap" in report.scale_reason
        model = build_sparse_model(pts, max_states=100)
        assert model.explored_via == "fraction"

    def test_forced_int64_rejects_non_integer_lattice(self):
        pts = compile_source(HALF_STEPS, name="half", integer_mode=False).pts
        with pytest.raises(ModelError, match="integer-lattice"):
            build_sparse_model(pts, max_states=5_000, explore="int64")

    def test_continuous_sampling_rejected_before_exploring(self):
        src = "r ~ uniform(0, 1)\nx := 0\nx := x + r\nassert x <= 2"
        pts = compile_source(src, name="cont").pts
        assert not pts.integrality().integral
        with pytest.raises(ModelError):
            value_iteration(pts)

    def test_unknown_modes_rejected(self):
        pts = compile_source(PROGRAMS["coin"], name="coin").pts
        with pytest.raises(ValueError):
            build_sparse_model(pts, explore="simd")
        with pytest.raises(ValueError):
            value_iteration(pts, schedule="sor")
        with pytest.raises(ValueError):
            value_iteration(pts, solver="conjugate-gradient")


class TestTinyModelHeuristic:
    """Sub-256-state systems stay on the scalar Fraction engine under auto.

    The BENCH trajectory showed the batched engines *losing* on tiny
    models (gambler's 13 states ran at explore_speedup 0.29x: per-level
    numpy dispatch overhead dwarfs the work), so auto now bails out after
    a cheap full exploration whenever the admitted model is tiny.
    """

    def test_tiny_integer_model_bails_to_scalar_under_auto(self):
        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        auto = build_sparse_model(pts, max_states=20_000)
        assert auto.explored_via == "fraction"
        # forced int64 still batches, and stays bit-identical
        fast, _ = assert_models_bit_identical(pts, max_states=20_000)
        assert fast.explored_via == "int64"
        assert fast.n < 256

    def test_heuristic_threshold_is_state_count_not_budget(self):
        # same tiny system under a tiny budget: still scalar under auto
        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        assert build_sparse_model(pts, max_states=300).explored_via == "fraction"
        # a >=256-state admitted model keeps the batched engine
        pts_big = compile_source(THIN_CHAIN, name="thin").pts
        forced = build_sparse_model(pts_big, max_states=5_000, explore="int64")
        assert forced.n >= 256

    def test_bailout_does_not_change_the_bracket(self):
        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        auto = value_iteration(pts, solver="sweep")
        ref = fixpoint_reference.value_iteration(pts)
        assert auto.iterations == ref.iterations
        assert auto.lower == ref.lower
        assert auto.upper == ref.upper


#: mixed lattice: an integral loop counter riding along half-integer steps
#: — the scaled engine must keep i on scale 1 and put x on scale 2
MIXED_STEPS = """
i := 0
x := 0
while i <= 20:
    if prob(0.5):
        i, x := i + 1, x + 1/2
    else:
        i := i + 1
assert x >= 8
"""

#: every loop exit crosses the guard boundary exactly at the fractional
#: state x = 3/4 — descaling must not perturb the contains_float(tol=1e-9)
#: decision there
BOUNDARY_STEPS = """
x := 0
while x - 3/4 <= 0:
    if prob(0.5):
        x := x + 1/4
    else:
        x := x + 3/4
assert x >= 2
"""

#: fractional doubling chain: scaled values leave the per-variable admitted
#: range after ~16 doublings, so the scaled engine must hand over to the
#: exact path mid-exploration
SCALED_OVERFLOW_CHAIN = """
x := 1/2
while x <= 100000:
    x := x * 2
assert x <= 0
"""


class TestScaledLattice:
    """The fixed-point (scaled-int64) admission of fractional systems."""

    def test_half_steps_explored_scaled_under_auto(self):
        pts = compile_source(HALF_STEPS, name="half", integer_mode=False).pts
        assert pts.integrality().scale == (2,)
        # ~13 states: the tiny-model heuristic keeps auto on the scalar
        # engine (per-level numpy overhead dominates below 256 states) but
        # the forced scaled engine still batches, bit-identically
        model = build_sparse_model(pts, max_states=5_000)
        assert model.explored_via == "fraction"
        fast, _ = assert_models_bit_identical(pts, max_states=5_000, explore="scaled")
        assert fast.explored_via == "scaled-int64"

    @pytest.mark.parametrize(
        "name,scale",
        [("3DWalk", (10, 10, 10)), ("Robot", (1, 500, 500))],
    )
    def test_table1_fractional_workloads(self, name, scale):
        from repro.programs import get_benchmark

        pts = get_benchmark(name).pts
        report = pts.integrality()
        assert not report.integral
        assert report.scale == scale
        auto = build_sparse_model(pts, max_states=4_000)
        assert auto.explored_via == "scaled-int64"
        fast, _ = assert_models_bit_identical(pts, max_states=4_000, explore="scaled")
        assert fast.truncated  # the cut frontier is part of the contract

    def test_m1dwalk_is_integer_lattice_not_scaled(self):
        # the issue tracker filed M1DWalk under "fractional", but only its
        # fork *probabilities* are fractional and those never enter a state
        # vector: it has been int64-admissible since the integer fast path
        # landed, and its exclusion under auto is the thin-frontier bailout
        # (a width-2 chain, where batching measures ~16x slower)
        from repro.programs import get_benchmark

        pts = get_benchmark("M1DWalk").pts
        report = pts.integrality()
        assert report.integral
        assert report.scale == (1,)
        auto = build_sparse_model(pts, max_states=3_000)
        assert auto.explored_via == "fraction"  # thin-frontier restart
        fast, _ = assert_models_bit_identical(pts, max_states=3_000)
        assert fast.explored_via == "int64"

    def test_mixed_integral_and_fractional_variables(self):
        pts = compile_source(MIXED_STEPS, name="mixed", integer_mode=False).pts
        assert pts.integrality().scale == (1, 2)
        fast, _ = assert_models_bit_identical(pts, max_states=10_000, explore="scaled")
        assert fast.explored_via == "scaled-int64"

    def test_guard_boundary_states_descale_exactly(self):
        pts = compile_source(BOUNDARY_STEPS, name="boundary", integer_mode=False).pts
        fast, exact = assert_models_bit_identical(
            pts, max_states=1_000, explore="scaled"
        )
        # the boundary state x = 3/4 is reachable and loops once more (the
        # guard holds with exact value 0); its descaled index entry must
        # make the same contains_float(tol=1e-9) call the reference makes
        from fractions import Fraction

        boundary = next(
            (loc, values)
            for (loc, values) in fast.index
            if Fraction(3, 4) in values
        )
        loc, values = boundary
        valuation = dict(zip(pts.program_vars, (float(v) for v in values)))
        assert pts.enabled_transition(loc, valuation) is not None

    def test_value_iteration_scaled_matches_reference_bitwise(self):
        # scaled exploration feeds the same dense Gauss-Seidel operator, so
        # even the iteration count matches the legacy engine
        pts = compile_source(HALF_STEPS, name="half", integer_mode=False).pts
        fast = value_iteration(pts, max_states=5_000, explore="scaled", solver="sweep")
        ref = fixpoint_reference.value_iteration(pts, max_states=5_000)
        assert fast.iterations == ref.iterations
        assert fast.lower == ref.lower
        assert fast.upper == ref.upper

    def test_lcm_overflow_falls_back_and_forced_scaled_raises(self):
        src = "x := 0\nwhile x <= 2:\n    x := x + 1/10000000\nassert x <= 0"
        pts = compile_source(src, name="tiny-steps", integer_mode=False).pts
        assert build_sparse_model(pts, max_states=100).explored_via == "fraction"
        with pytest.raises(ModelError, match="fixed-point-admissible"):
            build_sparse_model(pts, max_states=100, explore="scaled")

    def test_forced_scaled_raises_on_contractive_updates(self):
        src = "x := 1\nwhile x >= 1/100:\n    x := x / 2\nassert x <= 0"
        pts = compile_source(src, name="halving", integer_mode=False).pts
        assert pts.integrality().scale is None
        with pytest.raises(ModelError, match="fixed-point-admissible"):
            build_sparse_model(pts, max_states=100, explore="scaled")

    def test_fractional_guard_coefficients_do_not_refine_the_lattice(self):
        # states stay integral; only a guard coefficient is fractional.
        # Guards are cleared by per-row multipliers, so the lattice keeps
        # scale 1 and the scaled engine admits the system
        src = (
            "x := 0\nwhile 1/3 * x <= 5:\n    x := x + 1\nassert x >= 16"
        )
        pts = compile_source(src, name="frac-guard", integer_mode=False).pts
        report = pts.integrality()
        assert not report.integral
        assert report.scale == (1,)
        # ~18 states: auto stays scalar under the tiny-model heuristic,
        # but the forced scaled engine still admits the system
        model = build_sparse_model(pts, max_states=1_000)
        assert model.explored_via == "fraction"
        assert_models_bit_identical(pts, max_states=1_000, explore="scaled")

    def test_forced_scaled_on_integer_lattice_degenerates_to_int64(self):
        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        model = build_sparse_model(pts, max_states=5_000, explore="scaled")
        assert model.explored_via == "int64"

    def test_scaled_value_overflow_falls_back_under_auto(self):
        pts = compile_source(
            SCALED_OVERFLOW_CHAIN, name="scaled-ovf", integer_mode=False
        ).pts
        assert pts.integrality().scale == (2,)
        model = build_sparse_model(pts, max_states=1_000)
        assert model.explored_via == "fraction"
        fast = value_iteration(pts, max_states=1_000)
        ref = fixpoint_reference.value_iteration(pts, max_states=1_000)
        assert fast.states == ref.states
        assert fast.lower == ref.lower

    def test_scaled_value_overflow_raises_when_forced(self):
        pts = compile_source(
            SCALED_OVERFLOW_CHAIN, name="scaled-ovf", integer_mode=False
        ).pts
        with pytest.raises(ModelError, match="overflowed the scaled"):
            build_sparse_model(pts, max_states=1_000, explore="scaled")


class TestIntegralityReport:
    def test_integral_program(self):
        pts = compile_source(PROGRAMS["sampling"], name="sampling").pts
        assert pts.integrality().integral
        assert pts.integrality() is pts.integrality()  # cached
        assert pts.integrality().scale == tuple(1 for _ in pts.program_vars)

    def test_fractional_init(self):
        src = "x := 1/2\nassert x <= 0"
        pts = compile_source(src, name="finit", integer_mode=False).pts
        report = pts.integrality()
        assert not report.integral
        assert "init" in report.reason
        assert report.scale == (2,)
        assert report.max_scale == 2

    def test_continuous_sampling_has_no_scaled_lattice(self):
        src = "r ~ uniform(0, 1)\nx := 0\nx := x + r\nassert x <= 2"
        pts = compile_source(src, name="cont").pts
        report = pts.integrality()
        assert not report.integral
        assert report.scale is None
        assert "continuous" in report.scale_reason

    def test_cache_hit_asserts_structural_immutability(self):
        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        assert pts.integrality().integral
        # rebinding to an equal-but-distinct tuple still counts as mutation
        pts.transitions = pts.transitions[:1] + pts.transitions[1:]
        with pytest.raises(ModelError, match="mutated"):
            pts.integrality()

    def test_cache_hit_catches_in_place_value_replacement(self):
        from fractions import Fraction

        from repro.pts.distributions import DiscreteDistribution

        pts = compile_source(PROGRAMS["sampling"], name="sampling").pts
        assert pts.integrality().integral
        # same keys, same lengths — only the bound objects change
        r = next(iter(pts.distributions))
        pts.distributions[r] = DiscreteDistribution(
            [(Fraction(1, 2), Fraction(1, 2)), (Fraction(1, 2), Fraction(1))]
        )
        with pytest.raises(ModelError, match="mutated"):
            pts.integrality()

    def test_cache_hit_catches_update_expression_swap(self):
        from fractions import Fraction

        from repro.polyhedra.linexpr import LinExpr

        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        assert pts.integrality().integral
        fork = pts.transitions[0].forks[0]
        target = next(iter(fork.update.assignments))
        # AffineUpdate's assignments dict is mutable — swapping a LinExpr
        # in place must not serve the stale integral=True report
        fork.update.assignments[target] = LinExpr({target: Fraction(1, 2)})
        with pytest.raises(ModelError, match="mutated"):
            pts.integrality()

    def test_cache_hit_catches_init_valuation_change(self):
        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        assert pts.integrality().integral
        v = pts.program_vars[0]
        pts.init_valuation[v] = pts.init_valuation[v] + 1
        with pytest.raises(ModelError, match="mutated"):
            pts.integrality()

    def test_copies_recompute_instead_of_false_alarming(self):
        # the stamp pins object identities, which copies don't share: the
        # cache must be dropped on pickle/deepcopy, not trip the guard
        import copy
        import pickle

        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        report = pts.integrality()
        assert copy.deepcopy(pts).integrality() == report
        assert pickle.loads(pickle.dumps(pts)).integrality() == report
        assert pts.integrality() is report  # the original cache survives


class TestBlockedGaussSeidel:
    # everything here is about the *sweep* schedules, so the oracle layer
    # is pinned off (solver="sweep"): iteration-count comparisons are
    # meaningless once a certified candidate ends the run early
    def test_value_agreement_and_fewer_sweeps_on_slow_chain(self):
        pts = compile_source(SLOW_CHAIN, name="slow-chain").pts
        jacobi = value_iteration(pts, schedule="jacobi", solver="sweep")
        gs = value_iteration(pts, schedule="gauss-seidel", solver="sweep")
        assert jacobi.states == gs.states
        assert jacobi.states > 2048  # CSR path, not the dense operator
        assert abs(jacobi.lower - gs.lower) <= 1e-9
        assert abs(jacobi.upper - gs.upper) <= 1e-9
        assert jacobi.lower > 0.9  # the bracket is meaningful, not degenerate
        # the blocked triangular solves reproduce the reference's in-place
        # schedule, which needs roughly half of Jacobi's sweeps here
        assert gs.iterations < jacobi.iterations

    def test_matches_reference_schedule(self):
        pts = compile_source(SLOW_CHAIN, name="slow-chain").pts
        gs = value_iteration(pts, schedule="gauss-seidel", solver="sweep")
        ref = fixpoint_reference.value_iteration(pts)
        assert gs.iterations == ref.iterations
        assert abs(gs.lower - ref.lower) <= 1e-9
        assert abs(gs.upper - ref.upper) <= 1e-9

    def test_dense_path_ignores_schedule(self):
        pts = compile_source(PROGRAMS["gambler"], name="gambler").pts
        default = value_iteration(pts, solver="sweep")
        gs = value_iteration(pts, schedule="gauss-seidel", solver="sweep")
        assert default.iterations == gs.iterations
        assert default.lower == gs.lower


class TestEngineFingerprint:
    def test_cache_keys_fold_in_the_fixpoint_fingerprint(self):
        from repro.core.fixpoint import FIXPOINT_FINGERPRINT
        from repro.engine import AnalysisTask, ProgramSpec

        task = AnalysisTask.make(
            "hoeffding", ProgramSpec.from_source("x := 0\nassert x <= 0")
        )
        key = task.cache_key
        assert len(key) == 64
        # the key is a hash, so pin the coupling instead: the fingerprint
        # constant exists and changing it must change every cache key
        import repro.engine.task as task_mod

        assert task_mod._fixpoint_fingerprint() == FIXPOINT_FINGERPRINT


def test_bench_workloads_match_their_registry_programs():
    # the fixpoint bench inlines copies of three Table 1/2 registry
    # programs (the registry compiles + generates invariants on every
    # instantiation, too slow for a module-level workload table); this
    # pins the copies to the registry so they cannot silently drift from
    # the shapes PERFORMANCE.md's recorded speedups claim to measure
    from repro.experiments.fixpoint_bench import FIXPOINT_WORKLOADS
    from repro.programs import get_benchmark

    for workload, registry_name in [
        ("3dwalk-100k", "3DWalk"),
        ("robot-100k", "Robot"),
        ("m1dwalk-5k", "M1DWalk"),
    ]:
        source, _, integer_mode = FIXPOINT_WORKLOADS[workload]
        bench_pts = compile_source(source, name=workload, integer_mode=integer_mode).pts
        registry_pts = get_benchmark(registry_name).pts
        # pretty() renders the full system; only the name line may differ
        assert (
            bench_pts.pretty().splitlines()[1:]
            == registry_pts.pretty().splitlines()[1:]
        ), f"bench workload {workload!r} drifted from registry {registry_name!r}"


def test_int64_handles_batched_duplicate_candidates():
    # many states of one frontier level map onto the same successor: the
    # void-view dedup must assign one index and keep every edge
    src = """
x := 0
y := 0
while x <= 6:
    switch:
        prob(0.5): x, y := x + 1, 0
        prob(0.5): x, y := x + 1, 1
assert y <= 0
"""
    pts = compile_source(src, name="dedup").pts
    fast = build_sparse_model(pts, max_states=10_000, explore="int64")
    exact = build_sparse_model(pts, max_states=10_000, explore="fraction")
    assert fast.n == exact.n
    assert (to_dense(fast.matrix) == to_dense(exact.matrix)).all()
    assert np.isclose(to_dense(fast.matrix).sum(axis=1).max(), 1.0)
