"""Targeted tests for ExpLinSyn internals (Section 5.2 / Proposition 1)."""

import math
import random
from fractions import Fraction

import pytest

from repro.lang import compile_source
from repro.numeric.convex import ConvexProgram
from repro.core import exp_lin_syn, generate_interval_invariants
from repro.core.canonical import canonicalize
from repro.core.certificates import log_ptf_transition, sample_psi_points
from repro.core.explinsyn import _eliminate, _expand_term_at_point
from repro.core.templates import ExpTemplate


def race_setup():
    src = (
        "x := 40\ny := 0\n"
        "while x <= 99 and y <= 99:\n"
        "    if prob(0.5):\n"
        "        x, y := x + 1, y + 2\n"
        "    else:\n"
        "        x := x + 1\n"
        "assert x >= 100"
    )
    pts = compile_source(src, name="race").pts
    inv = generate_interval_invariants(pts)
    template = ExpTemplate(pts)
    return pts, inv, template


class TestEliminate:
    def test_d1_constraints_generated_for_unbounded_psi(self):
        from repro.core import InvariantMap

        pts, _, template = race_setup()
        # with trivial (universe) invariants the fail-edge region
        # {x <= 99, y >= 100} is unbounded, so D1 rows must appear
        inv = InvariantMap(pts)
        prog = ConvexProgram()
        for n in template.unknowns():
            prog.add_unknown(n)
        eliminated = _eliminate(pts, canonicalize(pts, inv, template), prog)
        assert prog._linear_le
        assert eliminated

    def test_no_d1_for_bounded_invariants(self):
        pts, inv, template = race_setup()
        prog = ConvexProgram()
        for n in template.unknowns():
            prog.add_unknown(n)
        _eliminate(pts, canonicalize(pts, inv, template), prog)
        # interval invariants (with narrowing) bound every premise of the
        # race, so the cone condition is vacuous
        assert not prog._linear_le

    def test_d2_at_every_generator_point(self):
        pts, inv, template = race_setup()
        prog = ConvexProgram()
        for n in template.unknowns():
            prog.add_unknown(n)
        eliminated = _eliminate(pts, canonicalize(pts, inv, template), prog)
        total_points = sum(len(e.generator_points) for e in eliminated)
        # pure-termination transitions contribute no LSE constraint
        assert len(prog._lse) <= total_points
        assert len(prog._lse) >= 1

    def test_canonical_agreement_with_log_ptf(self):
        """The canonical-form exponents must agree with the direct semantic
        computation of ptf on random assignments — a differential test
        between two independent code paths."""
        pts, inv, template = race_setup()
        cons = canonicalize(pts, inv, template)
        rng = random.Random(5)
        for _ in range(10):
            assignment = {name: rng.uniform(-0.5, 0.5) for name in template.unknowns()}
            sf = template.instantiate(assignment)
            for con in cons:
                transition = next(
                    t for t in pts.transitions if t.name == con.transition_name
                )
                for point in sample_psi_points(con.psi, rng, count=2):
                    direct = log_ptf_transition(pts, sf, transition, point)
                    # canonical: log(sum p_j exp(alpha.v + beta)) + eta_src
                    parts = []
                    for term in con.terms:
                        exponent = float(
                            sum(
                                term.alpha[v].evaluate_float(assignment) * point[v]
                                for v in term.alpha
                            )
                        ) + term.beta.evaluate_float(assignment)
                        parts.append(math.log(float(term.prob)) + exponent)
                    if parts:
                        m = max(parts)
                        canonical = m + math.log(sum(math.exp(p - m) for p in parts))
                    else:
                        canonical = float("-inf")
                    eta_src = sf.exponent(con.source, point)
                    if direct == float("-inf"):
                        assert canonical == float("-inf")
                    else:
                        assert direct == pytest.approx(
                            canonical + eta_src, abs=1e-6 * max(1, abs(direct))
                        )


class TestExpandTerm:
    def test_discrete_atoms_expand_to_weighted_terms(self):
        src = (
            "r ~ discrete((0.25, -1), (0.75, 2))\n"
            "x := 0\nn := 0\n"
            "while n <= 9:\n"
            "    x, n := x + r, n + 1\n"
            "assert x <= 15"
        )
        pts = compile_source(src, name="d").pts
        inv = generate_interval_invariants(pts)
        template = ExpTemplate(pts)
        cons = canonicalize(pts, inv, template)
        with_gamma = [t for c in cons for t in c.terms if t.gamma]
        assert with_gamma
        point = {v: Fraction(0) for v in pts.program_vars}
        specs = _expand_term_at_point(pts, with_gamma[0], point)
        # one spec per atom of the discrete distribution
        assert len(specs) == 2
        weights = sorted(w for w, _, _ in specs)
        assert weights == [0.25, 0.75]
        assert all(not smooth for _, _, smooth in specs)

    def test_continuous_stays_smooth(self):
        src = (
            "r ~ uniform(-1, 1)\n"
            "x := 0\nn := 0\n"
            "while n <= 9:\n"
            "    x, n := x + r, n + 1\n"
            "assert x <= 8"
        )
        pts = compile_source(src, name="u").pts
        inv = generate_interval_invariants(pts)
        template = ExpTemplate(pts)
        cons = canonicalize(pts, inv, template)
        with_gamma = [t for c in cons for t in c.terms if t.gamma]
        point = {v: Fraction(0) for v in pts.program_vars}
        specs = _expand_term_at_point(pts, with_gamma[0], point)
        assert len(specs) == 1
        assert len(specs[0][2]) == 1  # one smooth MGF factor


class TestOptimality:
    def test_race_near_optimal_vs_grid(self):
        """No exponential-with-affine-exponent bound on the race can be much
        better than what ExpLinSyn returns (completeness, Theorem 5.5):
        probe a coefficient grid around the solution and verify nothing
        feasible is substantially below the returned objective."""
        pts, inv, template = race_setup()
        cert = exp_lin_syn(pts, inv)
        prog = ConvexProgram()
        for n in template.unknowns():
            prog.add_unknown(n)
        _eliminate(pts, canonicalize(pts, inv, template), prog)
        head = pts.init_location
        base = cert.state_function
        rng = random.Random(3)
        for _ in range(60):
            assignment = {}
            for loc in template.locations:
                for v in pts.program_vars:
                    assignment[template.a_name(loc, v)] = base.coeffs[loc][v] + rng.uniform(-0.3, 0.3)
                assignment[template.b_name(loc)] = base.consts[loc] + rng.uniform(-3, 3)
            if prog.max_violation(assignment) <= 1e-9:
                objective = (
                    assignment[template.a_name(head, "x")] * 40.0
                    + assignment[template.b_name(head)]
                )
                assert objective >= cert.log_bound - 0.15
