"""Tests for stable log-space math."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.logspace import (
    format_log_bound,
    log1mexp,
    log_diff_exp,
    log_sum_exp,
    weighted_log_sum_exp,
)


class TestLogSumExp:
    def test_empty(self):
        assert log_sum_exp([]) == float("-inf")

    def test_single(self):
        assert log_sum_exp([2.5]) == pytest.approx(2.5)

    def test_matches_direct(self):
        vals = [0.1, -1.0, 2.0]
        direct = math.log(sum(math.exp(v) for v in vals))
        assert log_sum_exp(vals) == pytest.approx(direct)

    def test_huge_negative_values(self):
        # exp(-5000) underflows doubles; LSE must still be exact in log space
        assert log_sum_exp([-5000.0, -5001.0]) == pytest.approx(
            -5000.0 + math.log(1 + math.exp(-1.0))
        )

    def test_all_neg_inf(self):
        assert log_sum_exp([float("-inf")] * 3) == float("-inf")

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=8))
    def test_dominates_max(self, vals):
        out = log_sum_exp(vals)
        assert out >= max(vals) - 1e-12
        assert out <= max(vals) + math.log(len(vals)) + 1e-12


class TestWeightedLogSumExp:
    def test_weights(self):
        out = weighted_log_sum_exp([(0.5, 0.0), (0.5, 0.0)])
        assert out == pytest.approx(0.0)

    def test_zero_weight_skipped(self):
        out = weighted_log_sum_exp([(0.0, 100.0), (1.0, 1.0)])
        assert out == pytest.approx(1.0)


class TestLog1mexp:
    def test_requires_negative(self):
        with pytest.raises(ValueError):
            log1mexp(0.0)

    @given(st.floats(min_value=-50, max_value=-1e-6))
    def test_matches_direct(self, x):
        direct = math.log1p(-math.exp(x))
        assert log1mexp(x) == pytest.approx(direct, rel=1e-9, abs=1e-12)


class TestLogDiffExp:
    def test_order_enforced(self):
        with pytest.raises(ValueError):
            log_diff_exp(1.0, 1.0)

    def test_matches_direct(self):
        assert log_diff_exp(2.0, 1.0) == pytest.approx(
            math.log(math.exp(2.0) - math.exp(1.0))
        )


class TestFormatLogBound:
    def test_zero(self):
        assert format_log_bound(float("-inf")) == "0"

    def test_one(self):
        assert format_log_bound(0.0) == "1"

    def test_scientific(self):
        assert format_log_bound(math.log(1.5e-7)) == "1.500e-07"

    def test_tiny_uses_power_notation(self):
        # exp(-5000) ~ 10^-2171; not representable as a double
        out = format_log_bound(-5000.0)
        assert "e-217" in out

    def test_greater_than_one(self):
        assert "exp(" in format_log_bound(3.0)
